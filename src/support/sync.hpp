#pragma once

// Annotated synchronization primitives: Clang Thread Safety Analysis,
// degrading to plain std primitives everywhere else (DESIGN.md §13).
//
// The repo's concurrency bugs so far (the PR-6 lost wakeup, the arena
// accounting race) were caught by hand review and soak runs. This header
// moves that class of bug to compile time: every mutex-protected subsystem
// declares *which* lock guards *which* state, and a Clang build with
// -Werror=thread-safety rejects any access that cannot prove it holds the
// right capability. GCC (the other supported compiler) sees ordinary
// std::mutex behaviour with zero overhead — the attributes vanish.
//
// Discipline (enforced by tools/check_locks.py on top of the compiler):
//  * No raw std::mutex / std::condition_variable outside this header.
//  * Every rla::Mutex declaration carries a `// lock-level:` comment naming
//    its rank in the acquisition hierarchy
//    lifecycle → service → pool → arena → registry.
//    A thread may acquire a lower-ranked lock while holding a higher-ranked
//    one, never the reverse, and never two locks of the same rank.
//  * CondVar has predicate-taking waits only, plus one explicitly justified
//    timed poll (`// timed-wait:`); every notify site documents the guarded
//    state it publishes with a `// publishes:` comment.
//  * RLA_NO_THREAD_SAFETY_ANALYSIS requires an adjacent `// justification:`
//    comment; an escape without one fails the lint.

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (the Clang TSA vocabulary, no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RLA_TSA(x) __attribute__((x))
#endif
#endif
#ifndef RLA_TSA
#define RLA_TSA(x)  // not Clang: annotations compile away
#endif

/// Class attribute: instances are lockable capabilities ("mutex", "role"...).
#define RLA_CAPABILITY(x) RLA_TSA(capability(x))
/// Class attribute: RAII objects that acquire at construction, release at
/// destruction (MutexLock below).
#define RLA_SCOPED_CAPABILITY RLA_TSA(scoped_lockable)
/// Data member is protected by the given capability.
#define RLA_GUARDED_BY(x) RLA_TSA(guarded_by(x))
/// Pointer member: the *pointed-to* data is protected by the capability.
#define RLA_PT_GUARDED_BY(x) RLA_TSA(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define RLA_REQUIRES(...) RLA_TSA(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define RLA_ACQUIRE(...) RLA_TSA(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define RLA_RELEASE(...) RLA_TSA(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns the given value.
#define RLA_TRY_ACQUIRE(...) RLA_TSA(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard on
/// public entry points that take the lock themselves).
#define RLA_EXCLUDES(...) RLA_TSA(locks_excluded(__VA_ARGS__))
/// Tell the analysis the capability is held here without acquiring it —
/// for invariants enforced dynamically (e.g. deque ownership checked by
/// thread index) that the static analysis cannot see.
#define RLA_ASSERT_CAPABILITY(x) RLA_TSA(assert_capability(x))
/// Function returns a reference to the given capability.
#define RLA_RETURN_CAPABILITY(x) RLA_TSA(lock_returned(x))
/// Escape hatch: the function body is not analysed. Every use MUST carry an
/// adjacent `// justification:` comment (tools/check_locks.py enforces it).
#if defined(__clang__)
#define RLA_NO_THREAD_SAFETY_ANALYSIS __attribute__((no_thread_safety_analysis))
#else
#define RLA_NO_THREAD_SAFETY_ANALYSIS
#endif

namespace rla {

/// std::mutex carrying the "mutex" capability. Prefer MutexLock over the
/// raw lock()/unlock() pair; they exist for the RAII wrapper and for the
/// rare explicit critical section the analysis can still check.
class RLA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RLA_ACQUIRE() { mu_.lock(); }
  void unlock() RLA_RELEASE() { mu_.unlock(); }
  bool try_lock() RLA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock on an rla::Mutex (the annotated std::unique_lock). Supports
/// manual unlock()/lock() mid-scope — the analysis tracks the state — and
/// is what CondVar waits on.
class RLA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RLA_ACQUIRE(mu) : mu_(&mu), lock_(mu.mu_) {}

  /// Releases if still held.
  ~MutexLock() RLA_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual release before scope end (e.g. to run admission logic or notify
  /// without the lock). The destructor then releases nothing.
  void unlock() RLA_RELEASE() { lock_.unlock(); }

  /// Re-acquire after a manual unlock.
  void lock() RLA_ACQUIRE() { lock_.lock(); }

  bool owns_lock() const noexcept { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  bool manages(const Mutex& mu) const noexcept {
    return mu_ == &mu && lock_.owns_lock();
  }

  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to rla::Mutex. Only predicate overloads exist
/// for wait(): the PR-6 lost wakeup came from a predicate-less wait
/// absorbing a notify meant for another waiter, and a predicate makes that
/// structurally impossible. wait_for() keeps one predicate-less timed-poll
/// form for loops whose wake condition lives outside the mutex (the worker
/// nap); each such call site must justify itself with a `// timed-wait:`
/// comment or the lint fails.
///
/// The guarded mutex is named twice at the call site —
/// `cv.wait(mu, lock, pred)` — because the static analysis is syntactic: it
/// cannot prove that `lock` holds `mu`, so the capability is passed
/// explicitly for the REQUIRES check while the MutexLock supplies the
/// underlying unique_lock. An assert pins the two to the same mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Wait until pred() is true. pred runs with `mu` held; annotate the
  /// lambda RLA_REQUIRES(mu) when it reads guarded state.
  template <typename Pred>
  void wait(Mutex& mu, MutexLock& lock, Pred pred) RLA_REQUIRES(mu)
      RLA_NO_THREAD_SAFETY_ANALYSIS {
    // justification: the body hands lock_ to std::condition_variable, which
    // releases and re-acquires it out of the analysis's sight; the REQUIRES
    // on the declaration still checks every caller.
    assert(lock.manages(mu));
    cv_.wait(lock.lock_, std::move(pred));
  }

  /// Wait until pred() is true or `rel_time` elapses; returns pred().
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, MutexLock& lock,
                const std::chrono::duration<Rep, Period>& rel_time, Pred pred)
      RLA_REQUIRES(mu) RLA_NO_THREAD_SAFETY_ANALYSIS {
    // justification: same as wait() — the std CV relocks outside the
    // analysis; callers are still checked against the REQUIRES.
    assert(lock.manages(mu));
    return cv_.wait_for(lock.lock_, rel_time, std::move(pred));
  }

  /// Timed poll without a predicate: returns on notify, spurious wakeup or
  /// timeout, whichever first. Callers re-check their condition themselves
  /// and must carry a `// timed-wait:` justification comment.
  template <typename Rep, typename Period>
  void wait_for(Mutex& mu, MutexLock& lock,
                const std::chrono::duration<Rep, Period>& rel_time)
      RLA_REQUIRES(mu) RLA_NO_THREAD_SAFETY_ANALYSIS {
    // justification: same relock-outside-the-analysis shape as wait().
    assert(lock.manages(mu));
    cv_.wait_for(lock.lock_, rel_time);
  }

  /// Wake one waiter. Call sites document the guarded state they just made
  /// visible with `// publishes: <state>` (lint-enforced), which keeps the
  /// notify ↔ predicate pairing reviewable.
  void notify_one() noexcept { cv_.notify_one(); }

  /// Wake every waiter (state transitions all waiters must observe, e.g.
  /// shutdown).
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rla
