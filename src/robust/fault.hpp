#pragma once

// Deterministic fault-injection harness.
//
// A small set of *named sites* is compiled into the hot paths permanently
// (driver allocations, pool thread creation, task bodies, leaf kernels).
// Each site costs one relaxed atomic load when no plan is armed, so release
// builds carry the instrumentation at zero practical cost, and the same
// binary that serves traffic can be fault-tested.
//
// A FaultPlan arms per-site triggers: "fail the Nth hit" (deterministic,
// 1-based) or "fail with probability p" (seeded, deterministic per seed).
// Plans come from three places:
//   * tests:      fault::ScopedPlan guard(plan);
//   * GemmConfig: cfg.fault_spec = "alloc.tiled:nth=1";
//   * the environment: RLA_FAULT="pool.thread_create:nth=2;seed=7"
//     (parsed once, armed lazily the first time the driver runs).
//
// Spec grammar (';'-separated clauses):
//   <site>:nth=<N>   fail the N-th hit of <site> (one-shot)
//   <site>:p=<F>     fail each hit independently with probability F
//   seed=<N>         seed for the probabilistic triggers (default 0)
// Sites: the RLA_FAULT_SITE_LIST X-macro below is the single registry of
// record (enum, name table and kSiteCount are all generated from it).
//
// Probabilistic triggers are *stateless*: the decision for hit i of site s is
// a pure function of (seed, s, i), so a plan produces the same fault pattern
// regardless of how concurrent requests interleave their hits — the property
// the service-layer soak harness relies on for reproducible chaos schedules.
//
// Hit counters accumulate only while a plan is armed; hits() lets tests
// assert how often a site was even *reached* (e.g. that cancellation pruned
// the recursion).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace rla::fault {

/// The canonical site list: one X-macro row per site generates the enum, the
/// name table and kSiteCount, so the three cannot drift apart. rla_lint's C2
/// checker reads this list as the registry of record — every site literal in
/// a fault spec anywhere in the tree must resolve here, and every row must
/// have a live should_fail/maybe_fail_* call site.
///
///   X(enumerator, "spec-name")
#define RLA_FAULT_SITE_LIST(X)                                                 \
  X(AllocTiled, "alloc.tiled")   /* gemm driver's tiled-storage allocation */  \
  X(AllocTemp, "alloc.temp")     /* recursion temporaries */                   \
  X(PoolThreadCreate, "pool.thread_create") /* worker-thread creation */       \
  X(TaskThrow, "task.throw")     /* recursive multiply task body */            \
  X(KernelCorrupt, "kernel.corrupt") /* leaf kernel output corruption */       \
  X(KernelFpe, "kernel.fpe")     /* leaf kernel FE_INVALID, NaN output */      \
  X(PerfOpen, "perf.open")       /* perf_event_open counter-group setup */     \
  X(ServiceStall, "service.stall") /* GemmService request execution stalls */

/// Named injection sites, generated from RLA_FAULT_SITE_LIST.
enum class Site : std::uint8_t {
#define RLA_FAULT_SITE_ENUM(sym, name) sym,
  RLA_FAULT_SITE_LIST(RLA_FAULT_SITE_ENUM)
#undef RLA_FAULT_SITE_ENUM
};

/// Spec-grammar names, indexed by static_cast<int>(Site).
inline constexpr std::string_view kSiteNames[] = {
#define RLA_FAULT_SITE_NAME(sym, name) name,
    RLA_FAULT_SITE_LIST(RLA_FAULT_SITE_NAME)
#undef RLA_FAULT_SITE_NAME
};

inline constexpr int kSiteCount =
    static_cast<int>(sizeof(kSiteNames) / sizeof(kSiteNames[0]));

// Both expansions above consumed the same list, so the enum and the name
// table agree by construction; this pins the invariant against a manual edit
// of either generated artifact.
static_assert(static_cast<int>(Site::ServiceStall) == kSiteCount - 1,
              "Site enum and kSiteNames must be generated from "
              "RLA_FAULT_SITE_LIST");

std::string_view site_name(Site s) noexcept;
bool parse_site(std::string_view text, Site& out) noexcept;

/// Per-site trigger. Inactive by default.
struct Trigger {
  enum class Mode : std::uint8_t { Off, Nth, Probability };
  Mode mode = Mode::Off;
  std::uint64_t nth = 0;  ///< 1-based hit index that fails (Mode::Nth)
  double probability = 0.0;
};

/// A full plan: one trigger per site plus the seed for probabilistic ones.
struct FaultPlan {
  Trigger triggers[kSiteCount];
  std::uint64_t seed = 0;

  Trigger& at(Site s) noexcept { return triggers[static_cast<int>(s)]; }
  const Trigger& at(Site s) const noexcept {
    return triggers[static_cast<int>(s)];
  }
  bool empty() const noexcept;
};

/// Parse a spec string (grammar above) into `out`. Returns false (leaving
/// `out` unspecified) on malformed input; `error` receives a diagnostic.
/// Rejects — never clamps — out-of-domain triggers: negative or > 1
/// probabilities (including NaN and signed zeros of either sign outside
/// [0, 1]) and counts that are not plain non-negative decimal integers.
bool parse_plan(std::string_view spec, FaultPlan& out, std::string* error = nullptr);

/// parse_plan or throw rla::Error{ErrorKind::Config} carrying the diagnostic
/// (the form ScopedPlan and arm_from_env use).
FaultPlan parse_plan_or_throw(std::string_view spec);

/// Arm `plan` process-wide (replacing any armed plan) / disarm entirely.
/// Counters reset on every arm().
void arm(const FaultPlan& plan);
void disarm() noexcept;

/// Arm from the RLA_FAULT environment variable if it is set and non-empty.
/// Called lazily (once) by the gemm driver; safe to call repeatedly.
void arm_from_env();

/// Hits recorded for `s` since the last arm() (0 when never armed).
std::uint64_t hits(Site s) noexcept;

namespace detail {
extern std::atomic<bool> g_armed;
bool should_fail_slow(Site s) noexcept;
}  // namespace detail

/// Fast-path query: false immediately when no plan is armed.
inline bool should_fail(Site s) noexcept {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::should_fail_slow(s);
}

/// should_fail(s) and throw std::bad_alloc on a hit (allocation sites).
void maybe_fail_alloc(Site s);

/// should_fail(s) and throw rla::Error{Kind::TaskFailure} on a hit.
void maybe_fail_task(Site s);

/// should_fail(s) and throw std::system_error(EAGAIN) on a hit (mimics
/// std::thread's resource_unavailable_try_again failure mode).
void maybe_fail_thread_create(Site s);

/// RAII arm/disarm for tests and for GemmConfig::fault_spec.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan& plan) { arm(plan); }
  explicit ScopedPlan(std::string_view spec);
  ~ScopedPlan() { disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace rla::fault
