#pragma once

// Structured error taxonomy for the gemm stack.
//
// rla::Error carries what a service operator needs to triage a failed
// multiply without a debugger: the *kind* of failure, the *site* (an
// injection-site name or a driver location), the problem dimensions, and the
// degradation trail the driver walked before giving up. what() renders all
// of it into one line.
//
// Argument validation keeps throwing std::invalid_argument (the established
// contract); Error is for failures of execution, not of calling convention.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rla {

enum class ErrorKind : std::uint8_t {
  Allocation,          ///< storage could not be obtained, even degraded
  ThreadCreate,        ///< no worker thread could be created at all
  TaskFailure,         ///< a task body threw (includes injected task.throw)
  VerificationFailed,  ///< Freivalds check failed even after the rerun
  Cancelled,           ///< cooperative cancellation (deadline, shutdown)
  Config,              ///< malformed runtime configuration (fault specs, env)
};

inline std::string_view error_kind_name(ErrorKind k) noexcept {
  switch (k) {
    case ErrorKind::Allocation:
      return "allocation";
    case ErrorKind::ThreadCreate:
      return "thread-create";
    case ErrorKind::TaskFailure:
      return "task-failure";
    case ErrorKind::VerificationFailed:
      return "verification-failed";
    case ErrorKind::Cancelled:
      return "cancelled";
    case ErrorKind::Config:
      return "config";
  }
  return "?";
}

/// Problem dimensions attached to an Error (0 = not applicable).
struct ErrorDims {
  std::uint32_t m = 0, n = 0, k = 0;
};

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string site, std::string detail, ErrorDims dims = {},
        std::vector<std::string> trail = {})
      : std::runtime_error(format(kind, site, detail, dims, trail)),
        kind_(kind),
        site_(std::move(site)),
        detail_(std::move(detail)),
        dims_(dims),
        trail_(std::move(trail)) {}

  ErrorKind kind() const noexcept { return kind_; }
  const std::string& site() const noexcept { return site_; }
  const std::string& detail() const noexcept { return detail_; }
  ErrorDims dims() const noexcept { return dims_; }
  /// Degradation steps the driver attempted before this error, oldest first.
  const std::vector<std::string>& trail() const noexcept { return trail_; }

 private:
  static std::string format(ErrorKind kind, const std::string& site,
                            const std::string& detail, ErrorDims dims,
                            const std::vector<std::string>& trail) {
    std::string out("rla: ");
    out += error_kind_name(kind);
    out += " at ";
    out += site;
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    if (dims.m != 0 || dims.n != 0 || dims.k != 0) {
      out += " [m=" + std::to_string(dims.m) + " n=" + std::to_string(dims.n) +
             " k=" + std::to_string(dims.k) + "]";
    }
    if (!trail.empty()) {
      out += " (degradation trail:";
      for (const std::string& step : trail) {
        out += ' ';
        out += step;
      }
      out += ')';
    }
    return out;
  }

  ErrorKind kind_;
  std::string site_;
  std::string detail_;
  ErrorDims dims_;
  std::vector<std::string> trail_;
};

}  // namespace rla
