#pragma once

// Freivalds randomized verification of C ← α·op(A)·op(B) + β·C₀.
//
// Each probe draws a deterministic ±1 vector x and checks
//
//   C_new·x  ≈  α·op(A)·(op(B)·x) + β·(C₀·x)
//
// in O(mn + mk + kn) flops — asymptotically free next to the O(n³)-ish
// multiply it guards. A wrong product escapes one probe with probability
// ≤ 1/2, so a handful of probes give high confidence; this is the cheap
// correctness check that lets the driver run Strassen/Winograd (whose error
// bounds are weaker than classical gemm's) and fall back to the standard
// algorithm automatically when a run looks wrong.
//
// Because verification needs β·C₀·x but the multiply destroys C₀, the check
// is split into two halves: construct + capture() *before* the multiply,
// check() after.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rla {

struct VerifyResult {
  int probes = 0;
  bool ok = true;
  /// Largest elementwise residual observed, scaled by the local magnitude
  /// (so 1.0 means "off by as much as the data itself").
  double max_scaled_residual = 0.0;
};

class FreivaldsCheck {
 public:
  /// Prepare `probes` ±1 probe vectors of length n, seeded deterministically.
  FreivaldsCheck(std::uint32_t m, std::uint32_t n, int probes, std::uint64_t seed);

  /// Record β·C₀·x for every probe. Call before the multiply overwrites C;
  /// cheap no-op when beta == 0.
  void capture(const double* c, std::size_t ldc, double beta);

  /// Check the finished C against the captured state. `tolerance` is the
  /// allowed scaled residual per element (e.g. 1e-6).
  VerifyResult check(std::uint32_t k, double alpha, const double* a,
                     std::size_t lda, bool a_trans, const double* b,
                     std::size_t ldb, bool b_trans, const double* c,
                     std::size_t ldc, double tolerance) const;

 private:
  std::uint32_t m_, n_;
  int probes_;
  std::vector<double> x_;   ///< probes_ × n_ probe vectors, concatenated
  std::vector<double> y0_;  ///< probes_ × m_ captured β·C₀·x (zeros if β = 0)
};

}  // namespace rla
