#include "robust/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <new>
#include <system_error>

#include "robust/error.hpp"
#include "support/sync.hpp"
#include "util/env.hpp"

namespace rla::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct Registry {
  Mutex mutex;  // lock-level: registry
  FaultPlan plan RLA_GUARDED_BY(mutex);
  std::atomic<std::uint64_t> hit_counts[kSiteCount] = {};
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

std::string_view site_name(Site s) noexcept {
  const int i = static_cast<int>(s);
  return (i >= 0 && i < kSiteCount) ? kSiteNames[i] : "?";
}

bool parse_site(std::string_view text, Site& out) noexcept {
  for (int i = 0; i < kSiteCount; ++i) {
    if (text == kSiteNames[i]) {
      out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

bool FaultPlan::empty() const noexcept {
  for (const Trigger& t : triggers) {
    if (t.mode != Trigger::Mode::Off) return false;
  }
  return true;
}

namespace {

bool fail_parse(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  // strtoull silently negates "-1" into 2^64-1; insist on plain digits so a
  // negative count is a parse error, not an astronomically large trigger.
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const std::string buf(text);
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(std::string_view text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string buf(text);
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

bool parse_plan(std::string_view spec, FaultPlan& out, std::string* error) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t sep = spec.find(';', pos);
    if (sep == std::string_view::npos) sep = spec.size();
    std::string_view clause = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (clause.empty()) continue;

    if (clause.substr(0, 5) == "seed=") {
      if (!parse_u64(clause.substr(5), plan.seed)) {
        return fail_parse(error, "bad seed clause: " + std::string(clause));
      }
      continue;
    }
    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      return fail_parse(error, "missing ':' in clause: " + std::string(clause));
    }
    Site site;
    if (!parse_site(clause.substr(0, colon), site)) {
      return fail_parse(error,
                        "unknown site: " + std::string(clause.substr(0, colon)));
    }
    const std::string_view trigger = clause.substr(colon + 1);
    Trigger& t = plan.at(site);
    if (trigger.substr(0, 4) == "nth=") {
      std::uint64_t n = 0;
      if (!parse_u64(trigger.substr(4), n) || n == 0) {
        return fail_parse(error, "bad nth trigger: " + std::string(clause));
      }
      t.mode = Trigger::Mode::Nth;
      t.nth = n;
    } else if (trigger.substr(0, 2) == "p=") {
      double p = 0.0;
      // The negated-domain form would let NaN slip through (NaN < 0 and
      // NaN > 1 are both false); require membership in [0, 1] instead.
      if (!parse_double(trigger.substr(2), p) || !(p >= 0.0 && p <= 1.0)) {
        return fail_parse(error, "bad probability trigger: " + std::string(clause));
      }
      t.mode = Trigger::Mode::Probability;
      t.probability = p;
    } else {
      return fail_parse(error, "unknown trigger in clause: " + std::string(clause));
    }
  }
  out = plan;
  return true;
}

void arm(const FaultPlan& plan) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  r.plan = plan;
  for (auto& count : r.hit_counts) count.store(0, std::memory_order_relaxed);
  detail::g_armed.store(!plan.empty(), std::memory_order_release);
}

void disarm() noexcept {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  detail::g_armed.store(false, std::memory_order_release);
  r.plan = FaultPlan{};
}

FaultPlan parse_plan_or_throw(std::string_view spec) {
  FaultPlan plan;
  std::string error;
  if (!parse_plan(spec, plan, &error)) {
    throw Error(ErrorKind::Config, "fault.spec", error);
  }
  return plan;
}

void arm_from_env() {
  static const bool done = [] {
    const std::string spec = env_string("RLA_FAULT");
    if (spec.empty()) return true;
    arm(parse_plan_or_throw(spec));
    return true;
  }();
  (void)done;
}

std::uint64_t hits(Site s) noexcept {
  return registry().hit_counts[static_cast<int>(s)].load(std::memory_order_relaxed);
}

namespace detail {

/// SplitMix64 finalizer: the uniform deviate for hit `hit` of site `s` under
/// `seed`. Stateless, so concurrent requests hammering different sites cannot
/// perturb each other's fault pattern — only the per-site hit numbering
/// (already an atomic counter) orders the decisions.
double site_deviate(std::uint64_t seed, Site s, std::uint64_t hit) noexcept {
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (hit + 1)) ^
                    (static_cast<std::uint64_t>(s) << 56);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool should_fail_slow(Site s) noexcept {
  Registry& r = registry();
  const std::uint64_t hit =
      1 + r.hit_counts[static_cast<int>(s)].fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(r.mutex);
  const Trigger& t = r.plan.at(s);
  switch (t.mode) {
    case Trigger::Mode::Off:
      return false;
    case Trigger::Mode::Nth:
      return hit == t.nth;
    case Trigger::Mode::Probability:
      return site_deviate(r.plan.seed, s, hit) < t.probability;
  }
  return false;
}

}  // namespace detail

void maybe_fail_alloc(Site s) {
  if (should_fail(s)) throw std::bad_alloc();
}

void maybe_fail_task(Site s) {
  if (should_fail(s)) {
    throw Error(ErrorKind::TaskFailure, std::string(site_name(s)),
                "injected task failure");
  }
}

void maybe_fail_thread_create(Site s) {
  if (should_fail(s)) {
    throw std::system_error(
        std::make_error_code(std::errc::resource_unavailable_try_again),
        "injected thread-creation failure");
  }
}

ScopedPlan::ScopedPlan(std::string_view spec) { arm(parse_plan_or_throw(spec)); }

}  // namespace rla::fault
