#include "robust/verify.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace rla {

namespace {

/// y ← op(M)·x for an r×c op(M) over column-major storage (r rows after op).
void matvec(std::vector<double>& y, const double* mat, std::size_t ld, bool trans,
            std::uint32_t rows, std::uint32_t cols, const double* x) {
  y.assign(rows, 0.0);
  if (!trans) {
    // op(M)(i, j) = mat[i + j·ld]: accumulate column by column.
    for (std::uint32_t j = 0; j < cols; ++j) {
      const double xj = x[j];
      const double* col = mat + static_cast<std::size_t>(j) * ld;
      for (std::uint32_t i = 0; i < rows; ++i) y[i] += col[i] * xj;
    }
  } else {
    // op(M)(i, j) = mat[j + i·ld]: each y_i is a dot with stored column i.
    for (std::uint32_t i = 0; i < rows; ++i) {
      const double* col = mat + static_cast<std::size_t>(i) * ld;
      double acc = 0.0;
      for (std::uint32_t j = 0; j < cols; ++j) acc += col[j] * x[j];
      y[i] = acc;
    }
  }
}

}  // namespace

FreivaldsCheck::FreivaldsCheck(std::uint32_t m, std::uint32_t n, int probes,
                               std::uint64_t seed)
    : m_(m), n_(n), probes_(probes < 1 ? 1 : probes) {
  Xoshiro256 rng(seed ^ 0x4672656976616c64ULL);  // "Freivald"
  x_.resize(static_cast<std::size_t>(probes_) * n_);
  for (double& v : x_) v = (rng.next_u64() & 1) != 0 ? 1.0 : -1.0;
  y0_.assign(static_cast<std::size_t>(probes_) * m_, 0.0);
}

void FreivaldsCheck::capture(const double* c, std::size_t ldc, double beta) {
  if (beta == 0.0) return;
  std::vector<double> y;
  for (int p = 0; p < probes_; ++p) {
    matvec(y, c, ldc, false, m_, n_, x_.data() + static_cast<std::size_t>(p) * n_);
    double* dst = y0_.data() + static_cast<std::size_t>(p) * m_;
    for (std::uint32_t i = 0; i < m_; ++i) dst[i] = beta * y[i];
  }
}

VerifyResult FreivaldsCheck::check(std::uint32_t k, double alpha, const double* a,
                                   std::size_t lda, bool a_trans, const double* b,
                                   std::size_t ldb, bool b_trans, const double* c,
                                   std::size_t ldc, double tolerance) const {
  VerifyResult result;
  result.probes = probes_;
  std::vector<double> t, u, v;
  for (int p = 0; p < probes_; ++p) {
    const double* x = x_.data() + static_cast<std::size_t>(p) * n_;
    const double* y0 = y0_.data() + static_cast<std::size_t>(p) * m_;
    matvec(t, b, ldb, b_trans, k, n_, x);           // t = op(B)·x
    matvec(u, a, lda, a_trans, m_, k, t.data());    // u = op(A)·t
    matvec(v, c, ldc, false, m_, n_, x);            // v = C_new·x
    for (std::uint32_t i = 0; i < m_; ++i) {
      const double expect = alpha * u[i] + y0[i];
      const double residual = std::abs(v[i] - expect);
      const double scale = 1.0 + std::abs(v[i]) + std::abs(alpha * u[i]) +
                           std::abs(y0[i]);
      const double scaled = residual / scale;
      if (scaled > result.max_scaled_residual) result.max_scaled_residual = scaled;
      if (scaled > tolerance) result.ok = false;
    }
  }
  return result;
}

}  // namespace rla
