#pragma once

// Recursive LU factorization (no pivoting) over the recursive layouts —
// the second classic recursion-as-variable-blocking factorization from
// Gustavson (paper ref. [16]).
//
//   A = L·U, L unit lower triangular, U upper triangular, packed in place:
//
//   [A11 A12]   [L11   0 ] [U11 U12]
//   [A21 A22] = [L21  L22] [ 0  U22]
//
//   lu(A11);  A12 ← L11⁻¹·A12 (left TRSM, unit lower);
//   A21 ← A21·U11⁻¹ (right TRSM, upper);  A22 ← A22 − A21·A12 (gemm);
//   lu(A22)
//
// Without pivoting the factorization requires nonzero leading principal
// minors; it is unconditionally stable for (strictly) diagonally dominant
// and for symmetric positive definite matrices. The driver throws
// std::domain_error on a zero pivot.

#include <cstddef>
#include <cstdint>

#include "linalg/cholesky.hpp"  // CholeskyConfig-style config + MulContext

namespace rla {

using LuConfig = CholeskyConfig;  ///< same knobs: layout, tiles, pool, kernel
using LuProfile = CholeskyProfile;

/// Factor the n×n column-major matrix `a` (leading dimension lda) in place
/// into L·U (unit-diagonal L below, U on and above the diagonal). No
/// pivoting — see the header comment for the applicability conditions.
void lu_nopivot(std::uint32_t n, double* a, std::size_t lda,
                const LuConfig& cfg = {}, LuProfile* profile = nullptr);

// ---- building blocks, exposed for tests ----

/// X ← L⁻¹·X where L is the *unit* lower triangle of an equal-level square
/// block (the stored diagonal is ignored and treated as 1).
void trsm_left_unit_lower(const MulContext& ctx, const TiledBlock& x,
                          const TiledBlock& l);

/// X ← X·U⁻¹ where U is the upper triangle of an equal-level square block
/// (non-unit diagonal).
void trsm_right_upper(const MulContext& ctx, const TiledBlock& x,
                      const TiledBlock& u);

/// In-place recursive LU (no pivoting) of a square tiled block.
void lu_block(const MulContext& ctx, const TiledBlock& a);

/// Reference unblocked LU without pivoting (test oracle). Returns false on
/// a zero pivot.
bool reference_lu_nopivot(std::uint32_t n, double* a, std::size_t lda) noexcept;

}  // namespace rla
