#include "linalg/lu.hpp"

#include <array>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "analysis/numerics/error_bound.hpp"
#include "core/kernels.hpp"
#include "layout/convert.hpp"
#include "util/timer.hpp"

namespace rla {

namespace {

/// max |a_ij| over the full n×n matrix.
double max_abs(std::uint32_t n, const double* a, std::size_t lda) noexcept {
  double m = 0.0;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const double v = std::fabs(a[static_cast<std::size_t>(j) * lda + i]);
      if (v > m) m = v;
    }
  }
  return m;
}

/// Unblocked right-looking LU without pivoting on a t×t column-major tile.
bool leaf_lu(std::uint32_t t, double* a, std::size_t lda) noexcept {
  for (std::uint32_t k = 0; k < t; ++k) {
    double* col_k = a + static_cast<std::size_t>(k) * lda;
    const double pivot = col_k[k];
    if (pivot == 0.0) return false;
    const double inv = 1.0 / pivot;
    for (std::uint32_t i = k + 1; i < t; ++i) col_k[i] *= inv;
    for (std::uint32_t j = k + 1; j < t; ++j) {
      double* col_j = a + static_cast<std::size_t>(j) * lda;
      const double akj = col_j[k];
      if (akj == 0.0) continue;
      for (std::uint32_t i = k + 1; i < t; ++i) col_j[i] -= col_k[i] * akj;
    }
  }
  return true;
}

/// X (t×n tile block) ← L⁻¹·X for a unit lower-triangular t×t tile.
void leaf_trsm_llu(std::uint32_t t, std::uint32_t n, double* x, std::size_t ldx,
                   const double* l, std::size_t ldl) noexcept {
  for (std::uint32_t j = 0; j < n; ++j) {
    double* xj = x + static_cast<std::size_t>(j) * ldx;
    for (std::uint32_t k = 0; k < t; ++k) {
      const double xkj = xj[k];
      if (xkj == 0.0) continue;
      const double* lk = l + static_cast<std::size_t>(k) * ldl;
      for (std::uint32_t i = k + 1; i < t; ++i) xj[i] -= lk[i] * xkj;
    }
  }
}

/// X (m×t) ← X·U⁻¹ for an upper-triangular t×t tile (non-unit diagonal).
void leaf_trsm_ru(std::uint32_t m, std::uint32_t t, double* x, std::size_t ldx,
                  const double* u, std::size_t ldu) noexcept {
  for (std::uint32_t j = 0; j < t; ++j) {
    double* xj = x + static_cast<std::size_t>(j) * ldx;
    const double* uj = u + static_cast<std::size_t>(j) * ldu;
    for (std::uint32_t k = 0; k < j; ++k) {
      const double ukj = uj[k];
      if (ukj == 0.0) continue;
      const double* xk = x + static_cast<std::size_t>(k) * ldx;
      for (std::uint32_t i = 0; i < m; ++i) xj[i] -= xk[i] * ukj;
    }
    const double inv = 1.0 / uj[j];
    for (std::uint32_t i = 0; i < m; ++i) xj[i] *= inv;
  }
}

bool spawn_here(const MulContext& ctx, int level) {
  return !ctx.pool->serial() && level >= ctx.spawn_min_level;
}

template <typename F>
void fork(TaskGroup& group, bool parallel, F&& f) {
  if (parallel) {
    group.spawn(std::forward<F>(f));
  } else {
    f();
  }
}

/// C += alpha·A·B on equal-level tiled blocks (two accumulating phases).
void mul_nn(const MulContext& ctx, double alpha, const TiledBlock& c,
            const TiledBlock& a, const TiledBlock& b) {
  if (c.level == 0) {
    leaf_mm(ctx.kernel, c.geom->tile_rows, c.geom->tile_cols, a.geom->tile_cols,
            alpha, a.tile(), a.geom->tile_rows, b.tile(), b.geom->tile_rows,
            c.tile(), c.geom->tile_rows);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);
  {
    TaskGroup group(*ctx.pool);
    fork(group, par, [&] { mul_nn(ctx, alpha, c11, a11, b11); });
    fork(group, par, [&] { mul_nn(ctx, alpha, c12, a11, b12); });
    fork(group, par, [&] { mul_nn(ctx, alpha, c21, a21, b11); });
    fork(group, par, [&] { mul_nn(ctx, alpha, c22, a21, b12); });
    group.wait();
  }
  TaskGroup group(*ctx.pool);
  fork(group, par, [&] { mul_nn(ctx, alpha, c11, a12, b21); });
  fork(group, par, [&] { mul_nn(ctx, alpha, c12, a12, b22); });
  fork(group, par, [&] { mul_nn(ctx, alpha, c21, a22, b21); });
  fork(group, par, [&] { mul_nn(ctx, alpha, c22, a22, b22); });
  group.wait();
}

}  // namespace

void trsm_left_unit_lower(const MulContext& ctx, const TiledBlock& x,
                          const TiledBlock& l) {
  if (x.level == 0) {
    leaf_trsm_llu(x.geom->tile_rows, x.geom->tile_cols, x.tile(),
                  x.geom->tile_rows, l.tile(), l.geom->tile_rows);
    return;
  }
  const bool par = spawn_here(ctx, x.level);
  const TiledBlock l11 = l.quadrant(kNW), l21 = l.quadrant(kSW);
  const TiledBlock l22 = l.quadrant(kSE);
  TaskGroup group(*ctx.pool);
  // Column blocks of X are independent.
  for (const int col : {0, 1}) {
    const TiledBlock x1 = x.quadrant(col == 0 ? kNW : kNE);
    const TiledBlock x2 = x.quadrant(col == 0 ? kSW : kSE);
    fork(group, par, [&ctx, x1, x2, l11, l21, l22] {
      trsm_left_unit_lower(ctx, x1, l11);
      mul_nn(ctx, -1.0, x2, l21, x1);
      trsm_left_unit_lower(ctx, x2, l22);
    });
  }
  group.wait();
}

void trsm_right_upper(const MulContext& ctx, const TiledBlock& x,
                      const TiledBlock& u) {
  if (x.level == 0) {
    leaf_trsm_ru(x.geom->tile_rows, x.geom->tile_cols, x.tile(),
                 x.geom->tile_rows, u.tile(), u.geom->tile_rows);
    return;
  }
  const bool par = spawn_here(ctx, x.level);
  const TiledBlock u11 = u.quadrant(kNW), u12 = u.quadrant(kNE);
  const TiledBlock u22 = u.quadrant(kSE);
  TaskGroup group(*ctx.pool);
  // Row blocks of X are independent.
  for (const int row : {0, 1}) {
    const TiledBlock x1 = x.quadrant(row == 0 ? kNW : kSW);
    const TiledBlock x2 = x.quadrant(row == 0 ? kNE : kSE);
    fork(group, par, [&ctx, x1, x2, u11, u12, u22] {
      trsm_right_upper(ctx, x1, u11);
      mul_nn(ctx, -1.0, x2, x1, u12);
      trsm_right_upper(ctx, x2, u22);
    });
  }
  group.wait();
}

void lu_block(const MulContext& ctx, const TiledBlock& a) {
  if (a.level == 0) {
    if (!leaf_lu(a.geom->tile_rows, a.tile(), a.geom->tile_rows)) {
      throw std::domain_error("lu_nopivot: zero pivot encountered");
    }
    return;
  }
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  lu_block(ctx, a11);
  {
    // The two panel solves are independent of each other.
    TaskGroup group(*ctx.pool);
    const bool par = spawn_here(ctx, a.level);
    fork(group, par, [&] { trsm_left_unit_lower(ctx, a12, a11); });
    fork(group, par, [&] { trsm_right_upper(ctx, a21, a11); });
    group.wait();
  }
  mul_nn(ctx, -1.0, a22, a21, a12);
  lu_block(ctx, a22);
}

bool reference_lu_nopivot(std::uint32_t n, double* a, std::size_t lda) noexcept {
  return leaf_lu(n, a, lda);
}

void lu_nopivot(std::uint32_t n, double* a, std::size_t lda, const LuConfig& cfg,
                LuProfile* profile) {
  if (a == nullptr || lda < n) throw std::invalid_argument("lu: bad A/lda");
  if (!is_recursive(cfg.layout)) {
    throw std::invalid_argument("lu: layout must be a recursive curve");
  }
  if (n == 0) return;
  if (profile != nullptr) *profile = LuProfile{};
  Timer total;
  const double max_in = profile != nullptr ? max_abs(n, a, lda) : 0.0;

  std::optional<WorkerPool> owned;
  WorkerPool* pool = cfg.pool;
  if (pool == nullptr) {
    owned.emplace(cfg.threads <= 1 ? 0u : cfg.threads);
    pool = &*owned;
  }

  const std::array<std::uint64_t, 1> dims{n};
  const auto depth = common_depth(dims, cfg.tiles);
  if (!depth) throw std::invalid_argument("lu: no feasible tile depth");
  const TileGeometry g = make_geometry(n, n, *depth, cfg.layout);
  TiledMatrix ta(g);

  Timer timer;
  const std::uint64_t tiles = g.tile_count();
  const std::uint64_t grain =
      std::max<std::uint64_t>(1, tiles / (8 * (pool->thread_count() + 1)));
  pool->parallel_for(0, tiles, grain, [&](std::uint64_t s0, std::uint64_t s1) {
    canonical_to_tiled(a, lda, false, 1.0, g, ta.data(), s0, s1);
  });
  // Identity on the padded diagonal keeps the padded pivots nonzero.
  for (std::uint32_t i = n; i < g.padded_rows(); ++i) ta.at(i, i) = 1.0;
  const double conv_in = timer.seconds();

  timer.reset();
  MulContext ctx;
  ctx.kernel = cfg.kernel;
  ctx.pool = pool;
  lu_block(ctx, ta.root());
  const double compute = timer.seconds();

  timer.reset();
  pool->parallel_for(0, tiles, grain, [&](std::uint64_t s0, std::uint64_t s1) {
    tiled_to_canonical(ta.data(), g, a, lda, s0, s1);
  });
  if (profile != nullptr) {
    profile->convert_in = conv_in;
    profile->compute = compute;
    profile->convert_out = timer.seconds();
    profile->total = total.seconds();
    profile->depth = g.depth;
    profile->tile = g.tile_rows;
    // Without pivoting the element growth ρ = max|L,U| / max|A| is the whole
    // stability story (Higham §9.3): the residual bound scales linearly in
    // it, and it is unbounded for general matrices.
    const double max_lu = max_abs(n, a, lda);
    profile->growth_factor = max_in > 0.0 ? max_lu / max_in : 0.0;
    profile->error_bound = numerics::factorization_bound(n, profile->growth_factor);
  }
}

}  // namespace rla
