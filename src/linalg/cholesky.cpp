#include "linalg/cholesky.hpp"

#include <array>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "analysis/numerics/error_bound.hpp"
#include "core/gemm.hpp"
#include "core/kernels.hpp"
#include "layout/convert.hpp"
#include "util/timer.hpp"

namespace rla {

namespace {

/// max |a_ij| over the lower triangle (the part the factorizations touch).
double max_abs_lower(std::uint32_t n, const double* a, std::size_t lda) noexcept {
  double m = 0.0;
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = j; i < n; ++i) {
      const double v = std::fabs(a[static_cast<std::size_t>(j) * lda + i]);
      if (v > m) m = v;
    }
  }
  return m;
}

// ---- leaf kernels on contiguous column-major tiles ----

/// C (m×n, ldc) += alpha * A (m×k, lda) · Bᵀ where B is n×k (ldb).
void leaf_mm_nt(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc) noexcept {
  for (std::uint32_t j = 0; j < n; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    for (std::uint32_t l = 0; l < k; ++l) {
      const double bjl = alpha * b[static_cast<std::size_t>(l) * ldb + j];
      const double* al = a + static_cast<std::size_t>(l) * lda;
      for (std::uint32_t i = 0; i < m; ++i) cj[i] += al[i] * bjl;
    }
  }
}

/// Unblocked Cholesky of a t×t column-major tile (lower triangle; strict
/// upper left untouched). Returns false on a non-positive pivot.
bool leaf_potrf(std::uint32_t t, double* a, std::size_t lda) noexcept {
  for (std::uint32_t j = 0; j < t; ++j) {
    double* col_j = a + static_cast<std::size_t>(j) * lda;
    double diag = col_j[j];
    for (std::uint32_t k = 0; k < j; ++k) {
      const double ajk = a[static_cast<std::size_t>(k) * lda + j];
      diag -= ajk * ajk;
    }
    if (!(diag > 0.0)) return false;
    const double ljj = std::sqrt(diag);
    col_j[j] = ljj;
    const double inv = 1.0 / ljj;
    for (std::uint32_t i = j + 1; i < t; ++i) {
      double v = col_j[i];
      for (std::uint32_t k = 0; k < j; ++k) {
        v -= a[static_cast<std::size_t>(k) * lda + i] *
             a[static_cast<std::size_t>(k) * lda + j];
      }
      col_j[i] = v * inv;
    }
  }
  return true;
}

/// X (m×t) ← X · L⁻ᵀ for a t×t lower-triangular tile L: column-oriented
/// forward substitution over X's columns.
void leaf_trsm_rlt(std::uint32_t m, std::uint32_t t, double* x, std::size_t ldx,
                   const double* l, std::size_t ldl) noexcept {
  for (std::uint32_t j = 0; j < t; ++j) {
    double* xj = x + static_cast<std::size_t>(j) * ldx;
    for (std::uint32_t k = 0; k < j; ++k) {
      const double ljk = l[static_cast<std::size_t>(k) * ldl + j];
      if (ljk == 0.0) continue;
      const double* xk = x + static_cast<std::size_t>(k) * ldx;
      for (std::uint32_t i = 0; i < m; ++i) xj[i] -= xk[i] * ljk;
    }
    const double inv = 1.0 / l[static_cast<std::size_t>(j) * ldl + j];
    for (std::uint32_t i = 0; i < m; ++i) xj[i] *= inv;
  }
}

bool spawn_here(const MulContext& ctx, int level) {
  return !ctx.pool->serial() && level >= ctx.spawn_min_level;
}

template <typename F>
void fork(TaskGroup& group, bool parallel, F&& f) {
  if (parallel) {
    group.spawn(std::forward<F>(f));
  } else {
    f();
  }
}

}  // namespace

void mul_nt(const MulContext& ctx, double alpha, const TiledBlock& c,
            const TiledBlock& a, const TiledBlock& b) {
  if (c.level == 0) {
    leaf_mm_nt(c.geom->tile_rows, c.geom->tile_cols, a.geom->tile_cols, alpha,
               a.tile(), a.geom->tile_rows, b.tile(), b.geom->tile_rows,
               c.tile(), c.geom->tile_rows);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);
  // C_ij += alpha Σ_k A_ik (B_jk)ᵀ, two accumulating phases of four.
  {
    TaskGroup group(*ctx.pool);
    fork(group, par, [&] { mul_nt(ctx, alpha, c11, a11, b11); });
    fork(group, par, [&] { mul_nt(ctx, alpha, c12, a11, b21); });
    fork(group, par, [&] { mul_nt(ctx, alpha, c21, a21, b11); });
    fork(group, par, [&] { mul_nt(ctx, alpha, c22, a21, b21); });
    group.wait();
  }
  TaskGroup group(*ctx.pool);
  fork(group, par, [&] { mul_nt(ctx, alpha, c11, a12, b12); });
  fork(group, par, [&] { mul_nt(ctx, alpha, c12, a12, b22); });
  fork(group, par, [&] { mul_nt(ctx, alpha, c21, a22, b12); });
  fork(group, par, [&] { mul_nt(ctx, alpha, c22, a22, b22); });
  group.wait();
}

void trsm_right_lower_transposed(const MulContext& ctx, const TiledBlock& x,
                                 const TiledBlock& l) {
  if (x.level == 0) {
    leaf_trsm_rlt(x.geom->tile_rows, x.geom->tile_cols, x.tile(),
                  x.geom->tile_rows, l.tile(), l.geom->tile_rows);
    return;
  }
  const bool par = spawn_here(ctx, x.level);
  const TiledBlock l11 = l.quadrant(kNW), l21 = l.quadrant(kSW);
  const TiledBlock l22 = l.quadrant(kSE);
  TaskGroup group(*ctx.pool);
  // The two row-blocks of X solve independently against the same L.
  for (const int row : {0, 1}) {
    const TiledBlock x1 = x.quadrant(row == 0 ? kNW : kSW);
    const TiledBlock x2 = x.quadrant(row == 0 ? kNE : kSE);
    fork(group, par, [&ctx, x1, x2, l11, l21, l22] {
      trsm_right_lower_transposed(ctx, x1, l11);
      mul_nt(ctx, -1.0, x2, x1, l21);
      trsm_right_lower_transposed(ctx, x2, l22);
    });
  }
  group.wait();
}

void syrk_lower_update(const MulContext& ctx, const TiledBlock& c,
                       const TiledBlock& a) {
  if (c.level == 0) {
    // Diagonal tile: update the full tile (the symmetric upper half is
    // harmless scratch that the driver never extracts).
    leaf_mm_nt(c.geom->tile_rows, c.geom->tile_cols, a.geom->tile_cols, -1.0,
               a.tile(), a.geom->tile_rows, a.tile(), a.geom->tile_rows,
               c.tile(), c.geom->tile_rows);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const TiledBlock c11 = c.quadrant(kNW), c21 = c.quadrant(kSW);
  const TiledBlock c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  TaskGroup group(*ctx.pool);
  fork(group, par, [&] {
    syrk_lower_update(ctx, c11, a11);
    syrk_lower_update(ctx, c11, a12);
  });
  fork(group, par, [&] {
    mul_nt(ctx, -1.0, c21, a21, a11);
    mul_nt(ctx, -1.0, c21, a22, a12);
  });
  fork(group, par, [&] {
    syrk_lower_update(ctx, c22, a21);
    syrk_lower_update(ctx, c22, a22);
  });
  group.wait();
}

void cholesky_block(const MulContext& ctx, const TiledBlock& a) {
  if (a.level == 0) {
    if (!leaf_potrf(a.geom->tile_rows, a.tile(), a.geom->tile_rows)) {
      throw std::domain_error("cholesky: matrix is not positive definite");
    }
    return;
  }
  const TiledBlock a11 = a.quadrant(kNW), a21 = a.quadrant(kSW);
  const TiledBlock a22 = a.quadrant(kSE);
  cholesky_block(ctx, a11);
  trsm_right_lower_transposed(ctx, a21, a11);
  syrk_lower_update(ctx, a22, a21);
  cholesky_block(ctx, a22);
}

bool reference_cholesky(std::uint32_t n, double* a, std::size_t lda) noexcept {
  if (!leaf_potrf(n, a, lda)) return false;
  for (std::uint32_t j = 1; j < n; ++j) {
    for (std::uint32_t i = 0; i < j; ++i) {
      a[static_cast<std::size_t>(j) * lda + i] = 0.0;
    }
  }
  return true;
}

void cholesky(std::uint32_t n, double* a, std::size_t lda,
              const CholeskyConfig& cfg, CholeskyProfile* profile) {
  if (a == nullptr || lda < n) throw std::invalid_argument("cholesky: bad A/lda");
  if (!is_recursive(cfg.layout)) {
    throw std::invalid_argument("cholesky: layout must be a recursive curve");
  }
  if (n == 0) return;
  if (profile != nullptr) *profile = CholeskyProfile{};
  Timer total;
  const double max_in = profile != nullptr ? max_abs_lower(n, a, lda) : 0.0;

  std::optional<WorkerPool> owned;
  WorkerPool* pool = cfg.pool;
  if (pool == nullptr) {
    owned.emplace(cfg.threads <= 1 ? 0u : cfg.threads);
    pool = &*owned;
  }

  // Square tiles: one dimension, one depth. The padded trailing diagonal is
  // filled with identity so padded pivots stay positive definite.
  const std::array<std::uint64_t, 1> dims{n};
  const auto depth = common_depth(dims, cfg.tiles);
  if (!depth) throw std::invalid_argument("cholesky: no feasible tile depth");
  const TileGeometry g = make_geometry(n, n, *depth, cfg.layout);
  TiledMatrix ta(g);

  Timer timer;
  const std::uint64_t tiles = g.tile_count();
  const std::uint64_t grain =
      std::max<std::uint64_t>(1, tiles / (8 * (pool->thread_count() + 1)));
  pool->parallel_for(0, tiles, grain, [&](std::uint64_t s0, std::uint64_t s1) {
    canonical_to_tiled(a, lda, false, 1.0, g, ta.data(), s0, s1);
  });
  for (std::uint32_t i = n; i < g.padded_rows(); ++i) ta.at(i, i) = 1.0;
  const double conv_in = timer.seconds();

  timer.reset();
  MulContext ctx;
  ctx.kernel = cfg.kernel;
  ctx.pool = pool;
  cholesky_block(ctx, ta.root());
  const double compute = timer.seconds();

  timer.reset();
  pool->parallel_for(0, tiles, grain, [&](std::uint64_t s0, std::uint64_t s1) {
    tiled_to_canonical(ta.data(), g, a, lda, s0, s1);
  });
  // Zero the strict upper triangle (scratch from the full-tile updates).
  for (std::uint32_t j = 1; j < n; ++j) {
    for (std::uint32_t i = 0; i < j; ++i) {
      a[static_cast<std::size_t>(j) * lda + i] = 0.0;
    }
  }
  if (profile != nullptr) {
    profile->convert_in = conv_in;
    profile->compute = compute;
    profile->convert_out = timer.seconds();
    profile->total = total.seconds();
    profile->depth = g.depth;
    profile->tile = g.tile_rows;
    // Growth proxy: the factored entries satisfy |l_ij|² ≤ a_ii, so a value
    // much above 1 here flags lost symmetry/definiteness, not normal growth.
    const double max_l = max_abs_lower(n, a, lda);
    profile->growth_factor = max_in > 0.0 ? (max_l * max_l) / max_in : 0.0;
    profile->error_bound = numerics::factorization_bound(n, profile->growth_factor);
  }
}

}  // namespace rla
