#pragma once

// Recursive Cholesky factorization over the recursive array layouts.
//
// The paper positions recursive layouts for "parallel dense linear algebra"
// broadly and cites Gustavson (IBM JRD 1997, ref. [16]) on recursion as
// automatic variable blocking for dense factorizations. This module carries
// the same tiled quadrant machinery beyond matrix multiplication:
//
//   A = L·Lᵀ  (A symmetric positive definite, lower-triangular L in place)
//
// via the classical recursive blocked scheme
//
//   chol(A11); A21 ← A21·A11⁻ᵀ (TRSM); A22 ← A22 − A21·A21ᵀ (SYRK);
//   chol(A22)
//
// with TRSM and SYRK themselves quadrant recursions over TiledBlocks, an
// A·Bᵀ multiply recursion, and unblocked column-oriented leaf kernels on
// contiguous tiles. TRSM row-blocks and the three SYRK quadrant updates are
// spawned on the work-stealing pool.

#include <cstddef>
#include <cstdint>

#include "core/config.hpp"
#include "core/recursion.hpp"
#include "core/tiled_matrix.hpp"

namespace rla {

struct CholeskyConfig {
  Curve layout = Curve::ZMorton;  ///< any recursive curve
  TileRange tiles{};
  unsigned threads = 0;           ///< 0/1 = serial; ignored if pool set
  WorkerPool* pool = nullptr;
  KernelKind kernel = KernelKind::TiledUnrolled;
};

/// Profile of one factorization (wall seconds).
struct CholeskyProfile {
  double convert_in = 0.0;
  double compute = 0.0;
  double convert_out = 0.0;
  double total = 0.0;
  int depth = -1;
  std::uint32_t tile = 0;

  // Stability certificate (analysis/numerics/error_bound.hpp). growth_factor
  // is the computable a posteriori proxy max|factor| / max|A| (for Cholesky
  // it is ≲ 1 by |l_ij|² ≤ a_ii; for LU without pivoting it is unbounded and
  // is *the* number to watch). error_bound is the Higham-style relative
  // residual bound ‖A − L·U‖ / ‖A‖ ≤ γ_{n+1}·n·ρ evaluated at ρ =
  // max(growth_factor, 1) — u is already folded in.
  double growth_factor = 0.0;
  double error_bound = 0.0;
};

/// Factor the n×n symmetric positive definite column-major matrix `a`
/// (leading dimension lda; only the lower triangle is read) into L·Lᵀ.
/// On return the lower triangle of `a` holds L; the strict upper triangle
/// is zeroed. Throws std::domain_error if a non-positive pivot is met
/// (matrix not positive definite) and std::invalid_argument on bad
/// arguments.
void cholesky(std::uint32_t n, double* a, std::size_t lda,
              const CholeskyConfig& cfg = {}, CholeskyProfile* profile = nullptr);

// ---- building blocks, exposed for tests and ablations ----

/// C += alpha · A·Bᵀ on tiled blocks of equal level (A: m×k tiles of
/// tm×tk elements; B: n×k tiles of tn×tk; C: m×n tiles of tm×tn).
void mul_nt(const MulContext& ctx, double alpha, const TiledBlock& c,
            const TiledBlock& a, const TiledBlock& b);

/// X ← X · L⁻ᵀ where L is the lower triangle of an equal-level square
/// block (unit-free: divides by the stored diagonal).
void trsm_right_lower_transposed(const MulContext& ctx, const TiledBlock& x,
                                 const TiledBlock& l);

/// C ← C − A·Aᵀ restricted to C's lower-triangular quadrants (diagonal
/// blocks are updated fully at tile granularity).
void syrk_lower_update(const MulContext& ctx, const TiledBlock& c,
                       const TiledBlock& a);

/// In-place recursive Cholesky of a square tiled block (lower triangle).
/// Diagonal tiles must be positive definite.
void cholesky_block(const MulContext& ctx, const TiledBlock& a);

/// Reference unblocked Cholesky on a column-major matrix (test oracle).
/// Returns false if a non-positive pivot is encountered.
bool reference_cholesky(std::uint32_t n, double* a, std::size_t lda) noexcept;

}  // namespace rla
