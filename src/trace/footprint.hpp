#pragma once

// Algorithmic locality-of-reference footprints (paper Fig. 1).
//
// For each element of C = A·B, compute exactly which elements of A and of B
// are read — transitively through the pre-addition temporaries — under each
// of the three algorithms run to the element level.  The computation runs
// the recursions over a set-union semiring (add = union, multiply = union),
// which is precisely the dependence abstraction behind the paper's dot
// diagrams.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace rla::trace {

/// Read footprints for an n×n multiply (n a power of two, n <= 8 so one
/// 64-bit mask covers a matrix).
struct FootprintResult {
  std::uint32_t n = 0;
  /// Per C element (row-major r*n+c): bit (i*n+j) set when A(i,j) is read.
  std::vector<std::uint64_t> a_reads;
  /// Per C element: bit (i*n+j) set when B(i,j) is read.
  std::vector<std::uint64_t> b_reads;

  /// Total number of (C element, source element) read pairs for A or B —
  /// the paper's "increased number of memory accesses" of the fast
  /// algorithms shows up as larger totals.
  std::uint64_t total_a_reads() const noexcept;
  std::uint64_t total_b_reads() const noexcept;
};

/// Compute the footprint of `alg` at size n (2, 4 or 8).
FootprintResult footprint(Algorithm alg, std::uint32_t n);

/// Render one operand's footprint as the Fig. 1 dot diagram: an n×n grid of
/// boxes (one per C element), each an n×n grid of '.'/'*' points.
std::string render_footprint(const FootprintResult& fp, bool operand_a);

}  // namespace rla::trace
