#include "trace/access_logger.hpp"

#include <stdexcept>

namespace rla::trace {

std::vector<sim::MemRef> standard_canonical_trace(std::uint32_t n, std::uint32_t leaf,
                                                  TraceBases bases) {
  std::vector<sim::MemRef> out;
  walk_standard_canonical(n, leaf, bases, [&](std::uint64_t addr, bool write) {
    out.push_back({addr, write});
  });
  return out;
}

std::vector<sim::MemRef> standard_tiled_trace(std::uint32_t n, std::uint32_t tile,
                                              Curve curve, TraceBases bases) {
  if (tile == 0 || n % tile != 0 || !bits::is_pow2(n / tile)) {
    throw std::invalid_argument("standard_tiled_trace: n must equal tile * 2^d");
  }
  std::vector<sim::MemRef> out;
  walk_standard_tiled(n, tile, curve, bases, [&](std::uint64_t addr, bool write) {
    out.push_back({addr, write});
  });
  return out;
}

std::vector<sim::CoreRef> quadrant_parallel_trace(std::uint32_t n, std::uint32_t tile,
                                                  Curve curve, TraceBases bases) {
  // Core q owns C quadrant q (ceiling-half splits): generate each core's
  // stream over its quadrant of the iteration space, then round-robin
  // interleave to model concurrent execution.
  std::vector<std::vector<sim::MemRef>> streams(4);
  const std::uint32_t h = (n + 1) / 2;
  for (std::uint32_t q = 0; q < 4; ++q) {
    const std::uint32_t i0 = (q >> 1) * h;
    const std::uint32_t j0 = (q & 1) * h;
    const std::uint32_t rows = (q >> 1) == 0 ? h : n - h;
    const std::uint32_t cols = (q & 1) == 0 ? h : n - h;
    auto sink = [&](std::uint64_t addr, bool write) {
      streams[q].push_back({addr, write});
    };
    // Element address function for the chosen layout.
    auto run_quadrant = [&](auto&& addr_of) {
      auto ea = addr_of(bases.a);
      auto eb = addr_of(bases.b);
      auto ec = addr_of(bases.c);
      // Two accumulating k-halves, as the two-phase recursion executes.
      const std::uint32_t k1 = h;
      for (std::uint32_t lq = 0; lq < 2; ++lq) {
        const std::uint32_t l0 = lq == 0 ? 0 : k1;
        const std::uint32_t kk = lq == 0 ? k1 : n - k1;
        if (kk == 0) continue;
        detail::walk_standard(
            0, 0, 0, rows, cols, kk, tile,
            [&, i0, l0](std::uint32_t i, std::uint32_t l) {
              return ea(i0 + i, l0 + l);
            },
            [&, j0, l0](std::uint32_t l, std::uint32_t j) {
              return eb(l0 + l, j0 + j);
            },
            [&, i0, j0](std::uint32_t i, std::uint32_t j) {
              return ec(i0 + i, j0 + j);
            },
            sink);
      }
    };
    if (curve == Curve::ColMajor || curve == Curve::RowMajor) {
      run_quadrant([n](std::uint64_t base) {
        return [base, n](std::uint32_t i, std::uint32_t j) {
          return base + (static_cast<std::uint64_t>(j) * n + i) * sizeof(double);
        };
      });
    } else {
      if (tile == 0 || n % tile != 0 || !bits::is_pow2(n / tile)) {
        throw std::invalid_argument(
            "quadrant_parallel_trace: recursive layout needs n = tile * 2^d");
      }
      const int depth = bits::floor_log2(n / tile);
      const TileGeometry g = make_geometry(n, n, depth, curve);
      run_quadrant([g](std::uint64_t base) {
        return [base, g](std::uint32_t i, std::uint32_t j) {
          return base + g.address(i, j) * sizeof(double);
        };
      });
    }
  }

  std::vector<sim::CoreRef> merged;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  merged.reserve(total);
  std::size_t cursor = 0;
  bool any = true;
  while (any) {
    any = false;
    for (std::uint32_t q = 0; q < 4; ++q) {
      if (cursor < streams[q].size()) {
        merged.push_back({streams[q][cursor].addr, q, streams[q][cursor].write});
        any = true;
      }
    }
    ++cursor;
  }
  return merged;
}

}  // namespace rla::trace
