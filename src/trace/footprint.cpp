#include "trace/footprint.hpp"

#include <stdexcept>

#include "layout/bits.hpp"

namespace rla::trace {

namespace {

/// Element of the dependence semiring: which A / B origins fed this value.
struct Cell {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  Cell operator+(const Cell& other) const { return {a | other.a, b | other.b}; }
  Cell operator-(const Cell& other) const { return {a | other.a, b | other.b}; }
  Cell operator*(const Cell& other) const { return {a | other.a, b | other.b}; }
  Cell& operator+=(const Cell& other) {
    a |= other.a;
    b |= other.b;
    return *this;
  }
};

/// Square matrix of Cells with quadrant views.
struct SetMat {
  std::vector<Cell>* store;
  std::uint32_t ld;
  std::uint32_t off_i, off_j, size;

  Cell& at(std::uint32_t i, std::uint32_t j) const {
    return (*store)[static_cast<std::size_t>(off_i + i) * ld + (off_j + j)];
  }
  SetMat quad(std::uint32_t qi, std::uint32_t qj) const {
    return {store, ld, off_i + qi * size / 2, off_j + qj * size / 2, size / 2};
  }
};

struct Owner {
  std::vector<Cell> cells;
  SetMat mat;
  explicit Owner(std::uint32_t n) : cells(static_cast<std::size_t>(n) * n) {
    mat = {&cells, n, 0, 0, n};
  }
};

void set_add(const SetMat& d, const SetMat& x, const SetMat& y) {
  for (std::uint32_t i = 0; i < d.size; ++i) {
    for (std::uint32_t j = 0; j < d.size; ++j) d.at(i, j) = x.at(i, j) + y.at(i, j);
  }
}

void acc(const SetMat& d, const SetMat& x) {
  for (std::uint32_t i = 0; i < d.size; ++i) {
    for (std::uint32_t j = 0; j < d.size; ++j) d.at(i, j) += x.at(i, j);
  }
}

void mul_std(const SetMat& c, const SetMat& a, const SetMat& b);
void mul_strassen(const SetMat& c, const SetMat& a, const SetMat& b);
void mul_winograd(const SetMat& c, const SetMat& a, const SetMat& b);

void mul_std(const SetMat& c, const SetMat& a, const SetMat& b) {
  if (c.size == 1) {
    c.at(0, 0) += a.at(0, 0) * b.at(0, 0);
    return;
  }
  for (std::uint32_t qi = 0; qi < 2; ++qi) {
    for (std::uint32_t qj = 0; qj < 2; ++qj) {
      for (std::uint32_t ql = 0; ql < 2; ++ql) {
        mul_std(c.quad(qi, qj), a.quad(qi, ql), b.quad(ql, qj));
      }
    }
  }
}

template <typename Recurse>
void mul_fast(const SetMat& c, const SetMat& a, const SetMat& b, bool winograd,
              Recurse&& recurse) {
  if (c.size == 1) {
    c.at(0, 0) += a.at(0, 0) * b.at(0, 0);
    return;
  }
  const std::uint32_t h = c.size / 2;
  (void)h;
  const SetMat a11 = a.quad(0, 0), a12 = a.quad(0, 1), a21 = a.quad(1, 0),
               a22 = a.quad(1, 1);
  const SetMat b11 = b.quad(0, 0), b12 = b.quad(0, 1), b21 = b.quad(1, 0),
               b22 = b.quad(1, 1);
  const SetMat c11 = c.quad(0, 0), c12 = c.quad(0, 1), c21 = c.quad(1, 0),
               c22 = c.quad(1, 1);

  const std::uint32_t hs = c.size / 2;
  std::vector<Owner> s, t, p;
  // Reserve first: each Owner's view points at its own cell store, so the
  // vectors must never reallocate.
  s.reserve(5);
  t.reserve(5);
  p.reserve(7);
  for (int i = 0; i < 5; ++i) s.emplace_back(hs);
  for (int i = 0; i < 5; ++i) t.emplace_back(hs);
  for (int i = 0; i < 7; ++i) p.emplace_back(hs);
  auto S = [&](int i) { return s[static_cast<std::size_t>(i - 1)].mat; };
  auto T = [&](int i) { return t[static_cast<std::size_t>(i - 1)].mat; };
  auto P = [&](int i) { return p[static_cast<std::size_t>(i - 1)].mat; };

  if (!winograd) {
    set_add(S(1), a11, a22);
    set_add(S(2), a21, a22);
    set_add(S(3), a11, a12);
    set_add(S(4), a21, a11);
    set_add(S(5), a12, a22);
    set_add(T(1), b11, b22);
    set_add(T(2), b12, b22);
    set_add(T(3), b21, b11);
    set_add(T(4), b11, b12);
    set_add(T(5), b21, b22);
    recurse(P(1), S(1), T(1));
    recurse(P(2), S(2), b11);
    recurse(P(3), a11, T(2));
    recurse(P(4), a22, T(3));
    recurse(P(5), S(3), b22);
    recurse(P(6), S(4), T(4));
    recurse(P(7), S(5), T(5));
    acc(c11, P(1));
    acc(c11, P(4));
    acc(c11, P(5));
    acc(c11, P(7));
    acc(c21, P(2));
    acc(c21, P(4));
    acc(c12, P(3));
    acc(c12, P(5));
    acc(c22, P(1));
    acc(c22, P(3));
    acc(c22, P(2));
    acc(c22, P(6));
  } else {
    set_add(S(1), a21, a22);
    set_add(S(2), S(1), a11);
    set_add(S(3), a11, a21);
    set_add(S(4), a12, S(2));
    set_add(T(1), b12, b11);
    set_add(T(2), b22, T(1));
    set_add(T(3), b22, b12);
    set_add(T(4), b21, T(2));
    recurse(P(1), a11, b11);
    recurse(P(2), a12, b21);
    recurse(P(3), S(1), T(1));
    recurse(P(4), S(2), T(2));
    recurse(P(5), S(3), T(3));
    recurse(P(6), S(4), b22);
    recurse(P(7), a22, T(4));
    acc(c11, P(1));
    acc(c11, P(2));
    acc(P(4), P(1));  // U2
    acc(P(5), P(4));  // U3
    acc(c21, P(5));
    acc(c21, P(7));
    acc(c22, P(5));
    acc(c22, P(3));
    acc(c12, P(4));
    acc(c12, P(3));
    acc(c12, P(6));
  }
}

void mul_strassen(const SetMat& c, const SetMat& a, const SetMat& b) {
  mul_fast(c, a, b, false,
           [](const SetMat& cc, const SetMat& aa, const SetMat& bb) {
             mul_strassen(cc, aa, bb);
           });
}

void mul_winograd(const SetMat& c, const SetMat& a, const SetMat& b) {
  mul_fast(c, a, b, true,
           [](const SetMat& cc, const SetMat& aa, const SetMat& bb) {
             mul_winograd(cc, aa, bb);
           });
}

}  // namespace

std::uint64_t FootprintResult::total_a_reads() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t m : a_reads) total += static_cast<std::uint64_t>(__builtin_popcountll(m));
  return total;
}

std::uint64_t FootprintResult::total_b_reads() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t m : b_reads) total += static_cast<std::uint64_t>(__builtin_popcountll(m));
  return total;
}

FootprintResult footprint(Algorithm alg, std::uint32_t n) {
  if (n == 0 || n > 8 || !bits::is_pow2(n)) {
    throw std::invalid_argument("footprint: n must be 1, 2, 4 or 8");
  }
  Owner a(n), b(n), c(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      a.mat.at(i, j) = {std::uint64_t{1} << (i * n + j), 0};
      b.mat.at(i, j) = {0, std::uint64_t{1} << (i * n + j)};
    }
  }
  switch (alg) {
    case Algorithm::Standard:
      mul_std(c.mat, a.mat, b.mat);
      break;
    case Algorithm::Strassen:
      mul_strassen(c.mat, a.mat, b.mat);
      break;
    case Algorithm::Winograd:
      mul_winograd(c.mat, a.mat, b.mat);
      break;
  }
  FootprintResult result;
  result.n = n;
  result.a_reads.resize(static_cast<std::size_t>(n) * n);
  result.b_reads.resize(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      result.a_reads[i * n + j] = c.mat.at(i, j).a;
      result.b_reads[i * n + j] = c.mat.at(i, j).b;
    }
  }
  return result;
}

std::string render_footprint(const FootprintResult& fp, bool operand_a) {
  const std::uint32_t n = fp.n;
  const auto& masks = operand_a ? fp.a_reads : fp.b_reads;
  std::string out;
  for (std::uint32_t box_r = 0; box_r < n; ++box_r) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t box_c = 0; box_c < n; ++box_c) {
        const std::uint64_t mask = masks[box_r * n + box_c];
        for (std::uint32_t j = 0; j < n; ++j) {
          out.push_back((mask >> (i * n + j)) & 1 ? '*' : '.');
        }
        out.push_back(box_c + 1 == n ? ' ' : '|');
      }
      out.push_back('\n');
    }
    if (box_r + 1 < n) {
      out.append(static_cast<std::size_t>(n) * (n + 1), '-');
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace rla::trace
