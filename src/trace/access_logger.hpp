#pragma once

// Address-trace generators for the matmul algorithms.
//
// These walk the same recursive structure as the real algorithms but emit
// element-granularity memory references instead of doing floating-point
// work. The traces feed the cache simulator to reproduce the memory-system
// mechanisms behind the paper's Fig. 5/6 results: conflict-miss variability
// of the canonical layout versus the smoothness of the recursive layouts,
// and false sharing between the cores computing adjacent C quadrants.
//
// Matrix base addresses are spaced far apart (distinct high bits) as they
// would be for separately allocated arrays.

#include <cstdint>
#include <vector>

#include "cachesim/coherence.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/config.hpp"
#include "layout/bits.hpp"
#include "layout/tiled_layout.hpp"

namespace rla::trace {

/// Distinct non-overlapping base addresses for A, B, C.
struct TraceBases {
  std::uint64_t a = std::uint64_t{1} << 30;
  std::uint64_t b = std::uint64_t{2} << 30;
  std::uint64_t c = std::uint64_t{3} << 30;
};

/// Emit the element reference stream of the standard recursive algorithm on
/// canonical column-major storage (n × n, leading dimension exactly n),
/// recursing to `leaf`-sized blocks and running the jik leaf loop.
/// Each reference is delivered to `out(addr, write)`.
template <typename Sink>
void walk_standard_canonical(std::uint32_t n, std::uint32_t leaf, TraceBases bases,
                             Sink&& out);

/// Same recursion over the tiled recursive layout with the given curve and
/// tile edge (n must make a clean grid: n = t · 2^d).
template <typename Sink>
void walk_standard_tiled(std::uint32_t n, std::uint32_t tile, Curve curve,
                         TraceBases bases, Sink&& out);

/// Materialized single-core trace of either layout.
std::vector<sim::MemRef> standard_canonical_trace(std::uint32_t n, std::uint32_t leaf,
                                                  TraceBases bases = {});
std::vector<sim::MemRef> standard_tiled_trace(std::uint32_t n, std::uint32_t tile,
                                              Curve curve, TraceBases bases = {});

/// Four-core trace modeling the paper's parallel execution: core q computes
/// C quadrant q (the top-level spawn), and the per-core streams are
/// round-robin interleaved to model concurrency. Layout per `curve`
/// (ColMajor = canonical).
std::vector<sim::CoreRef> quadrant_parallel_trace(std::uint32_t n, std::uint32_t tile,
                                                  Curve curve, TraceBases bases = {});

/// Callbacks observing the recursion structure of the hooked walks below.
/// `enter`/`exit` bracket every recursive node (depth 0 = whole product);
/// `leaf` fires inside the node that runs the jik loop, with its block shape.
/// The default is a no-op set so the plain walks can delegate.
struct NullWalkHooks {
  void enter(int /*depth*/) {}
  void exit(int /*depth*/) {}
  void leaf(int /*depth*/, std::uint32_t /*m*/, std::uint32_t /*n*/,
            std::uint32_t /*k*/) {}
};

// ---- template implementations ----

namespace detail {

/// jik leaf loop over one m×n×k block given element-address functions.
template <typename AddrA, typename AddrB, typename AddrC, typename Sink>
void leaf_refs(std::uint32_t m, std::uint32_t n, std::uint32_t k, AddrA&& ea,
               AddrB&& eb, AddrC&& ec, Sink&& out) {
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t l = 0; l < k; ++l) {
        out(ea(i, l), false);
        out(eb(l, j), false);
      }
      out(ec(i, j), false);
      out(ec(i, j), true);
    }
  }
}

template <typename AddrA, typename AddrB, typename AddrC, typename Sink,
          typename Hooks>
void walk_standard_hooked(std::uint32_t i0, std::uint32_t j0, std::uint32_t l0,
                          std::uint32_t m, std::uint32_t n, std::uint32_t k,
                          std::uint32_t leaf, int depth, AddrA&& ea, AddrB&& eb,
                          AddrC&& ec, Sink&& out, Hooks& hooks) {
  hooks.enter(depth);
  if (m <= leaf && n <= leaf && k <= leaf) {
    hooks.leaf(depth, m, n, k);
    leaf_refs(
        m, n, k,
        [&](std::uint32_t i, std::uint32_t l) { return ea(i0 + i, l0 + l); },
        [&](std::uint32_t l, std::uint32_t j) { return eb(l0 + l, j0 + j); },
        [&](std::uint32_t i, std::uint32_t j) { return ec(i0 + i, j0 + j); }, out);
    hooks.exit(depth);
    return;
  }
  // Ceiling-half splits of every oversized dimension, walked depth-first in
  // the serial execution order of the two-phase recursion.
  const std::uint32_t m1 = m > leaf ? (m + 1) / 2 : m;
  const std::uint32_t n1 = n > leaf ? (n + 1) / 2 : n;
  const std::uint32_t k1 = k > leaf ? (k + 1) / 2 : k;
  for (std::uint32_t lq = 0; lq < (k > leaf ? 2u : 1u); ++lq) {
    const std::uint32_t lo = lq == 0 ? 0 : k1;
    const std::uint32_t kk = lq == 0 ? k1 : k - k1;
    for (std::uint32_t iq = 0; iq < (m > leaf ? 2u : 1u); ++iq) {
      const std::uint32_t io = iq == 0 ? 0 : m1;
      const std::uint32_t mm = iq == 0 ? m1 : m - m1;
      for (std::uint32_t jq = 0; jq < (n > leaf ? 2u : 1u); ++jq) {
        const std::uint32_t jo = jq == 0 ? 0 : n1;
        const std::uint32_t nn = jq == 0 ? n1 : n - n1;
        walk_standard_hooked(i0 + io, j0 + jo, l0 + lo, mm, nn, kk, leaf,
                             depth + 1, ea, eb, ec, out, hooks);
      }
    }
  }
  hooks.exit(depth);
}

template <typename AddrA, typename AddrB, typename AddrC, typename Sink>
void walk_standard(std::uint32_t i0, std::uint32_t j0, std::uint32_t l0,
                   std::uint32_t m, std::uint32_t n, std::uint32_t k,
                   std::uint32_t leaf, AddrA&& ea, AddrB&& eb, AddrC&& ec,
                   Sink&& out) {
  NullWalkHooks hooks;
  walk_standard_hooked(i0, j0, l0, m, n, k, leaf, 0, ea, eb, ec, out, hooks);
}

}  // namespace detail

/// walk_standard_canonical with recursion-structure hooks (see NullWalkHooks).
template <typename Sink, typename Hooks>
void walk_standard_canonical_hooked(std::uint32_t n, std::uint32_t leaf,
                                    TraceBases bases, Sink&& out, Hooks& hooks) {
  auto col_major = [n](std::uint64_t base) {
    return [base, n](std::uint32_t i, std::uint32_t j) {
      return base + (static_cast<std::uint64_t>(j) * n + i) * sizeof(double);
    };
  };
  detail::walk_standard_hooked(0, 0, 0, n, n, n, leaf, 0, col_major(bases.a),
                               col_major(bases.b), col_major(bases.c), out,
                               hooks);
}

template <typename Sink>
void walk_standard_canonical(std::uint32_t n, std::uint32_t leaf, TraceBases bases,
                             Sink&& out) {
  NullWalkHooks hooks;
  walk_standard_canonical_hooked(n, leaf, bases, out, hooks);
}

/// walk_standard_tiled with recursion-structure hooks (see NullWalkHooks).
template <typename Sink, typename Hooks>
void walk_standard_tiled_hooked(std::uint32_t n, std::uint32_t tile, Curve curve,
                                TraceBases bases, Sink&& out, Hooks& hooks) {
  const std::uint32_t side = n / tile;
  const int depth = bits::floor_log2(side);
  const TileGeometry g = make_geometry(n, n, depth, curve);
  auto tiled = [g](std::uint64_t base) {
    return [base, g](std::uint32_t i, std::uint32_t j) {
      return base + g.address(i, j) * sizeof(double);
    };
  };
  detail::walk_standard_hooked(0, 0, 0, n, n, n, tile, 0, tiled(bases.a),
                               tiled(bases.b), tiled(bases.c), out, hooks);
}

template <typename Sink>
void walk_standard_tiled(std::uint32_t n, std::uint32_t tile, Curve curve,
                         TraceBases bases, Sink&& out) {
  NullWalkHooks hooks;
  walk_standard_tiled_hooked(n, tile, curve, bases, out, hooks);
}

}  // namespace rla::trace
