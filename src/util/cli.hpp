#pragma once

// Minimal command-line flag parsing for the examples and custom harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Unknown flags are collected so callers can forward them (e.g. to
// google-benchmark) or reject them.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rla {

/// Parsed command line: flag map plus positional arguments.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// String value of a flag, or `fallback` if absent.
  std::string get(const std::string& name, const std::string& fallback = "") const;

  /// Integer value of a flag, or `fallback` if absent/unparsable.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double value of a flag, or `fallback` if absent/unparsable.
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flag: present without value or with value in {1,true,yes,on}.
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rla
