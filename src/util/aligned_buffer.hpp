#pragma once

// Cache-line / page aligned owning buffer for numeric data.
//
// Dense-linear-algebra kernels care about alignment twice over: vector loads
// want 32/64-byte alignment, and the cache simulator wants deterministic
// line/page placement so simulated conflict misses are reproducible run to
// run.  std::vector gives neither, so we provide a minimal RAII buffer.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "analysis/annotations.hpp"
#include "analysis/numerics/shadow.hpp"

namespace rla {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kPageBytes = 4096;

/// Owning, aligned, non-resizable array of trivially copyable T.
/// Alignment defaults to one cache line; pass kPageBytes for page alignment.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kCacheLineBytes)
      : size_(count), alignment_(alignment) {
    if (count == 0) return;
    // aligned_alloc requires size to be a multiple of alignment.
    const std::size_t bytes = round_up(count * sizeof(T), alignment);
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    // A recycled allocation must not inherit the shadow provenance of its
    // previous owner (a logically parallel sibling would look like a race,
    // and a stale long-double shadow would corrupt error measurement).
    analysis::hook_buffer_lifetime(data_, bytes);
    RLA_SHADOW_CLEAR(data_, bytes);
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_, other.alignment_) {
    if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(alignment_, other.alignment_);
  }

  /// Set every element to zero (bytewise; valid for arithmetic T).
  void zero() noexcept {
    if (size_ != 0) {
      RLA_RACE_WRITE(data_, size_ * sizeof(T));
      RLA_SHADOW_CLEAR(data_, size_ * sizeof(T));
      std::memset(data_, 0, size_ * sizeof(T));
    }
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void release() noexcept {
    if (data_ != nullptr) {
      analysis::hook_buffer_lifetime(data_, size_ * sizeof(T));
      RLA_SHADOW_CLEAR(data_, size_ * sizeof(T));
    }
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = kCacheLineBytes;
};

}  // namespace rla
