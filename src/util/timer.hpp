#pragma once

// Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace rla {

/// Monotonic stopwatch measuring wall-clock seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rla
