#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>

namespace rla {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(v, &end, 10);
  // Out-of-range values saturate to LLONG_MIN/MAX with errno == ERANGE;
  // treat them as unparsable rather than silently clamping.
  if (errno == ERANGE) return fallback;
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

bool paper_scale() { return env_int("RLA_PAPER_SCALE", 0) != 0; }

std::int64_t pick_size(std::int64_t paper_n, std::int64_t scaled_n) {
  return paper_scale() ? paper_n : scaled_n;
}

}  // namespace rla
