#pragma once

// Plain-text table printing for paper-style benchmark reports.
//
// The bench harnesses print one table per paper figure/table; this keeps the
// formatting consistent (fixed-width columns, right-aligned numerics) without
// dragging in a formatting library.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace rla {

/// Column-aligned text table. Add a header row, then data rows; `print`
/// computes column widths and emits a markdown-ish table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double value, int precision = 3);

  /// Convenience: format an integer.
  static std::string num(long long value);

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rla
