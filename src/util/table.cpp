#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace rla {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::num(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace rla
