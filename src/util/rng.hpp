#pragma once

// Deterministic, fast PRNG (xoshiro256**) for test matrices and workloads.
//
// We avoid std::mt19937 in hot fill loops: xoshiro256** is ~4x faster and its
// state is four words, which matters when the benchmarks fill hundreds of MB
// of matrix data.  Determinism across platforms keeps test expectations and
// benchmark workloads stable.

#include <cstdint>

namespace rla {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
      s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
      word = s ^ (s >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace rla
