#include "util/cli.hpp"

#include <cstdlib>

namespace rla {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    // Only `--name=value` and boolean `--name` forms: a space-separated
    // `--name value` form cannot be distinguished from a boolean flag
    // followed by a positional argument.
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "";  // boolean form
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  return false;
}

}  // namespace rla
