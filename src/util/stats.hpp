#pragma once

// Small summary-statistics helpers for benchmark reporting.

#include <cstddef>
#include <vector>

namespace rla {

/// Summary of a sample of measurements.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

/// Compute summary statistics of `values`. Empty input yields a zero Summary.
Summary summarize(std::vector<double> values);

/// Median of `values` (copies; empty input yields 0).
double median(std::vector<double> values);

/// Geometric mean of strictly positive values (0 if empty or any non-positive).
double geometric_mean(const std::vector<double>& values);

}  // namespace rla
