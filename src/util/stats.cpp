#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rla {

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1) ? values[mid] : 0.5 * (values[mid - 1] + values[mid]);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double median(std::vector<double> values) { return summarize(std::move(values)).median; }

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace rla
