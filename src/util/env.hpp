#pragma once

// Environment-variable knobs shared by the benchmark harnesses.

#include <cstdint>
#include <string>

namespace rla {

/// Read an integer environment variable, returning `fallback` when unset or
/// unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a string environment variable, returning `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback = "");

/// True when RLA_PAPER_SCALE is set to a truthy value: benchmarks then run
/// the paper's original problem sizes (n up to 1536) instead of the scaled
/// defaults that finish in minutes on a small machine.
bool paper_scale();

/// Scale a paper problem size down unless paper_scale() is on.
/// `paper_n` is the size the paper used; `scaled_n` the default here.
std::int64_t pick_size(std::int64_t paper_n, std::int64_t scaled_n);

}  // namespace rla
