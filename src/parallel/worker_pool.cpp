#include "parallel/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <system_error>

#include "analysis/numerics/fptrap.hpp"
#include "obs/perf.hpp"
#include "robust/fault.hpp"

namespace rla {

namespace {
// Which worker (of which pool) the current thread is. A thread belongs to at
// most one pool for its lifetime, so a single pair suffices.
thread_local const WorkerPool* tl_pool = nullptr;
thread_local int tl_worker_index = -1;

void fold_max(std::atomic<std::int64_t>& slot, std::int64_t v) noexcept {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

WorkerPool::WorkerPool(unsigned threads) : requested_(threads) {
  workers_.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start threads behind a gate: they may not touch workers_ until the
  // vector's final size is known, because a creation failure below shrinks
  // it. Creation failures degrade the pool instead of propagating — a gemm
  // on a loaded machine should run slower, not die.
  std::vector<std::thread> started;
  started.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    try {
      fault::maybe_fail_thread_create(fault::Site::PoolThreadCreate);
      started.emplace_back([this, w] {
        wait_for_start();
        worker_main(static_cast<int>(w));
      });
    } catch (const std::system_error&) {
      break;  // keep the threads we got; requested_ - size() records the loss
    }
  }
  if (started.size() < workers_.size()) workers_.resize(started.size());
  for (std::size_t w = 0; w < started.size(); ++w) {
    workers_[w]->thread = std::move(started[w]);
  }
  {
    MutexLock lock(start_mutex_);
    start_ready_ = true;
  }
  start_cv_.notify_all();  // publishes: start_ready_ (workers_ is final)
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();  // publishes: stop_
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Drain anything never executed (only possible if a TaskGroup was leaked).
  {
    MutexLock lock(injection_mutex_);
    for (TaskNode* node : injection_queue_) delete node;
    injection_queue_.clear();
  }
  for (auto& worker : workers_) {
    // The owning worker thread has joined; the destructor inherits its role.
    worker->deque.assert_owner();
    while (TaskNode* node = worker->deque.pop()) delete node;
  }
}

void WorkerPool::wait_for_start() {
  MutexLock lock(start_mutex_);
  start_cv_.wait(start_mutex_, lock,
                 [this]() RLA_REQUIRES(start_mutex_) { return start_ready_; });
}

int WorkerPool::current_worker_index() noexcept { return tl_worker_index; }

void WorkerPool::enqueue(TaskNode* node) {
  const int self = (tl_pool == this) ? tl_worker_index : -1;
  if (self >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(self)];
    w.deque.assert_owner();  // self == tl_worker_index: this IS the owner
    w.deque.push(node);
    fold_max(w.sched.deque_high_water,
             static_cast<std::int64_t>(w.deque.size_estimate()));
  } else {
    MutexLock lock(injection_mutex_);
    // Priority-ordered, FIFO within a priority. The scan is from the back:
    // almost all injected tasks share priority 0, so insertion is O(1) until
    // a high-priority request actually needs to overtake a backlog.
    auto it = injection_queue_.end();
    while (it != injection_queue_.begin() &&
           (*std::prev(it))->priority < node->priority) {
      --it;
    }
    injection_queue_.insert(it, node);
    fold_max(external_.deque_high_water,
             static_cast<std::int64_t>(injection_queue_.size()));
  }
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    sleep_cv_.notify_one();  // publishes: a TaskNode reachable via try_acquire
  }
}

WorkerPool::TaskNode* WorkerPool::try_acquire(int self) {
  if (self >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(self)];
    w.deque.assert_owner();  // self is the caller's own worker index
    if (TaskNode* node = w.deque.pop()) {
      return node;
    }
  }
  {
    MutexLock lock(injection_mutex_);
    if (!injection_queue_.empty()) {
      TaskNode* node = injection_queue_.front();
      injection_queue_.pop_front();
      sched_slot(self).injection_pops.fetch_add(1, std::memory_order_relaxed);
      return node;
    }
  }
  // Steal: start at a pseudo-random victim, sweep once around.
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  thread_local std::minstd_rand rng(std::random_device{}());
  const std::size_t start = rng() % n;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (static_cast<int>(victim) == self) continue;
    if (TaskNode* node = workers_[victim]->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      sched_slot(self).steals.fetch_add(1, std::memory_order_relaxed);
      return node;
    }
  }
  sched_slot(self).failed_steals.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void WorkerPool::run_node(TaskNode* node) {
  TaskGroup* group = node->group;
  // Late-join hook for HW counting: the first task a thread runs under an
  // armed perf session opens that thread's counter group (one relaxed load
  // otherwise). Covers pool workers and helping/external threads alike.
  obs::perf::on_thread_work();
  {
    // Scope must close before finish(): the waiter may return from wait()
    // and destroy the group — and its span accumulator — as soon as
    // pending_ hits zero, and the scope's destructor folds into it.
    // The spawn-time trace id becomes ambient for the body (and for the
    // trace events the run scope emits), then the worker's previous scope
    // is restored — a stolen task never leaks its request id to the victim.
    obs::TraceIdScope trace_scope(node->tag.trace);
    obs::RunTaskScope tscope(node->tag, node->seq,
                             group != nullptr ? &group->obs_ : nullptr);
    try {
      node->fn();
    } catch (...) {
      if (group != nullptr) group->record_exception(std::current_exception(), node->seq);
    }
    // FP-status flags are per-thread: fold this worker's into the
    // process-wide capture before the submitter (a different thread)
    // drains it.
    numerics::fp_poll();
  }
  delete node;
  if (group != nullptr) group->finish();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
}

void WorkerPool::worker_main(int index) {
  tl_pool = this;
  tl_worker_index = index;
  obs::on_worker_start(index);
  SchedCounters& sched = workers_[static_cast<std::size_t>(index)]->sched;
  int idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (TaskNode* node = try_acquire(index)) {
      idle_spins = 0;
      run_node(node);
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    MutexLock lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    // timed-wait: the wake condition (work in a deque or the injection
    // queue, or stop_) lives outside sleep_mutex_, so there is no guarded
    // predicate to test; enqueue's notify ends the nap early and the worker
    // loop re-checks try_acquire/stop_ itself. Bounded at 1 ms.
    sleep_cv_.wait_for(sleep_mutex_, lock, std::chrono::milliseconds(1));
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    sched.idle_wakeups.fetch_add(1, std::memory_order_relaxed);
    idle_spins = 0;
  }
}

std::vector<WorkerPool::SchedStats> WorkerPool::sched_snapshot() const {
  std::vector<SchedStats> out;
  out.reserve(workers_.size() + 1);
  for (const auto& worker : workers_) out.push_back(worker->sched.snapshot());
  out.push_back(external_.snapshot());
  return out;
}

std::uint64_t WorkerPool::failed_steals() const noexcept {
  std::uint64_t total = external_.failed_steals.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    total += worker->sched.failed_steals.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t WorkerPool::idle_wakeups() const noexcept {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->sched.idle_wakeups.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t WorkerPool::injection_pops() const noexcept {
  std::uint64_t total = external_.injection_pops.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    total += worker->sched.injection_pops.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t WorkerPool::deque_high_water() const noexcept {
  std::int64_t deepest = 0;
  for (const auto& worker : workers_) {
    deepest = std::max(
        deepest, worker->sched.deque_high_water.load(std::memory_order_relaxed));
  }
  return deepest;
}

void WorkerPool::parallel_for(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)>& body,
    int priority) {
  grain = std::max<std::uint64_t>(grain, 1);
  // With a race detector attached, the serial shortcut must still model the
  // chunks as logical tasks — they WOULD run in parallel on a real pool, and
  // certification has to cover that DAG.
  const bool model_tasks = analysis::detection_active();
  if ((serial() && !model_tasks) || end - begin <= grain) {
    if (begin < end) body(begin, end);
    return;
  }
  TaskGroup group(*this, nullptr, priority);
  for (std::uint64_t b = begin; b < end; b += grain) {
    const std::uint64_t e = std::min(end, b + grain);
    group.spawn([&body, b, e] { body(b, e); });
  }
  group.wait();
}

void TaskGroup::wait() {
  // The scope pauses the waiter's span clock (helping runs other tasks'
  // frames) and, at destruction, folds the group's child spans into the
  // waiting frame — also when this function exits by rethrowing below.
  obs::WaitScope wscope(&obs_);
  if (!pool_.serial()) {
    const int self = (tl_pool == &pool_) ? tl_worker_index : -1;
    int idle_spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (WorkerPool::TaskNode* node = pool_.try_acquire(self)) {
        idle_spins = 0;
        pool_.run_node(node);
      } else if (++idle_spins < 256) {
        std::this_thread::yield();
      } else {
        // All remaining children are running on other workers; nap briefly.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        idle_spins = 0;
      }
    }
  }
  // Every task has finished and recorded its outcome, so the lowest-seq
  // exception is final — propagation is deterministic even though the tasks
  // raced.
  analysis::hook_group_sync(this);
  // Quiescence (pending_ == 0 with acquire/release pairing) already orders
  // every record_exception before this read, but the lock keeps the access
  // pattern uniform and lets the static analysis certify it.
  std::exception_ptr e;
  {
    MutexLock lock(exception_mutex_);
    e = exception_;
    exception_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

void TaskGroup::record_exception(std::exception_ptr e, std::uint64_t seq) noexcept {
  if (cancel_ != nullptr) cancel_->store(true, std::memory_order_relaxed);
  MutexLock lock(exception_mutex_);
  if (!exception_ || seq < exception_seq_) {
    exception_ = e;
    exception_seq_ = seq;
  }
}

}  // namespace rla
