#pragma once

// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005; memory ordering per
// Lê, Pop, Cohen & Zappa Nardelli, PPoPP 2013).
//
// The owner pushes and pops at the bottom without contention; thieves steal
// from the top with a CAS.  This is the core data structure of the
// work-stealing scheduler that stands in for the paper's Cilk runtime.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/sync.hpp"

namespace rla {

/// Lock-free single-owner deque of pointers. T must be a pointer type.
///
/// The owner-only API (push/pop and the retired-array list behind it) is
/// guarded by a phantom "role" capability rather than a mutex: there is no
/// lock to take, but the thread-safety analysis still rejects any call path
/// that reaches push()/pop() without first asserting — next to its dynamic
/// owner check — that it is the owning thread (see assert_owner()).
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "ChaseLevDeque stores pointers");

 public:
  /// Phantom capability: "I am this deque's single owner thread". Never
  /// locked — held only via RLA_ASSERT_CAPABILITY after a dynamic check.
  class RLA_CAPABILITY("role") OwnerRole {};
  explicit ChaseLevDeque(std::int64_t initial_capacity = 64)
      : array_(new RingArray(initial_capacity)) {
    retired_.emplace_back(array_.load(std::memory_order_relaxed));
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() = default;

  /// Declare (to the static analysis) that the calling thread is the
  /// deque's owner. Callers pair this with their dynamic ownership check —
  /// the scheduler's thread-local worker index — so the assertion documents
  /// an invariant that is actually enforced at runtime.
  void assert_owner() const RLA_ASSERT_CAPABILITY(owner_) {}

  /// Owner only: push at the bottom.
  void push(T item) RLA_REQUIRES(owner_) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    RingArray* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) {
      a = grow(a, t, b);
    }
    // The release store on the slot itself (not just the fence before
    // bottom_) is what lets a thief's acquire load of the same slot
    // synchronize with the owner's writes to the pointed-to task. The PPoPP
    // 2013 orderings publish through the fence alone, but ThreadSanitizer
    // does not model std::atomic_thread_fence, so the fence-only variant
    // reports false races on the task payload; the slot-level release is
    // free on x86 and keeps the deque TSan-clean.
    a->put(b, item, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pop from the bottom. Returns nullptr when empty.
  T pop() RLA_REQUIRES(owner_) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    RingArray* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Last element: race against thieves.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // lost the race
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal from the top. Returns nullptr when empty or when the
  /// steal lost a race (callers just try elsewhere).
  T steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    T item = nullptr;
    if (t < b) {
      // acquire, not consume: consume is deprecated-in-practice (compilers
      // promote it anyway) and TSan does not understand dependency ordering.
      RingArray* a = array_.load(std::memory_order_acquire);
      // acquire pairs with the owner's release put (see push).
      item = a->get(t, std::memory_order_acquire);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
    }
    return item;
  }

  /// Approximate size (racy; for heuristics and tests on quiescent deques).
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct RingArray {
    explicit RingArray(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    T get(std::int64_t index,
          std::memory_order order = std::memory_order_relaxed) const {
      return slots[index & mask].load(order);
    }
    void put(std::int64_t index, T item,
             std::memory_order order = std::memory_order_relaxed) {
      slots[index & mask].store(item, order);
    }
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  RingArray* grow(RingArray* a, std::int64_t t, std::int64_t b)
      RLA_REQUIRES(owner_) {
    auto bigger = std::make_unique<RingArray>(a->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    RingArray* raw = bigger.get();
    retired_.push_back(std::move(bigger));  // old arrays die with the deque
    array_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<RingArray*> array_;
  /// Retired grow() arrays; only the owner thread appends (thieves read
  /// array_ through the atomic, never this list).
  std::vector<std::unique_ptr<RingArray>> retired_ RLA_GUARDED_BY(owner_);
  OwnerRole owner_;
};

}  // namespace rla
