#pragma once

// Work-stealing thread pool with fork-join task groups.
//
// This is the substrate standing in for the Cilk runtime the paper used: the
// matrix-multiplication recursion spawns its 7 or 8 sub-multiplications as
// tasks, and a TaskGroup::wait() *helps* (runs other ready tasks) instead of
// blocking, which is what makes nested fork-join parallelism efficient.
//
// A WorkerPool with zero threads degrades to a serial executor: spawn runs
// the task inline and wait is a no-op. All algorithms are written against
// this one interface.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "parallel/chase_lev_deque.hpp"

namespace rla {

class TaskGroup;

/// Fork-join work-stealing pool.
class WorkerPool {
 public:
  /// `threads` worker threads are created; 0 gives a serial pool where spawn
  /// executes inline (useful as a baseline and for deterministic tests).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  bool serial() const noexcept { return workers_.empty(); }

  /// Parallel loop over [begin, end): body(b, e) is invoked on disjoint
  /// sub-ranges of at most `grain` iterations. Blocks until all complete.
  void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// Tasks executed since construction (for tests and scheduler stats).
  std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Total successful steals (scheduler stat; load-balance diagnostics).
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;

  struct TaskNode {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct Worker {
    ChaseLevDeque<TaskNode*> deque;
    std::thread thread;
  };

  void enqueue(TaskNode* node);
  TaskNode* try_acquire(int self);  // own deque -> injection queue -> steal
  void run_node(TaskNode* node);
  void worker_main(int index);
  static int current_worker_index() noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex injection_mutex_;
  std::deque<TaskNode*> injection_queue_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

/// One fork-join scope: spawn children, then wait for all of them.
/// wait() runs other ready tasks while waiting, so nested groups (the
/// recursive multiply) never block a worker thread.
class TaskGroup {
 public:
  explicit TaskGroup(WorkerPool& pool) : pool_(pool) {}

  /// Destruction waits for stragglers but swallows their exceptions (call
  /// wait() explicitly to observe them).
  ~TaskGroup() {
    try {
      wait();
    } catch (...) {
    }
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawn fn as a task. On a serial pool, runs fn inline immediately.
  template <typename F>
  void spawn(F&& fn) {
    if (pool_.serial()) {
      fn();
      return;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    auto* node = new WorkerPool::TaskNode{std::forward<F>(fn), this};
    pool_.enqueue(node);
  }

  /// Run fn inline, but account exceptions to this group like a spawned
  /// task's (convenience for "spawn k-1, run the k-th yourself" patterns).
  template <typename F>
  void run(F&& fn) {
    try {
      fn();
    } catch (...) {
      record_exception(std::current_exception());
    }
  }

  /// Wait until every spawned task has finished. Rethrows the first
  /// exception any task (or run()) raised.
  void wait();

 private:
  friend class WorkerPool;

  void finish() noexcept { pending_.fetch_sub(1, std::memory_order_acq_rel); }
  void record_exception(std::exception_ptr e) noexcept;

  WorkerPool& pool_;
  std::atomic<std::int64_t> pending_{0};
  std::mutex exception_mutex_;
  std::exception_ptr exception_;
};

}  // namespace rla
