#pragma once

// Work-stealing thread pool with fork-join task groups.
//
// This is the substrate standing in for the Cilk runtime the paper used: the
// matrix-multiplication recursion spawns its 7 or 8 sub-multiplications as
// tasks, and a TaskGroup::wait() *helps* (runs other ready tasks) instead of
// blocking, which is what makes nested fork-join parallelism efficient.
//
// A WorkerPool with zero threads degrades to a serial executor: spawn runs
// the task inline and wait is a no-op. All algorithms are written against
// this one interface.
//
// Robustness contract:
//  * Construction never fails for lack of threads. If creating worker thread
//    i fails (std::system_error from std::thread, or the injected
//    `pool.thread_create` fault site), the pool keeps the i threads it
//    already has — down to zero, i.e. a serial pool — and records the
//    shortfall in thread_create_failures().
//  * Task exceptions are recorded per group and rethrown by wait(). "First"
//    is deterministic: among all failed tasks of a group, the one with the
//    lowest spawn index wins, regardless of scheduling order.
//  * A TaskGroup may carry a cancellation flag (shared across nested
//    groups); it is set as soon as any task in any group wired to it throws,
//    so cooperating recursions can stop descending early. The flag is
//    advisory — tasks already running are not interrupted.

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "analysis/annotations.hpp"
#include "obs/hooks.hpp"
#include "parallel/chase_lev_deque.hpp"
#include "support/sync.hpp"

namespace rla {

class TaskGroup;

/// Fork-join work-stealing pool.
class WorkerPool {
 public:
  /// Attempts to create `threads` worker threads; 0 gives a serial pool
  /// where spawn executes inline (useful as a baseline and for
  /// deterministic tests). Thread-creation failure degrades the pool to the
  /// threads obtained so far instead of throwing (see header comment).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Threads the constructor was asked for (>= thread_count()).
  unsigned requested_threads() const noexcept { return requested_; }

  bool serial() const noexcept { return workers_.empty(); }

  /// Parallel loop over [begin, end): body(b, e) is invoked on disjoint
  /// sub-ranges of at most `grain` iterations. Blocks until all complete.
  /// `priority` orders the chunks in the injection queue when the caller is
  /// not a pool worker (see TaskGroup).
  void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body,
                    int priority = 0);

  /// Tasks executed since construction (for tests and scheduler stats).
  std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Total successful steals (scheduler stat; load-balance diagnostics).
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Scheduler health counters for one steal slot (a worker, or the shared
  /// "external" slot covering non-worker threads helping in wait()).
  struct SchedStats {
    std::uint64_t steals = 0;          ///< successful steals
    std::uint64_t failed_steals = 0;   ///< acquire sweeps that found nothing
    std::uint64_t idle_wakeups = 0;    ///< sleeps that ended without work
    std::uint64_t injection_pops = 0;  ///< tasks taken from the injection queue
    std::int64_t deque_high_water = 0; ///< deepest deque (injection queue for
                                       ///< the external slot) observed
  };

  /// Per-worker counters plus one trailing entry for external threads
  /// (thread_count() + 1 entries; a serial pool returns just the external
  /// entry, which stays all-zero since serial spawns run inline).
  std::vector<SchedStats> sched_snapshot() const;

  /// Failed steal sweeps summed over all slots (0 on a serial pool).
  std::uint64_t failed_steals() const noexcept;

  /// Idle sleeps that timed out without work, summed over workers (0 on a
  /// serial pool — it has no worker loop).
  std::uint64_t idle_wakeups() const noexcept;

  /// Injection-queue hits summed over all slots.
  std::uint64_t injection_pops() const noexcept;

  /// Deepest work deque observed across workers.
  std::int64_t deque_high_water() const noexcept;

  /// Worker threads the constructor failed to create (0 = full strength).
  unsigned thread_create_failures() const noexcept {
    return requested_ - thread_count();
  }

  /// Task exceptions dropped by TaskGroup destructors that ran before any
  /// wait() observed them (see ~TaskGroup). A nonzero value means some code
  /// path discarded errors; it should be treated as a bug in that path.
  std::uint64_t exceptions_swallowed() const noexcept {
    return exceptions_swallowed_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;

  struct TaskNode {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    std::uint64_t seq = 0;  ///< spawn index within the group
    int priority = 0;       ///< injection-queue ordering (higher pops first)
    obs::TaskTag tag;       ///< trace identity (all-zero when untraced)
  };

  /// Atomic backing for one SchedStats slot; hammered relaxed on the
  /// scheduler's idle/steal paths, snapshotted by the accessors.
  struct SchedCounters {
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> idle_wakeups{0};
    std::atomic<std::uint64_t> injection_pops{0};
    std::atomic<std::int64_t> deque_high_water{0};

    SchedStats snapshot() const noexcept {
      return {steals.load(std::memory_order_relaxed),
              failed_steals.load(std::memory_order_relaxed),
              idle_wakeups.load(std::memory_order_relaxed),
              injection_pops.load(std::memory_order_relaxed),
              deque_high_water.load(std::memory_order_relaxed)};
    }
  };

  struct Worker {
    ChaseLevDeque<TaskNode*> deque;
    std::thread thread;
    SchedCounters sched;
  };

  void enqueue(TaskNode* node) RLA_EXCLUDES(injection_mutex_);
  // own deque -> injection queue -> steal
  TaskNode* try_acquire(int self) RLA_EXCLUDES(injection_mutex_);
  void run_node(TaskNode* node);
  void worker_main(int index);
  void wait_for_start();
  static int current_worker_index() noexcept;

  /// The counter slot for the calling thread: its worker's, or external_.
  SchedCounters& sched_slot(int self) noexcept {
    return self >= 0 ? workers_[static_cast<std::size_t>(self)]->sched
                     : external_;
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  SchedCounters external_;  ///< non-worker threads helping in wait()
  unsigned requested_ = 0;
  Mutex injection_mutex_;  // lock-level: pool
  std::deque<TaskNode*> injection_queue_ RLA_GUARDED_BY(injection_mutex_);

  // Workers block on this gate until the constructor has finalized
  // workers_ (it may shrink the vector after a thread-creation failure, and
  // running workers must never observe that resize).
  Mutex start_mutex_;  // lock-level: pool
  CondVar start_cv_;
  bool start_ready_ RLA_GUARDED_BY(start_mutex_) = false;

  // Idle-nap channel: the condition workers wait on (work may exist) lives
  // in the deques and injection queue, not under this mutex; see the
  // timed-wait in worker_main.
  Mutex sleep_mutex_;  // lock-level: pool
  CondVar sleep_cv_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> exceptions_swallowed_{0};
};

/// One fork-join scope: spawn children, then wait for all of them.
/// wait() runs other ready tasks while waiting, so nested groups (the
/// recursive multiply) never block a worker thread.
///
/// Error contract: call wait() to observe task failures — it rethrows the
/// recorded exception with the lowest spawn index (deterministic across
/// scheduling). If a group is destroyed with an unobserved exception, the
/// destructor cannot throw; it counts the loss in the pool-level
/// exceptions_swallowed() stat instead.
class TaskGroup {
 public:
  /// `cancel`, when given, is set to true as soon as any task of this group
  /// throws; share one flag across nested groups to let a whole recursion
  /// tree stop descending after the first failure.
  ///
  /// `priority` orders this group's spawns in the pool's shared injection
  /// queue: tasks injected by non-worker threads (a service executor
  /// submitting on behalf of a request) with higher priority are dispatched
  /// first; equal priorities stay FIFO. Worker-local deques ignore it — once
  /// a request's recursion is running on the workers, LIFO/steal order is
  /// what keeps the working set cache-resident.
  explicit TaskGroup(WorkerPool& pool, std::atomic<bool>* cancel = nullptr,
                     int priority = 0)
      : pool_(pool), cancel_(cancel), priority_(priority) {}

  /// Destruction waits for stragglers; any unobserved exception is counted
  /// in WorkerPool::exceptions_swallowed() (call wait() to observe errors).
  ~TaskGroup() {
    try {
      wait();
    } catch (...) {
      pool_.exceptions_swallowed_.fetch_add(1, std::memory_order_relaxed);
    }
    analysis::hook_group_destroyed(this);
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawn fn as a task. On a serial pool, runs fn inline immediately,
  /// recording any exception for wait() just like a parallel task.
  template <typename F>
  void spawn(F&& fn) {
    const std::uint64_t seq = next_seq_++;
    if (pool_.serial()) {
      // Serial elision IS the depth-first schedule the race detector's
      // SP-bags algorithm requires; tell it a logical task ran here.
      analysis::hook_task_begin(this, seq);
      {
        // The tracer still models the logical fork/join so measured span —
        // and thus DAG parallelism — is schedule-independent, the way
        // Cilkview measures on a serial execution.
        obs::InlineTaskScope tscope(&obs_, seq);
        try {
          fn();
        } catch (...) {
          record_exception(std::current_exception(), seq);
        }
      }
      analysis::hook_task_end(this);
      return;
    }
    analysis::hook_parallel_spawn();  // voids serial-schedule certification
    pending_.fetch_add(1, std::memory_order_relaxed);
    auto* node =
        new WorkerPool::TaskNode{std::forward<F>(fn), this, seq, priority_, {}};
    // Request identity propagates unconditionally (collector armed or not):
    // the executing worker restores it around the task body, so profiles and
    // flight-recorder events keep their request scope across steals.
    node->tag.trace = obs::current_trace_id();
    obs::on_spawn(node->tag, seq);
    pool_.enqueue(node);
  }

  /// Run fn inline, but account exceptions to this group like a spawned
  /// task's (convenience for "spawn k-1, run the k-th yourself" patterns).
  template <typename F>
  void run(F&& fn) {
    const std::uint64_t seq = next_seq_++;
    // Traced as a forked child: a run() is logically concurrent with the
    // group's spawned siblings, it just executes on the spawning thread.
    obs::InlineTaskScope tscope(&obs_, seq);
    try {
      fn();
    } catch (...) {
      record_exception(std::current_exception(), seq);
    }
  }

  /// Wait until every spawned task has finished. Rethrows the exception of
  /// the failed task with the lowest spawn index, if any task failed.
  void wait();

  /// True once any task of this group (or a nested group sharing the same
  /// cancellation flag) has thrown.
  bool cancelled() const noexcept {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

 private:
  friend class WorkerPool;

  void finish() noexcept { pending_.fetch_sub(1, std::memory_order_acq_rel); }
  void record_exception(std::exception_ptr e, std::uint64_t seq) noexcept;

  WorkerPool& pool_;
  std::atomic<bool>* cancel_ = nullptr;
  int priority_ = 0;            ///< injection-queue priority of this group's spawns
  std::uint64_t next_seq_ = 0;  ///< only touched by the owning thread
  std::atomic<std::int64_t> pending_{0};
  /// Span accumulator for the tracer. Child folds happen before finish()
  /// decrements pending_, and wait() reads after pending_ hits zero, so the
  /// acquire/release pair on pending_ orders every fold before the join.
  obs::GroupObs obs_;
  Mutex exception_mutex_;  // lock-level: pool
  std::exception_ptr exception_ RLA_GUARDED_BY(exception_mutex_);
  std::uint64_t exception_seq_ RLA_GUARDED_BY(exception_mutex_) = 0;
};

}  // namespace rla
