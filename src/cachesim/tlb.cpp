#include "cachesim/tlb.hpp"

#include <stdexcept>

#include "layout/bits.hpp"

namespace rla::sim {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  if (config.entries == 0 || !bits::is_pow2(config.page_bytes)) {
    throw std::invalid_argument("Tlb: inconsistent geometry");
  }
}

bool Tlb::access(std::uint64_t addr) {
  const std::uint64_t page = addr / config_.page_bytes;
  auto it = where_.find(page);
  if (it != where_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  lru_.push_front(page);
  where_[page] = lru_.begin();
  if (lru_.size() > config_.entries) {
    where_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void Tlb::reset() {
  stats_ = TlbStats{};
  lru_.clear();
  where_.clear();
}

}  // namespace rla::sim
