#pragma once

// Fully-associative LRU TLB model.
//
// The paper lists reduced TLB effectiveness among the canonical layout's
// dilation costs for large matrices; this model quantifies it.

#include <cstdint>
#include <list>
#include <unordered_map>

namespace rla::sim {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;  ///< must be a power of two
};

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t accesses() const noexcept { return hits + misses; }
  double miss_rate() const noexcept {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(a);
  }
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Translate one byte address; returns true on TLB hit.
  bool access(std::uint64_t addr);

  void reset();

  const TlbConfig& config() const noexcept { return config_; }
  const TlbStats& stats() const noexcept { return stats_; }

 private:
  TlbConfig config_;
  TlbStats stats_;
  std::list<std::uint64_t> lru_;  // front = most recent page
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> where_;
};

}  // namespace rla::sim
