#include "cachesim/hierarchy.hpp"

namespace rla::sim {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config), l1_(config.l1), l2_(config.l2), tlb_(config.tlb) {}

void MemoryHierarchy::access(std::uint64_t addr, bool write) {
  if (!tlb_.access(addr)) cycles_ += config_.tlb_miss_cycles;
  if (l1_.access(addr, write)) {
    cycles_ += config_.l1_hit_cycles;
    return;
  }
  if (l2_.access(addr, write)) {
    cycles_ += config_.l2_hit_cycles;
    return;
  }
  cycles_ += config_.memory_cycles;
}

void MemoryHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  tlb_.reset();
  cycles_ = 0;
}

}  // namespace rla::sim
