#include "cachesim/coherence.hpp"

namespace rla::sim {

SmpCaches::SmpCaches(const SmpConfig& config) : config_(config) {
  l1_.reserve(config.cores);
  for (std::uint32_t c = 0; c < config.cores; ++c) l1_.emplace_back(config.l1);
  touched_.resize(config.cores);
  lost_.resize(config.cores);
}

void SmpCaches::access(const CoreRef& ref) {
  const std::uint64_t line = line_of(ref.addr);
  const std::uint64_t word_in_line =
      (ref.addr % config_.l1.line_bytes) / config_.word_bytes;
  const std::uint64_t word_bit = std::uint64_t{1} << word_in_line;

  Cache& cache = l1_[ref.core];
  const bool had_line = cache.contains(ref.addr);
  const bool hit = cache.access(ref.addr, ref.write);
  if (!hit) {
    if (lost_[ref.core].erase(line) != 0) ++stats_.coherence_misses;
    // Fresh copy: start a new touch mask.
    touched_[ref.core][line] = 0;
  }
  (void)had_line;
  touched_[ref.core][line] |= word_bit;

  if (ref.write) {
    // Invalidate all other copies (MSI write-invalidate).
    for (std::uint32_t other = 0; other < config_.cores; ++other) {
      if (other == ref.core) continue;
      if (l1_[other].invalidate(ref.addr)) {
        ++stats_.invalidations;
        auto it = touched_[other].find(line);
        const std::uint64_t mask = it == touched_[other].end() ? 0 : it->second;
        if ((mask & word_bit) != 0) {
          ++stats_.true_sharing_invalidations;
        } else {
          ++stats_.false_sharing_invalidations;
        }
        if (it != touched_[other].end()) touched_[other].erase(it);
        lost_[other].insert(line);
      }
    }
  }
}

void SmpCaches::reset() {
  for (Cache& cache : l1_) cache.reset();
  for (auto& t : touched_) t.clear();
  for (auto& l : lost_) l.clear();
  stats_ = CoherenceStats{};
}

std::uint64_t SmpCaches::total_misses() const {
  std::uint64_t total = 0;
  for (const Cache& cache : l1_) total += cache.stats().misses;
  return total;
}

std::uint64_t SmpCaches::total_accesses() const {
  std::uint64_t total = 0;
  for (const Cache& cache : l1_) total += cache.stats().accesses();
  return total;
}

double SmpCaches::miss_rate() const {
  const std::uint64_t a = total_accesses();
  return a == 0 ? 0.0 : static_cast<double>(total_misses()) / static_cast<double>(a);
}

}  // namespace rla::sim
