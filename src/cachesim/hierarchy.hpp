#pragma once

// Single-core memory hierarchy: TLB + L1 + L2, trace-driven.

#include <cstdint>

#include "cachesim/cache.hpp"
#include "cachesim/tlb.hpp"

namespace rla::sim {

struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 64, 2, true};   ///< small, low associativity: the
                                            ///< conflict-prone level
  CacheConfig l2{512 * 1024, 64, 8, false};
  TlbConfig tlb{};
  /// Simple latency model (cycles) for the aggregate cost metric.
  std::uint32_t l1_hit_cycles = 1;
  std::uint32_t l2_hit_cycles = 10;
  std::uint32_t memory_cycles = 80;
  std::uint32_t tlb_miss_cycles = 30;
};

/// One memory access: byte address + read/write.
struct MemRef {
  std::uint64_t addr;
  bool write;
};

/// Point-in-time copy of the hierarchy's headline counters, for computing
/// deltas over a sub-interval of a trace (e.g. one recursion-tree node)
/// without resetting the warmed-up cache state in between.
struct HierarchySnapshot {
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t cycles = 0;

  /// Counter-wise `*this - earlier` (both from the same hierarchy, with
  /// `earlier` taken first).
  HierarchySnapshot operator-(const HierarchySnapshot& earlier) const noexcept {
    return {l1_accesses - earlier.l1_accesses, l1_misses - earlier.l1_misses,
            l2_misses - earlier.l2_misses, tlb_misses - earlier.tlb_misses,
            cycles - earlier.cycles};
  }
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  /// Run one access through TLB, L1 and (on L1 miss) L2.
  void access(std::uint64_t addr, bool write);

  void access(const MemRef& ref) { access(ref.addr, ref.write); }

  void reset();

  const Cache& l1() const noexcept { return l1_; }
  const Cache& l2() const noexcept { return l2_; }
  const Tlb& tlb() const noexcept { return tlb_; }

  /// Modeled cycles consumed so far.
  std::uint64_t cycles() const noexcept { return cycles_; }

  /// Copy the headline counters (see HierarchySnapshot).
  HierarchySnapshot snapshot() const noexcept {
    return {l1_.stats().accesses(), l1_.stats().misses, l2_.stats().misses,
            tlb_.stats().misses, cycles_};
  }

  /// Modeled average cycles per access.
  double cpa() const noexcept {
    const std::uint64_t a = l1_.stats().accesses();
    return a == 0 ? 0.0 : static_cast<double>(cycles_) / static_cast<double>(a);
  }

 private:
  HierarchyConfig config_;
  Cache l1_;
  Cache l2_;
  Tlb tlb_;
  std::uint64_t cycles_ = 0;
};

}  // namespace rla::sim
