#pragma once

// Trace-driven set-associative cache model with LRU replacement and
// 3C miss classification (Hill & Smith, paper ref. [19]).
//
// The paper attributes the canonical layout's performance swings to
// self-interference (conflict) misses and false sharing on a real SMP; this
// simulator is the substitution substrate that lets us reproduce those
// mechanisms on hardware we don't have (see DESIGN.md).  Conflict misses are
// identified the standard way: a miss that a fully-associative LRU cache of
// equal capacity would have hit.

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rla::sim {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;   ///< must be a power of two
  std::uint32_t associativity = 4; ///< ways per set
  bool classify_misses = false;    ///< keep a fully-associative shadow (3C)

  std::uint64_t num_lines() const noexcept { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const noexcept { return num_lines() / associativity; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // 3C classification (only when classify_misses):
  std::uint64_t compulsory_misses = 0;
  std::uint64_t capacity_misses = 0;
  std::uint64_t conflict_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  std::uint64_t accesses() const noexcept { return hits + misses; }
  double miss_rate() const noexcept {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(a);
  }
};

/// One level of cache. Addresses are byte addresses.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Access one byte address; returns true on hit. `write` marks the line
  /// dirty (write-allocate, write-back).
  bool access(std::uint64_t addr, bool write);

  /// Invalidate the line containing addr if present (coherence hook);
  /// returns true if a line was dropped.
  bool invalidate(std::uint64_t addr);

  /// Is the line containing addr resident?
  bool contains(std::uint64_t addr) const;

  void reset();

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr / config_.line_bytes;
  }

  /// Fully-associative LRU shadow for 3C classification.
  struct Shadow {
    std::uint64_t capacity_lines = 0;
    std::list<std::uint64_t> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> where;
    bool access(std::uint64_t line);  // returns hit
  };

  CacheConfig config_;
  std::vector<Way> ways_;  // num_sets * associativity
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  Shadow shadow_;
  std::unordered_set<std::uint64_t> ever_seen_;  // for compulsory classification
};

}  // namespace rla::sim
