#include "cachesim/cache.hpp"

#include <stdexcept>

#include "layout/bits.hpp"

namespace rla::sim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (!bits::is_pow2(config.line_bytes) || config.associativity == 0 ||
      config.size_bytes % (static_cast<std::uint64_t>(config.line_bytes) *
                           config.associativity) !=
          0) {
    throw std::invalid_argument("Cache: inconsistent geometry");
  }
  if (!bits::is_pow2(config_.num_sets())) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  ways_.resize(config_.num_sets() * config_.associativity);
  shadow_.capacity_lines = config_.num_lines();
}

bool Cache::Shadow::access(std::uint64_t line) {
  auto it = where.find(line);
  if (it != where.end()) {
    lru.splice(lru.begin(), lru, it->second);
    return true;
  }
  lru.push_front(line);
  where[line] = lru.begin();
  if (lru.size() > capacity_lines) {
    where.erase(lru.back());
    lru.pop_back();
  }
  return false;
}

bool Cache::access(std::uint64_t addr, bool write) {
  const std::uint64_t line = line_of(addr);
  const std::uint64_t set = line & (config_.num_sets() - 1);
  const std::uint64_t tag = line >> bits::floor_log2(config_.num_sets());
  Way* base = &ways_[set * config_.associativity];
  ++tick_;

  bool shadow_hit = false;
  bool first_touch = false;
  if (config_.classify_misses) {
    first_touch = ever_seen_.insert(line).second;
    shadow_hit = shadow_.access(line);
  }

  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      way.dirty = way.dirty || write;
      ++stats_.hits;
      return true;
    }
  }

  ++stats_.misses;
  if (config_.classify_misses) {
    if (first_touch) {
      ++stats_.compulsory_misses;
    } else if (shadow_hit) {
      ++stats_.conflict_misses;  // full associativity would have hit
    } else {
      ++stats_.capacity_misses;
    }
  }

  // Victim: invalid way if any, else LRU.
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.last_use < victim->last_use) victim = &way;
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  victim->dirty = write;
  return false;
}

bool Cache::invalidate(std::uint64_t addr) {
  const std::uint64_t line = line_of(addr);
  const std::uint64_t set = line & (config_.num_sets() - 1);
  const std::uint64_t tag = line >> bits::floor_log2(config_.num_sets());
  Way* base = &ways_[set * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.valid = false;
      way.dirty = false;
      return true;
    }
  }
  return false;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t line = line_of(addr);
  const std::uint64_t set = line & (config_.num_sets() - 1);
  const std::uint64_t tag = line >> bits::floor_log2(config_.num_sets());
  const Way* base = &ways_[set * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::reset() {
  for (Way& way : ways_) way = Way{};
  tick_ = 0;
  stats_ = CacheStats{};
  shadow_.lru.clear();
  shadow_.where.clear();
  ever_seen_.clear();
}

}  // namespace rla::sim
