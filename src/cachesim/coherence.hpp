#pragma once

// Multi-core coherence model with false-sharing accounting (paper §3:
// "a single shared memory block can contain elements from two quadrants,
// and thus be written by the two processors computing those quadrants.
// This leads to false sharing.").
//
// Each core has a private L1; an MSI-style invalidation protocol keeps them
// coherent. When a write by core P invalidates core Q's copy of a line, the
// invalidation is classified as FALSE sharing if Q never touched the word P
// wrote (word-granularity access masks per cached line), TRUE sharing
// otherwise. This is the standard word-mask classification.

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"

namespace rla::sim {

struct CoherenceStats {
  std::uint64_t invalidations = 0;
  std::uint64_t true_sharing_invalidations = 0;
  std::uint64_t false_sharing_invalidations = 0;
  std::uint64_t coherence_misses = 0;  ///< misses on lines lost to invalidation
};

struct SmpConfig {
  std::uint32_t cores = 4;
  CacheConfig l1{32 * 1024, 64, 2, false};
  std::uint32_t word_bytes = 8;  ///< granularity of false-sharing masks
};

/// A timestamped access from one core (traces are interleaved by the caller
/// to model concurrent execution).
struct CoreRef {
  std::uint64_t addr;
  std::uint32_t core;
  bool write;
};

class SmpCaches {
 public:
  explicit SmpCaches(const SmpConfig& config);

  void access(const CoreRef& ref);

  void reset();

  const Cache& l1(std::uint32_t core) const { return l1_[core]; }
  const CoherenceStats& stats() const noexcept { return stats_; }
  const SmpConfig& config() const noexcept { return config_; }

  /// Aggregate L1 miss count across cores.
  std::uint64_t total_misses() const;
  std::uint64_t total_accesses() const;
  double miss_rate() const;

 private:
  struct LineState {
    std::uint64_t words_touched = 0;  ///< bitmask per cached copy, per core
    bool valid = false;
  };

  std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr / config_.l1.line_bytes;
  }

  SmpConfig config_;
  std::vector<Cache> l1_;
  // Per-core word-touch masks for lines currently cached by that core.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> touched_;
  // Lines a core lost to an invalidation since it last held them (to count
  // coherence misses distinctly from plain misses).
  std::vector<std::unordered_set<std::uint64_t>> lost_;
  CoherenceStats stats_;
};

}  // namespace rla::sim
