#pragma once

// Determinacy-race detector for the TaskGroup fork-join runtime, in the
// style of SP-bags (Feng & Leiserson, SPAA 1997) — the algorithm behind
// Cilk's Nondeterminator, which is the natural correctness tool for this
// reproduction's Cilk-style recursions.
//
// A *determinacy race* exists when two logically parallel tasks access the
// same location and at least one writes: the program's result then depends
// on the schedule. The detector runs the program once under the serial
// depth-first schedule (which our 0-thread WorkerPool executes natively),
// maintains the SP-bags series/parallel classification of every completed
// task relative to the currently running one, and checks each annotated
// memory access against a shadow table of last-reader/last-writer
// provenance. If that single run reports no race, then — because the SP
// relation is schedule-independent — NO schedule of the same DAG has a
// race: this is a certification, not a test.
//
// Usage:
//
//   rla::analysis::RaceDetector det;          // standalone checker API
//   {
//     rla::analysis::ScopedDetection on(det); // attach to this thread
//     ... run fork-join code on a serial WorkerPool ...
//   }
//   det.races();                              // deduplicated reports
//
// or, for a whole gemm call, set GemmConfig::detect_races = true and read
// the result from GemmProfile (races / race_reports / race_certified).
//
// What "race-free" means here: every *annotated* access (see
// annotations.hpp; the hot memory paths of the recursion, quadrant adds,
// layout conversion and the zero-tile scan are annotated) of every task
// spawned on the attached thread is involved in no determinacy race. The
// annotations only exist when the build sets RLA_RACE_DETECT=ON;
// certified() reports false in uninstrumented builds, where the detector
// can still be driven through this API for its own bookkeeping tests.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/annotations.hpp"
#include "analysis/sp_bags.hpp"

namespace rla::analysis {

/// True when the library was built with RLA_RACE_DETECT=ON, i.e. the
/// RLA_RACE_READ/WRITE annotations in the hot paths are live.
bool instrumented() noexcept;

struct DetectorOptions {
  /// Bytes per shadow cell (power of two). The default of one double gives
  /// exact element provenance; coarser settings trade false sharing of
  /// cells (possible false positives, never false negatives) for a smaller
  /// table.
  std::size_t granularity = sizeof(double);

  /// Full reports kept (distinct races are still *counted* past the cap).
  std::size_t max_reports = 64;
};

/// One side of a race: which annotated site touched which address from
/// which task.
struct RaceAccess {
  std::uintptr_t addr = 0;       ///< first conflicting byte (cell-aligned)
  bool write = false;
  const Site* site = nullptr;    ///< static annotation site (file/line/label)
  std::uint32_t task = 0;        ///< task id within this detector
  std::string task_path;         ///< spawn path, e.g. "R.2.0.5"
};

/// A detected determinacy race: the recorded prior access and the current
/// one are logically parallel and touch the same shadow cell.
struct RaceReport {
  RaceAccess prior;
  RaceAccess current;
  std::string to_string() const;
};

class RaceDetector {
 public:
  explicit RaceDetector(DetectorOptions opts = {});
  ~RaceDetector();

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // ---- fork-join structure (normally driven by the TaskGroup hooks; public
  // so tests and custom harnesses can replay a DAG by hand) ----

  /// A task with spawn index `seq` of `group` begins (depth-first: its body
  /// runs to completion before the spawner continues).
  void task_begin(const void* group, std::uint64_t seq);
  /// ... and ends, moving its S-bag into the group's P-bag.
  void task_end(const void* group);
  /// wait() on `group`: its P-bag drains into the waiting task's S-bag.
  void group_sync(const void* group);
  /// The group's storage is being reused/destroyed; drop state keyed on it.
  void group_destroyed(const void* group);
  /// A spawn bypassed the serial schedule; certification is void.
  void note_parallel_schedule() noexcept;
  /// A buffer was allocated or freed: clear shadow provenance in the range
  /// so recycled memory is not blamed for its previous owner's accesses.
  void clear_range(const void* ptr, std::size_t bytes);

  // ---- memory accesses (normally via the RLA_RACE_* macros) ----

  void record(const Site* site, const void* ptr, std::size_t bytes, bool write);
  void record_strided(const Site* site, const void* ptr, std::size_t run_bytes,
                      std::size_t stride_bytes, std::size_t runs, bool write);

  // ---- results ----

  /// Distinct races found (deduplicated by the pair of annotation sites and
  /// access kinds; each repeated cell hit of a known race is not recounted).
  std::uint64_t race_count() const noexcept;

  /// Kept reports, at most DetectorOptions::max_reports.
  const std::vector<RaceReport>& races() const noexcept;

  bool schedule_violation() const noexcept;

  /// The strong claim: the run was instrumented, stayed on the serial
  /// depth-first schedule, observed at least one access, and found no race
  /// — so every schedule of the executed DAG is determinate.
  bool certified() const noexcept;

  std::uint64_t reads() const noexcept;
  std::uint64_t writes() const noexcept;
  /// Shadow cells currently holding provenance (certification breadth).
  std::uint64_t cells_tracked() const noexcept;
  /// Tasks created (root included).
  std::uint32_t task_count() const noexcept;
  /// Id of the task currently executing on the attached thread.
  std::uint32_t current_task() const noexcept;
  /// Spawn path of a task: "R" for the root, then ".seq" per generation.
  std::string task_path(std::uint32_t id) const;

 private:
  friend class ScopedDetection;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Attaches a detector to the calling thread for the enclosing scope (the
/// thread that runs the serial schedule). Nesting restores the previous
/// detector on destruction.
class ScopedDetection {
 public:
  explicit ScopedDetection(RaceDetector& detector) noexcept
      : previous_(detail::current_detector()) {
    detail::set_current_detector(&detector);
  }
  ~ScopedDetection() { detail::set_current_detector(previous_); }

  ScopedDetection(const ScopedDetection&) = delete;
  ScopedDetection& operator=(const ScopedDetection&) = delete;

 private:
  RaceDetector* previous_;
};

}  // namespace rla::analysis
