#include "analysis/sp_bags.hpp"

namespace rla::analysis {

std::uint32_t SpBags::make_set() {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{id, 0, false});
  return id;
}

std::uint32_t SpBags::find(std::uint32_t x) noexcept {
  while (nodes_[x].parent != x) {
    nodes_[x].parent = nodes_[nodes_[x].parent].parent;  // path halving
    x = nodes_[x].parent;
  }
  return x;
}

std::uint32_t SpBags::merge(std::uint32_t into, std::uint32_t from,
                            bool tag_p) noexcept {
  std::uint32_t a = find(into);
  std::uint32_t b = find(from);
  if (a == b) {
    nodes_[a].is_p = tag_p;
    return a;
  }
  if (nodes_[a].rank < nodes_[b].rank) {
    const std::uint32_t t = a;
    a = b;
    b = t;
  }
  nodes_[b].parent = a;
  if (nodes_[a].rank == nodes_[b].rank) ++nodes_[a].rank;
  nodes_[a].is_p = tag_p;
  return a;
}

void SpBags::set_p(std::uint32_t x, bool tag_p) noexcept {
  nodes_[find(x)].is_p = tag_p;
}

}  // namespace rla::analysis
