#include "analysis/race_detect.hpp"

#include <array>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

namespace rla::analysis {

namespace detail {
thread_local RaceDetector* tl_detector = nullptr;

RaceDetector* current_detector() noexcept { return tl_detector; }

void set_current_detector(RaceDetector* detector) noexcept {
  tl_detector = detector;
}
}  // namespace detail

bool instrumented() noexcept {
#if defined(RLA_RACE_DETECT) && RLA_RACE_DETECT
  return true;
#else
  return false;
#endif
}

namespace {

constexpr std::uint32_t kNoTask = 0xFFFFFFFFu;

/// Shadow cells per page: with the default 8-byte granularity one page
/// covers 4 KiB of traced memory, matching the allocator's page alignment.
constexpr std::size_t kPageCells = 512;

constexpr unsigned log2_of(std::size_t pow2) noexcept {
  unsigned r = 0;
  while (pow2 > 1) {
    pow2 >>= 1;
    ++r;
  }
  return r;
}

struct Cell {
  std::uint32_t writer = kNoTask;
  std::uint32_t reader = kNoTask;
  const Site* writer_site = nullptr;
  const Site* reader_site = nullptr;
};

struct Page {
  std::array<Cell, kPageCells> cells;
};

}  // namespace

struct RaceDetector::Impl {
  DetectorOptions opts;
  unsigned shift;  ///< log2(granularity)

  SpBags bags;
  struct Task {
    std::uint32_t parent;
    std::uint64_t seq;
  };
  std::vector<Task> tasks;          ///< indexed by task id (== bag element)
  std::vector<std::uint32_t> stack; ///< active tasks; back() is current
  std::unordered_map<const void*, std::uint32_t> group_pbag;

  std::unordered_map<std::uintptr_t, std::unique_ptr<Page>> pages;
  std::uintptr_t cached_key = ~std::uintptr_t{0};
  Page* cached_page = nullptr;

  std::vector<RaceReport> reports;
  /// Dedup key: (prior site, current site, prior kind, current kind).
  std::set<std::tuple<const Site*, const Site*, bool, bool>> seen_races;
  std::uint64_t race_count = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  bool schedule_violation = false;

  explicit Impl(DetectorOptions o) : opts(o), shift(log2_of(o.granularity)) {
    tasks.push_back(Task{kNoTask, 0});
    bags.make_set();  // task 0 = root "R", its own S-bag
    stack.push_back(0);
  }

  Cell& cell(std::uintptr_t index) {
    const std::uintptr_t key = index / kPageCells;
    if (key != cached_key) {
      auto& slot = pages[key];
      if (slot == nullptr) slot = std::make_unique<Page>();
      cached_key = key;
      cached_page = slot.get();
    }
    return cached_page->cells[index % kPageCells];
  }

  std::string path(std::uint32_t id) const {
    std::vector<std::uint64_t> seqs;
    for (std::uint32_t t = id; tasks[t].parent != kNoTask; t = tasks[t].parent) {
      seqs.push_back(tasks[t].seq);
    }
    std::string out = "R";
    for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
      out += '.';
      out += std::to_string(*it);
    }
    return out;
  }

  void report(std::uintptr_t index, std::uint32_t prior_task,
              const Site* prior_site, bool prior_write, const Site* cur_site,
              bool cur_write) {
    const auto key = std::make_tuple(prior_site, cur_site, prior_write, cur_write);
    if (!seen_races.insert(key).second) return;  // same race, another cell
    ++race_count;
    if (reports.size() >= opts.max_reports) return;
    RaceReport r;
    r.prior.addr = index << shift;
    r.prior.write = prior_write;
    r.prior.site = prior_site;
    r.prior.task = prior_task;
    r.prior.task_path = path(prior_task);
    r.current.addr = index << shift;
    r.current.write = cur_write;
    r.current.site = cur_site;
    r.current.task = stack.back();
    r.current.task_path = path(stack.back());
    reports.push_back(std::move(r));
  }

  /// The SP-bags access checks. A write races with any logically parallel
  /// prior reader or writer; a read races with a logically parallel prior
  /// writer. "Logically parallel" == the prior task's bag is a P-bag.
  void touch(const Site* site, std::uintptr_t index, bool write) {
    Cell& c = cell(index);
    const std::uint32_t cur = stack.back();
    if (write) {
      if (c.reader != kNoTask && bags.is_p_bag(c.reader)) {
        report(index, c.reader, c.reader_site, false, site, true);
      }
      if (c.writer != kNoTask && bags.is_p_bag(c.writer)) {
        report(index, c.writer, c.writer_site, true, site, true);
      }
      c.writer = cur;
      c.writer_site = site;
    } else {
      if (c.writer != kNoTask && bags.is_p_bag(c.writer)) {
        report(index, c.writer, c.writer_site, true, site, false);
      }
      // Keep the *serial* reader: a reader in an S-bag can be overwritten by
      // the current task, but a parallel reader must stay visible so a later
      // write still races with it.
      if (c.reader == kNoTask || !bags.is_p_bag(c.reader)) {
        c.reader = cur;
        c.reader_site = site;
      }
    }
  }

  void record(const Site* site, const void* ptr, std::size_t bytes, bool write) {
    if (bytes == 0) return;
    const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
    const std::uintptr_t first = addr >> shift;
    const std::uintptr_t last = (addr + bytes - 1) >> shift;
    for (std::uintptr_t i = first; i <= last; ++i) touch(site, i, write);
    if (write) {
      ++writes;
    } else {
      ++reads;
    }
  }
};

RaceDetector::RaceDetector(DetectorOptions opts) {
  if (opts.granularity == 0 ||
      (opts.granularity & (opts.granularity - 1)) != 0) {
    opts.granularity = sizeof(double);
  }
  impl_ = std::make_unique<Impl>(opts);
}

RaceDetector::~RaceDetector() = default;

void RaceDetector::task_begin(const void* group, std::uint64_t seq) {
  (void)group;
  const std::uint32_t id = impl_->bags.make_set();  // singleton S-bag
  impl_->tasks.push_back(Impl::Task{impl_->stack.back(), seq});
  impl_->stack.push_back(id);
}

void RaceDetector::task_end(const void* group) {
  if (impl_->stack.size() <= 1) return;  // unmatched end; ignore defensively
  const std::uint32_t id = impl_->stack.back();
  impl_->stack.pop_back();
  // The completed child is now logically parallel with everything its
  // spawner does until the group's wait(): move its bag into the group's
  // P-bag.
  auto [it, inserted] = impl_->group_pbag.try_emplace(group, id);
  if (inserted) {
    impl_->bags.set_p(id, true);
  } else {
    it->second = impl_->bags.merge(it->second, id, /*tag_p=*/true);
  }
}

void RaceDetector::group_sync(const void* group) {
  const auto it = impl_->group_pbag.find(group);
  if (it == impl_->group_pbag.end()) return;
  // wait() serializes the group's children with the waiting task: the P-bag
  // drains into the waiter's S-bag.
  impl_->bags.merge(impl_->stack.back(), it->second, /*tag_p=*/false);
  impl_->group_pbag.erase(it);
}

void RaceDetector::group_destroyed(const void* group) {
  impl_->group_pbag.erase(group);
}

void RaceDetector::note_parallel_schedule() noexcept {
  impl_->schedule_violation = true;
}

void RaceDetector::clear_range(const void* ptr, std::size_t bytes) {
  if (bytes == 0 || impl_->pages.empty()) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t first = addr >> impl_->shift;
  const std::uintptr_t last = (addr + bytes - 1) >> impl_->shift;
  for (std::uintptr_t i = first; i <= last;) {
    const std::uintptr_t key = i / kPageCells;
    const auto it = impl_->pages.find(key);
    const std::uintptr_t page_end = (key + 1) * kPageCells;
    if (it == impl_->pages.end()) {
      i = page_end;  // nothing traced in this page
      continue;
    }
    for (; i <= last && i < page_end; ++i) {
      it->second->cells[i % kPageCells] = Cell{};
    }
  }
}

void RaceDetector::record(const Site* site, const void* ptr, std::size_t bytes,
                          bool write) {
  impl_->record(site, ptr, bytes, write);
}

void RaceDetector::record_strided(const Site* site, const void* ptr,
                                  std::size_t run_bytes, std::size_t stride_bytes,
                                  std::size_t runs, bool write) {
  const auto* base = static_cast<const char*>(ptr);
  for (std::size_t r = 0; r < runs; ++r) {
    impl_->record(site, base + r * stride_bytes, run_bytes, write);
  }
}

std::uint64_t RaceDetector::race_count() const noexcept {
  return impl_->race_count;
}

const std::vector<RaceReport>& RaceDetector::races() const noexcept {
  return impl_->reports;
}

bool RaceDetector::schedule_violation() const noexcept {
  return impl_->schedule_violation;
}

bool RaceDetector::certified() const noexcept {
  return instrumented() && !impl_->schedule_violation &&
         impl_->race_count == 0 && impl_->reads + impl_->writes > 0;
}

std::uint64_t RaceDetector::reads() const noexcept { return impl_->reads; }

std::uint64_t RaceDetector::writes() const noexcept { return impl_->writes; }

std::uint64_t RaceDetector::cells_tracked() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [key, page] : impl_->pages) {
    (void)key;
    for (const Cell& c : page->cells) {
      if (c.writer != kNoTask || c.reader != kNoTask) ++n;
    }
  }
  return n;
}

std::uint32_t RaceDetector::task_count() const noexcept {
  return static_cast<std::uint32_t>(impl_->tasks.size());
}

std::uint32_t RaceDetector::current_task() const noexcept {
  return impl_->stack.back();
}

std::string RaceDetector::task_path(std::uint32_t id) const {
  return impl_->path(id);
}

std::string RaceReport::to_string() const {
  std::ostringstream out;
  out << "determinacy race at 0x" << std::hex << current.addr << std::dec << ": "
      << (prior.write ? "write" : "read") << " by task " << prior.task_path
      << " at " << (prior.site != nullptr ? prior.site->file : "?") << ":"
      << (prior.site != nullptr ? prior.site->line : 0) << " ("
      << (prior.site != nullptr ? prior.site->label : "?") << ") is parallel with "
      << (current.write ? "write" : "read") << " by task " << current.task_path
      << " at " << (current.site != nullptr ? current.site->file : "?") << ":"
      << (current.site != nullptr ? current.site->line : 0) << " ("
      << (current.site != nullptr ? current.site->label : "?") << ")";
  return out.str();
}

namespace detail {

void record_access(const Site* site, const void* ptr, std::size_t bytes,
                   bool write) {
  tl_detector->record(site, ptr, bytes, write);
}

void record_access_strided(const Site* site, const void* ptr,
                           std::size_t run_bytes, std::size_t stride_bytes,
                           std::size_t runs, bool write) {
  tl_detector->record_strided(site, ptr, run_bytes, stride_bytes, runs, write);
}

void task_begin(const void* group, std::uint64_t seq) {
  tl_detector->task_begin(group, seq);
}

void task_end(const void* group) { tl_detector->task_end(group); }

void group_sync(const void* group) { tl_detector->group_sync(group); }

void group_destroyed(const void* group) { tl_detector->group_destroyed(group); }

void parallel_schedule() { tl_detector->note_parallel_schedule(); }

void buffer_lifetime(const void* ptr, std::size_t bytes) {
  tl_detector->clear_range(ptr, bytes);
}

}  // namespace detail

}  // namespace rla::analysis
