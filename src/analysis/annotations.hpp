#pragma once

// Instrumentation entry points of the determinacy-race detector (see
// race_detect.hpp for the detector itself and DESIGN.md §8 for the theory).
//
// Two kinds of hooks live here:
//
//  * Memory-access annotations, RLA_RACE_READ / RLA_RACE_WRITE (and their
//    strided variants). These are threaded through the hot memory paths —
//    kernels, quadrant additions, the recursion's temporaries, layout
//    conversion, the zero-tile scan — and compile to NOTHING unless the
//    build sets RLA_RACE_DETECT=ON (cmake option). A default build therefore
//    pays zero overhead for the detector's existence.
//
//  * Fork-join structure hooks (task begin/end, group sync). These are
//    always compiled into TaskGroup because their disarmed cost is a single
//    thread-local load per spawn — far off any per-element path — and
//    keeping them unconditional lets the SP-bags bookkeeping be exercised by
//    the plain test suite in every build configuration.
//
// Both kinds are routed through a thread-local "active detector" pointer:
// detection is a property of the attaching thread (SP-bags requires the
// serial depth-first schedule, so one thread is exactly the right scope).

#include <cstddef>
#include <cstdint>

namespace rla::analysis {

class RaceDetector;

/// One static access site: where an annotated read/write lives in the code.
/// Instances are function-local statics created by the macros below, so a
/// Site's address identifies the annotation for the lifetime of the process.
struct Site {
  const char* file;
  int line;
  const char* label;  ///< enclosing function name
};

namespace detail {

/// The detector attached to this thread (nullptr = detection off). Managed
/// by ScopedDetection via set_current_detector(); everything below is a
/// no-op while it is null.
///
/// Deliberately behind out-of-line accessors instead of an `extern
/// thread_local`: for cross-TU TLS reads GCC makes its -fsanitize=null
/// check consume the flags of the `addq %fs:0` address computation, and the
/// linker's mandated IE->LE relaxation rewrites that addq into a flag-
/// preserving leaq — the check then tests stale flags and raises spurious
/// "load of null pointer" reports. The defining TU accesses the variable
/// directly and is immune, so every other TU goes through these.
RaceDetector* current_detector() noexcept;
void set_current_detector(RaceDetector* detector) noexcept;

// Out-of-line slow paths (defined in race_detect.cpp). Call only when
// current_detector() is non-null.
void record_access(const Site* site, const void* ptr, std::size_t bytes,
                   bool write);
void record_access_strided(const Site* site, const void* ptr,
                           std::size_t run_bytes, std::size_t stride_bytes,
                           std::size_t runs, bool write);
void task_begin(const void* group, std::uint64_t seq);
void task_end(const void* group);
void group_sync(const void* group);
void group_destroyed(const void* group);
void parallel_schedule();
void buffer_lifetime(const void* ptr, std::size_t bytes);

}  // namespace detail

/// True while a RaceDetector is attached to the calling thread.
inline bool detection_active() noexcept {
  return detail::current_detector() != nullptr;
}

// ---- fork-join structure hooks (called by TaskGroup / WorkerPool) ----

/// A task with spawn index `seq` of `group` starts executing (serial
/// depth-first schedule: called immediately before the task body runs
/// inline).
inline void hook_task_begin(const void* group, std::uint64_t seq) {
  if (detail::current_detector() != nullptr) detail::task_begin(group, seq);
}

/// The task started by the matching hook_task_begin finished (normally or by
/// exception).
inline void hook_task_end(const void* group) {
  if (detail::current_detector() != nullptr) detail::task_end(group);
}

/// TaskGroup::wait() completed: every child of `group` is serialized with
/// the code that follows.
inline void hook_group_sync(const void* group) {
  if (detail::current_detector() != nullptr) detail::group_sync(group);
}

/// The group object is going away; forget any state keyed on its address
/// (a later group may reuse it).
inline void hook_group_destroyed(const void* group) {
  if (detail::current_detector() != nullptr) detail::group_destroyed(group);
}

/// A spawn took the parallel (deque) path while detection was active. The
/// SP-bags algorithm is only sound under the serial depth-first schedule, so
/// this invalidates certification for the attached detector.
inline void hook_parallel_spawn() {
  if (detail::current_detector() != nullptr) detail::parallel_schedule();
}

/// A heap buffer was allocated or freed. The detector clears its shadow
/// state for the range: without this, malloc recycling would attribute a
/// dead sibling task's accesses to a fresh buffer and report false races.
inline void hook_buffer_lifetime(const void* ptr, std::size_t bytes) {
  if (detail::current_detector() != nullptr) detail::buffer_lifetime(ptr, bytes);
}

}  // namespace rla::analysis

// ---- memory-access annotations ----
//
// RLA_RACE_READ(ptr, bytes) / RLA_RACE_WRITE(ptr, bytes) annotate a
// contiguous access; the _STRIDED forms annotate `runs` runs of `run_bytes`
// spaced `stride_bytes` apart (column-major blocks with a leading
// dimension). Compiled out entirely unless RLA_RACE_DETECT is defined
// non-zero, so the default build's hot loops are untouched.

#if defined(RLA_RACE_DETECT) && RLA_RACE_DETECT

#define RLA_RACE_DETAIL_CAT2_(a, b) a##b
#define RLA_RACE_DETAIL_CAT_(a, b) RLA_RACE_DETAIL_CAT2_(a, b)

#define RLA_RACE_DETAIL_ACCESS_(ptr, bytes, is_write)                         \
  do {                                                                        \
    if (::rla::analysis::detail::current_detector() != nullptr) {             \
      static const ::rla::analysis::Site RLA_RACE_DETAIL_CAT_(                \
          rla_race_site_, __LINE__){__FILE__, __LINE__, __func__};            \
      ::rla::analysis::detail::record_access(                                 \
          &RLA_RACE_DETAIL_CAT_(rla_race_site_, __LINE__), (ptr), (bytes),    \
          (is_write));                                                        \
    }                                                                         \
  } while (0)

#define RLA_RACE_DETAIL_ACCESS_STRIDED_(ptr, run, stride, runs, is_write)     \
  do {                                                                        \
    if (::rla::analysis::detail::current_detector() != nullptr) {             \
      static const ::rla::analysis::Site RLA_RACE_DETAIL_CAT_(                \
          rla_race_site_, __LINE__){__FILE__, __LINE__, __func__};            \
      ::rla::analysis::detail::record_access_strided(                         \
          &RLA_RACE_DETAIL_CAT_(rla_race_site_, __LINE__), (ptr), (run),      \
          (stride), (runs), (is_write));                                      \
    }                                                                         \
  } while (0)

#define RLA_RACE_READ(ptr, bytes) RLA_RACE_DETAIL_ACCESS_(ptr, bytes, false)
#define RLA_RACE_WRITE(ptr, bytes) RLA_RACE_DETAIL_ACCESS_(ptr, bytes, true)
#define RLA_RACE_READ_STRIDED(ptr, run_bytes, stride_bytes, runs) \
  RLA_RACE_DETAIL_ACCESS_STRIDED_(ptr, run_bytes, stride_bytes, runs, false)
#define RLA_RACE_WRITE_STRIDED(ptr, run_bytes, stride_bytes, runs) \
  RLA_RACE_DETAIL_ACCESS_STRIDED_(ptr, run_bytes, stride_bytes, runs, true)

#else  // !RLA_RACE_DETECT

#define RLA_RACE_READ(ptr, bytes) ((void)0)
#define RLA_RACE_WRITE(ptr, bytes) ((void)0)
#define RLA_RACE_READ_STRIDED(ptr, run_bytes, stride_bytes, runs) ((void)0)
#define RLA_RACE_WRITE_STRIDED(ptr, run_bytes, stride_bytes, runs) ((void)0)

#endif  // RLA_RACE_DETECT
