#pragma once

// Shadow-precision dynamic analyzer (DESIGN.md §9).
//
// The a priori bounds of error_bound.hpp certify a worst case; this module
// measures what a particular run actually did. In an instrumented build
// (-DRLA_NUMERICS=ON) every floating-point store on the gemm hot paths —
// leaf kernels, quadrant additions, layout conversion, scaling — is
// mirrored in an 80/128-bit long-double shadow accumulator keyed by the
// destination address. Because the shadow arithmetic re-reads the *shadow*
// values of the operands, the shadow result is the same computation carried
// out in extended precision: the difference between a double cell and its
// shadow is that cell's accumulated rounding error, measured (not bounded)
// to the shadow's own precision.
//
// The analyzer also counts *cancellations*: accumulation steps whose result
// is more than 2²⁶ (half the binary64 mantissa) smaller than their largest
// term. Heavy cancellation is the mechanism by which the fast algorithms'
// pre-addition differences lose componentwise accuracy, so the count is the
// observable that explains a large measured error.
//
// Usage mirrors the race detector: a thread-local "active analyzer" pointer
// managed by ScopedShadow, hooks that compile to nothing unless the build
// sets RLA_NUMERICS, and a forced serial schedule (the shadow map is
// deliberately unsynchronized — one thread is the right scope, and the
// serial schedule makes the measured rounding history deterministic).
// GemmConfig::analyze_numerics drives it for a whole gemm call and reports
// ShadowStats into GemmProfile.
//
// Robustness notes: the analyzer allocates (hash map of shadow cells); all
// hook paths are noexcept and swallow std::bad_alloc by dropping the
// affected cells and latching `lossy()`, so an instrumented run can never
// crash — at worst its measurement is marked incomplete. Hooks fire before
// the mirrored double store, so `value()` of a not-yet-tracked operand can
// fall back to the live double value.

#include <cstddef>
#include <cstdint>

namespace rla::numerics {

class ShadowAnalyzer;

namespace detail {

/// The analyzer attached to this thread (nullptr = analysis off). Managed
/// by ScopedShadow via set_current_shadow(); every hook below is a no-op
/// while it is null. Behind out-of-line accessors instead of an `extern
/// thread_local` for the same reason as analysis::detail::current_detector():
/// the linker's IE->LE TLS relaxation turns cross-TU address computations
/// into flag-preserving leaq, breaking the flags GCC's -fsanitize=null check
/// consumes and yielding spurious "load of null pointer" reports.
ShadowAnalyzer* current_shadow() noexcept;
void set_current_shadow(ShadowAnalyzer* analyzer) noexcept;

// Out-of-line mirrors (defined in shadow.cpp). Call only when
// current_shadow() is non-null; all are noexcept and OOM-safe.
void mm(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
        const double* a, std::size_t lda, const double* b, std::size_t ldb,
        double* c, std::size_t ldc) noexcept;
void set_add(double* dst, const double* a, double sb, const double* b,
             std::uint64_t n) noexcept;
void acc(double* dst, double s, const double* src, std::uint64_t n) noexcept;
void acc2(double* dst, double s1, const double* a, double s2, const double* b,
          std::uint64_t n) noexcept;
void acc3(double* dst, double s1, const double* a, double s2, const double* b,
          double s3, const double* c, std::uint64_t n) noexcept;
void acc4(double* dst, double s1, const double* a, double s2, const double* b,
          double s3, const double* c, double s4, const double* d,
          std::uint64_t n) noexcept;
void scale(double* dst, std::size_t ldd, double s, std::uint32_t m,
           std::uint32_t n) noexcept;
void copy_strided(double* dst, std::size_t ldd, const double* src,
                  std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept;
void transpose(double* dst, std::size_t ldd, const double* src,
               std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept;
/// dst[i] = alpha · src[i·src_stride] for i in [0, n) (layout conversion;
/// src_stride in elements, 1 = contiguous).
void scaled_copy(double* dst, const double* src, std::size_t src_stride,
                 double alpha, std::uint64_t n) noexcept;
/// Shadow mirror of memcpy(dst, src, n·sizeof(double)).
void move(double* dst, const double* src, std::uint64_t n) noexcept;
/// Shadow mirror of memset(ptr, 0, bytes) — and of buffer alloc/free, which
/// must drop stale shadow state for the recycled range.
void clear(const void* ptr, std::size_t bytes) noexcept;

}  // namespace detail

/// True when the library was built with RLA_NUMERICS=ON, i.e. the
/// RLA_SHADOW_* hooks in the hot paths are live and ShadowStats from an
/// analyzed run are meaningful.
bool instrumented() noexcept;

/// True while a ShadowAnalyzer is attached to the calling thread.
bool shadow_active() noexcept;

/// Result of measuring a region of doubles against its shadow.
struct ShadowStats {
  double max_abs_error = 0.0;  ///< max |double − shadow| over the region
  double max_rel_error = 0.0;  ///< max_abs_error / max |shadow| (normwise)
  std::uint32_t worst_i = 0;   ///< logical row of the max-abs-error cell
  std::uint32_t worst_j = 0;   ///< logical column of the max-abs-error cell
  std::uint64_t cells = 0;     ///< cells compared
  std::uint64_t tracked = 0;   ///< cells that had live shadow state
};

/// Address-keyed long-double shadow of every hooked store made while the
/// analyzer is attached (see ScopedShadow). Not thread-safe by design: run
/// under the serial schedule.
class ShadowAnalyzer {
 public:
  ShadowAnalyzer();
  ~ShadowAnalyzer();

  ShadowAnalyzer(const ShadowAnalyzer&) = delete;
  ShadowAnalyzer& operator=(const ShadowAnalyzer&) = delete;

  /// Shadow value of *p: the tracked extended-precision value, or the live
  /// double when the cell was never stored through a hook (e.g. freshly
  /// zeroed or caller-provided input).
  long double value(const double* p) const noexcept;

  /// Overwrite the shadow of *p (OOM drops the cell and latches lossy()).
  void set(const double* p, long double v) noexcept;

  /// Forget all shadow cells in [ptr, ptr + bytes).
  void clear_range(const void* ptr, std::size_t bytes) noexcept;

  /// Compare the column-major m×n region at (c, ldc) against its shadow.
  ShadowStats measure(const double* c, std::size_t ldc, std::uint32_t m,
                      std::uint32_t n) const noexcept;

  /// Accumulation steps whose result cancelled ≥ 2²⁶ of the largest term.
  std::uint64_t cancellations() const noexcept;
  /// Total hooked accumulation steps (denominator for the cancellation rate).
  std::uint64_t accumulations() const noexcept;
  /// Live shadow cells.
  std::uint64_t cells_tracked() const noexcept;
  /// True if an allocation failure forced the analyzer to drop state; the
  /// measurement is then a lower bound on the true error.
  bool lossy() const noexcept;

  // Internal: called by the detail:: mirrors.
  void note_accumulation(long double result, long double max_term) noexcept;

 private:
  struct Impl;
  Impl* impl_;  // manual pimpl: ctor must not throw after alloc succeeds
};

/// Attaches an analyzer to the calling thread for the enclosing scope.
/// Nesting restores the previous analyzer on destruction.
class ScopedShadow {
 public:
  explicit ScopedShadow(ShadowAnalyzer& analyzer) noexcept
      : previous_(detail::current_shadow()) {
    detail::set_current_shadow(&analyzer);
  }
  ~ScopedShadow() { detail::set_current_shadow(previous_); }

  ScopedShadow(const ScopedShadow&) = delete;
  ScopedShadow& operator=(const ScopedShadow&) = delete;

 private:
  ShadowAnalyzer* previous_;
};

}  // namespace rla::numerics

// ---- shadow hooks ----
//
// Placed immediately BEFORE the double-precision operation they mirror (the
// shadow pass must observe operand addresses while `value()` can still fall
// back to the pre-store doubles). Compiled out entirely unless RLA_NUMERICS
// is defined non-zero, so default-build hot loops are untouched.

#if defined(RLA_NUMERICS) && RLA_NUMERICS

#define RLA_SHADOW_HOOK_(call)                                      \
  do {                                                              \
    if (::rla::numerics::detail::current_shadow() != nullptr) {     \
      ::rla::numerics::detail::call;                                \
    }                                                               \
  } while (0)

#else  // !RLA_NUMERICS

#define RLA_SHADOW_HOOK_(call) ((void)0)

#endif  // RLA_NUMERICS

#define RLA_SHADOW_MM(m, n, k, alpha, a, lda, b, ldb, c, ldc) \
  RLA_SHADOW_HOOK_(mm((m), (n), (k), (alpha), (a), (lda), (b), (ldb), (c), (ldc)))
#define RLA_SHADOW_SET_ADD(dst, a, sb, b, n) \
  RLA_SHADOW_HOOK_(set_add((dst), (a), (sb), (b), (n)))
#define RLA_SHADOW_ACC(dst, s, src, n) \
  RLA_SHADOW_HOOK_(acc((dst), (s), (src), (n)))
#define RLA_SHADOW_ACC2(dst, s1, a, s2, b, n) \
  RLA_SHADOW_HOOK_(acc2((dst), (s1), (a), (s2), (b), (n)))
#define RLA_SHADOW_ACC3(dst, s1, a, s2, b, s3, c, n) \
  RLA_SHADOW_HOOK_(acc3((dst), (s1), (a), (s2), (b), (s3), (c), (n)))
#define RLA_SHADOW_ACC4(dst, s1, a, s2, b, s3, c, s4, d, n) \
  RLA_SHADOW_HOOK_(acc4((dst), (s1), (a), (s2), (b), (s3), (c), (s4), (d), (n)))
#define RLA_SHADOW_SCALE(dst, ldd, s, m, n) \
  RLA_SHADOW_HOOK_(scale((dst), (ldd), (s), (m), (n)))
#define RLA_SHADOW_COPY_STRIDED(dst, ldd, src, lds, m, n) \
  RLA_SHADOW_HOOK_(copy_strided((dst), (ldd), (src), (lds), (m), (n)))
#define RLA_SHADOW_TRANSPOSE(dst, ldd, src, lds, m, n) \
  RLA_SHADOW_HOOK_(transpose((dst), (ldd), (src), (lds), (m), (n)))
#define RLA_SHADOW_SCALED_COPY(dst, src, src_stride, alpha, n) \
  RLA_SHADOW_HOOK_(scaled_copy((dst), (src), (src_stride), (alpha), (n)))
#define RLA_SHADOW_MOVE(dst, src, n) \
  RLA_SHADOW_HOOK_(move((dst), (src), (n)))
#define RLA_SHADOW_CLEAR(ptr, bytes) \
  RLA_SHADOW_HOOK_(clear((ptr), (bytes)))
