#include "analysis/numerics/error_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "layout/bits.hpp"

namespace rla::numerics {

namespace {

constexpr double kUnitRoundoff = 0x1p-53;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Padded inner dimension of the classical part: ⌈k/2^depth⌉ tile columns,
/// re-expanded over the levels the standard recursion still owns.
std::uint64_t classical_inner(std::uint32_t k, int depth, int fast_levels) {
  const std::uint64_t tile_k =
      std::max<std::uint64_t>(1, bits::ceil_div(k, std::uint64_t{1} << depth));
  return tile_k << (depth - fast_levels);
}

}  // namespace

double unit_roundoff() noexcept { return kUnitRoundoff; }

double gamma_factor(std::uint64_t k) noexcept {
  const double ku = static_cast<double>(k) * kUnitRoundoff;
  if (ku >= 1.0) return kInf;
  return ku / (1.0 - ku);
}

ErrorBound error_bound(Algorithm algo, std::uint32_t m, std::uint32_t n,
                       std::uint32_t k, int depth,
                       int fast_cutoff_level) noexcept {
  (void)m;
  (void)n;
  ErrorBound b;
  if (k == 0) return b;
  depth = std::max(depth, 0);

  if (algo == Algorithm::Standard) {
    // Classical summation bound; the recursion's tree-ordered accumulation
    // only tightens it, so γ_k stays a valid ceiling at every depth.
    b.fast_levels = 0;
    b.leaf_k = k;
    b.componentwise = gamma_factor(k) / kUnitRoundoff;
    // (|A||B|)_ij ≤ k·‖A‖_max·‖B‖_max turns the componentwise bound normwise.
    b.constant = static_cast<double>(k) * b.componentwise;
    b.relative = b.constant * kUnitRoundoff;
    return b;
  }

  const int fast_levels =
      std::clamp(depth - std::max(fast_cutoff_level, 0), 0, depth);
  const double k0 = static_cast<double>(classical_inner(k, depth, fast_levels));
  const double big_k = std::ldexp(k0, fast_levels);  // padded full inner dim
  const double add = algo == Algorithm::Strassen ? 5.0 : 6.0;
  const double amp = algo == Algorithm::Strassen ? 12.0 : 18.0;
  b.fast_levels = fast_levels;
  b.leaf_k = static_cast<std::uint32_t>(
      std::min<double>(k0, std::numeric_limits<std::uint32_t>::max()));
  b.componentwise = kInf;  // fast algorithms admit no componentwise bound
  b.constant =
      (k0 * k0 + add * k0) * std::pow(amp, fast_levels) - add * big_k;
  b.relative = b.constant * kUnitRoundoff;
  return b;
}

int max_fast_levels(Algorithm algo, std::uint32_t m, std::uint32_t n,
                    std::uint32_t k, int depth, double budget) noexcept {
  depth = std::max(depth, 0);
  for (int levels = depth; levels >= 0; --levels) {
    const ErrorBound b = error_bound(algo, m, n, k, depth, depth - levels);
    if (b.relative <= budget) return levels;
  }
  return -1;
}

double factorization_bound(std::uint32_t n, double growth) noexcept {
  if (n == 0) return 0.0;
  // |A − L·U| ≤ γ_n |L||U| componentwise (Higham Thm 9.3; γ_{n+1} for
  // Cholesky is absorbed by the +1). Normwise: ‖|L||U|‖_max ≤ n·growth·‖A‖.
  const double g = std::max(growth, 1.0);
  return gamma_factor(std::uint64_t{n} + 1) * static_cast<double>(n) * g;
}

std::string quadrant_path(std::uint32_t i, std::uint32_t j, std::uint32_t rows,
                          std::uint32_t cols, int levels) {
  static const char* const kNames[4] = {"NW", "SW", "NE", "SE"};
  std::string path = "R";
  for (int level = 0; level < levels && rows > 1 && cols > 1; ++level) {
    const std::uint32_t hr = (rows + 1) / 2, hc = (cols + 1) / 2;
    const int south = i >= hr ? 1 : 0;
    const int east = j >= hc ? 1 : 0;
    path += '.';
    path += kNames[2 * east + south];
    if (south != 0) i -= hr;
    if (east != 0) j -= hc;
    rows = south != 0 ? rows - hr : hr;
    cols = east != 0 ? cols - hc : hc;
  }
  return path;
}

}  // namespace rla::numerics
