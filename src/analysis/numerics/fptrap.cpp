#include "analysis/numerics/fptrap.hpp"

#include <atomic>
#include <cfenv>

namespace rla::numerics {

namespace {

std::atomic<int> g_armed{0};
std::atomic<unsigned> g_flags{0};

constexpr int kWatchedFe = FE_INVALID | FE_OVERFLOW | FE_DIVBYZERO;

unsigned fe_to_mask(int fe) noexcept {
  unsigned mask = 0;
  if ((fe & FE_INVALID) != 0) mask |= kFpInvalid;
  if ((fe & FE_OVERFLOW) != 0) mask |= kFpOverflow;
  if ((fe & FE_DIVBYZERO) != 0) mask |= kFpDivByZero;
  return mask;
}

/// Read-and-clear this thread's watched flags, as a hazard mask.
unsigned take_local() noexcept {
  const int fe = std::fetestexcept(kWatchedFe);
  if (fe != 0) std::feclearexcept(fe);
  return fe_to_mask(fe);
}

}  // namespace

void fp_capture_arm() noexcept {
  if (g_armed.fetch_add(1, std::memory_order_relaxed) == 0) {
    // Start from a clean slate: pre-existing sticky flags (the caller's own
    // arithmetic, earlier library calls) are not this gemm's hazards.
    std::feclearexcept(kWatchedFe);
    g_flags.store(0, std::memory_order_relaxed);
  }
}

void fp_capture_disarm() noexcept {
  g_armed.fetch_sub(1, std::memory_order_relaxed);
}

bool fp_capture_armed() noexcept {
  return g_armed.load(std::memory_order_relaxed) > 0;
}

void fp_poll() noexcept {
  if (!fp_capture_armed()) return;
  const unsigned mask = take_local();
  if (mask != 0) g_flags.fetch_or(mask, std::memory_order_relaxed);
}

unsigned fp_drain() noexcept {
  if (!fp_capture_armed()) return 0;
  const unsigned local = take_local();
  return g_flags.exchange(0, std::memory_order_relaxed) | local;
}

std::string fp_describe(unsigned mask) {
  if (mask == 0) return "none";
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if ((mask & kFpInvalid) != 0) append("invalid");
  if ((mask & kFpOverflow) != 0) append("overflow");
  if ((mask & kFpDivByZero) != 0) append("divzero");
  return out;
}

bool ScopedTraps::supported() noexcept {
#if defined(__GLIBC__)
  return true;
#else
  return false;
#endif
}

ScopedTraps::ScopedTraps(unsigned mask) noexcept {
#if defined(__GLIBC__)
  int fe = 0;
  if ((mask & kFpInvalid) != 0) fe |= FE_INVALID;
  if ((mask & kFpOverflow) != 0) fe |= FE_OVERFLOW;
  if ((mask & kFpDivByZero) != 0) fe |= FE_DIVBYZERO;
  std::feclearexcept(fe);
  if (feenableexcept(fe) != -1) enabled_ = fe;
#else
  (void)mask;
#endif
}

ScopedTraps::~ScopedTraps() {
#if defined(__GLIBC__)
  if (enabled_ != 0) fedisableexcept(enabled_);
#endif
}

}  // namespace rla::numerics
