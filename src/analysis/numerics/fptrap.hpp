#pragma once

// FP-hazard detection for the gemm driver (DESIGN.md §9).
//
// The fast algorithms are not just less accurate — they can manufacture
// hazards the classical algorithm would not: pre-addition differences can
// overflow where the classical partial products do not, and an Inf − Inf in
// a quadrant add produces NaNs that Strassen's post-additions then smear
// across the whole output block. GemmConfig::fp_check makes the driver
// watch for those events and degrade to the standard algorithm.
//
// Mechanism: *flag capture*, not traps. The IEEE sticky exception flags
// (FE_INVALID / FE_OVERFLOW / FE_DIVBYZERO) are read with fetestexcept at
// phase boundaries — signal-based trapping (feenableexcept + SIGFPE) cannot
// be unwound safely across the C++ recursion and the worker pool, so it is
// reserved for the RAII ScopedTraps debug aid below (tests, death-style
// debugging). The flags are per-thread state, so worker threads poll their
// own flags after every task and OR them into a process-global atomic
// (fp_poll(), called by WorkerPool::run_node); the driver drains that
// global at each phase boundary for per-phase attribution. When disarmed
// the whole machinery costs one relaxed atomic load per task — the same
// budget as the fault-injection sites.
//
// Capture is process-global (matching the fault plan): overlapping gemm
// calls with fp_check from several threads would attribute each other's
// hazards. That is an accepted analysis-mode limitation, not a correctness
// hazard — degradation only ever *adds* a classical rerun.

#include <string>

namespace rla::numerics {

// Hazard mask bits (stable, independent of the platform's FE_* values).
inline constexpr unsigned kFpInvalid = 1u;    ///< FE_INVALID (NaN produced)
inline constexpr unsigned kFpOverflow = 2u;   ///< FE_OVERFLOW (±Inf produced)
inline constexpr unsigned kFpDivByZero = 4u;  ///< FE_DIVBYZERO

/// Arm process-wide capture: clears this thread's FE flags and the global
/// accumulator. Nestable by refcount; workers start polling when armed.
void fp_capture_arm() noexcept;

/// Drop one armed level (flags accumulated so far stay readable via
/// fp_drain until the next arm).
void fp_capture_disarm() noexcept;

/// True while at least one capture is armed.
bool fp_capture_armed() noexcept;

/// Fold the calling thread's sticky FE flags into the global accumulator
/// and clear them. No-op (one relaxed load) when disarmed. Called by the
/// worker pool after every task; safe from any thread.
void fp_poll() noexcept;

/// Poll the calling thread, then atomically take-and-clear the global
/// accumulator. The returned mask is the set of hazards raised since the
/// previous drain — the per-phase attribution primitive.
unsigned fp_drain() noexcept;

/// "invalid|overflow|divzero" rendering of a hazard mask ("none" for 0).
std::string fp_describe(unsigned mask);

/// RAII arm/disarm of capture (the driver's scoping tool).
class ScopedFpCapture {
 public:
  ScopedFpCapture() noexcept { fp_capture_arm(); }
  ~ScopedFpCapture() { fp_capture_disarm(); }
  ScopedFpCapture(const ScopedFpCapture&) = delete;
  ScopedFpCapture& operator=(const ScopedFpCapture&) = delete;
};

/// Hard-trap debug aid: feenableexcept(INVALID|OVERFLOW|DIVBYZERO) for the
/// enclosing scope, so the first hazard raises SIGFPE at the faulting
/// instruction (run under a debugger or a death test). glibc-only; on other
/// platforms construction is a no-op and supported() is false. Do NOT use
/// around parallel gemm in production — SIGFPE is not recoverable here.
class ScopedTraps {
 public:
  static bool supported() noexcept;

  explicit ScopedTraps(unsigned mask = kFpInvalid | kFpOverflow | kFpDivByZero) noexcept;
  ~ScopedTraps();
  ScopedTraps(const ScopedTraps&) = delete;
  ScopedTraps& operator=(const ScopedTraps&) = delete;

 private:
  int enabled_ = 0;  ///< FE_* mask we enabled (to disable on exit)
};

}  // namespace rla::numerics
