#pragma once

// A priori floating-point error-bound certifier for the three multiplication
// recursions (DESIGN.md §9).
//
// Fast matrix multiplication trades arithmetic for numerical headroom: each
// Strassen/Winograd level amplifies the forward-error constant by a fixed
// factor, so the bound is a closed-form function of the problem shape, the
// recursion depth, and the unit roundoff. This module evaluates the
// Higham-style bounds (Accuracy and Stability of Numerical Algorithms, §23)
//
//   classical:  |C − Ĉ|            ≤ γ_k |A||B|            (componentwise)
//   Strassen:   ‖C − Ĉ‖_max ≤ [(k₀² + 5k₀)·12^ℓ − 5K] u ‖A‖_max ‖B‖_max
//   Winograd:   ‖C − Ĉ‖_max ≤ [(k₀² + 6k₀)·18^ℓ − 6K] u ‖A‖_max ‖B‖_max
//
// (to first order in u), where ℓ is the number of fast-recursion levels, k₀
// the inner dimension handled classically below the switchover, K = k₀·2^ℓ
// the padded inner dimension, and γ_k = k·u/(1 − k·u). The fast algorithms
// admit no componentwise bound — the pre-addition differences destroy the
// |A||B| structure — which is exactly why the bound must be surfaced instead
// of assumed.
//
// The gemm planner consumes these bounds two ways (core/gemm.cpp):
//   * every GemmProfile reports the certified bound for the depth it ran at;
//   * GemmConfig::error_budget caps the fast-recursion levels (raising the
//     standard-recursion switchover, then abandoning the fast algorithm)
//     so a serving system gets a *certified* error ceiling, not a hope.
//
// The LU/Cholesky drivers reuse gamma_factor/factorization_bound for their
// growth-factor-aware residual bounds (src/linalg).

#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace rla::numerics {

/// Unit roundoff u of IEEE binary64 (2⁻⁵³).
double unit_roundoff() noexcept;

/// γ_k = k·u / (1 − k·u); +inf once k·u ≥ 1 (the bound model has collapsed).
double gamma_factor(std::uint64_t k) noexcept;

/// One certified a priori forward-error bound.
struct ErrorBound {
  /// Normwise constant: ‖C − Ĉ‖_max ≤ constant · u · ‖A‖_max·‖B‖_max + O(u²).
  double constant = 0.0;
  /// constant · u — the relative bound the planner compares to error_budget.
  double relative = 0.0;
  /// Componentwise factor on u·(|A||B|)_ij; +inf for Strassen/Winograd,
  /// which have no componentwise bound.
  double componentwise = 0.0;
  /// Fast-recursion levels the bound assumes (0 for Algorithm::Standard).
  int fast_levels = 0;
  /// Inner dimension handled by the classical recursion below the
  /// switchover (the k₀ of the formulas above).
  std::uint32_t leaf_k = 0;
};

/// Bound for an m×n ← m×k · k×n product run as `algo` at recursion depth
/// `depth` with the standard switchover at `fast_cutoff_level` (the
/// GemmConfig knob; fast levels = depth − cutoff, clamped to [0, depth]).
/// The model uses the padded tile geometry (tiles of ⌈k/2^depth⌉ columns),
/// so it upper-bounds the implemented recursion. depth < 0 is treated as 0.
ErrorBound error_bound(Algorithm algo, std::uint32_t m, std::uint32_t n,
                       std::uint32_t k, int depth,
                       int fast_cutoff_level = 0) noexcept;

/// Largest number of fast-recursion levels ℓ ≤ depth whose bound fits
/// `budget` (a relative bound, same scale as ErrorBound::relative).
/// Returns 0 if only the fully classical recursion fits and -1 if even that
/// exceeds the budget (the budget is infeasible for this shape).
int max_fast_levels(Algorithm algo, std::uint32_t m, std::uint32_t n,
                    std::uint32_t k, int depth, double budget) noexcept;

/// Growth-factor-aware residual bound for an n×n LU / Cholesky
/// factorization: ‖A − L·U‖_max ≤ factorization_bound(n, growth) · ‖A‖_max,
/// where growth = ‖|L||U|‖-style observed growth (max|L|·max|U| / max|A|).
/// Returns a *relative* bound (the u is folded in), matching
/// CholeskyProfile::error_bound.
double factorization_bound(std::uint32_t n, double growth) noexcept;

/// Quadrant path of logical cell (i, j) through `levels` halving steps of an
/// rows×cols block: "R" then ".NW"/".NE"/".SW"/".SE" per level (the order
/// the recursion descends). Used to report the recursion path of the
/// worst-error cell found by the shadow analyzer.
std::string quadrant_path(std::uint32_t i, std::uint32_t j, std::uint32_t rows,
                          std::uint32_t cols, int levels);

}  // namespace rla::numerics
