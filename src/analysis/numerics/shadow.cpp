#include "analysis/numerics/shadow.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <unordered_map>

namespace rla::numerics {

namespace detail {

thread_local ShadowAnalyzer* tl_shadow = nullptr;

ShadowAnalyzer* current_shadow() noexcept { return tl_shadow; }

void set_current_shadow(ShadowAnalyzer* analyzer) noexcept {
  tl_shadow = analyzer;
}

}  // namespace detail

bool instrumented() noexcept {
#if defined(RLA_NUMERICS) && RLA_NUMERICS
  return true;
#else
  return false;
#endif
}

bool shadow_active() noexcept { return detail::tl_shadow != nullptr; }

namespace {

/// A step "cancelled" when its result lost more than half the binary64
/// mantissa relative to its largest term: further accumulation into the
/// result then has fewer than 27 trustworthy leading bits.
constexpr long double kCancelRatio = 0x1p-26L;

}  // namespace

struct ShadowAnalyzer::Impl {
  std::unordered_map<const double*, long double> cells;
  std::uint64_t cancellations = 0;
  std::uint64_t accumulations = 0;
  bool lossy = false;
};

ShadowAnalyzer::ShadowAnalyzer() : impl_(new Impl) {}

ShadowAnalyzer::~ShadowAnalyzer() { delete impl_; }

long double ShadowAnalyzer::value(const double* p) const noexcept {
  const auto it = impl_->cells.find(p);
  return it != impl_->cells.end() ? it->second
                                  : static_cast<long double>(*p);
}

void ShadowAnalyzer::set(const double* p, long double v) noexcept {
  try {
    impl_->cells[p] = v;
  } catch (const std::bad_alloc&) {
    impl_->lossy = true;
  }
}

void ShadowAnalyzer::clear_range(const void* ptr, std::size_t bytes) noexcept {
  const auto* lo = static_cast<const double*>(ptr);
  const auto* hi = lo + bytes / sizeof(double);
  auto& cells = impl_->cells;
  // Range erase over a hash map is a full sweep; fine for an analysis mode
  // whose maps are matrix-sized, and it keeps value() lookups O(1).
  for (auto it = cells.begin(); it != cells.end();) {
    it = it->first >= lo && it->first < hi ? cells.erase(it) : std::next(it);
  }
}

ShadowStats ShadowAnalyzer::measure(const double* c, std::size_t ldc,
                                    std::uint32_t m,
                                    std::uint32_t n) const noexcept {
  ShadowStats st;
  long double max_shadow = 0.0L;
  for (std::uint32_t j = 0; j < n; ++j) {
    const double* col = c + static_cast<std::size_t>(j) * ldc;
    for (std::uint32_t i = 0; i < m; ++i) {
      const auto it = impl_->cells.find(col + i);
      const long double shadow =
          it != impl_->cells.end() ? it->second
                                   : static_cast<long double>(col[i]);
      if (it != impl_->cells.end()) ++st.tracked;
      const long double err = std::fabs(static_cast<long double>(col[i]) - shadow);
      max_shadow = std::max(max_shadow, std::fabs(shadow));
      if (static_cast<double>(err) > st.max_abs_error) {
        st.max_abs_error = static_cast<double>(err);
        st.worst_i = i;
        st.worst_j = j;
      }
      ++st.cells;
    }
  }
  if (max_shadow > 0.0L) {
    st.max_rel_error =
        static_cast<double>(static_cast<long double>(st.max_abs_error) / max_shadow);
  }
  return st;
}

std::uint64_t ShadowAnalyzer::cancellations() const noexcept {
  return impl_->cancellations;
}

std::uint64_t ShadowAnalyzer::accumulations() const noexcept {
  return impl_->accumulations;
}

std::uint64_t ShadowAnalyzer::cells_tracked() const noexcept {
  return impl_->cells.size();
}

bool ShadowAnalyzer::lossy() const noexcept { return impl_->lossy; }

void ShadowAnalyzer::note_accumulation(long double result,
                                       long double max_term) noexcept {
  ++impl_->accumulations;
  if (std::fabs(result) < std::fabs(max_term) * kCancelRatio &&
      max_term != 0.0L) {
    ++impl_->cancellations;
  }
}

namespace detail {

namespace {

ShadowAnalyzer& an() noexcept { return *tl_shadow; }

}  // namespace

void mm(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
        const double* a, std::size_t lda, const double* b, std::size_t ldb,
        double* c, std::size_t ldc) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint32_t j = 0; j < n; ++j) {
    const double* bj = b + static_cast<std::size_t>(j) * ldb;
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    for (std::uint32_t i = 0; i < m; ++i) {
      long double sum = 0.0L, max_term = 0.0L;
      for (std::uint32_t l = 0; l < k; ++l) {
        const long double term =
            s.value(a + static_cast<std::size_t>(l) * lda + i) * s.value(bj + l);
        max_term = std::max(max_term, std::fabs(term));
        sum += term;
      }
      const long double old = s.value(cj + i);
      const long double next = old + static_cast<long double>(alpha) * sum;
      s.note_accumulation(sum, max_term);
      s.note_accumulation(
          next, std::max(std::fabs(old),
                         std::fabs(static_cast<long double>(alpha) * sum)));
      s.set(cj + i, next);
    }
  }
}

void set_add(double* dst, const double* a, double sb, const double* b,
             std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) {
    const long double ta = s.value(a + i);
    const long double tb = static_cast<long double>(sb) * s.value(b + i);
    const long double r = ta + tb;
    s.note_accumulation(r, std::max(std::fabs(ta), std::fabs(tb)));
    s.set(dst + i, r);
  }
}

void acc(double* dst, double sc, const double* src, std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) {
    const long double old = s.value(dst + i);
    const long double add = static_cast<long double>(sc) * s.value(src + i);
    const long double r = old + add;
    s.note_accumulation(r, std::max(std::fabs(old), std::fabs(add)));
    s.set(dst + i, r);
  }
}

void acc2(double* dst, double s1, const double* a, double s2, const double* b,
          std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) {
    const long double old = s.value(dst + i);
    const long double t1 = static_cast<long double>(s1) * s.value(a + i);
    const long double t2 = static_cast<long double>(s2) * s.value(b + i);
    const long double r = old + t1 + t2;
    s.note_accumulation(
        r, std::max({std::fabs(old), std::fabs(t1), std::fabs(t2)}));
    s.set(dst + i, r);
  }
}

void acc3(double* dst, double s1, const double* a, double s2, const double* b,
          double s3, const double* c, std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) {
    const long double old = s.value(dst + i);
    const long double t1 = static_cast<long double>(s1) * s.value(a + i);
    const long double t2 = static_cast<long double>(s2) * s.value(b + i);
    const long double t3 = static_cast<long double>(s3) * s.value(c + i);
    const long double r = old + t1 + t2 + t3;
    s.note_accumulation(r, std::max({std::fabs(old), std::fabs(t1),
                                     std::fabs(t2), std::fabs(t3)}));
    s.set(dst + i, r);
  }
}

void acc4(double* dst, double s1, const double* a, double s2, const double* b,
          double s3, const double* c, double s4, const double* d,
          std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) {
    const long double old = s.value(dst + i);
    const long double t1 = static_cast<long double>(s1) * s.value(a + i);
    const long double t2 = static_cast<long double>(s2) * s.value(b + i);
    const long double t3 = static_cast<long double>(s3) * s.value(c + i);
    const long double t4 = static_cast<long double>(s4) * s.value(d + i);
    const long double r = old + t1 + t2 + t3 + t4;
    s.note_accumulation(
        r, std::max({std::fabs(old), std::fabs(t1), std::fabs(t2),
                     std::fabs(t3), std::fabs(t4)}));
    s.set(dst + i, r);
  }
}

void scale(double* dst, std::size_t ldd, double sc, std::uint32_t m,
           std::uint32_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint32_t j = 0; j < n; ++j) {
    double* col = dst + static_cast<std::size_t>(j) * ldd;
    for (std::uint32_t i = 0; i < m; ++i) {
      s.set(col + i,
            sc == 0.0 ? 0.0L : static_cast<long double>(sc) * s.value(col + i));
    }
  }
}

void copy_strided(double* dst, std::size_t ldd, const double* src,
                  std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint32_t j = 0; j < n; ++j) {
    const double* in = src + static_cast<std::size_t>(j) * lds;
    double* out = dst + static_cast<std::size_t>(j) * ldd;
    for (std::uint32_t i = 0; i < m; ++i) s.set(out + i, s.value(in + i));
  }
}

void transpose(double* dst, std::size_t ldd, const double* src,
               std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < m; ++i) {
      s.set(dst + static_cast<std::size_t>(j) * ldd + i,
            s.value(src + static_cast<std::size_t>(i) * lds + j));
    }
  }
}

void scaled_copy(double* dst, const double* src, std::size_t src_stride,
                 double alpha, std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) {
    s.set(dst + i,
          static_cast<long double>(alpha) * s.value(src + i * src_stride));
  }
}

void move(double* dst, const double* src, std::uint64_t n) noexcept {
  ShadowAnalyzer& s = an();
  for (std::uint64_t i = 0; i < n; ++i) s.set(dst + i, s.value(src + i));
}

void clear(const void* ptr, std::size_t bytes) noexcept {
  an().clear_range(ptr, bytes);
}

}  // namespace detail

}  // namespace rla::numerics
