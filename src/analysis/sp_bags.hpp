#pragma once

// SP-bags disjoint sets (Feng & Leiserson, "Efficient Detection of
// Determinacy Races in Cilk Programs", SPAA 1997).
//
// Every task ("procedure" in the paper) is an element of exactly one bag.
// A bag is either an S-bag — its members are serialized *before* the
// currently executing task — or a P-bag — its members are logically
// *parallel* with the currently executing task. The algorithm maintains the
// invariant, under a serial depth-first execution, that a previous accessor
// races with the current task iff FIND-SET(previous) is a P-bag.
//
// The adaptation to TaskGroup fork-join (vs. Cilk's procedure-wide sync) is
// that P-bags hang off TaskGroup instances rather than off the parent task:
// `wait()` on one group serializes only that group's children. The
// RaceDetector owns that mapping; this class is only the tagged union-find.

#include <cstdint>
#include <vector>

namespace rla::analysis {

/// Union-find over task ids with an S/P tag per set (valid at the root).
/// Path halving + union by rank: near-constant amortized finds.
class SpBags {
 public:
  /// Create a new task element in its own singleton S-bag; returns its id.
  /// Ids are dense, starting at 0.
  std::uint32_t make_set();

  /// Representative of x's bag.
  std::uint32_t find(std::uint32_t x) noexcept;

  /// Merge the bag containing `from` into the bag containing `into`; the
  /// merged bag is tagged P iff `tag_p`. Returns the merged root.
  std::uint32_t merge(std::uint32_t into, std::uint32_t from, bool tag_p) noexcept;

  /// Re-tag the bag containing x (S-bag -> P-bag when a child returns to a
  /// group with no P-bag yet).
  void set_p(std::uint32_t x, bool tag_p) noexcept;

  /// True iff x's bag is a P-bag, i.e. x is logically parallel with the
  /// currently executing task.
  bool is_p_bag(std::uint32_t x) noexcept { return nodes_[find(x)].is_p; }

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t parent;
    std::uint8_t rank;
    bool is_p;
  };
  std::vector<Node> nodes_;
};

}  // namespace rla::analysis
