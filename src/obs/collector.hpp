#pragma once

// Task-span tracer and run-scoped metrics collector.
//
// One Collector is armed at a time (process-global slot). While armed, the
// scheduler hooks (obs/hooks.hpp) record:
//
//  * trace events — task executions, spawns, steals, group syncs and driver
//    phases — into fixed-capacity per-thread ring buffers (overflow drops the
//    oldest events and counts the loss; every event is self-contained, so a
//    partial ring is still a valid trace);
//
//  * measured work/span — each executing task carries a frame on its
//    thread's frame stack tracking exclusive time (nested helping pauses the
//    parent) and running span; completed children fold
//    offset + queue-latency + subtree-span into their TaskGroup, and wait()
//    takes the max into the waiting frame. The queue latency term is what
//    makes the span "burdened": it charges the schedule's real migration
//    cost to the critical path, the way Cilkview charges steal overhead.
//
// Export is Chrome trace-event JSON (chrome://tracing / Perfetto), with the
// metrics-registry snapshot and the work/span summary under extra top-level
// keys that trace viewers ignore.
//
// Lifecycle contract: try_attach() before the traced region, detach() after
// all task activity the caller started has joined. detach() spins out any
// emitter still inside a hook (pin protocol), so buffers never dangle.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "support/sync.hpp"

namespace rla::obs {

/// One recorded event. Self-contained (no begin/end pairing), so ring
/// overflow can drop any subset and the remainder still parses.
struct TraceEvent {
  enum class Kind : std::uint8_t { Task, Phase, Spawn, Steal, Sync, Node };

  const char* name = "";     ///< static string
  std::int64_t ts_ns = 0;    ///< steady-clock start
  std::int64_t dur_ns = 0;   ///< 0 for instant events
  std::uint64_t id = 0;      ///< task id
  std::uint64_t parent = 0;  ///< spawning task id
  std::uint64_t trace = 0;   ///< request trace id (0 = no request scope)
  std::uint64_t seq = 0;     ///< spawn index within the group
  std::int64_t off_ns = 0;   ///< span offset at spawn
  std::int64_t lat_ns = 0;   ///< spawn-to-start queue latency (burden)
  std::int64_t span_ns = 0;  ///< measured subtree span (Task events)
  std::int64_t excl_ns = 0;  ///< exclusive body time (Task events)
  /// Scaled HW-counter deltas for Phase and Node events when a perf::Session
  /// was counting (indexed by perf::EventIndex; hw_mask bit i = hw[i] valid).
  /// Exported as trace-event args so Perfetto shows misses per span.
  std::uint64_t hw[perf::kEventCount] = {};
  std::uint8_t hw_mask = 0;
  Kind kind = Kind::Task;
  bool migrated = false;     ///< executed on a different thread than spawned
};
// Node events (recursion-tree profiler frames, obs/treeprof/) reuse fields:
// id = quadrant path, seq = depth, span_ns = attributed FLOPs, excl_ns =
// exclusive time, hw = exclusive PMU deltas. write_event renders the path
// key ("d2:01") as the display name and unpacks the args.

namespace detail {
// Internal emission paths (collector.cpp) that need collector access.
void emit_event(const TraceEvent& e);
void pop_frame(GroupObs* fold_into);
/// Emit one finished recursion-tree frame (treeprof NodeScope destructor)
/// as a Kind::Node span on the calling thread's trace lane. `path`/`depth`
/// follow the treeprof path encoding; `hw` carries the frame's exclusive
/// scaled PMU deltas (mask 0 = no perf session was counting).
void node_event(std::uint64_t path, int depth, std::int64_t start_ns,
                std::int64_t dur_ns, std::int64_t excl_ns, std::uint64_t flops,
                const perf::Sample& hw);
}  // namespace detail

/// Fixed-capacity single-writer event ring for one thread.
struct ThreadBuffer {
  ThreadBuffer(std::size_t capacity, int tid, std::string label)
      : ring(capacity), tid(tid), label(std::move(label)) {}

  void emit(const TraceEvent& e) noexcept {
    ring[written % ring.size()] = e;
    ++written;
  }

  std::vector<TraceEvent> ring;
  std::uint64_t written = 0;  ///< total events emitted (>= size() when wrapped)
  std::int64_t busy_ns = 0;   ///< sum of exclusive task time on this thread
  int tid = 0;                ///< trace lane id (registration order)
  std::string label;          ///< "worker N" / "main"
};

class Collector {
 public:
  /// `ring_capacity` events per thread; 0 reads RLA_TRACE_BUF from the
  /// environment (default 32768, ~3 MiB per participating thread).
  explicit Collector(std::size_t ring_capacity = 0);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Arm this collector. False if another collector is already armed (the
  /// caller should proceed untraced and note the collision).
  bool try_attach();

  /// Disarm. Blocks until every in-flight hook has left the collector.
  /// Results below are stable after this returns. Idempotent.
  void detach();

  bool attached() const noexcept { return attached_; }

  // ---- results (read after detach) ----
  std::uint64_t tasks() const noexcept;
  std::int64_t work_ns() const noexcept;
  std::int64_t span_ns() const noexcept;
  std::uint64_t events_dropped() const;
  double achieved_parallelism() const noexcept;
  const Histogram& task_durations() const { return task_hist_; }
  Registry& registry() { return registry_; }
  const std::vector<std::unique_ptr<ThreadBuffer>>& thread_buffers() const
      RLA_NO_THREAD_SAFETY_ANALYSIS {
    // justification: results accessor, valid only after detach() — its
    // quiescence barrier is what makes the unlocked read safe, and taking
    // reg_mutex_ here could not protect the returned reference anyway.
    return buffers_;
  }

  /// Chrome trace-event JSON. Returns false (and leaves a partial file /
  /// stream) on I/O failure.
  void write_chrome_trace(std::ostream& out) const;
  bool write_chrome_trace_file(const std::string& path) const;

  /// Ring buffers ever created, process-wide. The disabled-path overhead
  /// guard asserts this does not move across an untraced run.
  static std::uint64_t buffers_created();

 private:
  friend void detail::spawn_hook(TaskTag&, std::uint64_t);
  friend void detail::inline_begin(std::uint64_t);
  friend void detail::run_begin(const TaskTag&, std::uint64_t);
  friend void detail::task_end(GroupObs*);
  friend void detail::wait_begin();
  friend void detail::wait_end(GroupObs*);
  friend void detail::emit_event(const TraceEvent&);
  friend void detail::pop_frame(GroupObs*);
  friend class ScopedRoot;
  friend class PhaseScope;

  ThreadBuffer& thread_buffer();  ///< registered lazily per thread

  std::int64_t epoch_ns_ = 0;  ///< attach time; trace timestamps are relative
  std::size_t ring_capacity_;
  bool attached_ = false;

  /// Guards the buffer *list* only. A ThreadBuffer's contents stay
  /// unguarded by design: single writer (its owning thread), and readers
  /// wait for detach()'s quiescence before touching them.
  mutable Mutex reg_mutex_;  // lock-level: registry
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ RLA_GUARDED_BY(reg_mutex_);

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::int64_t> work_ns_{0};
  std::atomic<std::int64_t> span_ns_{0};  ///< sum of sequential root spans
  Histogram task_hist_;
  Registry registry_;
};

/// Root frame for one driver-level run: everything spawned underneath folds
/// its span up to here; at destruction the root span accumulates into the
/// collector (sequential roots — e.g. degradation reruns — add up).
class ScopedRoot {
 public:
  explicit ScopedRoot(const char* name = "gemm");
  ~ScopedRoot();
  ScopedRoot(const ScopedRoot&) = delete;
  ScopedRoot& operator=(const ScopedRoot&) = delete;

 private:
  bool on_;
};

/// Named X-span on the current thread's trace lane (driver phases:
/// convert.in / compute / adds / verify / convert.out).
class PhaseScope {
 public:
  explicit PhaseScope(const char* name);
  /// Conditional form: records nothing when `enabled` is false (for spots
  /// that would flood the ring at deep recursion levels).
  PhaseScope(const char* name, bool enabled);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  perf::Sample hw_begin_;  ///< counter snapshot at entry (hw_on_ only)
  bool on_;
  bool hw_on_ = false;     ///< a perf::Session was counting at entry
};

}  // namespace rla::obs
