#include "obs/telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>

#include "util/env.hpp"

namespace rla::obs::telemetry {

namespace {

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t round_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// --- async-signal-safe formatting ------------------------------------------
// Hand-rolled: the dump runs inside fatal-signal handlers where snprintf,
// locales and the heap are all off the table.

std::size_t fmt_u64(char* out, std::uint64_t v) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

std::size_t fmt_i64(char* out, std::int64_t v) noexcept {
  if (v >= 0) return fmt_u64(out, static_cast<std::uint64_t>(v));
  out[0] = '-';
  return 1 + fmt_u64(out + 1, 0 - static_cast<std::uint64_t>(v));
}

std::size_t put_str(char* out, const char* s) noexcept {
  std::size_t n = 0;
  while (s[n] != '\0') {
    out[n] = s[n];
    ++n;
  }
  return n;
}

bool write_all(int fd, const char* buf, std::size_t len) noexcept {
  while (len > 0) {
    const ::ssize_t n = ::write(fd, buf, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::Admit:
      return "admit";
    case FlightEventKind::Queue:
      return "queue";
    case FlightEventKind::Start:
      return "start";
    case FlightEventKind::Degrade:
      return "degrade";
    case FlightEventKind::Retry:
      return "retry";
    case FlightEventKind::Deadline:
      return "deadline";
    case FlightEventKind::Stall:
      return "stall";
    case FlightEventKind::Finalize:
      return "finalize";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) {
    const int n = env_int("RLA_TELEMETRY_FLIGHT_EVENTS", 4096);
    capacity = n > 0 ? static_cast<std::size_t>(n) : 4096;
  }
  if (capacity < 16) capacity = 16;
  cap_ = round_pow2(capacity);
  slots_ = std::make_unique<Slot[]>(cap_);
}

// rla-hotpath
void FlightRecorder::record(FlightEventKind kind, std::uint64_t request,
                            std::uint64_t trace, std::int64_t detail) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[seq & (cap_ - 1)];
  slot.stamp.store(2 * seq + 1, std::memory_order_release);
  slot.request.store(request, std::memory_order_relaxed);
  slot.trace.store(trace, std::memory_order_relaxed);
  slot.t_ns.store(steady_now_ns(), std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.stamp.store(2 * seq + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t start = head > cap_ ? head - cap_ : 0;
  out.reserve(static_cast<std::size_t>(head - start));
  for (std::uint64_t seq = start; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (cap_ - 1)];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 != 2 * seq + 2) continue;  // overwritten or mid-write
    FlightEvent ev;
    ev.seq = seq;
    ev.request = slot.request.load(std::memory_order_relaxed);
    ev.trace = slot.trace.load(std::memory_order_relaxed);
    ev.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    ev.detail = slot.detail.load(std::memory_order_relaxed);
    ev.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    if (slot.stamp.load(std::memory_order_acquire) != s1) continue;
    out.push_back(ev);
  }
  return out;
}

// rla-hotpath
bool FlightRecorder::dump_fd(int fd) const noexcept {
  char buf[256];
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t start = head > cap_ ? head - cap_ : 0;
  char* p = buf;
  p += put_str(p, "{\"kind\":\"flight_recorder\",\"recorded\":");
  p += fmt_u64(p, head);
  p += put_str(p, ",\"dropped\":");
  p += fmt_u64(p, head > cap_ ? head - cap_ : 0);
  p += put_str(p, ",\"capacity\":");
  p += fmt_u64(p, cap_);
  p += put_str(p, "}\n");
  if (!write_all(fd, buf, static_cast<std::size_t>(p - buf))) return false;
  for (std::uint64_t seq = start; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (cap_ - 1)];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 != 2 * seq + 2) continue;  // overwritten or mid-write
    const std::uint64_t request = slot.request.load(std::memory_order_relaxed);
    const std::uint64_t trace = slot.trace.load(std::memory_order_relaxed);
    const std::int64_t t_ns = slot.t_ns.load(std::memory_order_relaxed);
    const std::int64_t detail = slot.detail.load(std::memory_order_relaxed);
    const std::uint8_t kind = slot.kind.load(std::memory_order_relaxed);
    if (slot.stamp.load(std::memory_order_acquire) != s1) continue;
    const char* name =
        kind <= static_cast<std::uint8_t>(FlightEventKind::Finalize)
            ? flight_event_kind_name(static_cast<FlightEventKind>(kind))
            : "unknown";
    p = buf;
    p += put_str(p, "{\"seq\":");
    p += fmt_u64(p, seq);
    p += put_str(p, ",\"request\":");
    p += fmt_u64(p, request);
    p += put_str(p, ",\"trace\":");
    p += fmt_u64(p, trace);
    p += put_str(p, ",\"t_ns\":");
    p += fmt_i64(p, t_ns);
    p += put_str(p, ",\"event\":\"");
    p += put_str(p, name);
    p += put_str(p, "\",\"detail\":");
    p += fmt_i64(p, detail);
    p += put_str(p, "}\n");
    if (!write_all(fd, buf, static_cast<std::size_t>(p - buf))) return false;
  }
  return true;
}

// rla-hotpath
bool FlightRecorder::dump_to_path(const char* path) const noexcept {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);  // hotpath-exempt: open(2) is an async-signal-safe syscall
  if (fd < 0) return false;
  const bool ok = dump_fd(fd);
  ::close(fd);  // hotpath-exempt: close(2) is an async-signal-safe syscall
  return ok;
}

// --- fatal-signal dump ------------------------------------------------------

namespace {

std::atomic<FlightRecorder*> g_fatal_recorder{nullptr};
char g_fatal_path[512] = {0};

// rla-hotpath
void fatal_dump_handler(int sig) noexcept {
  const int saved_errno = errno;
  FlightRecorder* rec = g_fatal_recorder.load(std::memory_order_acquire);
  if (rec != nullptr && g_fatal_path[0] != '\0') {
    rec->dump_to_path(g_fatal_path);
  }
  errno = saved_errno;
  // Re-raise with the default disposition: the dump is a side stop, the
  // crash (core, abort message, exit code) must still happen.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_fatal_dump(FlightRecorder* rec, const char* path) {
  if (rec == nullptr || path == nullptr || path[0] == '\0') {
    g_fatal_recorder.store(nullptr, std::memory_order_release);
    return;
  }
  std::size_t n = 0;
  while (path[n] != '\0' && n + 1 < sizeof(g_fatal_path)) {
    g_fatal_path[n] = path[n];
    ++n;
  }
  g_fatal_path[n] = '\0';
  g_fatal_recorder.store(rec, std::memory_order_release);
  struct sigaction sa;
  sa.sa_handler = &fatal_dump_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace rla::obs::telemetry
