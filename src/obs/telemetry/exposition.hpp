#pragma once

// Prometheus text exposition (version 0.0.4) of a metrics snapshot
// (DESIGN.md §15).
//
// Input is the JSON document Registry::snapshot() produces —
// {"counters":{...},"gauges":{...},"histograms":{...}} — which is also what
// GemmService::metrics_json() and the TelemetrySnapshotter samples hold, so
// one renderer covers the live endpoint, the --serve status dump and the
// soak artifacts. Names are mapped to the Prometheus grammar by prefixing
// `rla_` and folding every non-[a-zA-Z0-9_] character to `_`
// (service.queue_ns → rla_service_queue_ns).
//
// Log2 histograms render as native Prometheus histograms: cumulative
// `_bucket{le="2^(i+1)-1"}` series per non-empty prefix, a `+Inf` bucket
// equal to `_count`, plus `_sum`. tools/check_exposition.py validates the
// result in CI.

#include <string>

#include "obs/json.hpp"

namespace rla::obs::telemetry {

/// `service.queue_ns` → `rla_service_queue_ns`.
std::string prometheus_name(const std::string& name);

/// Render a Registry::snapshot()-shaped document as Prometheus text
/// exposition. Unknown sections are ignored; an empty document renders to an
/// empty string.
std::string prometheus_text(const json::Value& snapshot);

}  // namespace rla::obs::telemetry
