#pragma once

// TelemetrySnapshotter: a sampling thread that periodically invokes a caller
// supplied sampler (for GemmService: fold live gauges + sched_snapshot() +
// arena occupancy + the inflight table into a metrics document) and retains
// the results in a bounded time-series ring (DESIGN.md §15).
//
// The sampler runs *without* the snapshotter's own lock held: for the
// service it acquires service-rank locks, while ring_mutex_ sits at
// registry rank, so invoking it under our lock would invert the hierarchy.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "support/sync.hpp"

namespace rla::obs::telemetry {

class Snapshotter {
 public:
  /// Produces one sample document (typically a Registry::snapshot() with
  /// live gauges folded in). Invoked from the snapshotter thread with no
  /// snapshotter lock held.
  using Sampler = std::function<json::Value()>;

  struct Options {
    std::chrono::milliseconds period{100};
    std::size_t ring = 0;  ///< retained samples; 0 reads RLA_TELEMETRY_RING
  };

  /// Starts the sampling thread immediately.
  Snapshotter(Sampler sampler, Options opts);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Stop and join the sampling thread; idempotent. One final sample is
  /// taken on the way out so a short-lived service still exports a series.
  void stop();

  /// Take one sample right now (synchronously, on the caller's thread).
  void sample_now();

  /// Samples taken over the snapshotter's lifetime (ring may hold fewer).
  std::uint64_t samples() const;

  /// The retained window as JSONL, oldest first: one
  /// {"t_ns":...,"sample":{...}} object per line.
  std::string jsonl() const;

  /// The newest retained sample, or a null value when none was taken yet.
  json::Value latest() const;

 private:
  struct Sample {
    std::int64_t t_ns = 0;
    json::Value doc;
  };

  void main();
  void push(Sample&& s);

  Sampler sampler_;
  std::chrono::milliseconds period_;
  std::size_t ring_cap_;

  /// Guards the ring and the stop flag only — never held across sampler_().
  mutable Mutex ring_mutex_;  // lock-level: registry
  CondVar stop_cv_;
  bool stopping_ RLA_GUARDED_BY(ring_mutex_) = false;
  bool joined_ RLA_GUARDED_BY(ring_mutex_) = false;
  std::vector<Sample> ring_ RLA_GUARDED_BY(ring_mutex_);
  std::size_t next_ RLA_GUARDED_BY(ring_mutex_) = 0;
  std::uint64_t taken_ RLA_GUARDED_BY(ring_mutex_) = 0;

  std::thread thread_;
};

}  // namespace rla::obs::telemetry
