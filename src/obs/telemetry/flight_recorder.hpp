#pragma once

// Always-on flight recorder: a bounded, lock-free ring of request-lifecycle
// events, built to be readable from the places where nothing else is —
// the watchdog's stall path, a deadline blow-up, and a fatal-signal handler
// (DESIGN.md §15).
//
// Writers (`record`) never allocate, lock, or block: a global ticket
// (fetch_add) picks the slot, a per-slot stamp makes the write a seqlock so
// concurrent readers detect torn payloads and skip them. When the ring wraps,
// the oldest events are overwritten — `dropped()` counts how many.
//
// Two dump paths:
//   * `snapshot()` — ordered copy for tests and in-process inspection
//     (allocates; not signal-safe);
//   * `dump_fd` / `dump_to_path` — async-signal-safe JSONL writers: raw
//     write(2), hand-rolled integer formatting, no locks, no allocation, no
//     throwing. These are in the rla_lint C1 hotpath purity closure.
//
// Bundle format (JSONL): one header line
//   {"kind":"flight_recorder","recorded":N,"dropped":N,"capacity":N}
// then one line per surviving event, oldest first:
//   {"seq":N,"request":N,"trace":N,"t_ns":N,"event":"admit","detail":N}

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rla::obs::telemetry {

/// Request-lifecycle event kinds, in nominal order of occurrence. `Degrade`,
/// `Retry` and `Deadline` may repeat and interleave between `Start` and
/// `Finalize`; `Finalize` is terminal for a request.
enum class FlightEventKind : std::uint8_t {
  Admit = 0,
  Queue,
  Start,
  Degrade,
  Retry,
  Deadline,
  Stall,
  Finalize,
};

/// Stable lower-case name for the JSONL `event` field.
const char* flight_event_kind_name(FlightEventKind kind) noexcept;

/// One recorded lifecycle event. POD on purpose: the signal-safe dump reads
/// these fields straight out of the ring.
struct FlightEvent {
  std::uint64_t seq = 0;      ///< global order ticket (gap-free)
  std::uint64_t request = 0;  ///< service request id
  std::uint64_t trace = 0;    ///< request trace id (joins traces/profiles)
  std::int64_t t_ns = 0;      ///< steady-clock nanoseconds
  std::int64_t detail = 0;    ///< kind-specific payload (priority, attempt…)
  FlightEventKind kind = FlightEventKind::Admit;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; 0 reads
  /// RLA_TELEMETRY_FLIGHT_EVENTS (default 4096, min 16).
  explicit FlightRecorder(std::size_t capacity = 0);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Lock-free, allocation-free, wait-free modulo the ticket CAS loop
  /// inside fetch_add. Safe from any thread, any time.
  void record(FlightEventKind kind, std::uint64_t request, std::uint64_t trace,
              std::int64_t detail = 0) noexcept;

  std::size_t capacity() const noexcept { return cap_; }
  /// Total events ever recorded (survivors + overwritten).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to ring overwrite so far.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = recorded();
    return n > cap_ ? n - cap_ : 0;
  }

  /// Ordered (oldest-first) copy of the surviving window. Skips slots whose
  /// payload a concurrent writer is mid-update. Allocates; NOT signal-safe.
  std::vector<FlightEvent> snapshot() const;

  /// Async-signal-safe JSONL dump to an open descriptor. Returns false on a
  /// short or failed write.
  bool dump_fd(int fd) const noexcept;

  /// Async-signal-safe open/dump/close to a path (O_CREAT|O_TRUNC, 0644).
  bool dump_to_path(const char* path) const noexcept;

 private:
  /// Ring slot, a per-slot seqlock. The payload fields are relaxed atomics
  /// (not a plain struct) so a reader racing a wrapping writer is data-race
  /// free; the stamp brackets detect the torn window and the reader skips it.
  struct Slot {
    /// 0 empty; 2*seq+1 while the payload for ticket `seq` is being
    /// written; 2*seq+2 once it is complete.
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> request{0};
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::int64_t> t_ns{0};
    std::atomic<std::int64_t> detail{0};
    std::atomic<std::uint8_t> kind{0};
  };

  std::size_t cap_;  ///< power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< next ticket
};

/// Arm a process-wide fatal handler (SIGSEGV, SIGBUS, SIGFPE, SIGABRT) that
/// dumps `rec` to `path` with the signal-safe writer, then re-raises with
/// the default disposition so the crash still crashes. One recorder/path per
/// process; a second call re-points the globals. Pass rec=nullptr to disarm.
void install_fatal_dump(FlightRecorder* rec, const char* path);

}  // namespace rla::obs::telemetry
