#include "obs/telemetry/endpoint.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rla::obs::telemetry {

namespace {

bool send_all(int fd, const char* buf, std::size_t len) noexcept {
  while (len > 0) {
    const ::ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ExpositionServer::ExpositionServer(std::string socket_path, Producer producer)
    : path_(std::move(socket_path)), producer_(std::move(producer)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() + 1 > sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + path_;
    return;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  ::unlink(path_.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    error_ = std::string("bind/listen ") + path_ + ": " + std::strerror(errno);
    ::close(fd);
    return;
  }
  fd_ = fd;
  thread_ = std::thread([this] { main(); });
}

ExpositionServer::~ExpositionServer() { stop(); }

void ExpositionServer::main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200 /*ms*/);
    if (ready <= 0) continue;  // timeout, EINTR: re-check the stop flag
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) continue;
    const std::string doc = producer_ ? producer_() : std::string();
    send_all(conn, doc.data(), doc.size());
    ::close(conn);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ExpositionServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (!thread_.joinable()) return;
  }
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

}  // namespace rla::obs::telemetry
