#pragma once

// Request-scoped trace identifiers (DESIGN.md §15).
//
// A trace id is a nonzero, process-unique token minted once per service
// request (GemmService::submit) or test fixture and carried everywhere that
// request's work goes: GemmConfig::trace_id → the gemm driver →
// TaskGroup::spawn stamps it into every TaskTag → the worker that runs the
// task restores it as the thread-ambient id → every trace event, flight
// record, and the final GemmProfile carry it. Joining a Chrome trace with a
// metrics series or a flight-recorder bundle is then a key match, not
// guesswork.
//
// The ambient (thread-local) id lives in collector.cpp next to the other
// per-thread observability state; this header only mints.

#include <atomic>
#include <cstdint>

namespace rla::obs::telemetry {

/// Next process-unique trace id: nonzero, monotonically increasing. Safe to
/// call from any thread.
inline std::uint64_t mint_trace_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rla::obs::telemetry
