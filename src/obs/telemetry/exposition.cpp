#include "obs/telemetry/exposition.hpp"

#include <cctype>
#include <cstdint>
#include <string>

namespace rla::obs::telemetry {

namespace {

std::string number_text(const json::Value& v) {
  // Numbers in the snapshot keep their source text; dump() re-emits it
  // verbatim, which is exactly the exposition-friendly form.
  return v.is_number() ? v.dump() : "0";
}

void render_scalar_section(const json::Value& doc, const char* section,
                           const char* type, std::string& out) {
  const json::Value* values = doc.find(section);
  if (values == nullptr || !values->is_object()) return;
  for (const auto& [name, value] : values->members()) {
    if (!value.is_number()) continue;
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " " + type + "\n";
    out += prom + " " + number_text(value) + "\n";
  }
}

void render_histogram(const std::string& name, const json::Value& hist,
                      std::string& out) {
  const json::Value* buckets = hist.find("buckets");
  const json::Value* count = hist.find("count");
  const json::Value* sum = hist.find("sum");
  if (buckets == nullptr || !buckets->is_array() || count == nullptr ||
      sum == nullptr) {
    return;
  }
  const std::string prom = prometheus_name(name);
  out += "# TYPE " + prom + " histogram\n";
  std::uint64_t cumulative = 0;
  int i = 0;
  for (const json::Value& b : buckets->items()) {
    const std::uint64_t n = b.is_number() ? b.as_uint() : 0;
    cumulative += n;
    if (n != 0) {
      // Upper edge of log2 bucket i is 2^(i+1)-1 (inclusive, integer ns);
      // emit only the informative (non-empty) buckets — `le` is cumulative,
      // so skipping an empty one loses nothing.
      const std::uint64_t edge =
          i >= 63 ? UINT64_MAX : (std::uint64_t{1} << (i + 1)) - 1;
      out += prom + "_bucket{le=\"" + std::to_string(edge) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    ++i;
  }
  // A racing writer can make the scalar count lag the bucket tallies by an
  // event or two; keep the exposition internally monotone.
  std::uint64_t total = count->is_number() ? count->as_uint() : 0;
  if (cumulative > total) total = cumulative;
  out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
  out += prom + "_sum " + number_text(*sum) + "\n";
  out += prom + "_count " + std::to_string(total) + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "rla_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text(const json::Value& snapshot) {
  std::string out;
  if (!snapshot.is_object()) return out;
  render_scalar_section(snapshot, "counters", "counter", out);
  render_scalar_section(snapshot, "gauges", "gauge", out);
  const json::Value* histograms = snapshot.find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, hist] : histograms->members()) {
      if (hist.is_object()) render_histogram(name, hist, out);
    }
  }
  return out;
}

}  // namespace rla::obs::telemetry
