#pragma once

// Live exposition endpoint: a Unix-domain stream socket that serves one
// telemetry document per connection (DESIGN.md §15). This is the first step
// toward the ROADMAP wire protocol — connect, read the full Prometheus text
// (or whatever the producer renders), EOF:
//
//   rla_gemm --serve --telemetry-socket=/tmp/rla.sock ... &
//   nc -U /tmp/rla.sock        # or socat - UNIX-CONNECT:/tmp/rla.sock
//
// A Unix socket rather than TCP keeps the surface local-only (filesystem
// permissions are the ACL) and needs no port allocation in CI.

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace rla::obs::telemetry {

class ExpositionServer {
 public:
  /// Renders the document served to each connection; invoked per accept on
  /// the server thread.
  using Producer = std::function<std::string()>;

  /// Binds and starts the accept loop. On failure `ok()` is false and
  /// `error()` says why; the object is inert but safely destructible.
  ExpositionServer(std::string socket_path, Producer producer);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  bool ok() const noexcept { return fd_ >= 0; }
  const std::string& error() const noexcept { return error_; }
  const std::string& path() const noexcept { return path_; }

  /// Connections served so far.
  std::uint64_t served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Stop the accept loop, close and unlink the socket; idempotent.
  void stop();

 private:
  void main();

  std::string path_;
  Producer producer_;
  std::string error_;
  int fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace rla::obs::telemetry
