#include "obs/telemetry/snapshotter.hpp"

#include <utility>

#include "util/env.hpp"

namespace rla::obs::telemetry {

namespace {

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Snapshotter::Snapshotter(Sampler sampler, Options opts)
    : sampler_(std::move(sampler)), period_(opts.period) {
  if (period_ < std::chrono::milliseconds(1)) {
    period_ = std::chrono::milliseconds(1);
  }
  std::size_t ring = opts.ring;
  if (ring == 0) {
    const int n = env_int("RLA_TELEMETRY_RING", 128);
    ring = n > 0 ? static_cast<std::size_t>(n) : 128;
  }
  ring_cap_ = ring < 2 ? 2 : ring;
  thread_ = std::thread([this] { main(); });
}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::main() {
  for (;;) {
    {
      MutexLock lock(ring_mutex_);
      const bool stopping = stop_cv_.wait_for(
          ring_mutex_, lock, period_,
          [this]() RLA_REQUIRES(ring_mutex_) { return stopping_; });
      if (stopping) return;
    }
    sample_now();
  }
}

void Snapshotter::sample_now() {
  // Invoke the sampler unlocked: it may take service/pool/arena-rank locks,
  // all of which outrank ring_mutex_ (registry).
  Sample s;
  s.doc = sampler_ ? sampler_() : json::Value::object();
  s.t_ns = steady_now_ns();
  push(std::move(s));
}

void Snapshotter::push(Sample&& s) {
  MutexLock lock(ring_mutex_);
  if (ring_.size() < ring_cap_) {
    ring_.push_back(std::move(s));
  } else {
    ring_[next_ % ring_cap_] = std::move(s);
  }
  next_ = (next_ + 1) % ring_cap_;
  ++taken_;
}

void Snapshotter::stop() {
  bool join_here = false;
  {
    MutexLock lock(ring_mutex_);
    stopping_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  stop_cv_.notify_all();  // publishes: stopping_
  if (join_here) {
    thread_.join();
    // Final sample after the thread quiesced: a service shut down between
    // two periods still leaves a closing data point in the series.
    sample_now();
  }
}

std::uint64_t Snapshotter::samples() const {
  MutexLock lock(ring_mutex_);
  return taken_;
}

std::string Snapshotter::jsonl() const {
  // Copy the window under the lock, serialize outside it.
  std::vector<Sample> window;
  {
    MutexLock lock(ring_mutex_);
    window.reserve(ring_.size());
    const std::size_t n = ring_.size();
    // Oldest-first: once the ring is full, next_ points at the oldest slot.
    const std::size_t first = n < ring_cap_ ? 0 : next_ % ring_cap_;
    for (std::size_t i = 0; i < n; ++i) {
      window.push_back(ring_[(first + i) % n]);
    }
  }
  std::string out;
  for (const Sample& s : window) {
    json::Value line = json::Value::object();
    line.set("t_ns", json::Value::number(s.t_ns));
    line.set("sample", s.doc);
    out += line.dump();
    out += '\n';
  }
  return out;
}

json::Value Snapshotter::latest() const {
  MutexLock lock(ring_mutex_);
  if (ring_.empty()) return json::Value();
  const std::size_t newest = (next_ + ring_cap_ - 1) % ring_cap_;
  return ring_[newest < ring_.size() ? newest : ring_.size() - 1].doc;
}

}  // namespace rla::obs::telemetry
