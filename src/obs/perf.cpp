#include "obs/perf.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "robust/fault.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "obs/hooks.hpp"

namespace rla::obs::perf {

const char* event_name(int index) noexcept {
  switch (index) {
    case kCycles: return "cycles";
    case kInstructions: return "instructions";
    case kL1dReadMisses: return "l1d_read_misses";
    case kLlcMisses: return "llc_misses";
    case kDtlbMisses: return "dtlb_misses";
    case kTaskClock: return "task_clock_ns";
    default: return "?";
  }
}

Sample Sample::delta_since(const Sample& earlier) const noexcept {
  Sample d;
  d.mask = mask & earlier.mask;
  d.scale = scale < earlier.scale ? scale : earlier.scale;
  for (int i = 0; i < kEventCount; ++i) {
    if (!d.has(i)) continue;
    d.value[i] = value[i] >= earlier.value[i] ? value[i] - earlier.value[i] : 0;
  }
  return d;
}

void Sample::accumulate(const Sample& d) noexcept {
  mask |= d.mask;
  if (d.scale < scale) scale = d.scale;
  for (int i = 0; i < kEventCount; ++i) value[i] += d.value[i];
}

// ---- CounterGroup -----------------------------------------------------------

#if defined(__linux__)

namespace {

long sys_perf_event_open(struct perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

void fill_attr(int index, struct perf_event_attr& attr) {
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  // Count user space only: perf_event_paranoid == 2 (the common container
  // default that still permits anything) forbids kernel-side counting.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  switch (index) {
    case kCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case kInstructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case kL1dReadMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1D |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case kLlcMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      break;
    case kDtlbMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_DTLB |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case kTaskClock:
      attr.type = PERF_TYPE_SOFTWARE;
      attr.config = PERF_COUNT_SW_TASK_CLOCK;
      break;
    default:
      break;
  }
}

/// "paranoid=N" when readable (the usual reason unprivileged opens fail),
/// otherwise the bare errno.
std::string open_failure_reason(int err) {
  if (err == ENOSYS) return "ENOSYS";
  if (err == EACCES || err == EPERM) {
    if (std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r")) {
      int level = 0;
      const bool ok = std::fscanf(f, "%d", &level) == 1;
      std::fclose(f);
      if (ok) return "paranoid=" + std::to_string(level);
    }
    return err == EACCES ? "EACCES" : "EPERM";
  }
  return "errno=" + std::to_string(err);
}

}  // namespace

bool CounterGroup::open(std::string* reason) {
  if (fault::should_fail(fault::Site::PerfOpen)) {
    if (reason != nullptr) *reason = "fault-injected";
    return false;
  }
  int first_err = 0;
  for (int i = 0; i < kEventCount; ++i) {
    struct perf_event_attr attr;
    fill_attr(i, attr);
    const bool is_leader = leader_ < 0;
    // The leader starts disabled and the whole group is released at once
    // below, so no event counts the others' setup syscalls.
    attr.disabled = is_leader ? 1 : 0;
    const int group_fd = is_leader ? -1 : fds_[leader_];
    const long fd =
        sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                            PERF_FLAG_FD_CLOEXEC);
    if (fd < 0) {
      if (first_err == 0) first_err = errno;
      continue;  // this event is unsupported here; keep the rest
    }
    fds_[i] = static_cast<int>(fd);
    if (::ioctl(fds_[i], PERF_EVENT_IOC_ID, &ids_[i]) != 0) {
      ::close(fds_[i]);
      fds_[i] = -1;
      continue;
    }
    if (is_leader) leader_ = i;
    mask_ |= 1u << i;
  }
  if (leader_ < 0) {
    if (reason != nullptr) {
      *reason = open_failure_reason(first_err != 0 ? first_err : ENODEV);
    }
    return false;
  }
  ::ioctl(fds_[leader_], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(fds_[leader_], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

bool CounterGroup::read(Sample& out) const {
  if (leader_ < 0) return false;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, then
  // (value, id) per counter.
  std::uint64_t buf[3 + 2 * kEventCount] = {};
  const ssize_t got = ::read(fds_[leader_], buf, sizeof(buf));
  if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  const double ratio =
      enabled > 0 && running > 0
          ? static_cast<double>(running) / static_cast<double>(enabled)
          : 1.0;
  const double rescale =
      enabled > 0 && running > 0
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  Sample s;
  s.scale = ratio;
  for (std::uint64_t c = 0; c < nr && c < static_cast<std::uint64_t>(kEventCount);
       ++c) {
    const std::uint64_t value = buf[3 + 2 * c];
    const std::uint64_t id = buf[3 + 2 * c + 1];
    for (int i = 0; i < kEventCount; ++i) {
      if (((mask_ >> i) & 1u) != 0 && ids_[i] == id) {
        s.value[i] =
            static_cast<std::uint64_t>(static_cast<double>(value) * rescale);
        s.mask |= 1u << i;
        break;
      }
    }
  }
  if (s.mask == 0) return false;
  out = s;
  return true;
}

void CounterGroup::close() noexcept {
  for (int i = 0; i < kEventCount; ++i) {
    if (fds_[i] >= 0) {
      ::close(fds_[i]);
      fds_[i] = -1;
    }
  }
  leader_ = -1;
  mask_ = 0;
}

#else  // !__linux__

bool CounterGroup::open(std::string* reason) {
  if (fault::should_fail(fault::Site::PerfOpen)) {
    if (reason != nullptr) *reason = "fault-injected";
    return false;
  }
  if (reason != nullptr) *reason = "unsupported-platform";
  return false;
}

bool CounterGroup::read(Sample&) const { return false; }

void CounterGroup::close() noexcept {}

#endif  // __linux__

CounterGroup::~CounterGroup() { close(); }

// ---- Session ----------------------------------------------------------------

namespace detail {

std::atomic<Session*> g_session{nullptr};

namespace {

/// Attach generations, invalidating each thread's "already joined" cache.
std::atomic<std::uint64_t> g_generation{1};

/// Threads currently inside a session operation; detach() clears the slot
/// then drains this before returning (same protocol as the Collector).
std::atomic<std::uint64_t> g_pins{0};

thread_local std::uint64_t tl_joined_generation = 0;

/// This thread's own group within the armed session, cached so
/// thread_sample() avoids the session mutex. Valid only while
/// tl_group_generation matches g_generation (groups outlive detach but not
/// the Session object; a new attach invalidates the cache first).
thread_local CounterGroup* tl_group = nullptr;
thread_local std::uint64_t tl_group_generation = 0;

Session* pin() noexcept {
  g_pins.fetch_add(1, std::memory_order_seq_cst);
  Session* s = g_session.load(std::memory_order_seq_cst);
  if (s == nullptr) {
    g_pins.fetch_sub(1, std::memory_order_seq_cst);
    return nullptr;
  }
  return s;
}

void unpin() noexcept { g_pins.fetch_sub(1, std::memory_order_seq_cst); }

}  // namespace

void join_slow() {
  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if (tl_joined_generation == gen) return;
  if (Session* s = pin()) {
    s->join_current_thread();
    unpin();
  }
  // Marked joined even on failure: retrying a failing perf_event_open once
  // per task would turn degradation into a hot-path syscall storm.
  tl_joined_generation = gen;
}

}  // namespace detail

Session::~Session() { detach(); }

bool Session::try_attach() {
  Session* expected = nullptr;
  if (!detail::g_session.compare_exchange_strong(expected, this,
                                                 std::memory_order_seq_cst)) {
    return false;
  }
  detail::g_generation.fetch_add(1, std::memory_order_seq_cst);
  attached_ = true;
  // Probe with the attaching thread's own group: if even this thread cannot
  // open one event, workers will not fare better — mark unavailable with
  // the reason and let the caller degrade.
  auto probe = std::make_unique<CounterGroup>();
  std::string reason;
  if (probe->open(&reason)) {
    {
      MutexLock lock(mutex_);
      groups_.push_back(std::move(probe));
      labels_.push_back("main");
      detail::tl_group = groups_.back().get();
      detail::tl_group_generation =
          detail::g_generation.load(std::memory_order_relaxed);
    }
    // Release: the probe group above must be visible to any worker whose
    // join_current_thread() acquires this flag through the armed session.
    available_.store(true, std::memory_order_release);
    detail::tl_joined_generation =
        detail::g_generation.load(std::memory_order_relaxed);
  } else {
    available_.store(false, std::memory_order_release);
    reason_ = reason;
  }
  return true;
}

void Session::detach() {
  if (!attached_) return;
  Session* expected = this;
  detail::g_session.compare_exchange_strong(expected, nullptr,
                                            std::memory_order_seq_cst);
  while (detail::g_pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  attached_ = false;
  // Groups stay open (and readable) until destruction so per-thread totals
  // survive the disarm; they stopped accumulating our work because no new
  // tasks run under this session.
}

void Session::join_current_thread() {
  if (!available()) return;
  auto group = std::make_unique<CounterGroup>();
  if (!group->open(nullptr)) return;  // this thread just goes uncounted
  const int hint = obs::detail::worker_hint();
  MutexLock lock(mutex_);
  groups_.push_back(std::move(group));
  labels_.push_back(hint >= 0 ? "w" + std::to_string(hint)
                              : "t" + std::to_string(labels_.size()));
  detail::tl_group = groups_.back().get();
  detail::tl_group_generation =
      detail::g_generation.load(std::memory_order_relaxed);
}

bool Session::read_current_thread(Sample& out) const {
  if (detail::tl_group == nullptr ||
      detail::tl_group_generation !=
          detail::g_generation.load(std::memory_order_relaxed)) {
    return false;
  }
  return detail::tl_group->read(out);
}

Sample Session::read_total() const {
  Sample total;
  total.mask = 0;
  MutexLock lock(mutex_);
  for (const auto& g : groups_) {
    Sample s;
    if (g->read(s)) total.accumulate(s);
  }
  return total;
}

std::vector<ThreadCounters> Session::per_thread() const {
  std::vector<ThreadCounters> out;
  MutexLock lock(mutex_);
  out.reserve(groups_.size());
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    Sample s;
    if (groups_[i]->read(s)) out.push_back({labels_[i], s});
  }
  return out;
}

void Session::note_phase(const char* name, const Sample& delta) {
  MutexLock lock(mutex_);
  for (auto& [phase, sample] : phases_) {
    if (phase == name) {
      sample.accumulate(delta);
      return;
    }
  }
  Sample first;
  first.mask = 0;
  first.accumulate(delta);
  phases_.emplace_back(name, first);
}

std::vector<std::pair<std::string, Sample>> Session::phase_totals() const {
  MutexLock lock(mutex_);
  return phases_;
}

bool phase_snapshot(Sample& out) {
  if (!counting()) return false;
  bool ok = false;
  if (Session* s = detail::pin()) {
    if (s->available()) {
      out = s->read_total();
      ok = out.mask != 0;
    }
    detail::unpin();
  }
  return ok;
}

void note_phase(const char* name, const Sample& delta) {
  if (Session* s = detail::pin()) {
    s->note_phase(name, delta);
    detail::unpin();
  }
}

bool thread_sample(Sample& out) {
  if (!counting()) return false;
  bool ok = false;
  if (Session* s = detail::pin()) {
    if (s->available()) ok = s->read_current_thread(out);
    detail::unpin();
  }
  return ok;
}

}  // namespace rla::obs::perf
