#pragma once

// Canonical observability name schema: the single registry of record for
// every metric and trace-span name the project emits or consumes.
//
// Three parties read this list:
//   * GemmService pre-registers the tagged entries at startup so an export
//     after a quiet run still carries every series (soak_check.py validates
//     against the full set);
//   * rla_lint's C3 checker parses the X-macro rows and cross-checks them
//     against every counter()/gauge()/histogram()/PhaseScope name literal in
//     the C++ tree *and* every schema-shaped name consumed by the Python
//     tools (trace_summary.py, soak_check.py) — in both directions, so a
//     renamed counter cannot silently zero a soak gate;
//   * humans, when picking a name for a new series.
//
// Grammar: X(kind, "name", preregister). `kind` is Counter, Gauge or
// Histogram. A '*' in a name is a wildcard matching one or more characters
// of [A-Za-z0-9_.] — use it for families with a dynamic segment (per-worker
// lanes, per-phase perf counters, per-outcome tallies). Call sites that build
// such names at runtime declare the family with an adjacent
// `// metric-family: <pattern>` comment naming a row from this list.
// Wildcard rows cannot be pre-registered (there is no single name to
// create); the static_assert below pins that.

#include <cstddef>
#include <string_view>

namespace rla::obs::schema {

// clang-format off
#define RLA_METRIC_SCHEMA(X)                                                   \
  /* --- service request accounting (service.cpp) --- */                       \
  X(Counter,   "service.submitted",              true)                         \
  X(Counter,   "service.accepted",               true)                         \
  X(Counter,   "service.rejected",               true)                         \
  X(Counter,   "service.retries",                true)                         \
  X(Counter,   "service.deadline_expired",       true)                         \
  X(Counter,   "service.stalls_detected",        true)                         \
  X(Counter,   "service.arena_rejections",       true)                         \
  X(Counter,   "service.degraded_admission",     true)                         \
  X(Counter,   "service.outcome.*",              false) /* per Outcome */      \
  X(Gauge,     "service.workers",                false)                        \
  X(Gauge,     "service.executors",              false)                        \
  X(Gauge,     "service.max_inflight",           false)                        \
  X(Gauge,     "service.in_flight",              false)                        \
  X(Gauge,     "service.queue_depth",            false)                        \
  X(Gauge,     "service.queue_depth_high_water", false)                        \
  X(Gauge,     "service.running",                false)                        \
  X(Histogram, "service.queue_ns",               true)                         \
  X(Histogram, "service.run_ns",                 true)                         \
  X(Histogram, "service.total_ns",               true)                         \
  /* --- per-priority-class SLO series (service.cpp telemetry fold) --- */     \
  X(Histogram, "service.priority.*",             false) /* <class>.total_ns */ \
  X(Gauge,     "service.slo.*",                  false) /* quantiles, rates */ \
  /* --- telemetry pipeline (src/obs/telemetry/, service.cpp) --- */           \
  X(Counter,   "telemetry.snapshots",            true)                         \
  X(Counter,   "telemetry.flight.events",        true)                         \
  X(Counter,   "telemetry.flight.dropped",       true)                         \
  X(Counter,   "telemetry.flight.dumps",         true)                         \
  X(Gauge,     "telemetry.trace_id",             false)                        \
  /* --- conversion-buffer arena (service.cpp export) --- */                   \
  X(Gauge,     "arena.budget_bytes",             false)                        \
  X(Gauge,     "arena.reserved_bytes",           false)                        \
  X(Gauge,     "arena.cached_bytes",             false)                        \
  X(Gauge,     "arena.reserved_high_water",      false)                        \
  X(Counter,   "arena.recycled",                 false)                        \
  X(Counter,   "arena.allocations",              false)                        \
  X(Counter,   "arena.rejections",               false)                        \
  /* --- scheduler health (gemm.cpp / service.cpp exports) --- */              \
  X(Counter,   "sched.total.steals",             false)                        \
  X(Counter,   "sched.total.failed_steals",      false)                        \
  X(Counter,   "sched.total.idle_wakeups",       false)                        \
  X(Counter,   "sched.total.injection_pops",     false)                        \
  X(Counter,   "sched.total.tasks",              false)                        \
  X(Gauge,     "sched.total.deque_high_water",   false)                        \
  X(Counter,   "sched.exceptions_swallowed",     false)                        \
  X(Counter,   "sched.w*.*",                     false) /* per-worker lane */  \
  X(Counter,   "sched.external.*",               false) /* non-pool callers */ \
  /* --- hardware counters (gemm.cpp export; suffix = perf event) --- */       \
  X(Counter,   "perf.total.*",                   false)                        \
  X(Counter,   "perf.*",                         false) /* per-phase lanes */  \
  /* --- recursion-tree profiler (gemm.cpp / service.cpp exports) --- */       \
  X(Counter,   "treeprof.nodes",                 true)                         \
  X(Counter,   "treeprof.*",                     false) /* per-depth lanes */
// clang-format on

/// Trace-span (PhaseScope) names: the gemm driver's phases. The Chrome-trace
/// "cat" labels (task/spawn/steal/sync) are event kinds, not phase names,
/// and live in collector.cpp.
#define RLA_SPAN_SCHEMA(X)                                                     \
  X("convert.in")                                                              \
  X("compute")                                                                 \
  X("adds")                                                                    \
  X("verify")                                                                  \
  X("convert.out")

enum class Kind { Counter, Gauge, Histogram };

struct Entry {
  Kind kind;
  std::string_view name;
  bool preregister;  ///< created eagerly by GemmService so exports are total
};

inline constexpr Entry kMetrics[] = {
#define RLA_METRIC_ENTRY(kind, name, pre) {Kind::kind, name, pre},
    RLA_METRIC_SCHEMA(RLA_METRIC_ENTRY)
#undef RLA_METRIC_ENTRY
};

inline constexpr std::string_view kSpans[] = {
#define RLA_SPAN_ENTRY(name) name,
    RLA_SPAN_SCHEMA(RLA_SPAN_ENTRY)
#undef RLA_SPAN_ENTRY
};

inline constexpr std::size_t kMetricCount =
    sizeof(kMetrics) / sizeof(kMetrics[0]);

static_assert(
    [] {
      for (const Entry& e : kMetrics) {
        if (!e.preregister) continue;
        for (const char c : e.name) {
          if (c == '*') return false;
        }
      }
      return true;
    }(),
    "wildcard schema rows describe name families and cannot be "
    "pre-registered; enumerate the members instead");

}  // namespace rla::obs::schema
