#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace rla::obs {

void Histogram::record(std::int64_t sample) noexcept {
  if (sample < 0) sample = 0;
  const auto u = static_cast<std::uint64_t>(sample);
  const int bucket = u == 0 ? 0 : std::bit_width(u) - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (sample > cur &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      return i >= 62 ? max() : (std::int64_t{1} << (i + 1)) - 1;
    }
  }
  return max();
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

json::Value Registry::snapshot() const {
  MutexLock lock(mutex_);
  json::Value counters = json::Value::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, json::Value::number(c->value()));
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, json::Value::number(g->value()));
  }
  json::Value histograms = json::Value::object();
  for (const auto& [name, h] : histograms_) {
    json::Value entry = json::Value::object();
    entry.set("count", json::Value::number(h->count()));
    entry.set("sum", json::Value::number(h->sum()));
    entry.set("max", json::Value::number(h->max()));
    entry.set("p50", json::Value::number(h->quantile(0.50)));
    entry.set("p99", json::Value::number(h->quantile(0.99)));
    int top = Histogram::kBuckets;
    while (top > 0 && h->bucket(top - 1) == 0) --top;
    json::Value buckets = json::Value::array();
    for (int i = 0; i < top; ++i) {
      buckets.push_back(json::Value::number(h->bucket(i)));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  json::Value out = json::Value::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace rla::obs
