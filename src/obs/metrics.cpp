#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rla::obs {

void Histogram::record(std::int64_t sample) noexcept {
  if (sample < 0) sample = 0;
  const auto u = static_cast<std::uint64_t>(sample);
  const int bucket = u == 0 ? 0 : std::bit_width(u) - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (sample > cur &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      return i >= 62 ? max() : (std::int64_t{1} << (i + 1)) - 1;
    }
  }
  return max();
}

double Histogram::quantile_interpolated(double q) const noexcept {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (total == 1) return static_cast<double>(max());
  // 0-based fractional rank: p0 is the smallest sample, p100 the largest.
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = bucket(i);
    if (n == 0) continue;
    if (static_cast<double>(seen + n) > rank) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i);
      // No sample exceeds max(), so the bucket's effective upper edge is the
      // smaller of its nominal edge and the observed maximum.
      double hi = std::ldexp(1.0, i + 1) - 1.0;
      const auto mx = static_cast<double>(max());
      if (hi > mx) hi = mx;
      if (hi < lo) return lo;
      // Spread the bucket's n samples evenly across [lo, hi].
      const double frac =
          n > 1 ? (rank - static_cast<double>(seen)) / static_cast<double>(n - 1)
                : 0.0;
      return lo + (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac) * (hi - lo);
    }
    seen += n;
  }
  return static_cast<double>(max());
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

json::Value Registry::snapshot() const {
  MutexLock lock(mutex_);
  json::Value counters = json::Value::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, json::Value::number(c->value()));
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, json::Value::number(g->value()));
  }
  json::Value histograms = json::Value::object();
  for (const auto& [name, h] : histograms_) {
    json::Value entry = json::Value::object();
    entry.set("count", json::Value::number(h->count()));
    entry.set("sum", json::Value::number(h->sum()));
    entry.set("max", json::Value::number(h->max()));
    entry.set("p50", json::Value::number(h->quantile(0.50)));
    entry.set("p95", json::Value::number(h->quantile(0.95)));
    entry.set("p99", json::Value::number(h->quantile(0.99)));
    int top = Histogram::kBuckets;
    while (top > 0 && h->bucket(top - 1) == 0) --top;
    json::Value buckets = json::Value::array();
    for (int i = 0; i < top; ++i) {
      buckets.push_back(json::Value::number(h->bucket(i)));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  json::Value out = json::Value::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace rla::obs
