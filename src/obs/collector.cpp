#include "obs/collector.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/treeprof/treeprof.hpp"
#include "util/env.hpp"

namespace rla::obs {

namespace {

/// Request trace id ambient on this thread (0 = none). Maintained
/// unconditionally — unlike the collector hooks it must survive with no
/// collector armed, because flight-recorder events and GemmProfiles carry it
/// too. Restored across task boundaries by TraceIdScope (worker_pool.cpp
/// wraps each task body in the spawn-time tag's scope).
thread_local std::uint64_t tl_trace_id = 0;

}  // namespace

std::uint64_t current_trace_id() noexcept { return tl_trace_id; }

void set_current_trace_id(std::uint64_t trace) noexcept {
  tl_trace_id = trace;
}

namespace detail {

std::atomic<Collector*> g_collector{nullptr};

namespace {

constexpr std::size_t kDefaultRingCapacity = 32768;

/// Attach sessions, for invalidating thread-local buffer caches.
std::atomic<std::uint64_t> g_generation{1};

/// Emitters inside a hook. detach() clears g_collector then spins until this
/// drains, so a pinned collector can never be freed under an emitter. Global
/// (not a member) so the count survives the collector it protected.
std::atomic<std::uint64_t> g_pins{0};

/// Process-unique task ids; never reset (ids stay unique across collectors).
std::atomic<std::uint64_t> g_next_task_id{1};

/// Ring buffers ever created (disabled-path allocation guard for tests).
std::atomic<std::uint64_t> g_buffers_created{0};

/// Process-unique thread uid, for detecting task migration (steals).
std::atomic<int> g_next_thread_uid{0};
int thread_uid() noexcept {
  thread_local const int uid = g_next_thread_uid.fetch_add(1);
  return uid;
}

/// Worker index of this thread within its pool (-1 = not a pool worker);
/// labels the thread's trace lane.
thread_local int tl_worker_hint = -1;

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pin the armed collector for the duration of one emission. Pair every
/// non-null return with unpin().
Collector* pin() noexcept {
  g_pins.fetch_add(1, std::memory_order_seq_cst);
  Collector* c = g_collector.load(std::memory_order_seq_cst);
  if (c == nullptr) {
    g_pins.fetch_sub(1, std::memory_order_seq_cst);
    return nullptr;
  }
  return c;
}

void unpin() noexcept { g_pins.fetch_sub(1, std::memory_order_seq_cst); }

/// One executing task (or driver root) on this thread's frame stack.
/// Exclusive time accrues only while the segment is open; helping (nested
/// frames) and wait() close it.
struct Frame {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t seq = 0;
  std::int64_t start_ns = 0;
  std::int64_t seg_start_ns = 0;
  std::int64_t excl_ns = 0;
  std::int64_t span_ns = 0;
  std::int64_t off_ns = 0;
  std::int64_t lat_ns = 0;
  bool seg_open = true;
  bool parent_was_open = false;
  bool migrated = false;
  bool root = false;
  const char* name = "task";
};

thread_local std::vector<Frame> tl_frames;

void close_segment(Frame& f, std::int64_t now) noexcept {
  if (f.seg_open) {
    f.excl_ns += now - f.seg_start_ns;
    f.span_ns += now - f.seg_start_ns;
    f.seg_open = false;
  }
}

void open_segment(Frame& f, std::int64_t now) noexcept {
  if (!f.seg_open) {
    f.seg_start_ns = now;
    f.seg_open = true;
  }
}

/// Running span including the currently open segment.
std::int64_t span_now(const Frame& f, std::int64_t now) noexcept {
  return f.span_ns + (f.seg_open ? now - f.seg_start_ns : 0);
}

}  // namespace

void emit_event(const TraceEvent& e) {
  if (Collector* c = pin()) {
    c->thread_buffer().emit(e);
    unpin();
  }
}

void push_frame(std::uint64_t id, std::uint64_t parent, std::uint64_t seq,
                std::int64_t off_ns, std::int64_t lat_ns, bool migrated,
                bool root, const char* name) {
  const std::int64_t now = now_ns();
  bool parent_was_open = false;
  if (!tl_frames.empty()) {
    Frame& p = tl_frames.back();
    parent_was_open = p.seg_open;
    close_segment(p, now);
  }
  Frame f;
  f.id = id;
  f.parent = parent;
  f.seq = seq;
  f.start_ns = now;
  f.seg_start_ns = now;
  f.off_ns = off_ns;
  f.lat_ns = lat_ns;
  f.parent_was_open = parent_was_open;
  f.migrated = migrated;
  f.root = root;
  f.name = name;
  tl_frames.push_back(f);
}

void pop_frame(GroupObs* fold_into) {
  if (tl_frames.empty()) return;  // collector churn mid-task; stay balanced
  const std::int64_t now = now_ns();
  Frame f = tl_frames.back();
  tl_frames.pop_back();
  close_segment(f, now);
  if (fold_into != nullptr) {
    fold_into->fold(f.off_ns + f.lat_ns + f.span_ns);
  }
  if (!tl_frames.empty() && f.parent_was_open) {
    open_segment(tl_frames.back(), now);
  }
  if (Collector* c = pin()) {
    c->tasks_.fetch_add(1, std::memory_order_relaxed);
    c->work_ns_.fetch_add(f.excl_ns, std::memory_order_relaxed);
    if (f.root) c->span_ns_.fetch_add(f.span_ns, std::memory_order_relaxed);
    c->task_hist_.record(now - f.start_ns);
    ThreadBuffer& buf = c->thread_buffer();
    buf.busy_ns += f.excl_ns;
    TraceEvent e;
    e.name = f.name;
    e.kind = TraceEvent::Kind::Task;
    e.trace = tl_trace_id;
    e.ts_ns = f.start_ns;
    e.dur_ns = now - f.start_ns;
    e.id = f.id;
    e.parent = f.parent;
    e.seq = f.seq;
    e.off_ns = f.off_ns;
    e.lat_ns = f.lat_ns;
    e.span_ns = f.span_ns;
    e.excl_ns = f.excl_ns;
    e.migrated = f.migrated;
    buf.emit(e);
    unpin();
  }
}

void spawn_hook(TaskTag& tag, std::uint64_t seq) {
  const std::int64_t now = now_ns();
  tag.id = g_next_task_id.fetch_add(1, std::memory_order_relaxed);
  tag.spawn_ns = now;
  tag.spawn_thread = thread_uid();
  if (!tl_frames.empty()) {
    const Frame& p = tl_frames.back();
    tag.parent = p.id;
    tag.off_ns = span_now(p, now);
  }
  TraceEvent e;
  e.name = "spawn";
  e.kind = TraceEvent::Kind::Spawn;
  e.trace = tag.trace;
  e.ts_ns = now;
  e.id = tag.id;
  e.parent = tag.parent;
  e.seq = seq;
  e.off_ns = tag.off_ns;
  emit_event(e);
}

void inline_begin(std::uint64_t seq) {
  const std::int64_t now = now_ns();
  std::uint64_t parent = 0;
  std::int64_t off = 0;
  if (!tl_frames.empty()) {
    const Frame& p = tl_frames.back();
    parent = p.id;
    off = span_now(p, now);
  }
  push_frame(g_next_task_id.fetch_add(1, std::memory_order_relaxed), parent,
             seq, off, /*lat_ns=*/0, /*migrated=*/false, /*root=*/false,
             "task");
}

void run_begin(const TaskTag& tag, std::uint64_t seq) {
  const std::int64_t now = now_ns();
  const bool tagged = tag.id != 0;
  const std::uint64_t id =
      tagged ? tag.id : g_next_task_id.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t lat = tagged ? now - tag.spawn_ns : 0;
  const bool migrated = tagged && tag.spawn_thread != thread_uid();
  if (migrated) {
    TraceEvent e;
    e.name = "steal";
    e.kind = TraceEvent::Kind::Steal;
    e.trace = tag.trace;
    e.ts_ns = now;
    e.id = id;
    e.parent = tag.parent;
    e.seq = seq;
    e.lat_ns = lat;
    emit_event(e);
  }
  push_frame(id, tag.parent, seq, tag.off_ns, lat, migrated, /*root=*/false,
             "task");
}

void task_end(GroupObs* fold_into) { pop_frame(fold_into); }

void node_event(std::uint64_t path, int depth, std::int64_t start_ns,
                std::int64_t dur_ns, std::int64_t excl_ns, std::uint64_t flops,
                const perf::Sample& hw) {
  TraceEvent e;
  e.name = "node";
  e.kind = TraceEvent::Kind::Node;
  e.trace = tl_trace_id;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.id = path;
  e.seq = static_cast<std::uint64_t>(depth);
  e.excl_ns = excl_ns;
  e.span_ns = static_cast<std::int64_t>(flops);  // field reuse, see header
  e.hw_mask = static_cast<std::uint8_t>(hw.mask);
  for (int i = 0; i < perf::kEventCount; ++i) e.hw[i] = hw.value[i];
  emit_event(e);
}

void wait_begin() {
  if (tl_frames.empty()) return;
  close_segment(tl_frames.back(), now_ns());
}

void wait_end(GroupObs* fold_from) {
  if (tl_frames.empty()) return;
  const std::int64_t now = now_ns();
  Frame& f = tl_frames.back();
  // Emit a sync event only when the join extends the waiter's span — i.e.
  // some child's subtree was the longer path. Trivial waits (empty groups,
  // the TaskGroup destructor's second wait) would otherwise flood the ring:
  // the recursion creates a group per node even below the spawn threshold.
  bool extended = false;
  if (fold_from != nullptr) {
    const std::int64_t child =
        fold_from->max_child_ns.load(std::memory_order_acquire);
    if (child > f.span_ns) {
      f.span_ns = child;
      extended = true;
    }
  }
  open_segment(f, now);
  if (extended) {
    TraceEvent e;
    e.name = "sync";
    e.kind = TraceEvent::Kind::Sync;
    e.trace = tl_trace_id;
    e.ts_ns = now;
    e.parent = f.id;
    e.span_ns = f.span_ns;
    emit_event(e);
  }
}

void set_worker_hint(int worker_index) { tl_worker_hint = worker_index; }

int worker_hint() noexcept { return tl_worker_hint; }

}  // namespace detail

using detail::g_buffers_created;
using detail::g_collector;
using detail::g_generation;
using detail::g_pins;

namespace {

/// Per-thread cache of the buffer registered with the current attach
/// session; generation mismatch forces re-registration.
struct BufferCache {
  std::uint64_t generation = 0;
  ThreadBuffer* buffer = nullptr;
};
thread_local BufferCache tl_buffer_cache;

}  // namespace

Collector::Collector(std::size_t ring_capacity) {
  if (ring_capacity == 0) {
    const std::int64_t env = env_int("RLA_TRACE_BUF", 0);
    ring_capacity = env > 0 ? static_cast<std::size_t>(env)
                            : detail::kDefaultRingCapacity;
  }
  ring_capacity_ = std::max<std::size_t>(ring_capacity, 16);
}

Collector::~Collector() { detach(); }

bool Collector::try_attach() {
  Collector* expected = nullptr;
  if (!g_collector.compare_exchange_strong(expected, this,
                                           std::memory_order_seq_cst)) {
    return false;
  }
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
  g_generation.fetch_add(1, std::memory_order_seq_cst);
  attached_ = true;
  return true;
}

void Collector::detach() {
  if (!attached_) return;
  Collector* expected = this;
  g_collector.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_seq_cst);
  // Spin out emitters that pinned before the slot cleared. Pins bracket a
  // few ring-buffer stores, so this is bounded and short.
  while (g_pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  attached_ = false;
}

ThreadBuffer& Collector::thread_buffer() {
  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if (tl_buffer_cache.generation == gen && tl_buffer_cache.buffer != nullptr) {
    return *tl_buffer_cache.buffer;
  }
  MutexLock lock(reg_mutex_);
  const int tid = static_cast<int>(buffers_.size());
  const int hint = detail::tl_worker_hint;
  std::string label =
      hint >= 0 ? "worker " + std::to_string(hint) : std::string("main");
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(ring_capacity_, tid, std::move(label)));
  g_buffers_created.fetch_add(1, std::memory_order_relaxed);
  tl_buffer_cache = {gen, buffers_.back().get()};
  return *buffers_.back();
}

std::uint64_t Collector::tasks() const noexcept {
  return tasks_.load(std::memory_order_relaxed);
}

std::int64_t Collector::work_ns() const noexcept {
  return work_ns_.load(std::memory_order_relaxed);
}

std::int64_t Collector::span_ns() const noexcept {
  return span_ns_.load(std::memory_order_relaxed);
}

std::uint64_t Collector::events_dropped() const {
  MutexLock lock(reg_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    if (buf->written > buf->ring.size()) dropped += buf->written - buf->ring.size();
  }
  return dropped;
}

double Collector::achieved_parallelism() const noexcept {
  const std::int64_t span = span_ns();
  return span > 0 ? static_cast<double>(work_ns()) / static_cast<double>(span)
                  : 0.0;
}

std::uint64_t Collector::buffers_created() {
  return g_buffers_created.load(std::memory_order_relaxed);
}

namespace {

const char* phase_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::Task: return "task";
    case TraceEvent::Kind::Phase: return "phase";
    case TraceEvent::Kind::Spawn: return "spawn";
    case TraceEvent::Kind::Steal: return "steal";
    case TraceEvent::Kind::Sync: return "sync";
    case TraceEvent::Kind::Node: return "node";
  }
  return "?";
}

void write_event(std::ostream& out, const TraceEvent& e, int tid,
                 std::int64_t epoch_ns) {
  const double ts_us = static_cast<double>(e.ts_ns - epoch_ns) / 1000.0;
  out << "{\"name\":";
  if (e.kind == TraceEvent::Kind::Node) {
    // Display name is the quadrant path key so Perfetto nests the recursion
    // ("d0" > "d1:2" > "d2:21" ...); the static name stays the cat.
    out << json::quote(treeprof::path_key(e.id));
  } else {
    out << json::quote(e.name);
  }
  out << ",\"cat\":\"" << phase_name(e.kind) << "\",\"pid\":1,\"tid\":" << tid;
  const bool durational = e.kind == TraceEvent::Kind::Task ||
                          e.kind == TraceEvent::Kind::Phase ||
                          e.kind == TraceEvent::Kind::Node;
  if (durational) {
    out << ",\"ph\":\"X\",\"ts\":" << ts_us
        << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
  } else {
    out << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us;
  }
  out << ",\"args\":{";
  out << "\"id\":" << e.id << ",\"parent\":" << e.parent << ",\"seq\":" << e.seq;
  if (e.trace != 0) out << ",\"trace\":" << e.trace;
  if (e.kind == TraceEvent::Kind::Task) {
    out << ",\"off_ns\":" << e.off_ns << ",\"lat_ns\":" << e.lat_ns
        << ",\"span_ns\":" << e.span_ns << ",\"excl_ns\":" << e.excl_ns
        << ",\"migrated\":" << (e.migrated ? "true" : "false");
  } else if (e.kind == TraceEvent::Kind::Phase && e.hw_mask != 0) {
    // Scaled HW-counter deltas for this span (Perfetto shows them in the
    // args pane when the slice is selected).
    for (int i = 0; i < perf::kEventCount; ++i) {
      if ((e.hw_mask >> i) & 1u) {
        out << ",\"" << perf::event_name(i) << "\":" << e.hw[i];
      }
    }
  } else if (e.kind == TraceEvent::Kind::Node) {
    out << ",\"depth\":" << e.seq << ",\"excl_ns\":" << e.excl_ns
        << ",\"flops\":" << e.span_ns;
    for (int i = 0; i < perf::kEventCount; ++i) {
      if ((e.hw_mask >> i) & 1u) {
        out << ",\"" << perf::event_name(i) << "\":" << e.hw[i];
      }
    }
  } else if (e.kind == TraceEvent::Kind::Spawn) {
    out << ",\"off_ns\":" << e.off_ns;
  } else if (e.kind == TraceEvent::Kind::Steal) {
    out << ",\"lat_ns\":" << e.lat_ns;
  } else if (e.kind == TraceEvent::Kind::Sync) {
    out << ",\"span_ns\":" << e.span_ns;
  }
  out << "}}";
}

}  // namespace

void Collector::write_chrome_trace(std::ostream& out) const {
  MutexLock lock(reg_mutex_);
  out << "{\"traceEvents\":[";
  bool first = true;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"rla\"}}";
  first = false;
  for (const auto& buf : buffers_) {
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << buf->tid << ",\"args\":{\"name\":" << json::quote(buf->label)
        << "}}";
  }
  // Stable lane order regardless of registration (= first-emission) order:
  // the main lane on top, then workers by pool index.
  for (const auto& buf : buffers_) {
    int sort = 0;
    if (buf->label.rfind("worker ", 0) == 0) {
      sort = 1 + std::atoi(buf->label.c_str() + 7);
    }
    out << ",{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << buf->tid << ",\"args\":{\"sort_index\":" << sort << "}}";
  }
  for (const auto& buf : buffers_) {
    const std::uint64_t count = std::min<std::uint64_t>(buf->written, buf->ring.size());
    const std::uint64_t start = buf->written - count;
    for (std::uint64_t i = start; i < buf->written; ++i) {
      if (!first) out << ",";
      first = false;
      write_event(out, buf->ring[i % buf->ring.size()], buf->tid, epoch_ns_);
      out << "\n";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"";
  out << ",\"rla_metrics\":" << registry_.snapshot().dump();
  out << ",\"rla_summary\":{\"tasks\":" << tasks() << ",\"work_ns\":" << work_ns()
      << ",\"span_ns\":" << span_ns() << ",\"parallelism\":"
      << json::Value::number(achieved_parallelism()).dump()
      << ",\"events_dropped\":";
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    if (buf->written > buf->ring.size()) dropped += buf->written - buf->ring.size();
  }
  out << dropped << "}}\n";
}

bool Collector::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

ScopedRoot::ScopedRoot(const char* name) : on_(armed()) {
  if (on_) {
    detail::push_frame(
        detail::g_next_task_id.fetch_add(1, std::memory_order_relaxed),
        /*parent=*/0, /*seq=*/0, /*off_ns=*/0, /*lat_ns=*/0,
        /*migrated=*/false, /*root=*/true, name);
  }
}

ScopedRoot::~ScopedRoot() {
  if (on_) detail::pop_frame(nullptr);
}

PhaseScope::PhaseScope(const char* name) : name_(name), on_(armed()) {
  hw_on_ = perf::phase_snapshot(hw_begin_);
  if (on_ || hw_on_) start_ns_ = detail::now_ns();
}

PhaseScope::PhaseScope(const char* name, bool enabled)
    : name_(name), on_(enabled && armed()) {
  if (enabled) hw_on_ = perf::phase_snapshot(hw_begin_);
  if (on_ || hw_on_) start_ns_ = detail::now_ns();
}

PhaseScope::~PhaseScope() {
  if (!on_ && !hw_on_) return;
  TraceEvent e;
  e.name = name_;
  e.kind = TraceEvent::Kind::Phase;
  e.trace = current_trace_id();
  e.ts_ns = start_ns_;
  e.dur_ns = detail::now_ns() - start_ns_;
  if (hw_on_) {
    // Bracket the phase with whole-process counter snapshots (the sum over
    // all thread groups — work done by workers inside the phase counts) and
    // fold the delta into the session's per-phase aggregate.
    perf::Sample end;
    if (perf::phase_snapshot(end)) {
      const perf::Sample d = end.delta_since(hw_begin_);
      perf::note_phase(name_, d);
      e.hw_mask = static_cast<std::uint8_t>(d.mask);
      for (int i = 0; i < perf::kEventCount; ++i) e.hw[i] = d.value[i];
    }
  }
  if (!on_) return;  // counters recorded; no collector to emit the span to
  if (!detail::tl_frames.empty()) e.parent = detail::tl_frames.back().id;
  detail::emit_event(e);
}

}  // namespace rla::obs
