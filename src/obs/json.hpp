#pragma once

// Minimal JSON value: build, serialize, parse.
//
// The observability layer needs to EMIT machine-readable artifacts (Chrome
// trace files, GemmProfile::to_json(), bench --json reports) and the test
// suite needs to READ them back to assert they are well-formed and lossless.
// A dependency-free value type covering objects, arrays, strings, numbers,
// booleans and null is enough for both directions; nothing here aims to be a
// general-purpose JSON library.
//
// Numbers keep their source text: integers up to uint64/int64 round-trip
// exactly (a double-only model would corrupt counters past 2^53), and doubles
// are emitted with max_digits10 so parse(dump(x)) == x.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rla::obs::json {

class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default;  // null
  static Value boolean(bool b);
  static Value number(double v);
  static Value number(std::int64_t v);
  static Value number(std::uint64_t v);
  static Value number(int v) { return number(static_cast<std::int64_t>(v)); }
  static Value number(unsigned v) { return number(static_cast<std::uint64_t>(v)); }
  static Value string(std::string s);
  static Value array();
  static Value object();
  /// Number carrying an already-validated numeral verbatim (parser use).
  static Value number_from_text(std::string numeral);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const { return str_; }

  /// Array access.
  const std::vector<Value>& items() const { return arr_; }
  std::size_t size() const noexcept { return arr_.size(); }
  void push_back(Value v) { arr_.push_back(std::move(v)); }

  /// Object access. `find` returns nullptr when the key is absent.
  const std::vector<std::pair<std::string, Value>>& members() const {
    return obj_;
  }
  const Value* find(std::string_view key) const;
  void set(std::string key, Value v);

  /// Compact serialization (no whitespace except inside strings).
  std::string dump() const;

  /// Strict-enough recursive-descent parse; nullopt on malformed input.
  static std::optional<Value> parse(std::string_view text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string str_;  ///< string payload, or the raw numeral for Kind::Number
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// JSON string escaping of `text` (returns the quoted form).
std::string quote(std::string_view text);

}  // namespace rla::obs::json
