#pragma once

// Hardware performance counters via Linux perf_event_open (DESIGN.md §11).
//
// One Session is armed at a time (process-global slot, mirroring the trace
// Collector). While armed, every thread that executes pool work lazily opens
// its own *counter group* — cycles, instructions, L1d-read-misses,
// LLC-misses, dTLB-misses and task-clock — led by the first event the kernel
// accepts. Groups are read with PERF_FORMAT_GROUP (one read syscall returns
// every sibling plus time_enabled/time_running), and every value is
// multiplexing-scaled:
//
//     scaled = raw * time_enabled / time_running
//
// so runs where the PMU was shared with other event sets still report
// extrapolated whole-run counts; Sample::scale keeps the worst
// running/enabled ratio so consumers can judge how much was extrapolated.
//
// Degradation, never failure: perf_event_open can be absent (ENOSYS under
// seccomp), forbidden (perf_event_paranoid >= 2 in containers), or partial
// (VMs without a PMU reject the hardware events but accept the software
// task-clock). A Session that cannot open any event reports available() ==
// false with a reason string; individual events that fail to open are simply
// dropped from the active mask. The gemm driver turns an unavailable session
// into a "perf:unavailable:<reason>" degradation-trail entry and carries on.
// The fault site "perf.open" (robust/fault.hpp) forces the unavailable path
// deterministically for tests.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/sync.hpp"

namespace rla::obs::perf {

/// Fixed event set, indexed 0..kEventCount-1. Order is the JSON/report
/// order; event_name() gives the stable wire names.
inline constexpr int kEventCount = 6;
enum EventIndex : int {
  kCycles = 0,
  kInstructions = 1,
  kL1dReadMisses = 2,
  kLlcMisses = 3,
  kDtlbMisses = 4,
  kTaskClock = 5,  ///< software clock, ns; survives PMU-less VMs
};

/// Stable name for event index i ("cycles", "instructions",
/// "l1d_read_misses", "llc_misses", "dtlb_misses", "task_clock_ns").
const char* event_name(int index) noexcept;

/// One multiplexing-scaled reading (cumulative or delta) of the event set.
struct Sample {
  std::uint64_t value[kEventCount] = {};
  unsigned mask = 0;    ///< bit i set = event i was counting
  double scale = 1.0;   ///< min time_running/time_enabled seen (1 = exact)

  bool has(int index) const noexcept { return (mask >> index) & 1u; }

  /// this - earlier, per event (saturating at 0 against clock skew between
  /// the two group reads); mask intersects, scale takes the worse (smaller).
  Sample delta_since(const Sample& earlier) const noexcept;

  /// Accumulate a delta: values add, masks union, scale takes the worse.
  void accumulate(const Sample& d) noexcept;
};

/// One perf_event group owned by the thread that opened it. Reads are safe
/// from any thread (the fd read does not care who calls it).
class CounterGroup {
 public:
  CounterGroup() = default;
  ~CounterGroup();
  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  /// Open the group on the *calling* thread and start it counting. Returns
  /// false — with a short reason ("ENOSYS", "paranoid=2", "fault-injected",
  /// "unsupported-platform", "errno=N") — when no event at all could be
  /// opened. Partial success (some events rejected) is still success.
  bool open(std::string* reason);

  bool valid() const noexcept { return mask_ != 0; }
  unsigned mask() const noexcept { return mask_; }

  /// Cumulative scaled values since open(). False on read failure.
  bool read(Sample& out) const;

  void close() noexcept;

 private:
  int fds_[kEventCount] = {-1, -1, -1, -1, -1, -1};
  std::uint64_t ids_[kEventCount] = {};
  int leader_ = -1;      ///< event index of the group leader
  unsigned mask_ = 0;
};

/// Per-thread totals harvested from a session.
struct ThreadCounters {
  std::string label;  ///< "w<N>" for pool workers, "main" otherwise
  Sample sample;
};

/// An armed counting session: owns one CounterGroup per participating
/// thread. Threads join lazily through on_thread_work() (one relaxed load
/// when no session is armed); the attaching thread joins at attach time.
class Session {
 public:
  Session() = default;
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Probe perf availability and arm this session. False if another session
  /// is armed. After a true return, check available(): an armed-but-
  /// unavailable session counts nothing and exists only so the caller can
  /// read the reason().
  bool try_attach();

  /// Disarm; blocks until in-flight joins/reads have left. Per-thread
  /// totals stay readable after this. Idempotent.
  void detach();

  bool attached() const noexcept { return attached_; }
  bool available() const noexcept {
    return available_.load(std::memory_order_acquire);
  }
  const std::string& reason() const noexcept { return reason_; }

  /// Sum of every thread group's current scaled cumulative values.
  Sample read_total() const;

  /// Per-thread cumulative values with their lane labels.
  std::vector<ThreadCounters> per_thread() const;

  /// Accumulate one phase-scoped delta under `name` (aggregated across
  /// pieces; insertion order = first-seen order).
  void note_phase(const char* name, const Sample& delta);

  /// The per-phase aggregates recorded so far.
  std::vector<std::pair<std::string, Sample>> phase_totals() const;

  /// Internal (called via the join hook under the pin protocol): open a
  /// group for the calling thread and register it with its lane label.
  void join_current_thread();

  /// Internal (thread_sample, under the pin protocol): read only the
  /// calling thread's own group — one read syscall, no session mutex.
  /// False when this thread never joined the armed session.
  bool read_current_thread(Sample& out) const;

 private:
  friend bool phase_snapshot(Sample& out);

  mutable Mutex mutex_;  // lock-level: registry
  std::vector<std::unique_ptr<CounterGroup>> groups_ RLA_GUARDED_BY(mutex_);
  std::vector<std::string> labels_ RLA_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, Sample>> phases_ RLA_GUARDED_BY(mutex_);
  std::string reason_;
  bool attached_ = false;
  /// Atomic, not mutex-guarded: workers probe it through the armed-session
  /// pointer from the join/snapshot hooks, and the release store in
  /// try_attach() must be ordered before the g_session publication those
  /// hooks load from (the old plain bool was written after the CAS — a
  /// window where a joining worker read stale false).
  std::atomic<bool> available_{false};
};

namespace detail {
/// The armed session (null = off); same pin protocol as the Collector.
extern std::atomic<Session*> g_session;
void join_slow();
}  // namespace detail

/// True while a Session is armed and counting (one relaxed load).
inline bool counting() noexcept {
  return detail::g_session.load(std::memory_order_relaxed) != nullptr;
}

/// Hot hook for task-executing threads: lazily opens this thread's counter
/// group the first time it runs work under an armed session. One relaxed
/// load when no session is armed.
inline void on_thread_work() {
  if (counting()) detail::join_slow();
}

/// Snapshot the armed session's whole-process cumulative counters (the sum
/// over thread groups). False when no session is armed/available; used by
/// PhaseScope to bracket driver phases.
bool phase_snapshot(Sample& out);

/// Record a phase delta into the armed session (no-op when none).
void note_phase(const char* name, const Sample& delta);

/// Cumulative scaled counters of the *calling thread's* group only — the
/// cheap read the tree profiler brackets frame transitions with (read_total
/// sums every group under the session mutex; this is one syscall). False
/// when no session is armed/available or this thread has no group.
bool thread_sample(Sample& out);

}  // namespace rla::obs::perf
