#pragma once

// Recursion-resolved profiler: per-depth / per-quadrant cost attribution
// (DESIGN.md §16).
//
// While a Session is armed, every executed node of the quadrant recursion
// opens a NodeScope keyed by its *quadrant path* — the sequence of child
// indices from the root, packed into a uint64 (see path encoding below) —
// and the scope attributes to that key:
//
//   * exclusive wall time (nested children and group waits pause the clock,
//     mirroring the trace Collector's frame discipline);
//   * FLOPs (leaf multiplies and block-add traffic, via add_flops);
//   * task counts (one per recursion node or forked add task);
//   * PMU deltas — the calling thread's own perf counter group is read at
//     every frame transition and the delta charged to the frame that owned
//     the interval (perf::thread_sample; empty when no perf session counts).
//
// Aggregation is lock-free per worker: each thread owns a single-writer
// table registered with the session once (under a mutex), updated without
// synchronization, and folded after detach()'s quiescence barrier.
//
// Nodes deeper than the session's max_depth do not open frames; their cost
// rolls up into the nearest ancestor at max_depth. That bounds table size,
// trace-ring usage and PMU read frequency, and it is what makes the
// per-depth tables reconcile: every level's exclusive sums add up to the
// whole compute phase.
//
// Path encoding: a 1-sentinel followed by one 3-bit digit per child step
// (standard recursion forks 8 children, Strassen/Winograd 7 products), so
// kRootPath == 1, child 2 of the root == 0b1'010, and depth is the digit
// count. Rendered as "d<depth>" for the root and "d<depth>:<digits>"
// otherwise, e.g. "d3:021".
//
// One Session is armed at a time (process-global slot, same protocol as the
// trace Collector and the perf Session); a second arming attempt fails and
// the caller degrades with a "treeprof:busy" trail entry.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/hooks.hpp"
#include "obs/perf.hpp"
#include "support/sync.hpp"

namespace rla::obs::treeprof {

/// The root of the recursion tree (the 1-sentinel with no digits).
inline constexpr std::uint64_t kRootPath = 1;

/// Deepest representable path: 1 sentinel bit + 21 three-bit digits = 64.
inline constexpr int kMaxPathDepth = 21;

/// Frame cap when RLA_TREEPROF_MAX_DEPTH is unset.
inline constexpr int kDefaultMaxDepth = 3;

/// Path of child `idx` (0..7) of `path`.
constexpr std::uint64_t child_path(std::uint64_t path, unsigned idx) noexcept {
  return (path << 3) | (idx & 7u);
}

/// Number of 3-bit digits below the sentinel (root = 0).
int path_depth(std::uint64_t path) noexcept;

/// Digit `i` (0 = first step from the root) of `path`.
unsigned path_digit(std::uint64_t path, int i) noexcept;

/// Render "d0" / "d3:021".
std::string path_key(std::uint64_t path);

/// Per-node aggregate. `hw` holds exclusive scaled PMU deltas (mask == 0
/// when no perf session was counting on the attributing threads).
struct NodeStats {
  std::uint64_t time_ns = 0;  ///< exclusive wall time
  std::uint64_t flops = 0;
  std::uint64_t tasks = 0;
  perf::Sample hw;
};

/// One folded tree node.
struct Node {
  std::uint64_t path = kRootPath;
  NodeStats stats;
};

/// Effective frame cap: RLA_TREEPROF_MAX_DEPTH clamped to
/// [0, kMaxPathDepth], default kDefaultMaxDepth.
int default_max_depth();

/// An armed tree-profiling session: owns one single-writer table per
/// participating thread.
class Session {
 public:
  /// Per-thread open-addressed aggregate table (definition in the .cpp;
  /// single writer, read by fold() after detach quiescence).
  struct Table;

  explicit Session(int max_depth = default_max_depth());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Arm this session. False if another session is armed (the caller should
  /// proceed unprofiled and note "treeprof:busy").
  bool try_attach();

  /// Disarm; blocks until every in-flight scope operation has left the
  /// session. fold() is stable after this returns. Idempotent.
  void detach();

  bool attached() const noexcept { return attached_; }
  int max_depth() const noexcept { return max_depth_; }
  std::uint64_t generation() const noexcept { return gen_; }

  /// Merge every thread table into one list, sorted by (depth, path).
  /// Call after detach().
  std::vector<Node> fold() const;

  /// Internal (scope flush path, under the pin protocol): the calling
  /// thread's table, registering one on first use.
  Table* table_for_current_thread();

 private:
  int max_depth_;
  std::uint64_t gen_ = 0;
  bool attached_ = false;
  mutable Mutex mutex_;  // lock-level: registry
  std::vector<std::unique_ptr<Table>> tables_ RLA_GUARDED_BY(mutex_);
};

// armed() and the detail::wait_begin/wait_end brackets TaskGroup::wait()
// calls live in obs/hooks.hpp (inline flag check) and treeprof.cpp.

/// RAII frame for one recursion node (or one forked add task attributed to
/// its node). Construct *after* any delegation/fallback check so a node
/// whose body defers to another algorithm opens exactly one scope.
class NodeScope {
 public:
  explicit NodeScope(std::uint64_t path) noexcept;
  ~NodeScope();
  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;

 private:
  bool open_ = false;
};

/// Attribute `n` FLOPs to the innermost open frame on this thread (no-op
/// when disarmed or outside any scope). One relaxed load when disarmed.
void add_flops(std::uint64_t n) noexcept;

/// Render (key, value) rows — e.g. GemmProfile::TreeNode key + exclusive
/// time — as flamegraph.pl folded stacks: "gemm;0;2;1 <value>" per line,
/// one stack frame per quadrant digit.
std::string folded_stacks(
    const std::vector<std::pair<std::string, std::uint64_t>>& rows);

}  // namespace rla::obs::treeprof
