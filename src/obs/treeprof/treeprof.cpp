#include "obs/treeprof/treeprof.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "obs/collector.hpp"
#include "util/env.hpp"

namespace rla::obs::treeprof {

// ---- path encoding ----------------------------------------------------------

int path_depth(std::uint64_t path) noexcept {
  int d = 0;
  while (path != 1 && path != 0) {
    path >>= 3;
    ++d;
  }
  return d;
}

unsigned path_digit(std::uint64_t path, int i) noexcept {
  const int d = path_depth(path);
  if (i < 0 || i >= d) return 0;
  return static_cast<unsigned>((path >> (3 * (d - 1 - i))) & 7u);
}

std::string path_key(std::uint64_t path) {
  const int d = path_depth(path);
  std::string out = "d" + std::to_string(d);
  if (d > 0) {
    out += ':';
    for (int i = 0; i < d; ++i) {
      out += static_cast<char>('0' + path_digit(path, i));
    }
  }
  return out;
}

int default_max_depth() {
  int d = env_int("RLA_TREEPROF_MAX_DEPTH", kDefaultMaxDepth);
  if (d < 0) d = 0;
  if (d > kMaxPathDepth) d = kMaxPathDepth;
  return d;
}

// ---- session slot (same pin protocol as Collector / perf::Session) ----------

namespace {

std::atomic<Session*> g_session{nullptr};

/// Attach generations, invalidating per-thread table and frame caches.
std::atomic<std::uint64_t> g_generation{1};

/// Threads currently inside a session operation; detach() clears the slot
/// then drains this before returning.
std::atomic<std::uint64_t> g_pins{0};

Session* pin() noexcept {
  g_pins.fetch_add(1, std::memory_order_seq_cst);
  Session* s = g_session.load(std::memory_order_seq_cst);
  if (s == nullptr) {
    g_pins.fetch_sub(1, std::memory_order_seq_cst);
    return nullptr;
  }
  return s;
}

void unpin() noexcept { g_pins.fetch_sub(1, std::memory_order_seq_cst); }

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- per-thread frame stack -------------------------------------------------

/// One open recursion-node frame. Mirrors the Collector's frame discipline:
/// only the top frame has an open exclusive segment; pushes close the
/// parent's segment, pops reopen it unless a wait paused it.
struct Frame {
  std::uint64_t path = kRootPath;
  std::uint64_t gen = 0;        ///< session generation at push
  std::int64_t start_ns = 0;    ///< push time (inclusive span start)
  std::int64_t seg_start = 0;   ///< open exclusive segment start (0 = closed)
  std::uint64_t excl_ns = 0;
  std::uint64_t flops = 0;
  std::uint64_t tasks = 0;
  perf::Sample hw;              ///< exclusive PMU deltas charged so far
  bool paused = false;          ///< a TaskGroup::wait() is in progress here
};

thread_local std::vector<Frame> tl_stack;

/// PMU interval baseline for this thread: counters at the last frame
/// transition. The delta since the baseline belongs to whoever owned the
/// elapsed interval.
thread_local perf::Sample tl_pmu_base;
thread_local bool tl_pmu_valid = false;

void close_segment(Frame& f, std::int64_t now) noexcept {
  if (f.seg_start != 0) {
    if (now > f.seg_start) {
      f.excl_ns += static_cast<std::uint64_t>(now - f.seg_start);
    }
    f.seg_start = 0;
  }
}

void open_segment(Frame& f, std::int64_t now) noexcept { f.seg_start = now; }

/// Read this thread's counters and charge the interval since the last
/// baseline to `owner` (null = drop it: idle / scheduler time).
void pmu_flush(Frame* owner) noexcept {
  perf::Sample now_s;
  if (!perf::thread_sample(now_s)) {
    tl_pmu_valid = false;
    return;
  }
  if (tl_pmu_valid && owner != nullptr) {
    owner->hw.accumulate(now_s.delta_since(tl_pmu_base));
  }
  tl_pmu_base = now_s;
  tl_pmu_valid = true;
}

}  // namespace

// ---- Session ----------------------------------------------------------------

struct Session::Table {
  /// Single writer (the owning thread); fold() reads after detach()'s
  /// quiescence barrier.
  std::unordered_map<std::uint64_t, NodeStats> map;
};

namespace {
thread_local Session::Table* tl_table = nullptr;
thread_local std::uint64_t tl_table_gen = 0;
}  // namespace

Session::Session(int max_depth) : max_depth_(max_depth) {
  if (max_depth_ < 0) max_depth_ = 0;
  if (max_depth_ > kMaxPathDepth) max_depth_ = kMaxPathDepth;
}

Session::~Session() { detach(); }

bool Session::try_attach() {
  Session* expected = nullptr;
  if (!g_session.compare_exchange_strong(expected, this,
                                         std::memory_order_seq_cst)) {
    return false;
  }
  gen_ = g_generation.fetch_add(1, std::memory_order_seq_cst) + 1;
  attached_ = true;
  detail::g_armed.store(true, std::memory_order_seq_cst);
  return true;
}

void Session::detach() {
  if (!attached_) return;
  detail::g_armed.store(false, std::memory_order_seq_cst);
  Session* expected = this;
  g_session.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_seq_cst);
  while (g_pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  attached_ = false;
}

Session::Table* Session::table_for_current_thread() {
  if (tl_table != nullptr && tl_table_gen == gen_) return tl_table;
  MutexLock lock(mutex_);
  tables_.push_back(std::make_unique<Table>());
  tl_table = tables_.back().get();
  tl_table_gen = gen_;
  return tl_table;
}

std::vector<Node> Session::fold() const {
  std::unordered_map<std::uint64_t, NodeStats> merged;
  {
    MutexLock lock(mutex_);
    for (const auto& table : tables_) {
      for (const auto& [path, stats] : table->map) {
        NodeStats& n = merged[path];
        n.time_ns += stats.time_ns;
        n.flops += stats.flops;
        n.tasks += stats.tasks;
        n.hw.accumulate(stats.hw);
      }
    }
  }
  std::vector<Node> out;
  out.reserve(merged.size());
  for (const auto& [path, stats] : merged) out.push_back({path, stats});
  std::sort(out.begin(), out.end(), [](const Node& a, const Node& b) {
    const int da = path_depth(a.path);
    const int db = path_depth(b.path);
    return da != db ? da < db : a.path < b.path;
  });
  return out;
}

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

// ---- scopes -----------------------------------------------------------------

namespace {

/// Flush a finished frame into the armed session's per-thread table,
/// dropping it when the session changed since the frame opened.
void flush_to_table(const Frame& f) {
  Session* s = pin();
  if (s == nullptr) return;
  if (s->generation() == f.gen) {
    Session::Table* t = s->table_for_current_thread();
    NodeStats& n = t->map[f.path];
    n.time_ns += f.excl_ns;
    n.flops += f.flops;
    n.tasks += f.tasks;
    n.hw.accumulate(f.hw);
  }
  unpin();
}

}  // namespace

NodeScope::NodeScope(std::uint64_t path) noexcept {
  if (!armed()) return;
  Session* s = pin();
  if (s == nullptr) return;
  const int depth = path_depth(path);
  if (depth > s->max_depth()) {
    // Deeper than the frame cap: the cost rolls up into the enclosing
    // frame; only the task tally records this node ran.
    if (!tl_stack.empty() && tl_stack.back().gen == s->generation()) {
      tl_stack.back().tasks += 1;
    }
    unpin();
    return;
  }
  const std::int64_t now = now_ns();
  if (!tl_stack.empty()) {
    Frame& top = tl_stack.back();
    close_segment(top, now);
    pmu_flush(top.paused ? nullptr : &top);
  } else {
    pmu_flush(nullptr);  // rebaseline: prior interval belongs to no frame
  }
  Frame f;
  f.path = path;
  f.gen = s->generation();
  f.start_ns = now;
  f.seg_start = now;
  f.tasks = 1;
  tl_stack.push_back(f);
  open_ = true;
  unpin();
}

NodeScope::~NodeScope() {
  if (!open_ || tl_stack.empty()) return;
  const std::int64_t now = now_ns();
  Frame f = tl_stack.back();
  tl_stack.pop_back();
  close_segment(f, now);
  pmu_flush(&f);
  if (obs::armed()) {
    obs::detail::node_event(f.path, path_depth(f.path), f.start_ns,
                            now - f.start_ns,
                            static_cast<std::int64_t>(f.excl_ns), f.flops,
                            f.hw);
  }
  flush_to_table(f);
  if (!tl_stack.empty()) {
    Frame& top = tl_stack.back();
    if (!top.paused) open_segment(top, now);
  }
}

void add_flops(std::uint64_t n) noexcept {
  if (!armed()) return;
  if (!tl_stack.empty()) tl_stack.back().flops += n;
}

namespace detail {

void wait_begin() noexcept {
  if (tl_stack.empty()) return;
  Frame& top = tl_stack.back();
  if (top.paused) return;
  close_segment(top, now_ns());
  pmu_flush(&top);
  top.paused = true;
}

void wait_end() noexcept {
  if (tl_stack.empty()) return;
  Frame& top = tl_stack.back();
  if (!top.paused) return;
  top.paused = false;
  open_segment(top, now_ns());
  pmu_flush(nullptr);  // waited interval belongs to no frame
}

}  // namespace detail

// ---- flame export -----------------------------------------------------------

std::string folded_stacks(
    const std::vector<std::pair<std::string, std::uint64_t>>& rows) {
  std::string out;
  for (const auto& [key, value] : rows) {
    std::string stack = "gemm";
    // "d<depth>[:digits]" — one stack frame per quadrant digit.
    const std::size_t colon = key.find(':');
    if (colon != std::string::npos) {
      for (std::size_t i = colon + 1; i < key.size(); ++i) {
        stack += ';';
        stack += key[i];
      }
    } else if (!key.empty() && key[0] != 'd') {
      stack += ';';
      stack += key;  // not a path key; keep it as one frame
    }
    out += stack;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace rla::obs::treeprof
