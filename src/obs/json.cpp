#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace rla::obs::json {

namespace {

/// Format a double so that parse(dump(x)) == x. Integral values under 2^53
/// print without an exponent or fraction for readability.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

}  // namespace

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::Number;
  v.str_ = format_double(d);
  return v;
}

Value Value::number(std::int64_t i) {
  Value v;
  v.kind_ = Kind::Number;
  v.str_ = std::to_string(i);
  return v;
}

Value Value::number(std::uint64_t u) {
  Value v;
  v.kind_ = Kind::Number;
  v.str_ = std::to_string(u);
  return v;
}

Value Value::number_from_text(std::string numeral) {
  Value v;
  v.kind_ = Kind::Number;
  v.str_ = std::move(numeral);
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

double Value::as_double() const { return std::strtod(str_.c_str(), nullptr); }

std::int64_t Value::as_int() const {
  return std::strtoll(str_.c_str(), nullptr, 10);
}

std::uint64_t Value::as_uint() const {
  return std::strtoull(str_.c_str(), nullptr, 10);
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(std::string key, Value v) {
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Value::dump() const {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Number: return str_;
    case Kind::String: return quote(str_);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += arr_[i].dump();
      }
      out.push_back(']');
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += quote(obj_[i].first);
        out.push_back(':');
        out += obj_[i].second.dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char ch) {
    skip_ws();
    if (pos < text.size() && text[pos] == ch) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char ch = text[pos++];
      if (ch == '"') return out;
      if (ch == '\\') {
        if (pos >= text.size()) return std::nullopt;
        char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Only the BMP subset our own writer emits (control chars);
            // encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(ch);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > 128) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    const char ch = text[pos];
    if (ch == 'n') return literal("null") ? std::optional<Value>(Value{}) : std::nullopt;
    if (ch == 't') return literal("true") ? std::optional<Value>(Value::boolean(true)) : std::nullopt;
    if (ch == 'f') return literal("false") ? std::optional<Value>(Value::boolean(false)) : std::nullopt;
    if (ch == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Value::string(std::move(*s));
    }
    if (ch == '[') {
      ++pos;
      Value arr = Value::array();
      skip_ws();
      if (eat(']')) return arr;
      for (;;) {
        auto item = parse_value(depth + 1);
        if (!item) return std::nullopt;
        arr.push_back(std::move(*item));
        if (eat(']')) return arr;
        if (!eat(',')) return std::nullopt;
      }
    }
    if (ch == '{') {
      ++pos;
      Value obj = Value::object();
      skip_ws();
      if (eat('}')) return obj;
      for (;;) {
        skip_ws();
        auto key = parse_string();
        if (!key) return std::nullopt;
        if (!eat(':')) return std::nullopt;
        auto val = parse_value(depth + 1);
        if (!val) return std::nullopt;
        obj.set(std::move(*key), std::move(*val));
        if (eat('}')) return obj;
        if (!eat(',')) return std::nullopt;
      }
    }
    // Number: scan the numeral, validate with strtod.
    const std::size_t start = pos;
    if (ch == '-' || ch == '+') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    std::string numeral(text.substr(start, pos - start));
    char* end = nullptr;
    std::strtod(numeral.c_str(), &end);
    if (end != numeral.c_str() + numeral.size()) return std::nullopt;
    // Keep the exact source text so uint64 counters round-trip.
    return Value::number_from_text(std::move(numeral));
  }
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value(0);
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace rla::obs::json
