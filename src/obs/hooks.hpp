#pragma once

// Lightweight runtime-tracing hooks for the work-stealing scheduler.
//
// These are the observability analogue of the race detector's fork-join
// structure hooks (analysis/annotations.hpp): always compiled into
// WorkerPool/TaskGroup, but costing a single relaxed load and a predictable
// branch per spawn/run/wait when no Collector is attached. The heavy lifting
// (ring-buffer event emission, work/span folding) lives out-of-line in
// collector.cpp and only runs while a collector is armed.
//
// Scope objects capture the armed state at construction so a collector
// attaching or detaching mid-task cannot unbalance the thread-local frame
// stack: a scope that pushed a frame always pops it, and a scope that pushed
// nothing never pops.

#include <atomic>
#include <cstdint>

namespace rla::obs {

class Collector;

/// Per-task trace identity, carried inside WorkerPool::TaskNode from spawn
/// to execution. All-zero (id == 0) means the task was spawned while no
/// collector was armed.
struct TaskTag {
  std::uint64_t id = 0;       ///< process-unique task id (0 = untraced)
  std::uint64_t parent = 0;   ///< id of the spawning task (0 = none/root)
  std::uint64_t trace = 0;    ///< request trace id (0 = no request scope)
  std::int64_t off_ns = 0;    ///< parent's running span at the spawn point
  std::int64_t spawn_ns = 0;  ///< steady-clock time of the spawn
  int spawn_thread = -1;      ///< uid of the spawning thread (migration check)
};

/// Per-TaskGroup span accumulator: each completed child folds
/// offset + queue-latency + subtree-span in; wait() takes the max into the
/// waiting task's running span. Plain atomic max — no ABA concerns because
/// contributions only grow within one wait round.
struct GroupObs {
  std::atomic<std::int64_t> max_child_ns{0};

  void fold(std::int64_t contribution) noexcept {
    std::int64_t cur = max_child_ns.load(std::memory_order_relaxed);
    while (contribution > cur &&
           !max_child_ns.compare_exchange_weak(cur, contribution,
                                               std::memory_order_relaxed)) {
    }
  }
};

namespace detail {

/// The armed collector (null = tracing off). Set by Collector::try_attach /
/// detach; hooks use a pin protocol (see collector.cpp) before touching it.
extern std::atomic<Collector*> g_collector;

// Out-of-line slow paths (collector.cpp). Call only from the scope objects
// below, which guarantee balanced begin/end.
void spawn_hook(TaskTag& tag, std::uint64_t seq);
void inline_begin(std::uint64_t seq);
void run_begin(const TaskTag& tag, std::uint64_t seq);
void task_end(GroupObs* fold_into);
void wait_begin();
void wait_end(GroupObs* fold_from);
void set_worker_hint(int worker_index);

/// This thread's pool worker index (-1 = not a pool worker); labels both
/// trace lanes and perf counter groups.
int worker_hint() noexcept;

}  // namespace detail

/// True while a Collector is armed (one relaxed load).
inline bool armed() noexcept {
  return detail::g_collector.load(std::memory_order_relaxed) != nullptr;
}

namespace treeprof {
namespace detail {
/// Armed flag for the recursion-tree profiler (obs/treeprof/). Mirrors the
/// session slot in treeprof.cpp; lives here so scheduler waits can check it
/// with one inline relaxed load without pulling in the treeprof header.
extern std::atomic<bool> g_armed;
void wait_begin() noexcept;
void wait_end() noexcept;
}  // namespace detail

/// True while a treeprof::Session is armed (one relaxed load).
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}
}  // namespace treeprof

/// The request trace id ambient on this thread (0 = none). Unlike the
/// collector hooks this is maintained unconditionally — profiles and the
/// flight recorder need request identity even with no collector armed.
/// Defined in collector.cpp next to the other per-thread trace state.
std::uint64_t current_trace_id() noexcept;
void set_current_trace_id(std::uint64_t trace) noexcept;

/// RAII: make `trace` ambient for the scope, restoring the previous id on
/// exit. Installed by the gemm driver from GemmConfig::trace_id and by the
/// pool when it runs a task (from the spawn-time TaskTag), so the id follows
/// the request across steals.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t trace) noexcept
      : prev_(current_trace_id()) {
    set_current_trace_id(trace);
  }
  ~TraceIdScope() { set_current_trace_id(prev_); }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Stamp a task's trace identity at the parallel spawn point.
inline void on_spawn(TaskTag& tag, std::uint64_t seq) {
  if (armed()) detail::spawn_hook(tag, seq);
}

/// Announce a worker thread's pool index so its trace lane gets a stable
/// name ("worker N"); call once at thread start.
inline void on_worker_start(int worker_index) {
  detail::set_worker_hint(worker_index);
}

/// Serial-pool inline spawn: the task body runs between construction and
/// destruction; the logical fork/join still counts toward measured span.
class InlineTaskScope {
 public:
  InlineTaskScope(GroupObs* group, std::uint64_t seq)
      : group_(group), on_(armed()) {
    if (on_) detail::inline_begin(seq);
  }
  ~InlineTaskScope() {
    if (on_) detail::task_end(group_);
  }
  InlineTaskScope(const InlineTaskScope&) = delete;
  InlineTaskScope& operator=(const InlineTaskScope&) = delete;

 private:
  GroupObs* group_;
  bool on_;
};

/// A queued task executing on a worker (or helping) thread.
class RunTaskScope {
 public:
  RunTaskScope(const TaskTag& tag, std::uint64_t seq, GroupObs* group)
      : group_(group), on_(armed()) {
    if (on_) detail::run_begin(tag, seq);
  }
  ~RunTaskScope() {
    if (on_) detail::task_end(group_);
  }
  RunTaskScope(const RunTaskScope&) = delete;
  RunTaskScope& operator=(const RunTaskScope&) = delete;

 private:
  GroupObs* group_;
  bool on_;
};

/// TaskGroup::wait(): suspends the waiting task's span clock for the
/// duration (helping runs other tasks' frames) and folds the group's child
/// spans into the waiter at the join point — including when wait() rethrows
/// a task exception (the fold happens during unwinding).
class WaitScope {
 public:
  explicit WaitScope(GroupObs* group)
      : group_(group), on_(armed()), tree_on_(treeprof::armed()) {
    if (on_) detail::wait_begin();
    if (tree_on_) treeprof::detail::wait_begin();
  }
  ~WaitScope() {
    if (tree_on_) treeprof::detail::wait_end();
    if (on_) detail::wait_end(group_);
  }
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  GroupObs* group_;
  bool on_;
  bool tree_on_;  ///< treeprof armed at construction (same capture rule)
};

}  // namespace rla::obs
