#pragma once

// Metrics registry: named counters, gauges and histograms.
//
// The scheduler and the gemm driver publish their health numbers here —
// per-worker steals, failed steal attempts, injection-queue hits, idle
// wake-ups, busy nanoseconds, deque high-water depth, the task-duration
// histogram — and a snapshot of the registry rides along in the Chrome trace
// file (top-level "rla_metrics" key, ignored by trace viewers) and in
// GemmProfile::to_json().
//
// Individual metric objects are updated with relaxed atomics and are safe to
// hammer from worker threads; *registration* (name lookup / creation) takes a
// mutex and belongs on setup or snapshot paths, never in a hot loop. Hot
// paths hold a pre-registered pointer instead.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/sync.hpp"

namespace rla::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level, with a fold-max helper for high-water marks.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void fold_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative samples (nanoseconds in practice):
/// bucket i counts samples in [2^i, 2^(i+1)), bucket 0 also takes 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t sample) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Smallest x with at least `q` (in [0,1]) of samples <= x, from the
  /// bucketed counts (upper bucket edge; a factor-2 overestimate at worst).
  std::int64_t quantile(double q) const noexcept;

  /// Quantile estimate with linear interpolation inside the containing
  /// bucket. Exact on an empty histogram (0) and on a single sample (the
  /// sample itself); otherwise interpolates rank q*(count-1) between the
  /// bucket's lower edge and min(upper edge, max()), so p0 and p100 stay
  /// inside the observed range. Feeds the service SLO gauges and the bench
  /// --json percentiles.
  double quantile_interpolated(double q) const noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Named metric store. Lookup-or-create by name; snapshot to JSON.
class Registry {
 public:
  Counter& counter(const std::string& name) RLA_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) RLA_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) RLA_EXCLUDES(mutex_);

  /// {"counters":{name:n,...},"gauges":{...},"histograms":{name:
  ///  {"count":..,"sum":..,"max":..,"p50":..,"p99":..,"buckets":[...]}}}
  /// Histogram bucket arrays are trimmed to the highest non-empty bucket.
  json::Value snapshot() const RLA_EXCLUDES(mutex_);

 private:
  /// Guards the name → metric maps only; the metric objects themselves are
  /// updated with relaxed atomics and returned by stable reference.
  mutable Mutex mutex_;  // lock-level: registry
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RLA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      RLA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      RLA_GUARDED_BY(mutex_);
};

}  // namespace rla::obs
