#pragma once

// The Gray-Morton layout L_G (paper §3.2, attributed to Leiserson):
//
//   S(i,j) = 𝒢⁻¹( 𝒢(i) ⋈ 𝒢(j) )
//
// A two-orientation curve built from a C-shaped segment and its 180°-rotated
// counterpart.  Its key property (paper §3.4): the tile orders of the two
// orientations differ by a rotation of exactly half the tile count, which is
// what enables the two-half-step trick for quadrant additions (paper §4).

#include <cstdint>

#include "layout/bits.hpp"
#include "layout/curve.hpp"

namespace rla::curve_detail {

// rla-hotpath
constexpr std::uint64_t gray_index(std::uint32_t i, std::uint32_t j) noexcept {
  const auto gi = static_cast<std::uint32_t>(bits::gray(i));
  const auto gj = static_cast<std::uint32_t>(bits::gray(j));
  return bits::gray_inverse(bits::interleave(gi, gj));
}

// rla-hotpath
constexpr TileCoord gray_inverse_index(std::uint64_t s) noexcept {
  const auto [gi, gj] = bits::deinterleave(bits::gray(s));
  return {static_cast<std::uint32_t>(bits::gray_inverse(gi)),
          static_cast<std::uint32_t>(bits::gray_inverse(gj))};
}

// Compile-time checks: round trip on a 16×16 grid; the base quadrant order
// is the C shape (0,0),(0,1),(1,1),(1,0); and the two-orientation symmetry —
// because 𝒢 is XOR-linear, S⁻¹(N-1-s) is the FlipI reflection of S⁻¹(s),
// which is the structural fact behind the half-rotation trick of paper §3.4.
static_assert([] {
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      const TileCoord t = gray_inverse_index(gray_index(i, j));
      if (t.i != i || t.j != j) return false;
    }
  }
  for (std::uint64_t s = 0; s < 256; ++s) {
    const TileCoord a = gray_inverse_index(s);
    const TileCoord b = gray_inverse_index(255 - s);
    if (b.i != 15 - a.i || b.j != a.j) return false;
  }
  return true;
}(), "Gray-Morton must round-trip and reflect between its two orientations");
static_assert(gray_index(0, 0) == 0 && gray_index(0, 1) == 1 &&
              gray_index(1, 1) == 2 && gray_index(1, 0) == 3,
              "base quadrant order is the C shape");

}  // namespace rla::curve_detail
