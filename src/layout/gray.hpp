#pragma once

// The Gray-Morton layout L_G (paper §3.2, attributed to Leiserson):
//
//   S(i,j) = 𝒢⁻¹( 𝒢(i) ⋈ 𝒢(j) )
//
// A two-orientation curve built from a C-shaped segment and its 180°-rotated
// counterpart.  Its key property (paper §3.4): the tile orders of the two
// orientations differ by a rotation of exactly half the tile count, which is
// what enables the two-half-step trick for quadrant additions (paper §4).

#include <cstdint>

#include "layout/bits.hpp"
#include "layout/curve.hpp"

namespace rla::curve_detail {

inline std::uint64_t gray_index(std::uint32_t i, std::uint32_t j) noexcept {
  const auto gi = static_cast<std::uint32_t>(bits::gray(i));
  const auto gj = static_cast<std::uint32_t>(bits::gray(j));
  return bits::gray_inverse(bits::interleave(gi, gj));
}

inline TileCoord gray_inverse_index(std::uint64_t s) noexcept {
  const auto [gi, gj] = bits::deinterleave(bits::gray(s));
  return {static_cast<std::uint32_t>(bits::gray_inverse(gi)),
          static_cast<std::uint32_t>(bits::gray_inverse(gj))};
}

}  // namespace rla::curve_detail
