#pragma once

// The three single-orientation recursive layouts (paper §3.1):
//
//   L_U :  S(i,j) = B⁻¹( B(j) ⋈ (B(i) XOR B(j)) )
//   L_X :  S(i,j) = B⁻¹( (B(i) XOR B(j)) ⋈ B(j) )
//   L_Z :  S(i,j) = B⁻¹( B(i) ⋈ B(j) )           (Lebesgue / Z-Morton)
//
// Each is a fixed quadrant-ordering pattern repeated at every scale, so the
// S functions are pure bit shuffles, independent of the grid depth d.

#include <cstdint>

#include "layout/bits.hpp"
#include "layout/curve.hpp"

namespace rla::curve_detail {

inline std::uint64_t z_index(std::uint32_t i, std::uint32_t j) noexcept {
  return bits::interleave(i, j);
}

inline TileCoord z_inverse(std::uint64_t s) noexcept {
  const auto [u, v] = bits::deinterleave(s);
  return {u, v};
}

inline std::uint64_t u_index(std::uint32_t i, std::uint32_t j) noexcept {
  return bits::interleave(j, i ^ j);
}

inline TileCoord u_inverse(std::uint64_t s) noexcept {
  const auto [u, v] = bits::deinterleave(s);
  return {u ^ v, u};  // j = u, i = v XOR j
}

inline std::uint64_t x_index(std::uint32_t i, std::uint32_t j) noexcept {
  return bits::interleave(i ^ j, j);
}

inline TileCoord x_inverse(std::uint64_t s) noexcept {
  const auto [u, v] = bits::deinterleave(s);
  return {u ^ v, v};  // j = v, i = u XOR j
}

}  // namespace rla::curve_detail
