#pragma once

// The three single-orientation recursive layouts (paper §3.1):
//
//   L_U :  S(i,j) = B⁻¹( B(j) ⋈ (B(i) XOR B(j)) )
//   L_X :  S(i,j) = B⁻¹( (B(i) XOR B(j)) ⋈ B(j) )
//   L_Z :  S(i,j) = B⁻¹( B(i) ⋈ B(j) )           (Lebesgue / Z-Morton)
//
// Each is a fixed quadrant-ordering pattern repeated at every scale, so the
// S functions are pure bit shuffles, independent of the grid depth d.

#include <cstdint>

#include "layout/bits.hpp"
#include "layout/curve.hpp"

namespace rla::curve_detail {

// rla-hotpath
constexpr std::uint64_t z_index(std::uint32_t i, std::uint32_t j) noexcept {
  return bits::interleave(i, j);
}

// rla-hotpath
constexpr TileCoord z_inverse(std::uint64_t s) noexcept {
  const auto [u, v] = bits::deinterleave(s);
  return {u, v};
}

// rla-hotpath
constexpr std::uint64_t u_index(std::uint32_t i, std::uint32_t j) noexcept {
  return bits::interleave(j, i ^ j);
}

// rla-hotpath
constexpr TileCoord u_inverse(std::uint64_t s) noexcept {
  const auto [u, v] = bits::deinterleave(s);
  return {u ^ v, u};  // j = u, i = v XOR j
}

// rla-hotpath
constexpr std::uint64_t x_index(std::uint32_t i, std::uint32_t j) noexcept {
  return bits::interleave(i ^ j, j);
}

// rla-hotpath
constexpr TileCoord x_inverse(std::uint64_t s) noexcept {
  const auto [u, v] = bits::deinterleave(s);
  return {u ^ v, v};  // j = v, i = u XOR j
}

// Compile-time round trips on a 16×16 grid, plus anchor points of each
// curve's quadrant ordering (paper Fig. 2), which is the same at every
// scale: the second tile visited is (0,1) for L_Z, (1,0) for L_U, and the
// diagonal (1,1) for L_X.
static_assert([] {
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      const TileCoord z = z_inverse(z_index(i, j));
      const TileCoord u = u_inverse(u_index(i, j));
      const TileCoord x = x_inverse(x_index(i, j));
      if (z.i != i || z.j != j) return false;
      if (u.i != i || u.j != j) return false;
      if (x.i != i || x.j != j) return false;
    }
  }
  return true;
}(), "Morton index/inverse must round-trip");
static_assert(z_index(0, 1) == 1 && u_index(1, 0) == 1 && x_index(1, 1) == 1,
              "quadrant orderings of L_Z, L_U, L_X");

}  // namespace rla::curve_detail
