#include "layout/mapping.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "layout/quadrant.hpp"

namespace rla {

const std::vector<std::uint32_t>& cached_order_map(Curve c, int r_from, int r_to,
                                                   int level) {
  using Key = std::tuple<Curve, int, int, int>;
  static std::mutex mutex;
  // unique_ptr so map rehashing never moves the vectors callers hold.
  static std::map<Key, std::unique_ptr<std::vector<std::uint32_t>>> cache;
  const Key key{c, r_from, r_to, level};
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto map = std::make_unique<std::vector<std::uint32_t>>(
        CurveOps::get(c).order_map(r_from, r_to, level));
    it = cache.emplace(key, std::move(map)).first;
  }
  return *it->second;
}

}  // namespace rla
