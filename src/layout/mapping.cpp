#include "layout/mapping.hpp"

#include <map>
#include <memory>
#include <tuple>

#include "layout/quadrant.hpp"
#include "support/sync.hpp"

namespace rla {

namespace {

using OrderKey = std::tuple<Curve, int, int, int>;

/// Named struct so the guarded_by relation is visible to the analysis.
struct OrderMapCache {
  Mutex mutex;  // lock-level: registry
  /// unique_ptr so map rehashing never moves the vectors callers hold.
  std::map<OrderKey, std::unique_ptr<std::vector<std::uint32_t>>> entries
      RLA_GUARDED_BY(mutex);
};

OrderMapCache& order_map_cache() {
  static OrderMapCache cache;
  return cache;
}

}  // namespace

const std::vector<std::uint32_t>& cached_order_map(Curve c, int r_from, int r_to,
                                                   int level) {
  const OrderKey key{c, r_from, r_to, level};
  OrderMapCache& cache = order_map_cache();
  {
    MutexLock lock(cache.mutex);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) return *it->second;
  }
  // Build outside the lock: CurveOps::get takes its own registry-level
  // mutex (two same-rank locks must never nest) and the expansion is
  // expensive. A racing thread may build the same map; emplace keeps the
  // first and the loser's copy is discarded.
  auto map = std::make_unique<std::vector<std::uint32_t>>(
      CurveOps::get(c).order_map(r_from, r_to, level));
  MutexLock lock(cache.mutex);
  auto it = cache.entries.emplace(key, std::move(map)).first;
  return *it->second;
}

}  // namespace rla
