#pragma once

// Bit-manipulation primitives for the space-filling-curve layout functions
// (paper §3): bitwise interleaving (the ⋈ operator), Gray-code encode/decode,
// and small integer-log helpers.
//
// All S functions in the paper reduce to a handful of these operations, and
// keeping them branch-free is what makes "addressing overheads ... in
// control" (paper §5) possible.

#include <cstdint>

namespace rla::bits {

/// Spread the low 32 bits of x so bit k moves to bit 2k (even positions).
// rla-hotpath
constexpr std::uint64_t spread(std::uint64_t x) noexcept {
  x &= 0xFFFFFFFFULL;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

/// Inverse of spread: gather even-position bits of x into the low 32 bits.
// rla-hotpath
constexpr std::uint64_t gather(std::uint64_t x) noexcept {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return x;
}

/// Bitwise interleave u ⋈ v = u_{d-1} v_{d-1} ... u_0 v_0 (paper §3 notation):
/// bits of `u` land in the odd (more significant) positions of each pair.
// rla-hotpath
constexpr std::uint64_t interleave(std::uint32_t u, std::uint32_t v) noexcept {
  return (spread(u) << 1) | spread(v);
}

/// Inverse of interleave: recover (u, v) from w = u ⋈ v.
struct Deinterleaved {
  std::uint32_t u;
  std::uint32_t v;
};

// rla-hotpath
constexpr Deinterleaved deinterleave(std::uint64_t w) noexcept {
  return {static_cast<std::uint32_t>(gather(w >> 1)),
          static_cast<std::uint32_t>(gather(w))};
}

/// Reflected binary Gray code G(x) (paper's 𝒢).
// rla-hotpath
constexpr std::uint64_t gray(std::uint64_t x) noexcept { return x ^ (x >> 1); }

/// Inverse Gray code 𝒢⁻¹: prefix-XOR from the most significant bit down.
// rla-hotpath
constexpr std::uint64_t gray_inverse(std::uint64_t g) noexcept {
  g ^= g >> 32;
  g ^= g >> 16;
  g ^= g >> 8;
  g ^= g >> 4;
  g ^= g >> 2;
  g ^= g >> 1;
  return g;
}

/// True when x is a power of two (x = 2^k, k >= 0).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) noexcept {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) noexcept {
  return is_pow2(x) ? floor_log2(x) : floor_log2(x) + 1;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ceil_log2(x);
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

// Compile-time sanity: the bit shuffles invert each other exactly. These
// identities are what every S function in the layout layer is built from, so
// a regression here corrupts all recursive layouts at once — cheaper to
// reject at compile time than to debug from a wrong gemm result.
static_assert([] {
  for (std::uint32_t u = 0; u < 32; ++u) {
    for (std::uint32_t v = 0; v < 32; ++v) {
      const Deinterleaved d = deinterleave(interleave(u, v));
      if (d.u != u || d.v != v) return false;
    }
  }
  return true;
}(), "interleave/deinterleave must round-trip");
static_assert(interleave(0xFFFFFFFFu, 0) == 0xAAAAAAAAAAAAAAAAULL,
              "u-bits occupy the odd positions");
static_assert([] {
  for (std::uint64_t x = 0; x < 1024; ++x) {
    if (gray_inverse(gray(x)) != x) return false;
    if (x != 0 && ((gray(x) ^ gray(x - 1)) & ((gray(x) ^ gray(x - 1)) - 1)) != 0) {
      return false;  // consecutive codes must differ in exactly one bit
    }
  }
  return gray_inverse(gray(0xFEDCBA9876543210ULL)) == 0xFEDCBA9876543210ULL;
}(), "gray/gray_inverse must round-trip and be a unit-distance code");
static_assert(is_pow2(1) && is_pow2(1ULL << 63) && !is_pow2(0) && !is_pow2(12),
              "is_pow2");
static_assert(floor_log2(1) == 0 && floor_log2(1023) == 9 && ceil_log2(1023) == 10 &&
              next_pow2(17) == 32 && ceil_div(7, 3) == 3,
              "integer log helpers");

}  // namespace rla::bits
