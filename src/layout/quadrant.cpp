#include "layout/quadrant.hpp"

#include <cassert>
#include <map>
#include <stdexcept>

#include "support/sync.hpp"

namespace rla {

namespace {

// Depth of the reference grid the tables are extracted from. Levels 2..kRefD
// are available for signature computation; every orientation of every curve
// here appears (and gets expanded) well within this depth.
constexpr int kRefD = 6;

// A block of the reference grid: top-left tile coordinates, level
// (side = 2^level tiles), and the start of its curve range.
struct Node {
  std::uint32_t ti0;
  std::uint32_t tj0;
  int level;
  std::uint64_t base;
};

// Orientation signature of a block: the local curve order of its 4x4 grid of
// grand-child sub-blocks. Two blocks of a self-similar curve with equal
// signatures have identical internal orderings at every depth, because the
// level-2 pattern pins down the rotation/reflection/reversal uniquely for
// the curves considered here (verified by the closure check in the builder).
using Signature = std::array<std::uint8_t, 16>;

Signature signature_of(Curve c, const Node& n) {
  assert(n.level >= 2);
  Signature sig{};
  const std::uint32_t q = std::uint32_t{1} << (n.level - 2);
  const int shift = 2 * (n.level - 2);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = 0; v < 4; ++v) {
      const std::uint64_t s = s_index(c, n.ti0 + u * q, n.tj0 + v * q, kRefD);
      sig[4 * u + v] = static_cast<std::uint8_t>((s - n.base) >> shift);
    }
  }
  return sig;
}

}  // namespace

CurveOps::CurveOps(Curve c) : curve_(c) {
  if (!is_recursive(c)) {
    throw std::invalid_argument("CurveOps requires a recursive curve");
  }

  std::map<Signature, int> ids;          // signature -> orientation id
  std::vector<Node> representative;      // orientation id -> a block with it
  std::vector<bool> expanded;

  const Node root{0, 0, kRefD, 0};
  ids.emplace(signature_of(c, root), 0);
  representative.push_back(root);
  expanded.push_back(false);

  // Expand orientations until closure. Each expansion fills one row of the
  // chunk / child-orientation tables from a representative block.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < static_cast<int>(representative.size()); ++r) {
      if (expanded[r]) continue;
      // Copy: the representative vector may reallocate when children of this
      // node introduce new orientations below.
      const Node n = representative[r];
      if (n.level < 3) continue;  // children would be too small to classify
      expanded[r] = true;
      progress = true;
      const std::uint32_t h = std::uint32_t{1} << (n.level - 1);
      const int shift = 2 * (n.level - 1);
      for (int q = 0; q < 4; ++q) {
        const std::uint32_t qi = static_cast<std::uint32_t>(q) >> 1;
        const std::uint32_t qj = static_cast<std::uint32_t>(q) & 1;
        Node child;
        child.ti0 = n.ti0 + qi * h;
        child.tj0 = n.tj0 + qj * h;
        child.level = n.level - 1;
        const std::uint64_t corner = s_index(c, child.ti0, child.tj0, kRefD);
        const int chunk = static_cast<int>((corner - n.base) >> shift);
        child.base = n.base + (static_cast<std::uint64_t>(chunk) << shift);
        const Signature sig = signature_of(c, child);
        auto [it, inserted] = ids.emplace(sig, static_cast<int>(representative.size()));
        if (inserted) {
          representative.push_back(child);
          expanded.push_back(false);
          if (representative.size() > 4) {
            throw std::logic_error("curve has more than 4 orientations");
          }
        } else if (child.level >= 3 && !expanded[it->second]) {
          // Prefer a deeper representative so it can itself be expanded.
          representative[it->second] = child;
        }
        chunk_[r][q] = chunk;
        child_[r][q] = it->second;
      }
    }
  }

  for (std::size_t r = 0; r < representative.size(); ++r) {
    if (!expanded[r]) {
      throw std::logic_error("orientation discovered but never expanded");
    }
  }
  orientations_ = static_cast<int>(representative.size());
}

namespace {

/// Named struct (not two function-local statics) so the guarded_by relation
/// between the table and its mutex is declared where the analysis sees it.
struct CurveOpsCache {
  Mutex mutex;  // lock-level: registry
  std::map<Curve, CurveOps> ops RLA_GUARDED_BY(mutex);
};

CurveOpsCache& curve_ops_cache() {
  static CurveOpsCache cache;
  return cache;
}

}  // namespace

const CurveOps& CurveOps::get(Curve c) {
  CurveOpsCache& cache = curve_ops_cache();
  MutexLock lock(cache.mutex);
  auto it = cache.ops.find(c);
  if (it == cache.ops.end()) it = cache.ops.emplace(c, CurveOps(c)).first;
  return it->second;
}

std::vector<std::uint32_t> CurveOps::local_order(int r, int level) const {
  const std::uint64_t n = std::uint64_t{1} << (2 * level);
  std::vector<std::uint32_t> order(n);
  // Iterative expansion of the FSM: state per node, refined level by level.
  struct Frame {
    std::uint32_t u, v;
    int level;
    int orient;
    std::uint64_t s;
  };
  std::vector<Frame> stack{{0, 0, level, r, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.level == 0) {
      order[f.s] = (f.u << level) | f.v;
      continue;
    }
    const std::uint32_t h = std::uint32_t{1} << (f.level - 1);
    const std::uint64_t quarter = std::uint64_t{1} << (2 * (f.level - 1));
    for (int q = 0; q < 4; ++q) {
      Frame child;
      child.u = f.u + (static_cast<std::uint32_t>(q) >> 1) * h;
      child.v = f.v + (static_cast<std::uint32_t>(q) & 1) * h;
      child.level = f.level - 1;
      child.orient = child_[f.orient][q];
      child.s = f.s + static_cast<std::uint64_t>(chunk_[f.orient][q]) * quarter;
      stack.push_back(child);
    }
  }
  return order;
}

std::vector<std::uint32_t> CurveOps::order_map(int r_from, int r_to, int level) const {
  const std::vector<std::uint32_t> from = local_order(r_from, level);
  const std::vector<std::uint32_t> to = local_order(r_to, level);
  // Invert `to`: coordinate -> position.
  std::vector<std::uint32_t> to_pos(to.size());
  for (std::uint32_t s = 0; s < to.size(); ++s) to_pos[to[s]] = s;
  std::vector<std::uint32_t> map(from.size());
  for (std::uint32_t s = 0; s < from.size(); ++s) map[s] = to_pos[from[s]];
  return map;
}

}  // namespace rla
