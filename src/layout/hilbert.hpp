#pragma once

// The Hilbert layout L_H (paper §3.3).
//
// Four-orientation curve; the S function is evaluated in the style of
// Bially's finite-state machine: two bits of (i, j) are consumed per step,
// two bits of S are produced, and the machine state (the current rotation /
// reflection of the base C-shape) is carried between steps.  Here the state
// is carried implicitly by rotating the remaining coordinate bits, which is
// the standard loop formulation of the same FSM.

#include <cstdint>

#include "layout/curve.hpp"

namespace rla::curve_detail {

/// Rotate/reflect the low `h`-block of a coordinate pair for one Hilbert
/// recursion step. `n` is the size of the (sub)grid being fixed up.
inline void hilbert_rot(std::uint32_t n, std::uint32_t& i, std::uint32_t& j,
                        std::uint32_t ri, std::uint32_t rj) noexcept {
  if (rj == 0) {
    if (ri == 1) {
      i = n - 1 - i;
      j = n - 1 - j;
    }
    const std::uint32_t t = i;
    i = j;
    j = t;
  }
}

/// S(i, j) on a 2^d × 2^d grid.
inline std::uint64_t hilbert_index(std::uint32_t i, std::uint32_t j, int d) noexcept {
  const std::uint32_t n = std::uint32_t{1} << d;
  std::uint64_t s = 0;
  for (std::uint32_t h = n >> 1; h > 0; h >>= 1) {
    const std::uint32_t ri = (i & h) ? 1 : 0;
    const std::uint32_t rj = (j & h) ? 1 : 0;
    s += static_cast<std::uint64_t>(h) * h * ((3 * ri) ^ rj);
    hilbert_rot(n, i, j, ri, rj);
  }
  return s;
}

/// S⁻¹(s) on a 2^d × 2^d grid.
inline TileCoord hilbert_inverse(std::uint64_t s, int d) noexcept {
  const std::uint32_t n = std::uint32_t{1} << d;
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  std::uint64_t t = s;
  for (std::uint32_t h = 1; h < n; h <<= 1) {
    const auto ri = static_cast<std::uint32_t>(1 & (t / 2));
    const auto rj = static_cast<std::uint32_t>(1 & (t ^ ri));
    hilbert_rot(h, i, j, ri, rj);
    i += h * ri;
    j += h * rj;
    t /= 4;
  }
  return {i, j};
}

}  // namespace rla::curve_detail
