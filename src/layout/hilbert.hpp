#pragma once

// The Hilbert layout L_H (paper §3.3).
//
// Four-orientation curve; the S function is evaluated in the style of
// Bially's finite-state machine: two bits of (i, j) are consumed per step,
// two bits of S are produced, and the machine state (the current rotation /
// reflection of the base C-shape) is carried between steps.  Here the state
// is carried implicitly by rotating the remaining coordinate bits, which is
// the standard loop formulation of the same FSM.

#include <cstdint>

#include "layout/curve.hpp"

namespace rla::curve_detail {

/// Rotate/reflect the low `h`-block of a coordinate pair for one Hilbert
/// recursion step. `n` is the size of the (sub)grid being fixed up.
// rla-hotpath
constexpr void hilbert_rot(std::uint32_t n, std::uint32_t& i, std::uint32_t& j,
                           std::uint32_t ri, std::uint32_t rj) noexcept {
  if (rj == 0) {
    if (ri == 1) {
      i = n - 1 - i;
      j = n - 1 - j;
    }
    const std::uint32_t t = i;
    i = j;
    j = t;
  }
}

/// S(i, j) on a 2^d × 2^d grid.
// rla-hotpath
constexpr std::uint64_t hilbert_index(std::uint32_t i, std::uint32_t j, int d) noexcept {
  const std::uint32_t n = std::uint32_t{1} << d;
  std::uint64_t s = 0;
  for (std::uint32_t h = n >> 1; h > 0; h >>= 1) {
    const std::uint32_t ri = (i & h) ? 1 : 0;
    const std::uint32_t rj = (j & h) ? 1 : 0;
    s += static_cast<std::uint64_t>(h) * h * ((3 * ri) ^ rj);
    hilbert_rot(n, i, j, ri, rj);
  }
  return s;
}

/// S⁻¹(s) on a 2^d × 2^d grid.
// rla-hotpath
constexpr TileCoord hilbert_inverse(std::uint64_t s, int d) noexcept {
  const std::uint32_t n = std::uint32_t{1} << d;
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  std::uint64_t t = s;
  for (std::uint32_t h = 1; h < n; h <<= 1) {
    const auto ri = static_cast<std::uint32_t>(1 & (t / 2));
    const auto rj = static_cast<std::uint32_t>(1 & (t ^ ri));
    hilbert_rot(h, i, j, ri, rj);
    i += h * ri;
    j += h * rj;
    t /= 4;
  }
  return {i, j};
}

// Compile-time checks at depth 4: index/inverse round-trip everywhere, the
// curve is a bijection that steps to an edge-adjacent tile (THE Hilbert
// property), and it starts at the origin.
static_assert([] {
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      const TileCoord t = hilbert_inverse(hilbert_index(i, j, 4), 4);
      if (t.i != i || t.j != j) return false;
    }
  }
  for (std::uint64_t s = 1; s < 256; ++s) {
    const TileCoord a = hilbert_inverse(s - 1, 4);
    const TileCoord b = hilbert_inverse(s, 4);
    const std::uint32_t di = a.i > b.i ? a.i - b.i : b.i - a.i;
    const std::uint32_t dj = a.j > b.j ? a.j - b.j : b.j - a.j;
    if (di + dj != 1) return false;
  }
  return hilbert_index(0, 0, 4) == 0;
}(), "Hilbert S/S^-1 must round-trip and be a unit-step curve");

}  // namespace rla::curve_detail
