#pragma once

// The family of tile-ordering functions S (paper §3).
//
// S(i, j) gives the position along the space-filling curve of the tile at
// tile-coordinates (i, j) on a 2^d × 2^d grid.  The five recursive layouts of
// the paper (U-Morton, X-Morton, Z-Morton, Gray-Morton, Hilbert) are joined
// by the two canonical orders so that blocked-canonical layouts fit the same
// machinery.

#include <cstdint>
#include <string_view>

namespace rla {

/// Tile-ordering curves. The paper's six layout functions are Canonical
/// column-major plus the five recursive ones; RowMajor is included for
/// completeness (paper Fig. 2(a)-(b)).
enum class Curve : std::uint8_t {
  ColMajor,    ///< canonical L_C in T-space (blocked column-major)
  RowMajor,    ///< canonical L_R in T-space (blocked row-major)
  UMorton,     ///< L_U : S = B(j) ⋈ (B(i) XOR B(j)), one orientation
  XMorton,     ///< L_X : S = (B(i) XOR B(j)) ⋈ B(j), one orientation
  ZMorton,     ///< L_Z (Lebesgue) : S = B(i) ⋈ B(j), one orientation
  GrayMorton,  ///< L_G : S = G⁻¹(G(i) ⋈ G(j)), two orientations
  Hilbert,     ///< L_H : Bially FSM evaluation, four orientations
};

inline constexpr Curve kAllCurves[] = {
    Curve::ColMajor, Curve::RowMajor,   Curve::UMorton, Curve::XMorton,
    Curve::ZMorton,  Curve::GrayMorton, Curve::Hilbert,
};

/// The five recursive curves of the paper (excludes the canonical orders).
inline constexpr Curve kRecursiveCurves[] = {
    Curve::UMorton, Curve::XMorton, Curve::ZMorton, Curve::GrayMorton,
    Curve::Hilbert,
};

/// Short printable name ("Z-Morton", "Hilbert", ...).
std::string_view curve_name(Curve c) noexcept;

/// Parse a curve name (case-insensitive, accepts "z", "zmorton",
/// "z-morton", ...). Returns true on success.
bool parse_curve(std::string_view text, Curve& out) noexcept;

/// Whether the curve is quadrant-recursive (true for all but the canonical
/// orders). Canonical tile orders are not self-similar: an aligned quadrant
/// is not contiguous along the curve.
constexpr bool is_recursive(Curve c) noexcept {
  return c != Curve::ColMajor && c != Curve::RowMajor;
}

/// Number of distinct orientations the curve's self-similar recursion uses
/// (paper §3: 1 for U/X/Z-Morton, 2 for Gray-Morton, 4 for Hilbert).
/// Canonical orders report 1.
constexpr int orientation_count(Curve c) noexcept {
  switch (c) {
    case Curve::GrayMorton:
      return 2;
    case Curve::Hilbert:
      return 4;
    default:
      return 1;
  }
}

/// Pair of tile coordinates (row, column).
struct TileCoord {
  std::uint32_t i;
  std::uint32_t j;
};

/// S(i, j; d): curve position of tile (i, j) on a 2^d × 2^d grid.
/// Requires i, j < 2^d and d <= 31. O(1) bit ops for all curves except
/// Hilbert, which is O(d).
std::uint64_t s_index(Curve c, std::uint32_t i, std::uint32_t j, int d) noexcept;

/// S⁻¹(s; d): tile coordinates of curve position s on a 2^d × 2^d grid.
/// Requires s < 4^d.
TileCoord s_inverse(Curve c, std::uint64_t s, int d) noexcept;

/// Rigid transformations of the index square — the dihedral group D4.
/// Paper §3: "Rotations and reflections of the layout functions are
/// possible, and are most cleanly computed by interchanging the i and j
/// arguments and/or subtracting them from 2^d − 1." Encoded as a bitmask:
/// bit 0 = reflect i, bit 1 = reflect j (both applied first), bit 2 = swap
/// i and j (applied last).
enum class CurveTransform : std::uint8_t {
  Identity = 0,
  FlipI = 1,
  FlipJ = 2,
  Rotate180 = 3,      ///< FlipI | FlipJ
  Transpose = 4,      ///< swap only (reflection across the main diagonal)
  Rotate90 = 5,       ///< FlipI then swap
  Rotate270 = 6,      ///< FlipJ then swap
  AntiTranspose = 7,  ///< Rotate180 then swap
};

/// Apply the transform to (i, j) on a 2^d × 2^d grid.
constexpr TileCoord apply_transform(CurveTransform t, std::uint32_t i,
                                    std::uint32_t j, int d) noexcept {
  const std::uint32_t mask = (std::uint32_t{1} << d) - 1;
  const auto bits = static_cast<std::uint8_t>(t);
  if (bits & 1) i = mask - i;
  if (bits & 2) j = mask - j;
  if (bits & 4) {
    const std::uint32_t tmp = i;
    i = j;
    j = tmp;
  }
  return {i, j};
}

/// S of the transformed layout: the curve pattern rotated/reflected per `t`.
inline std::uint64_t s_index_transformed(Curve c, CurveTransform t,
                                         std::uint32_t i, std::uint32_t j,
                                         int d) noexcept {
  const TileCoord tc = apply_transform(t, i, j, d);
  return s_index(c, tc.i, tc.j, d);
}

/// Inverse of s_index_transformed.
TileCoord s_inverse_transformed(Curve c, CurveTransform t, std::uint64_t s,
                                int d) noexcept;

}  // namespace rla
