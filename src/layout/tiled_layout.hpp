#pragma once

// The recursive-with-tiles layout function of paper Eq. (3):
//
//   L(i, j; m, n, t_R, t_C) = t_R·t_C · S(t_i, t_j)  +  L_C(f_i, f_j; t_R, t_C)
//
// The matrix is padded to a 2^d × 2^d grid of t_R × t_C tiles; tiles are
// ordered along a space-filling curve S and each tile is stored column-major
// ("canonical order inside the tile", following Lam/Rothberg/Wolf — the
// recursion must *not* reach individual elements, paper §3).
//
// Also implements the paper's §4 tile-size selection from an
// architecture-dependent range [T_min, T_max], and the wide/squat/lean
// classification used to split extreme aspect ratios (paper Fig. 3).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "layout/curve.hpp"

namespace rla {

/// Acceptable tile-size range (paper §4: "neither too small ... nor overflow
/// the cache"). Defaults suit a 32 KB L1 with 8-byte elements: a 32×32 tile
/// is 8 KB, so the three leaf tiles of a multiply fit comfortably.
struct TileRange {
  std::uint32_t t_min = 16;
  std::uint32_t t_max = 32;
  /// Preferred tile edge when several depths are feasible (paper Fig. 4
  /// finds the sweet spot near 16).
  std::uint32_t t_pref = 16;

  /// Aspect-ratio bound α = T_max / T_min: matrices with m/n outside
  /// [1/α, α] are wide or lean and must be split (paper §4 footnote 2).
  double alpha() const noexcept {
    return static_cast<double>(t_max) / static_cast<double>(t_min);
  }
};

/// Shape classification from paper §4.
enum class Aspect { Lean, Squat, Wide };

/// Classify an m × n matrix against the range's α.
Aspect classify_aspect(std::uint64_t m, std::uint64_t n, const TileRange& range) noexcept;

/// Complete description of one matrix's recursive layout.
struct TileGeometry {
  std::uint32_t rows = 0;       ///< logical row count m
  std::uint32_t cols = 0;       ///< logical column count n
  std::uint32_t tile_rows = 1;  ///< t_R
  std::uint32_t tile_cols = 1;  ///< t_C
  int depth = 0;                ///< d: the tile grid is 2^d × 2^d
  Curve curve = Curve::ZMorton;

  std::uint32_t tiles_per_side() const noexcept { return std::uint32_t{1} << depth; }
  std::uint64_t tile_count() const noexcept { return std::uint64_t{1} << (2 * depth); }
  std::uint64_t tile_elems() const noexcept {
    return std::uint64_t{tile_rows} * tile_cols;
  }
  std::uint32_t padded_rows() const noexcept { return tile_rows << depth; }
  std::uint32_t padded_cols() const noexcept { return tile_cols << depth; }
  std::uint64_t total_elems() const noexcept {
    return std::uint64_t{padded_rows()} * padded_cols();
  }

  /// Element offset of the start of tile (t_i, t_j).
  std::uint64_t tile_offset(std::uint32_t ti, std::uint32_t tj) const noexcept {
    return s_index(curve, ti, tj, depth) * tile_elems();
  }

  /// Full layout function L(i, j) of Eq. (3). i < padded_rows(),
  /// j < padded_cols().
  std::uint64_t address(std::uint32_t i, std::uint32_t j) const noexcept {
    const std::uint32_t ti = i / tile_rows, fi = i % tile_rows;
    const std::uint32_t tj = j / tile_cols, fj = j % tile_cols;
    return tile_offset(ti, tj) + std::uint64_t{fj} * tile_rows + fi;
  }
};

/// Is depth d feasible for a dimension of extent x under `range`?
/// Feasible means the tile edge ceil(x / 2^d) fits in [t_min, t_max]; d = 0
/// additionally accepts any x <= t_max (small matrices are a single
/// undersized tile rather than being padded up to t_min).
bool depth_feasible(std::uint64_t x, int d, const TileRange& range) noexcept;

/// Bitmask of feasible depths (bit d set = depth d feasible) for extent x.
std::uint32_t feasible_depths(std::uint64_t x, const TileRange& range) noexcept;

/// Choose a common depth for a set of dimensions (the gemm driver passes
/// {m, k, n} so A, B and C share one recursion depth). Among feasible depths
/// prefers tile edges closest to t_pref. Empty optional = the shape is wide
/// or lean and must be split (paper Fig. 3).
std::optional<int> common_depth(std::span<const std::uint64_t> dims,
                                const TileRange& range) noexcept;

/// Build the geometry of a rows × cols matrix at the given shared depth.
TileGeometry make_geometry(std::uint32_t rows, std::uint32_t cols, int depth,
                           Curve curve) noexcept;

}  // namespace rla
