#pragma once

// Cached global tile-mapping arrays (paper §4).
//
// For Hilbert (and in principle any multi-orientation curve), corresponding
// tiles of two quadrants with different orientations sit at different
// relative positions, and there is "no simple pattern" — so the paper keeps
// global mapping arrays indexed by orientation pair.  We cache one array per
// (curve, orientation pair, block level).

#include <cstdint>
#include <vector>

#include "layout/curve.hpp"

namespace rla {

/// Permutation p with p[s_from] = s_to: the tile at local curve position
/// s_from in a block of orientation r_from sits at local position s_to in an
/// equally-sized block of orientation r_to. Cached; the reference stays
/// valid for the program lifetime. Thread-safe.
const std::vector<std::uint32_t>& cached_order_map(Curve c, int r_from, int r_to,
                                                   int level);

}  // namespace rla
