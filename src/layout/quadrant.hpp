#pragma once

// Orientation algebra for the recursive curves (paper §3.4, §4).
//
// Every recursive layout here is quadrant-recursive: an aligned 2^l × 2^l
// block of tiles occupies a contiguous range of curve positions, and its four
// quadrants occupy the four quarters of that range in some order.  Which
// quarter each quadrant gets, and which *orientation* (rotation/reflection of
// the base pattern) each quadrant's sub-curve uses, depends only on the
// curve and the block's own orientation — a finite-state machine.
//
// Rather than hand-derive the transition tables per curve (error-prone for
// Gray-Morton and Hilbert), we *extract* them from the direct S function by
// classifying sub-block orderings on a reference grid, then verify closure.
// This guarantees the recursion's embedded O(1) address computation is
// consistent with the standalone S formulas, and it mechanically confirms the
// paper's orientation counts (1 for U/X/Z-Morton, 2 for Gray-Morton, 4 for
// Hilbert).

#include <array>
#include <cstdint>
#include <vector>

#include "layout/curve.hpp"

namespace rla {

/// Quadrant index: 2*qi + qj where qi selects the bottom half and qj the
/// right half. So 0 = NW (top-left), 1 = NE, 2 = SW, 3 = SE.
enum Quadrant : int { kNW = 0, kNE = 1, kSW = 2, kSE = 3 };

/// Transition tables of a recursive curve's quadrant FSM.
class CurveOps {
 public:
  /// Tables for `c`; built once per curve and cached. `c` must be recursive
  /// (is_recursive(c)), since canonical tile orders are not quadrant-local.
  static const CurveOps& get(Curve c);

  Curve curve() const noexcept { return curve_; }

  /// Number of orientations actually reachable from the root (orientation 0).
  int orientations() const noexcept { return orientations_; }

  /// Which quarter (0..3) of the parent's curve range the quadrant `q`
  /// (Quadrant enum) occupies when the parent has orientation `r`.
  int chunk(int r, int q) const noexcept { return chunk_[r][q]; }

  /// Orientation of quadrant q's sub-curve when the parent has orientation r.
  int child_orientation(int r, int q) const noexcept { return child_[r][q]; }

  /// Local curve ordering of an l-level block with orientation r:
  /// result[s] = 2^l * u + v for the tile at local coordinates (u, v) with
  /// local curve position s. (Row-major packed coordinates for compactness.)
  std::vector<std::uint32_t> local_order(int r, int level) const;

  /// Tile permutation between two orientations of the same block size:
  /// result[s_from] = s_to such that both refer to the same local tile
  /// coordinate. Used for the Hilbert mapping-array additions (paper §4).
  std::vector<std::uint32_t> order_map(int r_from, int r_to, int level) const;

 private:
  explicit CurveOps(Curve c);

  Curve curve_;
  int orientations_ = 0;
  std::array<std::array<int, 4>, 4> chunk_{};
  std::array<std::array<int, 4>, 4> child_{};
};

}  // namespace rla
