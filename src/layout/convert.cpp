#include "layout/convert.hpp"

#include <algorithm>
#include <cstring>

#include "analysis/annotations.hpp"
#include "analysis/numerics/shadow.hpp"

namespace rla {

namespace {

/// Extent of tile (ti, tj) that overlaps the logical matrix; 0 for tiles
/// entirely in the padding.
struct TileClip {
  std::uint32_t i0, j0;    // logical top-left of the tile
  std::uint32_t live_r;    // rows of the tile inside the logical matrix
  std::uint32_t live_c;    // columns of the tile inside the logical matrix
};

TileClip clip_tile(const TileGeometry& g, std::uint32_t ti, std::uint32_t tj) {
  TileClip c;
  c.i0 = ti * g.tile_rows;
  c.j0 = tj * g.tile_cols;
  c.live_r = c.i0 >= g.rows
                 ? 0
                 : std::min<std::uint32_t>(g.tile_rows, g.rows - c.i0);
  c.live_c = c.j0 >= g.cols
                 ? 0
                 : std::min<std::uint32_t>(g.tile_cols, g.cols - c.j0);
  return c;
}

}  // namespace

void canonical_to_tiled(const double* src, std::size_t ld, bool transpose,
                        double alpha, const TileGeometry& g, double* dst,
                        std::uint64_t s_begin, std::uint64_t s_end) {
  const std::uint64_t tsz = g.tile_elems();
  RLA_RACE_WRITE(dst + s_begin * tsz, (s_end - s_begin) * tsz * sizeof(double));
  for (std::uint64_t s = s_begin; s < s_end; ++s) {
    const TileCoord tc = s_inverse(g.curve, s, g.depth);
    const TileClip clip = clip_tile(g, tc.i, tc.j);
    double* tile = dst + s * tsz;
    if (clip.live_r == 0 || clip.live_c == 0) {
      RLA_SHADOW_CLEAR(tile, tsz * sizeof(double));
      std::memset(tile, 0, tsz * sizeof(double));
      continue;
    }
    for (std::uint32_t fj = 0; fj < g.tile_cols; ++fj) {
      double* out = tile + std::uint64_t{fj} * g.tile_rows;
      if (fj >= clip.live_c) {
        RLA_SHADOW_CLEAR(out, g.tile_rows * sizeof(double));
        std::memset(out, 0, g.tile_rows * sizeof(double));
        continue;
      }
      const std::uint32_t j = clip.j0 + fj;
      if (!transpose) {
        const double* in = src + std::uint64_t{j} * ld + clip.i0;
        RLA_RACE_READ(in, clip.live_r * sizeof(double));
        RLA_SHADOW_SCALED_COPY(out, in, 1, alpha, clip.live_r);
        for (std::uint32_t fi = 0; fi < clip.live_r; ++fi) out[fi] = alpha * in[fi];
      } else {
        // Logical (i, j) = physical (j, i): column j of the logical matrix is
        // row j of src, a strided walk.
        const double* in = src + std::uint64_t{clip.i0} * ld + j;
        RLA_RACE_READ_STRIDED(in, sizeof(double), ld * sizeof(double),
                              clip.live_r);
        RLA_SHADOW_SCALED_COPY(out, in, ld, alpha, clip.live_r);
        for (std::uint32_t fi = 0; fi < clip.live_r; ++fi) {
          out[fi] = alpha * in[std::uint64_t{fi} * ld];
        }
      }
      if (clip.live_r < g.tile_rows) {
        RLA_SHADOW_CLEAR(out + clip.live_r,
                         (g.tile_rows - clip.live_r) * sizeof(double));
        std::memset(out + clip.live_r, 0,
                    (g.tile_rows - clip.live_r) * sizeof(double));
      }
    }
  }
}

void tiled_to_canonical(const double* src, const TileGeometry& g, double* dst,
                        std::size_t ld, std::uint64_t s_begin, std::uint64_t s_end) {
  const std::uint64_t tsz = g.tile_elems();
  RLA_RACE_READ(src + s_begin * tsz, (s_end - s_begin) * tsz * sizeof(double));
  for (std::uint64_t s = s_begin; s < s_end; ++s) {
    const TileCoord tc = s_inverse(g.curve, s, g.depth);
    const TileClip clip = clip_tile(g, tc.i, tc.j);
    if (clip.live_r == 0 || clip.live_c == 0) continue;
    const double* tile = src + s * tsz;
    for (std::uint32_t fj = 0; fj < clip.live_c; ++fj) {
      const double* in = tile + std::uint64_t{fj} * g.tile_rows;
      double* out = dst + std::uint64_t{clip.j0 + fj} * ld + clip.i0;
      RLA_RACE_WRITE(out, clip.live_r * sizeof(double));
      // Copy the shadow with the data: the caller's C inherits the tiles'
      // accumulated rounding history, which is what measure() compares.
      RLA_SHADOW_MOVE(out, in, clip.live_r);
      std::memcpy(out, in, clip.live_r * sizeof(double));
    }
  }
}

void zero_tiles(const TileGeometry& g, double* dst, std::uint64_t s_begin,
                std::uint64_t s_end) {
  const std::uint64_t tsz = g.tile_elems();
  RLA_RACE_WRITE(dst + s_begin * tsz, (s_end - s_begin) * tsz * sizeof(double));
  RLA_SHADOW_CLEAR(dst + s_begin * tsz, (s_end - s_begin) * tsz * sizeof(double));
  std::memset(dst + s_begin * tsz, 0, (s_end - s_begin) * tsz * sizeof(double));
}

}  // namespace rla
