#include "layout/curve.hpp"

#include <cctype>
#include <string>

#include "layout/gray.hpp"
#include "layout/hilbert.hpp"
#include "layout/morton.hpp"

namespace rla {

std::string_view curve_name(Curve c) noexcept {
  switch (c) {
    case Curve::ColMajor:
      return "ColMajor";
    case Curve::RowMajor:
      return "RowMajor";
    case Curve::UMorton:
      return "U-Morton";
    case Curve::XMorton:
      return "X-Morton";
    case Curve::ZMorton:
      return "Z-Morton";
    case Curve::GrayMorton:
      return "Gray-Morton";
    case Curve::Hilbert:
      return "Hilbert";
  }
  return "?";
}

bool parse_curve(std::string_view text, Curve& out) noexcept {
  std::string key;
  key.reserve(text.size());
  for (char ch : text) {
    if (ch == '-' || ch == '_' || ch == ' ') continue;
    key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  }
  if (key == "colmajor" || key == "col" || key == "c" || key == "canonical") {
    out = Curve::ColMajor;
  } else if (key == "rowmajor" || key == "row" || key == "r") {
    out = Curve::RowMajor;
  } else if (key == "umorton" || key == "u") {
    out = Curve::UMorton;
  } else if (key == "xmorton" || key == "x") {
    out = Curve::XMorton;
  } else if (key == "zmorton" || key == "z" || key == "morton" || key == "lebesgue") {
    out = Curve::ZMorton;
  } else if (key == "graymorton" || key == "gray" || key == "g") {
    out = Curve::GrayMorton;
  } else if (key == "hilbert" || key == "h") {
    out = Curve::Hilbert;
  } else {
    return false;
  }
  return true;
}

std::uint64_t s_index(Curve c, std::uint32_t i, std::uint32_t j, int d) noexcept {
  switch (c) {
    case Curve::ColMajor:
      return (static_cast<std::uint64_t>(j) << d) | i;
    case Curve::RowMajor:
      return (static_cast<std::uint64_t>(i) << d) | j;
    case Curve::UMorton:
      return curve_detail::u_index(i, j);
    case Curve::XMorton:
      return curve_detail::x_index(i, j);
    case Curve::ZMorton:
      return curve_detail::z_index(i, j);
    case Curve::GrayMorton:
      return curve_detail::gray_index(i, j);
    case Curve::Hilbert:
      return curve_detail::hilbert_index(i, j, d);
  }
  return 0;
}

TileCoord s_inverse(Curve c, std::uint64_t s, int d) noexcept {
  const std::uint64_t mask = (std::uint64_t{1} << d) - 1;
  switch (c) {
    case Curve::ColMajor:
      return {static_cast<std::uint32_t>(s & mask),
              static_cast<std::uint32_t>(s >> d)};
    case Curve::RowMajor:
      return {static_cast<std::uint32_t>(s >> d),
              static_cast<std::uint32_t>(s & mask)};
    case Curve::UMorton:
      return curve_detail::u_inverse(s);
    case Curve::XMorton:
      return curve_detail::x_inverse(s);
    case Curve::ZMorton:
      return curve_detail::z_inverse(s);
    case Curve::GrayMorton:
      return curve_detail::gray_inverse_index(s);
    case Curve::Hilbert:
      return curve_detail::hilbert_inverse(s, d);
  }
  return {0, 0};
}

TileCoord s_inverse_transformed(Curve c, CurveTransform t, std::uint64_t s,
                                int d) noexcept {
  const TileCoord tc = s_inverse(c, s, d);
  // The transforms are involutions except the two rotations, which are each
  // other's inverses.
  CurveTransform inverse = t;
  if (t == CurveTransform::Rotate90) inverse = CurveTransform::Rotate270;
  if (t == CurveTransform::Rotate270) inverse = CurveTransform::Rotate90;
  return apply_transform(inverse, tc.i, tc.j, d);
}

}  // namespace rla
