#pragma once

// Conversion between canonical (column-major, leading-dimension) storage and
// the recursive tiled layout (paper §4, "Conversion and transposition
// issues").
//
// The dgemm-compatible driver presents matrices in column-major order; we
// internally allocate tiled storage and remap.  Transposition and scalar
// scaling are fused into the remap, so a single core multiply routine
// suffices for all op(A)/op(B) combinations.  The remap is expressed over a
// range of curve positions so callers can spawn sub-ranges in parallel; the
// destination is written in streaming order (tile s, then s+1, ...) because
// destination tiles are contiguous along the curve.

#include <cstddef>
#include <cstdint>

#include "layout/tiled_layout.hpp"

namespace rla {

/// Remap op(src) into tiled storage for tiles with curve positions in
/// [s_begin, s_end).
///
/// `src` is column-major with leading dimension `ld`. When `transpose` is
/// false it must be (at least) g.rows × g.cols; when true, g.cols × g.rows,
/// and the logical matrix is its transpose. Every copied element is scaled
/// by `alpha`; padding rows/columns of partial tiles are zero-filled.
void canonical_to_tiled(const double* src, std::size_t ld, bool transpose,
                        double alpha, const TileGeometry& g, double* dst,
                        std::uint64_t s_begin, std::uint64_t s_end);

/// Full-matrix convenience overload (all tiles, no transpose unless asked).
inline void canonical_to_tiled(const double* src, std::size_t ld, bool transpose,
                               double alpha, const TileGeometry& g, double* dst) {
  canonical_to_tiled(src, ld, transpose, alpha, g, dst, 0, g.tile_count());
}

/// Remap the logical (unpadded) region of tiled storage back to column-major
/// `dst` with leading dimension `ld`, for tiles with curve positions in
/// [s_begin, s_end). Padding elements are not copied.
void tiled_to_canonical(const double* src, const TileGeometry& g, double* dst,
                        std::size_t ld, std::uint64_t s_begin, std::uint64_t s_end);

inline void tiled_to_canonical(const double* src, const TileGeometry& g,
                               double* dst, std::size_t ld) {
  tiled_to_canonical(src, g, dst, ld, 0, g.tile_count());
}

/// Zero-fill the tiles with curve positions in [s_begin, s_end).
void zero_tiles(const TileGeometry& g, double* dst, std::uint64_t s_begin,
                std::uint64_t s_end);

}  // namespace rla
