#include "layout/tiled_layout.hpp"

#include <cmath>
#include <cstdlib>

#include "layout/bits.hpp"

namespace rla {

Aspect classify_aspect(std::uint64_t m, std::uint64_t n, const TileRange& range) noexcept {
  const double ratio = static_cast<double>(m) / static_cast<double>(n);
  const double alpha = range.alpha();
  if (ratio > alpha) return Aspect::Wide;   // paper: α < m/n is "wide"
  if (ratio < 1.0 / alpha) return Aspect::Lean;
  return Aspect::Squat;
}

bool depth_feasible(std::uint64_t x, int d, const TileRange& range) noexcept {
  if (x == 0) return false;
  const std::uint64_t t = bits::ceil_div(x, std::uint64_t{1} << d);
  if (t > range.t_max) return false;
  return d == 0 || t >= range.t_min;
}

std::uint32_t feasible_depths(std::uint64_t x, const TileRange& range) noexcept {
  std::uint32_t mask = 0;
  for (int d = 0; d < 31; ++d) {
    if (depth_feasible(x, d, range)) mask |= (1u << d);
    // Once the tile edge has shrunk below t_min it only shrinks further.
    if ((x >> d) < range.t_min && d > 0) break;
  }
  return mask;
}

std::optional<int> common_depth(std::span<const std::uint64_t> dims,
                                const TileRange& range) noexcept {
  std::uint32_t mask = ~0u;
  for (const std::uint64_t x : dims) mask &= feasible_depths(x, range);
  if (mask == 0) return std::nullopt;

  // Among feasible depths pick the one whose largest tile edge is closest
  // to t_pref (Fig. 4: performance is a shallow bowl around the preferred
  // tile size, so any feasible choice is close; this biases to the bottom).
  int best = -1;
  double best_score = 0.0;
  for (int d = 0; d < 31; ++d) {
    if ((mask & (1u << d)) == 0) continue;
    double worst = 0.0;
    for (const std::uint64_t x : dims) {
      const auto t = static_cast<double>(bits::ceil_div(x, std::uint64_t{1} << d));
      worst = std::max(worst, std::abs(std::log2(t / range.t_pref)));
    }
    if (best < 0 || worst < best_score) {
      best = d;
      best_score = worst;
    }
  }
  return best;
}

TileGeometry make_geometry(std::uint32_t rows, std::uint32_t cols, int depth,
                           Curve curve) noexcept {
  TileGeometry g;
  g.rows = rows;
  g.cols = cols;
  g.depth = depth;
  g.curve = curve;
  const std::uint32_t side = std::uint32_t{1} << depth;
  g.tile_rows = static_cast<std::uint32_t>(bits::ceil_div(rows, side));
  g.tile_cols = static_cast<std::uint32_t>(bits::ceil_div(cols, side));
  return g;
}

}  // namespace rla
