#include "core/recursion.hpp"

#include <cfenv>
#include <limits>

#include "analysis/annotations.hpp"
#include "core/kernels.hpp"
#include "core/zero_tree.hpp"
#include "obs/collector.hpp"
#include "robust/fault.hpp"

namespace rla {

namespace treeprof = obs::treeprof;

namespace {

/// Elements covered by one block: 2^level × 2^level tiles of
/// tile_rows × tile_cols. FLOP weight of one elementwise add pass.
std::uint64_t block_elems(const TiledBlock& b) noexcept {
  return (static_cast<std::uint64_t>(b.geom->tile_rows) << b.level) *
         (static_cast<std::uint64_t>(b.geom->tile_cols) << b.level);
}

/// Fresh temporary with the same tile shape and curve as `like`, sized to
/// one block of like.level levels. Root orientation is 0 by construction.
TiledMatrix make_temp(const TiledBlock& like) {
  fault::maybe_fail_alloc(fault::Site::AllocTemp);
  TileGeometry g;
  g.tile_rows = like.geom->tile_rows;
  g.tile_cols = like.geom->tile_cols;
  g.depth = like.level;
  g.curve = like.geom->curve;
  g.rows = g.padded_rows();
  g.cols = g.padded_cols();
  return TiledMatrix(g);
}

void leaf(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
          const TiledBlock& b) {
  leaf_mm_tile(ctx.kernel, c.geom->tile_rows, c.geom->tile_cols, a.geom->tile_cols,
               a.tile(), b.tile(), c.tile());
  treeprof::add_flops(2ull * c.geom->tile_rows * c.geom->tile_cols *
                      a.geom->tile_cols);
  if (fault::should_fail(fault::Site::KernelCorrupt)) c.tile()[0] += 1.0e6;
  if (fault::should_fail(fault::Site::KernelFpe)) {
    // Raise a real FE_INVALID and poison the output the way an actual kernel
    // NaN would. feraiseexcept (rather than computing 0/0) keeps the
    // injection visible to the fenv capture without tripping
    // -fsanitize=float-divide-by-zero builds.
    std::feraiseexcept(FE_INVALID);
    c.tile()[0] += std::numeric_limits<double>::quiet_NaN();
  }
}

/// Cancellation + task.throw preamble shared by every recursion entry: one
/// relaxed load (and one more inside should_fail) when nothing is armed.
/// Returns true when the caller should return immediately.
bool node_cancelled(const MulContext& ctx) {
  if (ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  if (ctx.external_cancel != nullptr &&
      ctx.external_cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  fault::maybe_fail_task(fault::Site::TaskThrow);
  return false;
}

bool spawn_here(const MulContext& ctx, int level) {
  // Race detection certifies the PARALLEL task DAG, so every fork that could
  // be a task on a real pool must become one, even on the serial pool the
  // detector runs on and below the spawn threshold.
  if (analysis::detection_active()) return true;
  return !ctx.pool->serial() && level >= ctx.spawn_min_level;
}

/// Run f via the group when parallel, inline otherwise.
template <typename F>
void fork(TaskGroup& group, bool parallel, F&& f) {
  if (parallel) {
    group.spawn(std::forward<F>(f));
  } else {
    f();
  }
}

}  // namespace

void mul_standard(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b, std::uint64_t path) {
  if (node_cancelled(ctx)) return;
  // Frens–Wise flags: an all-zero operand annihilates the product.
  if ((ctx.zero_a != nullptr && ctx.zero_a->zero(a.level, a.s_base)) ||
      (ctx.zero_b != nullptr && ctx.zero_b->zero(b.level, b.s_base))) {
    return;
  }
  treeprof::NodeScope node(path);
  if (c.level == 0) {
    leaf(ctx, c, a, b);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const bool fg = ctx.force_generic_additions;

  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  if (ctx.standard_variant == StandardVariant::InPlace) {
    // Two phases of four accumulating products; C quadrants are disjoint
    // within each phase, so no temporaries are needed.
    {
      TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
      fork(group, par, [&] { mul_standard(ctx, c11, a11, b11, treeprof::child_path(path, 0)); });
      fork(group, par, [&] { mul_standard(ctx, c12, a11, b12, treeprof::child_path(path, 1)); });
      fork(group, par, [&] { mul_standard(ctx, c21, a21, b11, treeprof::child_path(path, 2)); });
      fork(group, par, [&] { mul_standard(ctx, c22, a21, b12, treeprof::child_path(path, 3)); });
      group.wait();
    }
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] { mul_standard(ctx, c11, a12, b21, treeprof::child_path(path, 4)); });
    fork(group, par, [&] { mul_standard(ctx, c12, a12, b22, treeprof::child_path(path, 5)); });
    fork(group, par, [&] { mul_standard(ctx, c21, a22, b21, treeprof::child_path(path, 6)); });
    fork(group, par, [&] { mul_standard(ctx, c22, a22, b22, treeprof::child_path(path, 7)); });
    group.wait();
    return;
  }

  // Paper Fig. 1(a): all eight products concurrently. The first four target
  // the C quadrants directly; the other four go to quadrant-sized
  // temporaries folded in by the post-additions.
  TiledMatrix t11 = make_temp(c11), t12 = make_temp(c12);
  TiledMatrix t21 = make_temp(c21), t22 = make_temp(c22);
  {
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] { mul_standard(ctx, c11, a11, b11, treeprof::child_path(path, 0)); });
    fork(group, par, [&] { mul_standard(ctx, c12, a11, b12, treeprof::child_path(path, 1)); });
    fork(group, par, [&] { mul_standard(ctx, c21, a21, b11, treeprof::child_path(path, 2)); });
    fork(group, par, [&] { mul_standard(ctx, c22, a21, b12, treeprof::child_path(path, 3)); });
    fork(group, par, [&] {
      t11.zero();
      mul_standard(ctx, t11.root(), a12, b21, treeprof::child_path(path, 4));
    });
    fork(group, par, [&] {
      t12.zero();
      mul_standard(ctx, t12.root(), a12, b22, treeprof::child_path(path, 5));
    });
    fork(group, par, [&] {
      t21.zero();
      mul_standard(ctx, t21.root(), a22, b21, treeprof::child_path(path, 6));
    });
    fork(group, par, [&] {
      t22.zero();
      mul_standard(ctx, t22.root(), a22, b22, treeprof::child_path(path, 7));
    });
    group.wait();
  }
  // "adds" phases mark the serial joints between product waves in the
  // trace; only spawning nodes emit them (deep nodes would flood the ring).
  // Forked add tasks attribute to this node's own path (same depth).
  obs::PhaseScope adds_phase("adds", par);
  TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc(c11, 1.0, t11.root(), fg);
    treeprof::add_flops(block_elems(c11));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc(c12, 1.0, t12.root(), fg);
    treeprof::add_flops(block_elems(c12));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc(c21, 1.0, t21.root(), fg);
    treeprof::add_flops(block_elems(c21));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc(c22, 1.0, t22.root(), fg);
    treeprof::add_flops(block_elems(c22));
  });
  group.wait();
}

namespace {

/// Paper §5.1's space-conserving sequential variant: one S, one T and one P
/// buffer per node, products interspersed with their pre-/post-additions.
/// Winograd's U-chains are expanded into per-product C contributions (the
/// common-subexpression savings cannot survive with a single P buffer).
void mul_fast_lowmem(const MulContext& ctx, bool winograd, const TiledBlock& c,
                     const TiledBlock& a, const TiledBlock& b,
                     std::uint64_t path) {
  if (node_cancelled(ctx)) return;
  if (c.level <= ctx.fast_cutoff_level) {
    mul_standard(ctx, c, a, b, path);
    return;
  }
  treeprof::NodeScope tree_node(path);
  const bool fg = ctx.force_generic_additions;
  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  TiledMatrix s_buf = make_temp(a11), t_buf = make_temp(b11);
  TiledMatrix p_buf = make_temp(c11);
  const TiledBlock s = s_buf.root(), t = t_buf.root(), p = p_buf.root();

  // Products carry child paths P1..P7 -> 0..6; every elementwise add pass
  // charges one FLOP per element to this node.
  auto product = [&](unsigned idx, const TiledBlock& x, const TiledBlock& y) {
    block_zero(p);
    mul_fast_lowmem(ctx, winograd, p, x, y, treeprof::child_path(path, idx));
  };
  auto acc = [&](const TiledBlock& dst, double scale, const TiledBlock& src) {
    block_acc(dst, scale, src, fg);
    treeprof::add_flops(block_elems(dst));
  };
  auto set_add = [&](const TiledBlock& dst, const TiledBlock& x, double scale,
                     const TiledBlock& y) {
    block_set_add(dst, x, scale, y, fg);
    treeprof::add_flops(block_elems(dst));
  };

  if (!winograd) {
    // P1 = (A11+A22)(B11+B22) -> C11, C22
    set_add(s, a11, +1.0, a22);
    set_add(t, b11, +1.0, b22);
    product(0, s, t);
    acc(c11, +1.0, p);
    acc(c22, +1.0, p);
    // P2 = (A21+A22) B11 -> C21, -C22
    set_add(s, a21, +1.0, a22);
    product(1, s, b11);
    acc(c21, +1.0, p);
    acc(c22, -1.0, p);
    // P3 = A11 (B12-B22) -> C12, C22
    set_add(t, b12, -1.0, b22);
    product(2, a11, t);
    acc(c12, +1.0, p);
    acc(c22, +1.0, p);
    // P4 = A22 (B21-B11) -> C11, C21
    set_add(t, b21, -1.0, b11);
    product(3, a22, t);
    acc(c11, +1.0, p);
    acc(c21, +1.0, p);
    // P5 = (A11+A12) B22 -> -C11, C12
    set_add(s, a11, +1.0, a12);
    product(4, s, b22);
    acc(c11, -1.0, p);
    acc(c12, +1.0, p);
    // P6 = (A21-A11)(B11+B12) -> C22
    set_add(s, a21, -1.0, a11);
    set_add(t, b11, +1.0, b12);
    product(5, s, t);
    acc(c22, +1.0, p);
    // P7 = (A12-A22)(B21+B22) -> C11
    set_add(s, a12, -1.0, a22);
    set_add(t, b21, +1.0, b22);
    product(6, s, t);
    acc(c11, +1.0, p);
    return;
  }

  // Winograd with expanded U-chains:
  //   C11 = P1+P2, C21 = P1+P4+P5+P7, C22 = P1+P3+P4+P5, C12 = P1+P3+P4+P6.
  // P1 = A11 B11
  product(0, a11, b11);
  acc(c11, +1.0, p);
  acc(c21, +1.0, p);
  acc(c22, +1.0, p);
  acc(c12, +1.0, p);
  // P2 = A12 B21
  product(1, a12, b21);
  acc(c11, +1.0, p);
  // P3 = (A21+A22)(B12-B11)
  set_add(s, a21, +1.0, a22);
  set_add(t, b12, -1.0, b11);
  product(2, s, t);
  acc(c22, +1.0, p);
  acc(c12, +1.0, p);
  // P4 = (A21+A22-A11)(B22-B12+B11)
  set_add(s, a21, +1.0, a22);
  acc(s, -1.0, a11);
  set_add(t, b22, -1.0, b12);
  acc(t, +1.0, b11);
  product(3, s, t);
  acc(c21, +1.0, p);
  acc(c22, +1.0, p);
  acc(c12, +1.0, p);
  // P5 = (A11-A21)(B22-B12)
  set_add(s, a11, -1.0, a21);
  set_add(t, b22, -1.0, b12);
  product(4, s, t);
  acc(c21, +1.0, p);
  acc(c22, +1.0, p);
  // P6 = (A12-A21-A22+A11) B22
  set_add(s, a12, -1.0, a21);
  acc(s, -1.0, a22);
  acc(s, +1.0, a11);
  product(5, s, b22);
  acc(c12, +1.0, p);
  // P7 = A22 (B21-B22+B12-B11)
  set_add(t, b21, -1.0, b22);
  acc(t, +1.0, b12);
  acc(t, -1.0, b11);
  product(6, a22, t);
  acc(c21, +1.0, p);
}

}  // namespace

void mul_strassen(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b, std::uint64_t path) {
  if (node_cancelled(ctx)) return;
  if (ctx.fast_variant == FastVariant::SerialLowMem) {
    mul_fast_lowmem(ctx, /*winograd=*/false, c, a, b, path);
    return;
  }
  if (c.level <= ctx.fast_cutoff_level) {
    mul_standard(ctx, c, a, b, path);
    return;
  }
  treeprof::NodeScope tree_node(path);
  const bool par = spawn_here(ctx, c.level);
  const bool fg = ctx.force_generic_additions;

  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  TiledMatrix s1 = make_temp(a11), s2 = make_temp(a11), s3 = make_temp(a11);
  TiledMatrix s4 = make_temp(a11), s5 = make_temp(a11);
  TiledMatrix t1 = make_temp(b11), t2 = make_temp(b11), t3 = make_temp(b11);
  TiledMatrix t4 = make_temp(b11), t5 = make_temp(b11);
  TiledMatrix p1 = make_temp(c11), p2 = make_temp(c11), p3 = make_temp(c11);
  TiledMatrix p4 = make_temp(c11), p5 = make_temp(c11), p6 = make_temp(c11);
  TiledMatrix p7 = make_temp(c11);

  {
    // Pre-additions (Fig. 1(b)): ten independent quadrant adds, each
    // attributed to this node's own path.
    obs::PhaseScope adds_phase("adds", par);
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    auto pre_add = [&](const TiledBlock& dst, const TiledBlock& x, double s,
                       const TiledBlock& y) {
      treeprof::NodeScope add_node(path);
      block_set_add(dst, x, s, y, fg);
      treeprof::add_flops(block_elems(dst));
    };
    fork(group, par, [&] { pre_add(s1.root(), a11, +1.0, a22); });
    fork(group, par, [&] { pre_add(s2.root(), a21, +1.0, a22); });
    // Note: S3 = A11 + A12 (Strassen's M5 pre-sum). The SPAA'99 scan prints
    // "S3 = A11 - A12", which is inconsistent with its own post-additions
    // C12 = P3 + P5 and C11 = ... - P5 ...; the + sign is the classical one.
    fork(group, par, [&] { pre_add(s3.root(), a11, +1.0, a12); });
    fork(group, par, [&] { pre_add(s4.root(), a21, -1.0, a11); });
    fork(group, par, [&] { pre_add(s5.root(), a12, -1.0, a22); });
    fork(group, par, [&] { pre_add(t1.root(), b11, +1.0, b22); });
    fork(group, par, [&] { pre_add(t2.root(), b12, -1.0, b22); });
    fork(group, par, [&] { pre_add(t3.root(), b21, -1.0, b11); });
    fork(group, par, [&] { pre_add(t4.root(), b11, +1.0, b12); });
    fork(group, par, [&] { pre_add(t5.root(), b21, +1.0, b22); });
    group.wait();
  }
  {
    // Seven recursive products, all spawned at once (paper §2).
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] {
      p1.zero();
      mul_strassen(ctx, p1.root(), s1.root(), t1.root(), treeprof::child_path(path, 0));
    });
    fork(group, par, [&] {
      p2.zero();
      mul_strassen(ctx, p2.root(), s2.root(), b11, treeprof::child_path(path, 1));
    });
    fork(group, par, [&] {
      p3.zero();
      mul_strassen(ctx, p3.root(), a11, t2.root(), treeprof::child_path(path, 2));
    });
    fork(group, par, [&] {
      p4.zero();
      mul_strassen(ctx, p4.root(), a22, t3.root(), treeprof::child_path(path, 3));
    });
    fork(group, par, [&] {
      p5.zero();
      mul_strassen(ctx, p5.root(), s3.root(), b22, treeprof::child_path(path, 4));
    });
    fork(group, par, [&] {
      p6.zero();
      mul_strassen(ctx, p6.root(), s4.root(), t4.root(), treeprof::child_path(path, 5));
    });
    fork(group, par, [&] {
      p7.zero();
      mul_strassen(ctx, p7.root(), s5.root(), t5.root(), treeprof::child_path(path, 6));
    });
    group.wait();
  }
  // Post-additions.
  obs::PhaseScope adds_phase("adds", par);
  TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc4(c11, +1.0, p1.root(), +1.0, p4.root(), -1.0, p5.root(), +1.0,
               p7.root(), fg);
    treeprof::add_flops(4 * block_elems(c11));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc2(c21, +1.0, p2.root(), +1.0, p4.root(), fg);
    treeprof::add_flops(2 * block_elems(c21));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc2(c12, +1.0, p3.root(), +1.0, p5.root(), fg);
    treeprof::add_flops(2 * block_elems(c12));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc4(c22, +1.0, p1.root(), +1.0, p3.root(), -1.0, p2.root(), +1.0,
               p6.root(), fg);
    treeprof::add_flops(4 * block_elems(c22));
  });
  group.wait();
}

void mul_winograd(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b, std::uint64_t path) {
  if (node_cancelled(ctx)) return;
  if (ctx.fast_variant == FastVariant::SerialLowMem) {
    mul_fast_lowmem(ctx, /*winograd=*/true, c, a, b, path);
    return;
  }
  if (c.level <= ctx.fast_cutoff_level) {
    mul_standard(ctx, c, a, b, path);
    return;
  }
  treeprof::NodeScope tree_node(path);
  const bool par = spawn_here(ctx, c.level);
  const bool fg = ctx.force_generic_additions;

  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  TiledMatrix s1 = make_temp(a11), s2 = make_temp(a11), s3 = make_temp(a11);
  TiledMatrix s4 = make_temp(a11);
  TiledMatrix t1 = make_temp(b11), t2 = make_temp(b11), t3 = make_temp(b11);
  TiledMatrix t4 = make_temp(b11);
  TiledMatrix p1 = make_temp(c11), p2 = make_temp(c11), p3 = make_temp(c11);
  TiledMatrix p4 = make_temp(c11), p5 = make_temp(c11), p6 = make_temp(c11);
  TiledMatrix p7 = make_temp(c11);

  {
    // Pre-additions (Fig. 1(c)). S2/S4 and T2/T4 chain on earlier sums —
    // this sharing is Winograd's signature — so each side runs its chain in
    // one task, with the independent S3/T3 adds in their own tasks.
    obs::PhaseScope adds_phase("adds", par);
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] {
      treeprof::NodeScope add_node(path);
      block_set_add(s1.root(), a21, +1.0, a22, fg);
      block_set_add(s2.root(), s1.root(), -1.0, a11, fg);
      block_set_add(s4.root(), a12, -1.0, s2.root(), fg);
      treeprof::add_flops(3 * block_elems(s1.root()));
    });
    fork(group, par, [&] {
      treeprof::NodeScope add_node(path);
      block_set_add(s3.root(), a11, -1.0, a21, fg);
      treeprof::add_flops(block_elems(s3.root()));
    });
    fork(group, par, [&] {
      treeprof::NodeScope add_node(path);
      block_set_add(t1.root(), b12, -1.0, b11, fg);
      block_set_add(t2.root(), b22, -1.0, t1.root(), fg);
      block_set_add(t4.root(), b21, -1.0, t2.root(), fg);
      treeprof::add_flops(3 * block_elems(t1.root()));
    });
    fork(group, par, [&] {
      treeprof::NodeScope add_node(path);
      block_set_add(t3.root(), b22, -1.0, b12, fg);
      treeprof::add_flops(block_elems(t3.root()));
    });
    group.wait();
  }
  {
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] {
      p1.zero();
      mul_winograd(ctx, p1.root(), a11, b11, treeprof::child_path(path, 0));
    });
    fork(group, par, [&] {
      p2.zero();
      mul_winograd(ctx, p2.root(), a12, b21, treeprof::child_path(path, 1));
    });
    fork(group, par, [&] {
      p3.zero();
      mul_winograd(ctx, p3.root(), s1.root(), t1.root(), treeprof::child_path(path, 2));
    });
    fork(group, par, [&] {
      p4.zero();
      mul_winograd(ctx, p4.root(), s2.root(), t2.root(), treeprof::child_path(path, 3));
    });
    fork(group, par, [&] {
      p5.zero();
      mul_winograd(ctx, p5.root(), s3.root(), t3.root(), treeprof::child_path(path, 4));
    });
    fork(group, par, [&] {
      p6.zero();
      mul_winograd(ctx, p6.root(), s4.root(), b22, treeprof::child_path(path, 5));
    });
    fork(group, par, [&] {
      p7.zero();
      mul_winograd(ctx, p7.root(), a22, t4.root(), treeprof::child_path(path, 6));
    });
    group.wait();
  }
  // Post-additions with Winograd's common-subexpression reuse: the U-chain
  // accumulates in place into the P buffers (all orientation 0, so the
  // aliased elementwise updates are safe).
  obs::PhaseScope adds_phase("adds", par);
  TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc2(c11, +1.0, p1.root(), +1.0, p2.root(), fg);
    treeprof::add_flops(2 * block_elems(c11));
  });
  fork(group, par, [&] {
    treeprof::NodeScope add_node(path);
    block_acc(p4.root(), 1.0, p1.root(), fg);   // U2 = P1 + P4
    block_acc(p5.root(), 1.0, p4.root(), fg);   // U3 = U2 + P5
    treeprof::add_flops(2 * block_elems(p4.root()));
    TaskGroup inner(*ctx.pool, ctx.cancel, ctx.priority);
    fork(inner, par, [&] {
      treeprof::NodeScope inner_node(path);
      block_acc2(c21, +1.0, p5.root(), +1.0, p7.root(), fg);
      treeprof::add_flops(2 * block_elems(c21));
    });
    fork(inner, par, [&] {
      treeprof::NodeScope inner_node(path);
      block_acc2(c22, +1.0, p5.root(), +1.0, p3.root(), fg);
      treeprof::add_flops(2 * block_elems(c22));
    });
    fork(inner, par, [&] {
      treeprof::NodeScope inner_node(path);
      block_acc3(c12, +1.0, p4.root(), +1.0, p3.root(), +1.0, p6.root(), fg);
      treeprof::add_flops(3 * block_elems(c12));
    });
    inner.wait();
  });
  group.wait();
}

void mul_dispatch(const MulContext& ctx, Algorithm alg, const TiledBlock& c,
                  const TiledBlock& a, const TiledBlock& b,
                  std::uint64_t path) {
  switch (alg) {
    case Algorithm::Standard:
      mul_standard(ctx, c, a, b, path);
      break;
    case Algorithm::Strassen:
      mul_strassen(ctx, c, a, b, path);
      break;
    case Algorithm::Winograd:
      mul_winograd(ctx, c, a, b, path);
      break;
  }
}

}  // namespace rla
