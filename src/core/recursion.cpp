#include "core/recursion.hpp"

#include <cfenv>
#include <limits>

#include "analysis/annotations.hpp"
#include "core/kernels.hpp"
#include "core/zero_tree.hpp"
#include "obs/collector.hpp"
#include "robust/fault.hpp"

namespace rla {

namespace {

/// Fresh temporary with the same tile shape and curve as `like`, sized to
/// one block of like.level levels. Root orientation is 0 by construction.
TiledMatrix make_temp(const TiledBlock& like) {
  fault::maybe_fail_alloc(fault::Site::AllocTemp);
  TileGeometry g;
  g.tile_rows = like.geom->tile_rows;
  g.tile_cols = like.geom->tile_cols;
  g.depth = like.level;
  g.curve = like.geom->curve;
  g.rows = g.padded_rows();
  g.cols = g.padded_cols();
  return TiledMatrix(g);
}

void leaf(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
          const TiledBlock& b) {
  leaf_mm_tile(ctx.kernel, c.geom->tile_rows, c.geom->tile_cols, a.geom->tile_cols,
               a.tile(), b.tile(), c.tile());
  if (fault::should_fail(fault::Site::KernelCorrupt)) c.tile()[0] += 1.0e6;
  if (fault::should_fail(fault::Site::KernelFpe)) {
    // Raise a real FE_INVALID and poison the output the way an actual kernel
    // NaN would. feraiseexcept (rather than computing 0/0) keeps the
    // injection visible to the fenv capture without tripping
    // -fsanitize=float-divide-by-zero builds.
    std::feraiseexcept(FE_INVALID);
    c.tile()[0] += std::numeric_limits<double>::quiet_NaN();
  }
}

/// Cancellation + task.throw preamble shared by every recursion entry: one
/// relaxed load (and one more inside should_fail) when nothing is armed.
/// Returns true when the caller should return immediately.
bool node_cancelled(const MulContext& ctx) {
  if (ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  if (ctx.external_cancel != nullptr &&
      ctx.external_cancel->load(std::memory_order_relaxed)) {
    return true;
  }
  fault::maybe_fail_task(fault::Site::TaskThrow);
  return false;
}

bool spawn_here(const MulContext& ctx, int level) {
  // Race detection certifies the PARALLEL task DAG, so every fork that could
  // be a task on a real pool must become one, even on the serial pool the
  // detector runs on and below the spawn threshold.
  if (analysis::detection_active()) return true;
  return !ctx.pool->serial() && level >= ctx.spawn_min_level;
}

/// Run f via the group when parallel, inline otherwise.
template <typename F>
void fork(TaskGroup& group, bool parallel, F&& f) {
  if (parallel) {
    group.spawn(std::forward<F>(f));
  } else {
    f();
  }
}

}  // namespace

void mul_standard(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b) {
  if (node_cancelled(ctx)) return;
  // Frens–Wise flags: an all-zero operand annihilates the product.
  if ((ctx.zero_a != nullptr && ctx.zero_a->zero(a.level, a.s_base)) ||
      (ctx.zero_b != nullptr && ctx.zero_b->zero(b.level, b.s_base))) {
    return;
  }
  if (c.level == 0) {
    leaf(ctx, c, a, b);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const bool fg = ctx.force_generic_additions;

  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  if (ctx.standard_variant == StandardVariant::InPlace) {
    // Two phases of four accumulating products; C quadrants are disjoint
    // within each phase, so no temporaries are needed.
    {
      TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
      fork(group, par, [&] { mul_standard(ctx, c11, a11, b11); });
      fork(group, par, [&] { mul_standard(ctx, c12, a11, b12); });
      fork(group, par, [&] { mul_standard(ctx, c21, a21, b11); });
      fork(group, par, [&] { mul_standard(ctx, c22, a21, b12); });
      group.wait();
    }
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] { mul_standard(ctx, c11, a12, b21); });
    fork(group, par, [&] { mul_standard(ctx, c12, a12, b22); });
    fork(group, par, [&] { mul_standard(ctx, c21, a22, b21); });
    fork(group, par, [&] { mul_standard(ctx, c22, a22, b22); });
    group.wait();
    return;
  }

  // Paper Fig. 1(a): all eight products concurrently. The first four target
  // the C quadrants directly; the other four go to quadrant-sized
  // temporaries folded in by the post-additions.
  TiledMatrix t11 = make_temp(c11), t12 = make_temp(c12);
  TiledMatrix t21 = make_temp(c21), t22 = make_temp(c22);
  {
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] { mul_standard(ctx, c11, a11, b11); });
    fork(group, par, [&] { mul_standard(ctx, c12, a11, b12); });
    fork(group, par, [&] { mul_standard(ctx, c21, a21, b11); });
    fork(group, par, [&] { mul_standard(ctx, c22, a21, b12); });
    fork(group, par, [&] {
      t11.zero();
      mul_standard(ctx, t11.root(), a12, b21);
    });
    fork(group, par, [&] {
      t12.zero();
      mul_standard(ctx, t12.root(), a12, b22);
    });
    fork(group, par, [&] {
      t21.zero();
      mul_standard(ctx, t21.root(), a22, b21);
    });
    fork(group, par, [&] {
      t22.zero();
      mul_standard(ctx, t22.root(), a22, b22);
    });
    group.wait();
  }
  // "adds" phases mark the serial joints between product waves in the
  // trace; only spawning nodes emit them (deep nodes would flood the ring).
  obs::PhaseScope adds_phase("adds", par);
  TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
  fork(group, par, [&] { block_acc(c11, 1.0, t11.root(), fg); });
  fork(group, par, [&] { block_acc(c12, 1.0, t12.root(), fg); });
  fork(group, par, [&] { block_acc(c21, 1.0, t21.root(), fg); });
  fork(group, par, [&] { block_acc(c22, 1.0, t22.root(), fg); });
  group.wait();
}

namespace {

/// Paper §5.1's space-conserving sequential variant: one S, one T and one P
/// buffer per node, products interspersed with their pre-/post-additions.
/// Winograd's U-chains are expanded into per-product C contributions (the
/// common-subexpression savings cannot survive with a single P buffer).
void mul_fast_lowmem(const MulContext& ctx, bool winograd, const TiledBlock& c,
                     const TiledBlock& a, const TiledBlock& b) {
  if (node_cancelled(ctx)) return;
  if (c.level <= ctx.fast_cutoff_level) {
    mul_standard(ctx, c, a, b);
    return;
  }
  const bool fg = ctx.force_generic_additions;
  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  TiledMatrix s_buf = make_temp(a11), t_buf = make_temp(b11);
  TiledMatrix p_buf = make_temp(c11);
  const TiledBlock s = s_buf.root(), t = t_buf.root(), p = p_buf.root();

  auto product = [&](const TiledBlock& x, const TiledBlock& y) {
    block_zero(p);
    mul_fast_lowmem(ctx, winograd, p, x, y);
  };

  if (!winograd) {
    // P1 = (A11+A22)(B11+B22) -> C11, C22
    block_set_add(s, a11, +1.0, a22, fg);
    block_set_add(t, b11, +1.0, b22, fg);
    product(s, t);
    block_acc(c11, +1.0, p, fg);
    block_acc(c22, +1.0, p, fg);
    // P2 = (A21+A22) B11 -> C21, -C22
    block_set_add(s, a21, +1.0, a22, fg);
    product(s, b11);
    block_acc(c21, +1.0, p, fg);
    block_acc(c22, -1.0, p, fg);
    // P3 = A11 (B12-B22) -> C12, C22
    block_set_add(t, b12, -1.0, b22, fg);
    product(a11, t);
    block_acc(c12, +1.0, p, fg);
    block_acc(c22, +1.0, p, fg);
    // P4 = A22 (B21-B11) -> C11, C21
    block_set_add(t, b21, -1.0, b11, fg);
    product(a22, t);
    block_acc(c11, +1.0, p, fg);
    block_acc(c21, +1.0, p, fg);
    // P5 = (A11+A12) B22 -> -C11, C12
    block_set_add(s, a11, +1.0, a12, fg);
    product(s, b22);
    block_acc(c11, -1.0, p, fg);
    block_acc(c12, +1.0, p, fg);
    // P6 = (A21-A11)(B11+B12) -> C22
    block_set_add(s, a21, -1.0, a11, fg);
    block_set_add(t, b11, +1.0, b12, fg);
    product(s, t);
    block_acc(c22, +1.0, p, fg);
    // P7 = (A12-A22)(B21+B22) -> C11
    block_set_add(s, a12, -1.0, a22, fg);
    block_set_add(t, b21, +1.0, b22, fg);
    product(s, t);
    block_acc(c11, +1.0, p, fg);
    return;
  }

  // Winograd with expanded U-chains:
  //   C11 = P1+P2, C21 = P1+P4+P5+P7, C22 = P1+P3+P4+P5, C12 = P1+P3+P4+P6.
  // P1 = A11 B11
  product(a11, b11);
  block_acc(c11, +1.0, p, fg);
  block_acc(c21, +1.0, p, fg);
  block_acc(c22, +1.0, p, fg);
  block_acc(c12, +1.0, p, fg);
  // P2 = A12 B21
  product(a12, b21);
  block_acc(c11, +1.0, p, fg);
  // P3 = (A21+A22)(B12-B11)
  block_set_add(s, a21, +1.0, a22, fg);
  block_set_add(t, b12, -1.0, b11, fg);
  product(s, t);
  block_acc(c22, +1.0, p, fg);
  block_acc(c12, +1.0, p, fg);
  // P4 = (A21+A22-A11)(B22-B12+B11)
  block_set_add(s, a21, +1.0, a22, fg);
  block_acc(s, -1.0, a11, fg);
  block_set_add(t, b22, -1.0, b12, fg);
  block_acc(t, +1.0, b11, fg);
  product(s, t);
  block_acc(c21, +1.0, p, fg);
  block_acc(c22, +1.0, p, fg);
  block_acc(c12, +1.0, p, fg);
  // P5 = (A11-A21)(B22-B12)
  block_set_add(s, a11, -1.0, a21, fg);
  block_set_add(t, b22, -1.0, b12, fg);
  product(s, t);
  block_acc(c21, +1.0, p, fg);
  block_acc(c22, +1.0, p, fg);
  // P6 = (A12-A21-A22+A11) B22
  block_set_add(s, a12, -1.0, a21, fg);
  block_acc(s, -1.0, a22, fg);
  block_acc(s, +1.0, a11, fg);
  product(s, b22);
  block_acc(c12, +1.0, p, fg);
  // P7 = A22 (B21-B22+B12-B11)
  block_set_add(t, b21, -1.0, b22, fg);
  block_acc(t, +1.0, b12, fg);
  block_acc(t, -1.0, b11, fg);
  product(a22, t);
  block_acc(c21, +1.0, p, fg);
}

}  // namespace

void mul_strassen(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b) {
  if (node_cancelled(ctx)) return;
  if (ctx.fast_variant == FastVariant::SerialLowMem) {
    mul_fast_lowmem(ctx, /*winograd=*/false, c, a, b);
    return;
  }
  if (c.level <= ctx.fast_cutoff_level) {
    mul_standard(ctx, c, a, b);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const bool fg = ctx.force_generic_additions;

  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  TiledMatrix s1 = make_temp(a11), s2 = make_temp(a11), s3 = make_temp(a11);
  TiledMatrix s4 = make_temp(a11), s5 = make_temp(a11);
  TiledMatrix t1 = make_temp(b11), t2 = make_temp(b11), t3 = make_temp(b11);
  TiledMatrix t4 = make_temp(b11), t5 = make_temp(b11);
  TiledMatrix p1 = make_temp(c11), p2 = make_temp(c11), p3 = make_temp(c11);
  TiledMatrix p4 = make_temp(c11), p5 = make_temp(c11), p6 = make_temp(c11);
  TiledMatrix p7 = make_temp(c11);

  {
    // Pre-additions (Fig. 1(b)): ten independent quadrant adds.
    obs::PhaseScope adds_phase("adds", par);
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] { block_set_add(s1.root(), a11, +1.0, a22, fg); });
    fork(group, par, [&] { block_set_add(s2.root(), a21, +1.0, a22, fg); });
    // Note: S3 = A11 + A12 (Strassen's M5 pre-sum). The SPAA'99 scan prints
    // "S3 = A11 - A12", which is inconsistent with its own post-additions
    // C12 = P3 + P5 and C11 = ... - P5 ...; the + sign is the classical one.
    fork(group, par, [&] { block_set_add(s3.root(), a11, +1.0, a12, fg); });
    fork(group, par, [&] { block_set_add(s4.root(), a21, -1.0, a11, fg); });
    fork(group, par, [&] { block_set_add(s5.root(), a12, -1.0, a22, fg); });
    fork(group, par, [&] { block_set_add(t1.root(), b11, +1.0, b22, fg); });
    fork(group, par, [&] { block_set_add(t2.root(), b12, -1.0, b22, fg); });
    fork(group, par, [&] { block_set_add(t3.root(), b21, -1.0, b11, fg); });
    fork(group, par, [&] { block_set_add(t4.root(), b11, +1.0, b12, fg); });
    fork(group, par, [&] { block_set_add(t5.root(), b21, +1.0, b22, fg); });
    group.wait();
  }
  {
    // Seven recursive products, all spawned at once (paper §2).
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] {
      p1.zero();
      mul_strassen(ctx, p1.root(), s1.root(), t1.root());
    });
    fork(group, par, [&] {
      p2.zero();
      mul_strassen(ctx, p2.root(), s2.root(), b11);
    });
    fork(group, par, [&] {
      p3.zero();
      mul_strassen(ctx, p3.root(), a11, t2.root());
    });
    fork(group, par, [&] {
      p4.zero();
      mul_strassen(ctx, p4.root(), a22, t3.root());
    });
    fork(group, par, [&] {
      p5.zero();
      mul_strassen(ctx, p5.root(), s3.root(), b22);
    });
    fork(group, par, [&] {
      p6.zero();
      mul_strassen(ctx, p6.root(), s4.root(), t4.root());
    });
    fork(group, par, [&] {
      p7.zero();
      mul_strassen(ctx, p7.root(), s5.root(), t5.root());
    });
    group.wait();
  }
  // Post-additions.
  obs::PhaseScope adds_phase("adds", par);
  TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
  fork(group, par, [&] {
    block_acc4(c11, +1.0, p1.root(), +1.0, p4.root(), -1.0, p5.root(), +1.0,
               p7.root(), fg);
  });
  fork(group, par, [&] { block_acc2(c21, +1.0, p2.root(), +1.0, p4.root(), fg); });
  fork(group, par, [&] { block_acc2(c12, +1.0, p3.root(), +1.0, p5.root(), fg); });
  fork(group, par, [&] {
    block_acc4(c22, +1.0, p1.root(), +1.0, p3.root(), -1.0, p2.root(), +1.0,
               p6.root(), fg);
  });
  group.wait();
}

void mul_winograd(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b) {
  if (node_cancelled(ctx)) return;
  if (ctx.fast_variant == FastVariant::SerialLowMem) {
    mul_fast_lowmem(ctx, /*winograd=*/true, c, a, b);
    return;
  }
  if (c.level <= ctx.fast_cutoff_level) {
    mul_standard(ctx, c, a, b);
    return;
  }
  const bool par = spawn_here(ctx, c.level);
  const bool fg = ctx.force_generic_additions;

  const TiledBlock c11 = c.quadrant(kNW), c12 = c.quadrant(kNE);
  const TiledBlock c21 = c.quadrant(kSW), c22 = c.quadrant(kSE);
  const TiledBlock a11 = a.quadrant(kNW), a12 = a.quadrant(kNE);
  const TiledBlock a21 = a.quadrant(kSW), a22 = a.quadrant(kSE);
  const TiledBlock b11 = b.quadrant(kNW), b12 = b.quadrant(kNE);
  const TiledBlock b21 = b.quadrant(kSW), b22 = b.quadrant(kSE);

  TiledMatrix s1 = make_temp(a11), s2 = make_temp(a11), s3 = make_temp(a11);
  TiledMatrix s4 = make_temp(a11);
  TiledMatrix t1 = make_temp(b11), t2 = make_temp(b11), t3 = make_temp(b11);
  TiledMatrix t4 = make_temp(b11);
  TiledMatrix p1 = make_temp(c11), p2 = make_temp(c11), p3 = make_temp(c11);
  TiledMatrix p4 = make_temp(c11), p5 = make_temp(c11), p6 = make_temp(c11);
  TiledMatrix p7 = make_temp(c11);

  {
    // Pre-additions (Fig. 1(c)). S2/S4 and T2/T4 chain on earlier sums —
    // this sharing is Winograd's signature — so each side runs its chain in
    // one task, with the independent S3/T3 adds in their own tasks.
    obs::PhaseScope adds_phase("adds", par);
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] {
      block_set_add(s1.root(), a21, +1.0, a22, fg);
      block_set_add(s2.root(), s1.root(), -1.0, a11, fg);
      block_set_add(s4.root(), a12, -1.0, s2.root(), fg);
    });
    fork(group, par, [&] { block_set_add(s3.root(), a11, -1.0, a21, fg); });
    fork(group, par, [&] {
      block_set_add(t1.root(), b12, -1.0, b11, fg);
      block_set_add(t2.root(), b22, -1.0, t1.root(), fg);
      block_set_add(t4.root(), b21, -1.0, t2.root(), fg);
    });
    fork(group, par, [&] { block_set_add(t3.root(), b22, -1.0, b12, fg); });
    group.wait();
  }
  {
    TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
    fork(group, par, [&] {
      p1.zero();
      mul_winograd(ctx, p1.root(), a11, b11);
    });
    fork(group, par, [&] {
      p2.zero();
      mul_winograd(ctx, p2.root(), a12, b21);
    });
    fork(group, par, [&] {
      p3.zero();
      mul_winograd(ctx, p3.root(), s1.root(), t1.root());
    });
    fork(group, par, [&] {
      p4.zero();
      mul_winograd(ctx, p4.root(), s2.root(), t2.root());
    });
    fork(group, par, [&] {
      p5.zero();
      mul_winograd(ctx, p5.root(), s3.root(), t3.root());
    });
    fork(group, par, [&] {
      p6.zero();
      mul_winograd(ctx, p6.root(), s4.root(), b22);
    });
    fork(group, par, [&] {
      p7.zero();
      mul_winograd(ctx, p7.root(), a22, t4.root());
    });
    group.wait();
  }
  // Post-additions with Winograd's common-subexpression reuse: the U-chain
  // accumulates in place into the P buffers (all orientation 0, so the
  // aliased elementwise updates are safe).
  obs::PhaseScope adds_phase("adds", par);
  TaskGroup group(*ctx.pool, ctx.cancel, ctx.priority);
  fork(group, par, [&] { block_acc2(c11, +1.0, p1.root(), +1.0, p2.root(), fg); });
  fork(group, par, [&] {
    block_acc(p4.root(), 1.0, p1.root(), fg);   // U2 = P1 + P4
    block_acc(p5.root(), 1.0, p4.root(), fg);   // U3 = U2 + P5
    TaskGroup inner(*ctx.pool, ctx.cancel, ctx.priority);
    fork(inner, par, [&] { block_acc2(c21, +1.0, p5.root(), +1.0, p7.root(), fg); });
    fork(inner, par, [&] { block_acc2(c22, +1.0, p5.root(), +1.0, p3.root(), fg); });
    fork(inner, par, [&] {
      block_acc3(c12, +1.0, p4.root(), +1.0, p3.root(), +1.0, p6.root(), fg);
    });
    inner.wait();
  });
  group.wait();
}

void mul_dispatch(const MulContext& ctx, Algorithm alg, const TiledBlock& c,
                  const TiledBlock& a, const TiledBlock& b) {
  switch (alg) {
    case Algorithm::Standard:
      mul_standard(ctx, c, a, b);
      break;
    case Algorithm::Strassen:
      mul_strassen(ctx, c, a, b);
      break;
    case Algorithm::Winograd:
      mul_winograd(ctx, c, a, b);
      break;
  }
}

}  // namespace rla
