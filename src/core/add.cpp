#include "core/add.hpp"

#include <cassert>
#include <cstring>

#include "analysis/annotations.hpp"
#include "analysis/numerics/shadow.hpp"
#include "core/kernels.hpp"
#include "layout/mapping.hpp"

namespace rla {

namespace {

void check_compatible(const TiledBlock& a, const TiledBlock& b) {
  assert(a.level == b.level);
  assert(a.geom->tile_elems() == b.geom->tile_elems());
  (void)a;
  (void)b;
}

}  // namespace

// hotpath-exempt: the order-map registry locks and allocates only on first
// use per (curve, orientation, level); steady state returns a cached pointer.
TileMap make_tile_map(const TiledBlock& dst, const TiledBlock& src,
                      bool force_generic) {
  check_compatible(dst, src);
  TileMap m;
  m.mask = dst.tile_count() - 1;
  if (force_generic) {
    m.map = cached_order_map(dst.geom->curve, dst.orient, src.orient, dst.level).data();
    return m;
  }
  if (dst.orient == src.orient) return m;  // identity stream
  if (dst.geom->curve == Curve::GrayMorton) {
    // The two Gray-Morton orientations' tile orders differ by a rotation of
    // half the tile count (paper §3.4; verified in test_mapping).
    m.rot = dst.tile_count() / 2;
    return m;
  }
  m.map = cached_order_map(dst.geom->curve, dst.orient, src.orient, dst.level).data();
  return m;
}

// rla-hotpath
void block_set_add(const TiledBlock& dst, const TiledBlock& a, double sb,
                   const TiledBlock& b, bool force_generic) {
  const TileMap ma = make_tile_map(dst, a, force_generic);
  const TileMap mb = make_tile_map(dst, b, force_generic);
  const std::uint64_t tsz = dst.geom->tile_elems();
  // Tile maps only permute tiles within each operand's contiguous span, so
  // one span annotation per operand is exact.
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_RACE_READ(a.begin(), a.elems() * sizeof(double));
  RLA_RACE_READ(b.begin(), b.elems() * sizeof(double));
  if (ma.identity() && mb.identity()) {
    vset_add(dst.begin(), a.begin(), sb, b.begin(), dst.elems());
    return;
  }
  double* d = dst.begin();
  const double* pa = a.begin();
  const double* pb = b.begin();
  for (std::uint64_t s = 0; s < dst.tile_count(); ++s) {
    vset_add(d + s * tsz, pa + ma(s) * tsz, sb, pb + mb(s) * tsz, tsz);
  }
}

// rla-hotpath
void block_acc(const TiledBlock& dst, double s, const TiledBlock& src,
               bool force_generic) {
  const TileMap m = make_tile_map(dst, src, force_generic);
  const std::uint64_t tsz = dst.geom->tile_elems();
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_RACE_READ(src.begin(), src.elems() * sizeof(double));
  if (m.identity()) {
    vacc(dst.begin(), s, src.begin(), dst.elems());
    return;
  }
  if (m.map == nullptr) {
    // Gray-Morton half-step: two contiguous streaming passes.
    const std::uint64_t half = dst.elems() / 2;
    vacc(dst.begin(), s, src.begin() + half, half);
    vacc(dst.begin() + half, s, src.begin(), half);
    return;
  }
  double* d = dst.begin();
  const double* p = src.begin();
  for (std::uint64_t t = 0; t < dst.tile_count(); ++t) {
    vacc(d + t * tsz, s, p + m(t) * tsz, tsz);
  }
}

// rla-hotpath
void block_acc2(const TiledBlock& dst, double s1, const TiledBlock& p1, double s2,
                const TiledBlock& p2, bool force_generic) {
  const TileMap m1 = make_tile_map(dst, p1, force_generic);
  const TileMap m2 = make_tile_map(dst, p2, force_generic);
  const std::uint64_t tsz = dst.geom->tile_elems();
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_RACE_READ(p1.begin(), p1.elems() * sizeof(double));
  RLA_RACE_READ(p2.begin(), p2.elems() * sizeof(double));
  if (m1.identity() && m2.identity()) {
    vacc2(dst.begin(), s1, p1.begin(), s2, p2.begin(), dst.elems());
    return;
  }
  double* d = dst.begin();
  for (std::uint64_t s = 0; s < dst.tile_count(); ++s) {
    vacc2(d + s * tsz, s1, p1.begin() + m1(s) * tsz, s2, p2.begin() + m2(s) * tsz,
          tsz);
  }
}

// rla-hotpath
void block_acc3(const TiledBlock& dst, double s1, const TiledBlock& p1, double s2,
                const TiledBlock& p2, double s3, const TiledBlock& p3,
                bool force_generic) {
  const TileMap m1 = make_tile_map(dst, p1, force_generic);
  const TileMap m2 = make_tile_map(dst, p2, force_generic);
  const TileMap m3 = make_tile_map(dst, p3, force_generic);
  const std::uint64_t tsz = dst.geom->tile_elems();
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_RACE_READ(p1.begin(), p1.elems() * sizeof(double));
  RLA_RACE_READ(p2.begin(), p2.elems() * sizeof(double));
  RLA_RACE_READ(p3.begin(), p3.elems() * sizeof(double));
  if (m1.identity() && m2.identity() && m3.identity()) {
    vacc3(dst.begin(), s1, p1.begin(), s2, p2.begin(), s3, p3.begin(), dst.elems());
    return;
  }
  double* d = dst.begin();
  for (std::uint64_t s = 0; s < dst.tile_count(); ++s) {
    vacc3(d + s * tsz, s1, p1.begin() + m1(s) * tsz, s2, p2.begin() + m2(s) * tsz,
          s3, p3.begin() + m3(s) * tsz, tsz);
  }
}

// rla-hotpath
void block_acc4(const TiledBlock& dst, double s1, const TiledBlock& p1, double s2,
                const TiledBlock& p2, double s3, const TiledBlock& p3, double s4,
                const TiledBlock& p4, bool force_generic) {
  const TileMap m1 = make_tile_map(dst, p1, force_generic);
  const TileMap m2 = make_tile_map(dst, p2, force_generic);
  const TileMap m3 = make_tile_map(dst, p3, force_generic);
  const TileMap m4 = make_tile_map(dst, p4, force_generic);
  const std::uint64_t tsz = dst.geom->tile_elems();
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_RACE_READ(p1.begin(), p1.elems() * sizeof(double));
  RLA_RACE_READ(p2.begin(), p2.elems() * sizeof(double));
  RLA_RACE_READ(p3.begin(), p3.elems() * sizeof(double));
  RLA_RACE_READ(p4.begin(), p4.elems() * sizeof(double));
  if (m1.identity() && m2.identity() && m3.identity() && m4.identity()) {
    vacc4(dst.begin(), s1, p1.begin(), s2, p2.begin(), s3, p3.begin(), s4,
          p4.begin(), dst.elems());
    return;
  }
  double* d = dst.begin();
  for (std::uint64_t s = 0; s < dst.tile_count(); ++s) {
    vacc4(d + s * tsz, s1, p1.begin() + m1(s) * tsz, s2, p2.begin() + m2(s) * tsz,
          s3, p3.begin() + m3(s) * tsz, s4, p4.begin() + m4(s) * tsz, tsz);
  }
}

// rla-hotpath
void block_copy(const TiledBlock& dst, const TiledBlock& src, bool force_generic) {
  const TileMap m = make_tile_map(dst, src, force_generic);
  const std::uint64_t tsz = dst.geom->tile_elems();
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_RACE_READ(src.begin(), src.elems() * sizeof(double));
  if (m.identity()) {
    RLA_SHADOW_MOVE(dst.begin(), src.begin(), dst.elems());
    std::memcpy(dst.begin(), src.begin(), dst.elems() * sizeof(double));
    return;
  }
  if (m.map == nullptr) {
    const std::uint64_t half = dst.elems() / 2;
    const std::uint64_t half_bytes = half * sizeof(double);
    RLA_SHADOW_MOVE(dst.begin(), src.begin() + half, half);
    RLA_SHADOW_MOVE(dst.begin() + half, src.begin(), half);
    std::memcpy(dst.begin(), src.begin() + half, half_bytes);
    std::memcpy(dst.begin() + half, src.begin(), half_bytes);
    return;
  }
  double* d = dst.begin();
  const double* p = src.begin();
  for (std::uint64_t s = 0; s < dst.tile_count(); ++s) {
    RLA_SHADOW_MOVE(d + s * tsz, p + m(s) * tsz, tsz);
    std::memcpy(d + s * tsz, p + m(s) * tsz, tsz * sizeof(double));
  }
}

// rla-hotpath
void block_zero(const TiledBlock& dst) noexcept {
  RLA_RACE_WRITE(dst.begin(), dst.elems() * sizeof(double));
  RLA_SHADOW_CLEAR(dst.begin(), dst.elems() * sizeof(double));
  std::memset(dst.begin(), 0, dst.elems() * sizeof(double));
}

}  // namespace rla
