#pragma once

// The canonical-layout (column-major L_C) baseline algorithms (paper §5).
//
// The standard recursion runs *in place* on the user's column-major arrays —
// quadrants are leading-dimension views, so the leaf products see a leading
// dimension equal to the full matrix extent. This is precisely the property
// the paper identifies (§5.1) as the source of the canonical layout's
// performance swings.
//
// The fast algorithms require equal power-of-two quadrants; the gemm driver
// hands them padded square copies (dimensions divisible by 2^depth), and
// their temporaries are compact buffers — every recursion level halves the
// leading dimension, the paper's explanation for Strassen's robustness even
// on canonical storage.

#include <cstdint>

#include "core/config.hpp"
#include "core/matrix.hpp"
#include "obs/treeprof/treeprof.hpp"
#include "parallel/worker_pool.hpp"

namespace rla {

struct CanonContext {
  KernelKind kernel = KernelKind::TiledUnrolled;
  StandardVariant standard_variant = StandardVariant::Temporaries;
  FastVariant fast_variant = FastVariant::Parallel;
  std::uint32_t leaf = 32;       ///< recurse until every dimension <= leaf
  std::uint64_t spawn_flops = 1ull << 21;  ///< spawn subproblems above this
  WorkerPool* pool = nullptr;
  /// External cancellation (GemmConfig::cancel): nodes return without
  /// descending once set; the driver raises rla::Error{Cancelled} after the
  /// task tree drains. Null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Injection-queue priority for forked TaskGroups (GemmConfig::priority).
  int priority = 0;
};

/// C += A·B on column-major views, standard recursion, any shapes
/// (A m×k, B k×n, C m×n); splits use ceiling halves so no padding is needed.
///
/// `path` is this node's recursion-tree address for the treeprof profiler
/// (obs/treeprof/); callers other than the recursion itself leave the root
/// default. Same convention on the fast recursions below.
void canon_standard(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                    ConstMatrixView b,
                    std::uint64_t path = obs::treeprof::kRootPath);

/// C += A·B, Strassen recurrence. All of m, n, k must be equal and divisible
/// by 2 down to <= ctx.leaf (the driver guarantees this by padding).
void canon_strassen(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                    ConstMatrixView b,
                    std::uint64_t path = obs::treeprof::kRootPath);

/// C += A·B, Winograd's variant; same shape requirements as canon_strassen.
void canon_winograd(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                    ConstMatrixView b,
                    std::uint64_t path = obs::treeprof::kRootPath);

}  // namespace rla
