#pragma once

// Umbrella header: the full public API of the rla library.
//
//   #include "core/rla.hpp"
//
//   rla::Matrix a(512, 512), b(512, 512), c(512, 512);
//   a.fill_random(1); b.fill_random(2);
//   rla::GemmConfig cfg;
//   cfg.layout = rla::Curve::ZMorton;
//   cfg.algorithm = rla::Algorithm::Strassen;
//   cfg.threads = 4;
//   rla::multiply(c, a, b, cfg);

#include "core/add.hpp"
#include "core/blas.hpp"
#include "core/canonical.hpp"
#include "core/config.hpp"
#include "core/gemm.hpp"
#include "core/kernels.hpp"
#include "core/matrix.hpp"
#include "core/recursion.hpp"
#include "core/tiled_matrix.hpp"
#include "core/transpose.hpp"
#include "core/work_span.hpp"
#include "core/zero_tree.hpp"
#include "layout/bits.hpp"
#include "layout/convert.hpp"
#include "layout/curve.hpp"
#include "layout/mapping.hpp"
#include "layout/quadrant.hpp"
#include "layout/tiled_layout.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "parallel/worker_pool.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "robust/verify.hpp"
