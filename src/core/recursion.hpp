#pragma once

// The three recursive multiplication algorithms over tiled blocks
// (paper §2, Fig. 1), with the parallel spawn structure of §2 ("the seven or
// eight calls are spawned in parallel") expressed as TaskGroup forks.
//
// All routines compute C += A·B on blocks of equal level; A's tiles are
// t_m × t_k, B's t_k × t_n, C's t_m × t_n. Temporaries are fresh TiledMatrix
// allocations of quadrant size — for the fast algorithms this is the paper's
// §5.1 observation that every recursion level halves the leading dimension.

#include <atomic>
#include <cstdint>

#include "core/add.hpp"
#include "core/config.hpp"
#include "core/tiled_matrix.hpp"
#include "obs/treeprof/treeprof.hpp"
#include "parallel/worker_pool.hpp"

namespace rla {

class ZeroTree;

/// Shared state of one multiplication: immutable configuration + the pool.
struct MulContext {
  KernelKind kernel = KernelKind::TiledUnrolled;
  StandardVariant standard_variant = StandardVariant::Temporaries;
  FastVariant fast_variant = FastVariant::Parallel;
  int fast_cutoff_level = 0;     ///< Strassen/Winograd fall back to standard at/below
  bool force_generic_additions = false;
  /// Recursive calls are spawned as tasks at this block level and above;
  /// below it the recursion runs serially inside the owning task.
  int spawn_min_level = 2;
  WorkerPool* pool = nullptr;    ///< never null; a 0-thread pool is serial
  /// Cooperative cancellation: when set and true, the recursion returns
  /// without descending further. Wired to the TaskGroups it creates, so one
  /// failed task prunes every sibling subtree (the partial C is discarded by
  /// the driver, which rethrows the task's exception).
  std::atomic<bool>* cancel = nullptr;
  /// External cancellation (GemmConfig::cancel): same pruning effect, but
  /// set by another thread (deadline watchdog, shutdown) instead of a failed
  /// task. The driver — not the recursion — turns it into an
  /// rla::Error{Cancelled} once the task tree has drained.
  const std::atomic<bool>* external_cancel = nullptr;
  /// Injection-queue priority for every TaskGroup this multiplication forks
  /// (GemmConfig::priority; only matters when several requests share a pool).
  int priority = 0;
  /// Optional Frens–Wise zero-block flags for the original A/B operands
  /// (standard algorithm only): all-zero blocks act as multiplicative
  /// annihilators and their products are skipped. Must describe exactly the
  /// matrices whose blocks the recursion receives.
  const ZeroTree* zero_a = nullptr;
  const ZeroTree* zero_b = nullptr;
};

// Each routine carries its node's quadrant path (obs/treeprof/ encoding) so
// an armed tree-profiling session can attribute cost per recursion-tree
// node; recursive calls extend it with the child index (standard products
// 0..7, fast-algorithm products P1..P7 -> 0..6, forked add tasks attribute
// to their node's own path). Defaulting to kRootPath keeps external callers
// unchanged; when no session is armed the per-node cost is one relaxed load.

/// C += A·B, standard 8-multiply recursion (Fig. 1(a)).
void mul_standard(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b,
                  std::uint64_t path = obs::treeprof::kRootPath);

/// C += A·B, Strassen's 7-multiply recurrence (Fig. 1(b)).
void mul_strassen(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b,
                  std::uint64_t path = obs::treeprof::kRootPath);

/// C += A·B, Winograd's variant (Fig. 1(c)).
void mul_winograd(const MulContext& ctx, const TiledBlock& c, const TiledBlock& a,
                  const TiledBlock& b,
                  std::uint64_t path = obs::treeprof::kRootPath);

/// Dispatch on ctx/algorithm.
void mul_dispatch(const MulContext& ctx, Algorithm alg, const TiledBlock& c,
                  const TiledBlock& a, const TiledBlock& b,
                  std::uint64_t path = obs::treeprof::kRootPath);

}  // namespace rla
