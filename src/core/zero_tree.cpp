#include "core/zero_tree.hpp"

#include "analysis/annotations.hpp"
#include "parallel/worker_pool.hpp"

namespace rla {

// rla-hotpath
ZeroTree ZeroTree::build(const TiledMatrix& m, WorkerPool* pool) {
  ZeroTree tree;
  const TileGeometry& g = m.geom();
  const std::uint64_t tiles = g.tile_count();
  const std::uint64_t tsz = g.tile_elems();
  // hotpath-exempt: one-time tree storage, O(tiles/3) bytes per call
  tree.levels_.resize(static_cast<std::size_t>(g.depth) + 1);
  auto& leaf = tree.levels_[0];
  leaf.assign(tiles, 0);  // hotpath-exempt: one-time tree storage

  auto scan = [&](std::uint64_t s0, std::uint64_t s1) {
    RLA_RACE_READ(m.data() + s0 * tsz, (s1 - s0) * tsz * sizeof(double));
    for (std::uint64_t s = s0; s < s1; ++s) {
      const double* tile = m.data() + s * tsz;
      bool all_zero = true;
      for (std::uint64_t e = 0; e < tsz; ++e) {
        if (tile[e] != 0.0) {
          all_zero = false;
          break;
        }
      }
      leaf[s] = all_zero ? 1 : 0;
    }
  };
  if (pool != nullptr && !pool->serial()) {
    const std::uint64_t grain =
        std::max<std::uint64_t>(1, tiles / (8 * (pool->thread_count() + 1)));
    // hotpath-exempt: pool dispatch; the per-tile scan body above is pure
    pool->parallel_for(0, tiles, grain, scan);
  } else {
    scan(0, tiles);
  }

  for (int l = 1; l <= g.depth; ++l) {
    const auto& below = tree.levels_[static_cast<std::size_t>(l) - 1];
    auto& here = tree.levels_[static_cast<std::size_t>(l)];
    here.assign(below.size() / 4, 0);  // hotpath-exempt: one-time tree storage
    for (std::size_t k = 0; k < here.size(); ++k) {
      here[k] = static_cast<std::uint8_t>(below[4 * k] & below[4 * k + 1] &
                                          below[4 * k + 2] & below[4 * k + 3]);
    }
  }
  return tree;
}

// rla-hotpath
double ZeroTree::zero_tile_fraction() const noexcept {
  if (levels_.empty() || levels_[0].empty()) return 0.0;
  std::uint64_t zeros = 0;
  for (const std::uint8_t f : levels_[0]) zeros += f;
  return static_cast<double>(zeros) / static_cast<double>(levels_[0].size());
}

}  // namespace rla
