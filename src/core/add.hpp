#pragma once

// Orientation-aware quadrant additions (paper §4, "Issues with pre- and
// post-additions").
//
// Every block is contiguous in memory, so additions stream — but when two
// blocks' sub-curves have different orientations (possible for Gray-Morton
// and Hilbert), corresponding tiles sit at different relative positions.
// Three resolution strategies, exactly as the paper prescribes:
//
//   * same orientation           -> single streaming pass
//   * Gray-Morton mismatch       -> two half-passes (the §3.4 symmetry: the
//                                   two orientations' tile orders differ by a
//                                   rotation of half the tile count)
//   * Hilbert (or forced) mismatch -> global mapping arrays per orientation
//                                   pair (cached_order_map)
//
// All operands must share tile shape and level; only orientations differ.

#include "core/tiled_matrix.hpp"

namespace rla {

/// How tile positions of a source block map onto the destination's
/// streaming order. Resolves to identity, rotate-by-half, or a mapping array.
struct TileMap {
  const std::uint32_t* map = nullptr;  ///< mapping array, or null
  std::uint64_t rot = 0;               ///< rotation amount when map == null
  std::uint64_t mask = 0;              ///< tile_count - 1 (tile count is 4^level)

  std::uint64_t operator()(std::uint64_t s) const noexcept {
    return map != nullptr ? map[s] : ((s + rot) & mask);
  }
  bool identity() const noexcept { return map == nullptr && rot == 0; }
};

/// Build the map taking the destination block's tile positions to the
/// source's. `force_generic` always materializes a mapping array (ablation
/// of the streaming/half-step fast paths).
TileMap make_tile_map(const TiledBlock& dst, const TiledBlock& src,
                      bool force_generic = false);

/// dst = a + sb·b (sb = ±1).
void block_set_add(const TiledBlock& dst, const TiledBlock& a, double sb,
                   const TiledBlock& b, bool force_generic = false);

/// dst += s·src.
void block_acc(const TiledBlock& dst, double s, const TiledBlock& src,
               bool force_generic = false);

/// dst += s1·p1 + s2·p2.
void block_acc2(const TiledBlock& dst, double s1, const TiledBlock& p1, double s2,
                const TiledBlock& p2, bool force_generic = false);

/// dst += s1·p1 + s2·p2 + s3·p3.
void block_acc3(const TiledBlock& dst, double s1, const TiledBlock& p1, double s2,
                const TiledBlock& p2, double s3, const TiledBlock& p3,
                bool force_generic = false);

/// dst += s1·p1 + s2·p2 + s3·p3 + s4·p4.
void block_acc4(const TiledBlock& dst, double s1, const TiledBlock& p1, double s2,
                const TiledBlock& p2, double s3, const TiledBlock& p3, double s4,
                const TiledBlock& p4, bool force_generic = false);

/// dst = src (orientation-aware copy).
void block_copy(const TiledBlock& dst, const TiledBlock& src,
                bool force_generic = false);

/// Zero the block's storage.
void block_zero(const TiledBlock& dst) noexcept;

}  // namespace rla
