#include "core/config.hpp"

#include <cctype>
#include <string>

namespace rla {

std::string_view algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::Standard:
      return "standard";
    case Algorithm::Strassen:
      return "strassen";
    case Algorithm::Winograd:
      return "winograd";
  }
  return "?";
}

std::string_view kernel_name(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::Naive:
      return "naive";
    case KernelKind::TiledUnrolled:
      return "tiled-unrolled";
    case KernelKind::Blocked4x4:
      return "blocked4x4";
  }
  return "?";
}

bool parse_algorithm(std::string_view text, Algorithm& out) noexcept {
  std::string key;
  for (char ch : text) {
    key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  }
  if (key == "standard" || key == "std") {
    out = Algorithm::Standard;
  } else if (key == "strassen") {
    out = Algorithm::Strassen;
  } else if (key == "winograd") {
    out = Algorithm::Winograd;
  } else {
    return false;
  }
  return true;
}

}  // namespace rla
