#include "core/kernels.hpp"

#include "analysis/annotations.hpp"
#include "analysis/numerics/shadow.hpp"

namespace rla {

namespace {

/// Textbook jik dot-product loop; deliberately unblocked.
void mm_naive(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
              const double* a, std::size_t lda, const double* b, std::size_t ldb,
              double* c, std::size_t ldc) noexcept {
  // rla-lint: covered-by-caller (leaf_mm annotates a, b, c for every variant)
  for (std::uint32_t j = 0; j < n; ++j) {
    const double* bj = b + static_cast<std::size_t>(j) * ldb;
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    for (std::uint32_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::uint32_t l = 0; l < k; ++l) acc += a[static_cast<std::size_t>(l) * lda + i] * bj[l];
      cj[i] += alpha * acc;
    }
  }
}

/// The paper's leaf kernel: tiled loops with the innermost accumulation loop
/// unrolled four-way. For cache-resident leaf tiles the outer tiling loops
/// collapse; the tiling matters when the canonical baseline calls this with
/// large leading dimensions.
void mm_tiled_unrolled(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                       const double* a, std::size_t lda, const double* b,
                       std::size_t ldb, double* c, std::size_t ldc) noexcept {
  // rla-lint: covered-by-caller (leaf_mm annotates a, b, c for every variant)
  constexpr std::uint32_t kTile = 32;
  for (std::uint32_t jj = 0; jj < n; jj += kTile) {
    const std::uint32_t jmax = jj + kTile < n ? jj + kTile : n;
    for (std::uint32_t ii = 0; ii < m; ii += kTile) {
      const std::uint32_t imax = ii + kTile < m ? ii + kTile : m;
      for (std::uint32_t ll = 0; ll < k; ll += kTile) {
        const std::uint32_t lmax = ll + kTile < k ? ll + kTile : k;
        for (std::uint32_t j = jj; j < jmax; ++j) {
          const double* bj = b + static_cast<std::size_t>(j) * ldb;
          double* cj = c + static_cast<std::size_t>(j) * ldc;
          for (std::uint32_t i = ii; i < imax; ++i) {
            const double* ai = a + i;
            double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
            std::uint32_t l = ll;
            for (; l + 4 <= lmax; l += 4) {
              acc0 += ai[static_cast<std::size_t>(l) * lda] * bj[l];
              acc1 += ai[static_cast<std::size_t>(l + 1) * lda] * bj[l + 1];
              acc2 += ai[static_cast<std::size_t>(l + 2) * lda] * bj[l + 2];
              acc3 += ai[static_cast<std::size_t>(l + 3) * lda] * bj[l + 3];
            }
            for (; l < lmax; ++l) acc0 += ai[static_cast<std::size_t>(l) * lda] * bj[l];
            cj[i] += alpha * (((acc0 + acc1) + (acc2 + acc3)));
          }
        }
      }
    }
  }
}

/// Register-blocked 4×4 micro-kernel: 16 scalar accumulators live in
/// registers across the k loop; the compiler vectorizes the column updates.
void mm_blocked4x4(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                   const double* a, std::size_t lda, const double* b, std::size_t ldb,
                   double* c, std::size_t ldc) noexcept {
  // rla-lint: covered-by-caller (leaf_mm annotates a, b, c for every variant)
  const std::uint32_t m4 = m & ~3u;
  const std::uint32_t n4 = n & ~3u;
  for (std::uint32_t j = 0; j < n4; j += 4) {
    const double* b0 = b + static_cast<std::size_t>(j) * ldb;
    const double* b1 = b0 + ldb;
    const double* b2 = b1 + ldb;
    const double* b3 = b2 + ldb;
    double* c0 = c + static_cast<std::size_t>(j) * ldc;
    double* c1 = c0 + ldc;
    double* c2 = c1 + ldc;
    double* c3 = c2 + ldc;
    for (std::uint32_t i = 0; i < m4; i += 4) {
      double acc[4][4] = {};
      const double* ai = a + i;
      for (std::uint32_t l = 0; l < k; ++l) {
        const double* al = ai + static_cast<std::size_t>(l) * lda;
        const double bv0 = b0[l], bv1 = b1[l], bv2 = b2[l], bv3 = b3[l];
        for (int r = 0; r < 4; ++r) {
          const double av = al[r];
          acc[0][r] += av * bv0;
          acc[1][r] += av * bv1;
          acc[2][r] += av * bv2;
          acc[3][r] += av * bv3;
        }
      }
      for (int r = 0; r < 4; ++r) {
        c0[i + r] += alpha * acc[0][r];
        c1[i + r] += alpha * acc[1][r];
        c2[i + r] += alpha * acc[2][r];
        c3[i + r] += alpha * acc[3][r];
      }
    }
    if (m4 < m) {
      mm_tiled_unrolled(m - m4, 4, k, alpha, a + m4, lda, b0, ldb, c0 + m4, ldc);
    }
  }
  if (n4 < n) {
    mm_tiled_unrolled(m, n - n4, k, alpha, a, lda,
                      b + static_cast<std::size_t>(n4) * ldb, ldb,
                      c + static_cast<std::size_t>(n4) * ldc, ldc);
  }
}

}  // namespace

// rla-hotpath
void leaf_mm(KernelKind kind, std::uint32_t m, std::uint32_t n, std::uint32_t k,
             double alpha, const double* a, std::size_t lda, const double* b,
             std::size_t ldb, double* c, std::size_t ldc) noexcept {
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  // One annotation per operand covers every kernel variant: a is m×k and b
  // is k×n (column-major, leading dimensions lda/ldb); c is accumulated
  // into, so the write annotation subsumes its read.
  RLA_RACE_READ_STRIDED(a, m * sizeof(double), lda * sizeof(double), k);
  RLA_RACE_READ_STRIDED(b, k * sizeof(double), ldb * sizeof(double), n);
  RLA_RACE_WRITE_STRIDED(c, m * sizeof(double), ldc * sizeof(double), n);
  // One shadow pass covers every kernel variant (they compute the same
  // products; only the double-precision summation order differs, which the
  // extended-precision mirror absorbs). Must precede the double kernel so
  // the mirror reads the pre-update C.
  RLA_SHADOW_MM(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  switch (kind) {
    case KernelKind::Naive:
      mm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      break;
    case KernelKind::TiledUnrolled:
      mm_tiled_unrolled(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      break;
    case KernelKind::Blocked4x4:
      mm_blocked4x4(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      break;
  }
}

// rla-hotpath
void vset_add(double* dst, const double* a, double sb, const double* b,
              std::uint64_t n) noexcept {
  // rla-lint: covered-by-caller (block_* ops in add.cpp annotate whole tile runs)
  RLA_SHADOW_SET_ADD(dst, a, sb, b, n);
  for (std::uint64_t i = 0; i < n; ++i) dst[i] = a[i] + sb * b[i];
}

// rla-hotpath
void vacc(double* dst, double s, const double* src, std::uint64_t n) noexcept {
  // rla-lint: covered-by-caller (block_* ops in add.cpp annotate whole tile runs)
  RLA_SHADOW_ACC(dst, s, src, n);
  for (std::uint64_t i = 0; i < n; ++i) dst[i] += s * src[i];
}

// rla-hotpath
void vacc2(double* dst, double s1, const double* a, double s2, const double* b,
           std::uint64_t n) noexcept {
  // rla-lint: covered-by-caller (block_* ops in add.cpp annotate whole tile runs)
  RLA_SHADOW_ACC2(dst, s1, a, s2, b, n);
  for (std::uint64_t i = 0; i < n; ++i) dst[i] += s1 * a[i] + s2 * b[i];
}

// rla-hotpath
void vacc3(double* dst, double s1, const double* a, double s2, const double* b,
           double s3, const double* c, std::uint64_t n) noexcept {
  // rla-lint: covered-by-caller (block_* ops in add.cpp annotate whole tile runs)
  RLA_SHADOW_ACC3(dst, s1, a, s2, b, s3, c, n);
  for (std::uint64_t i = 0; i < n; ++i) dst[i] += s1 * a[i] + s2 * b[i] + s3 * c[i];
}

// rla-hotpath
void vacc4(double* dst, double s1, const double* a, double s2, const double* b,
           double s3, const double* c, double s4, const double* d,
           std::uint64_t n) noexcept {
  // rla-lint: covered-by-caller (block_* ops in add.cpp annotate whole tile runs)
  RLA_SHADOW_ACC4(dst, s1, a, s2, b, s3, c, s4, d, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    dst[i] += s1 * a[i] + s2 * b[i] + s3 * c[i] + s4 * d[i];
  }
}

// rla-hotpath
void strided_set_add(double* dst, std::size_t ldd, const double* a, std::size_t lda,
                     double sb, const double* b, std::size_t ldb, std::uint32_t m,
                     std::uint32_t n) noexcept {
  RLA_RACE_WRITE_STRIDED(dst, m * sizeof(double), ldd * sizeof(double), n);
  RLA_RACE_READ_STRIDED(a, m * sizeof(double), lda * sizeof(double), n);
  RLA_RACE_READ_STRIDED(b, m * sizeof(double), ldb * sizeof(double), n);
  for (std::uint32_t j = 0; j < n; ++j) {
    vset_add(dst + static_cast<std::size_t>(j) * ldd,
             a + static_cast<std::size_t>(j) * lda, sb,
             b + static_cast<std::size_t>(j) * ldb, m);
  }
}

// rla-hotpath
void strided_acc(double* dst, std::size_t ldd, double s, const double* src,
                 std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept {
  RLA_RACE_WRITE_STRIDED(dst, m * sizeof(double), ldd * sizeof(double), n);
  RLA_RACE_READ_STRIDED(src, m * sizeof(double), lds * sizeof(double), n);
  for (std::uint32_t j = 0; j < n; ++j) {
    vacc(dst + static_cast<std::size_t>(j) * ldd, s,
         src + static_cast<std::size_t>(j) * lds, m);
  }
}

// rla-hotpath
void strided_scale(double* dst, std::size_t ldd, double s, std::uint32_t m,
                   std::uint32_t n) noexcept {
  RLA_RACE_WRITE_STRIDED(dst, m * sizeof(double), ldd * sizeof(double), n);
  RLA_SHADOW_SCALE(dst, ldd, s, m, n);
  for (std::uint32_t j = 0; j < n; ++j) {
    double* col = dst + static_cast<std::size_t>(j) * ldd;
    if (s == 0.0) {
      for (std::uint32_t i = 0; i < m; ++i) col[i] = 0.0;
    } else {
      for (std::uint32_t i = 0; i < m; ++i) col[i] *= s;
    }
  }
}

// rla-hotpath
void strided_copy(double* dst, std::size_t ldd, const double* src, std::size_t lds,
                  std::uint32_t m, std::uint32_t n) noexcept {
  RLA_RACE_WRITE_STRIDED(dst, m * sizeof(double), ldd * sizeof(double), n);
  RLA_RACE_READ_STRIDED(src, m * sizeof(double), lds * sizeof(double), n);
  RLA_SHADOW_COPY_STRIDED(dst, ldd, src, lds, m, n);
  for (std::uint32_t j = 0; j < n; ++j) {
    const double* in = src + static_cast<std::size_t>(j) * lds;
    double* out = dst + static_cast<std::size_t>(j) * ldd;
    for (std::uint32_t i = 0; i < m; ++i) out[i] = in[i];
  }
}

// rla-hotpath
void strided_transpose(double* dst, std::size_t ldd, const double* src,
                       std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept {
  // dst is m×n, src is n×m; blocked to keep both sides cache-friendly.
  RLA_RACE_WRITE_STRIDED(dst, m * sizeof(double), ldd * sizeof(double), n);
  RLA_RACE_READ_STRIDED(src, n * sizeof(double), lds * sizeof(double), m);
  RLA_SHADOW_TRANSPOSE(dst, ldd, src, lds, m, n);
  constexpr std::uint32_t kBlock = 32;
  for (std::uint32_t jj = 0; jj < n; jj += kBlock) {
    const std::uint32_t jmax = jj + kBlock < n ? jj + kBlock : n;
    for (std::uint32_t ii = 0; ii < m; ii += kBlock) {
      const std::uint32_t imax = ii + kBlock < m ? ii + kBlock : m;
      for (std::uint32_t j = jj; j < jmax; ++j) {
        for (std::uint32_t i = ii; i < imax; ++i) {
          dst[static_cast<std::size_t>(j) * ldd + i] =
              src[static_cast<std::size_t>(i) * lds + j];
        }
      }
    }
  }
}

}  // namespace rla
