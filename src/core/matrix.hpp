#pragma once

// Column-major dense matrices: an owning container plus lightweight views.
//
// These model the canonical (BLAS-style) storage the gemm interface presents
// and the baseline layout L_C of the paper. Views carry a leading dimension
// so submatrices (quadrants of the canonical recursion) are zero-copy.

#include <cstddef>
#include <cstdint>

#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace rla {

/// Read-only view of a column-major matrix block.
struct ConstMatrixView {
  const double* data = nullptr;
  std::size_t ld = 0;  ///< leading dimension (>= rows)
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;

  const double& operator()(std::uint32_t i, std::uint32_t j) const noexcept {
    return data[static_cast<std::size_t>(j) * ld + i];
  }
};

/// Mutable view of a column-major matrix block.
struct MatrixView {
  double* data = nullptr;
  std::size_t ld = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;

  double& operator()(std::uint32_t i, std::uint32_t j) const noexcept {
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  operator ConstMatrixView() const noexcept { return {data, ld, rows, cols}; }
};

/// Owning column-major matrix (leading dimension == rows).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::uint32_t rows, std::uint32_t cols)
      : rows_(rows), cols_(cols),
        buffer_(static_cast<std::size_t>(rows) * cols, kPageBytes) {}

  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return rows_; }
  std::size_t size() const noexcept { return buffer_.size(); }

  double* data() noexcept { return buffer_.data(); }
  const double* data() const noexcept { return buffer_.data(); }

  double& operator()(std::uint32_t i, std::uint32_t j) noexcept {
    return buffer_[static_cast<std::size_t>(j) * rows_ + i];
  }
  const double& operator()(std::uint32_t i, std::uint32_t j) const noexcept {
    return buffer_[static_cast<std::size_t>(j) * rows_ + i];
  }

  MatrixView view() noexcept { return {data(), ld(), rows_, cols_}; }
  ConstMatrixView view() const noexcept { return {data(), ld(), rows_, cols_}; }

  void zero() noexcept { buffer_.zero(); }

  /// Fill with deterministic pseudo-random values in [-1, 1).
  void fill_random(std::uint64_t seed) {
    Xoshiro256 rng(seed);
    for (double& v : buffer_) v = rng.next_double(-1.0, 1.0);
  }

  /// Fill element (i, j) with f(i, j).
  template <typename F>
  void fill(F&& f) {
    for (std::uint32_t j = 0; j < cols_; ++j) {
      for (std::uint32_t i = 0; i < rows_; ++i) (*this)(i, j) = f(i, j);
    }
  }

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  AlignedBuffer<double> buffer_;
};

/// Largest absolute elementwise difference between two equally sized views.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b) noexcept;

/// Largest absolute element of the view.
double max_abs(ConstMatrixView a) noexcept;

/// Reference dgemm: C = alpha * op(A) * op(B) + beta * C, straightforward
/// triple loop. The correctness oracle for every other path.
void reference_gemm(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                    const double* a, std::size_t lda, bool trans_a, const double* b,
                    std::size_t ldb, bool trans_b, double beta, double* c,
                    std::size_t ldc) noexcept;

}  // namespace rla
