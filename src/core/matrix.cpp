#include "core/matrix.hpp"

#include <cmath>

namespace rla {

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) noexcept {
  double worst = 0.0;
  for (std::uint32_t j = 0; j < a.cols; ++j) {
    for (std::uint32_t i = 0; i < a.rows; ++i) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

double max_abs(ConstMatrixView a) noexcept {
  double worst = 0.0;
  for (std::uint32_t j = 0; j < a.cols; ++j) {
    for (std::uint32_t i = 0; i < a.rows; ++i) {
      worst = std::max(worst, std::abs(a(i, j)));
    }
  }
  return worst;
}

void reference_gemm(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                    const double* a, std::size_t lda, bool trans_a, const double* b,
                    std::size_t ldb, bool trans_b, double beta, double* c,
                    std::size_t ldc) noexcept {
  auto at = [&](std::uint32_t i, std::uint32_t l) {
    return trans_a ? a[static_cast<std::size_t>(i) * lda + l]
                   : a[static_cast<std::size_t>(l) * lda + i];
  };
  auto bt = [&](std::uint32_t l, std::uint32_t j) {
    return trans_b ? b[static_cast<std::size_t>(l) * ldb + j]
                   : b[static_cast<std::size_t>(j) * ldb + l];
  };
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::uint32_t l = 0; l < k; ++l) acc += at(i, l) * bt(l, j);
      double& out = c[static_cast<std::size_t>(j) * ldc + i];
      out = alpha * acc + (beta == 0.0 ? 0.0 : beta * out);
    }
  }
}

}  // namespace rla
