#include "core/blas.hpp"

#include "core/gemm.hpp"
#include "support/sync.hpp"

namespace rla {

namespace {
Mutex config_mutex;  // lock-level: registry
GemmConfig global_config RLA_GUARDED_BY(config_mutex);  // NOLINT: intentional process-wide default
}  // namespace

void set_default_gemm_config(const GemmConfig& cfg) {
  MutexLock lock(config_mutex);
  global_config = cfg;
}

GemmConfig default_gemm_config() {
  MutexLock lock(config_mutex);
  return global_config;
}

}  // namespace rla

extern "C" int rla_dgemm(char transa, char transb, int m, int n, int k,
                         double alpha, const double* a, int lda, const double* b,
                         int ldb, double beta, double* c, int ldc) {
  auto parse_op = [](char flag, rla::Op& op) {
    switch (flag) {
      case 'N':
      case 'n':
        op = rla::Op::None;
        return true;
      case 'T':
      case 't':
      case 'C':
      case 'c':
        op = rla::Op::Transpose;
        return true;
      default:
        return false;
    }
  };
  rla::Op op_a, op_b;
  if (!parse_op(transa, op_a) || !parse_op(transb, op_b)) return 1;
  if (m < 0 || n < 0 || k < 0 || lda < 1 || ldb < 1 || ldc < 1) return 2;
  try {
    rla::gemm(static_cast<std::uint32_t>(m), static_cast<std::uint32_t>(n),
              static_cast<std::uint32_t>(k), alpha, a,
              static_cast<std::size_t>(lda), op_a, b,
              static_cast<std::size_t>(ldb), op_b, beta, c,
              static_cast<std::size_t>(ldc), rla::default_gemm_config());
  } catch (const std::exception&) {
    return 3;
  }
  return 0;
}
