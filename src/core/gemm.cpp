#include "core/gemm.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <optional>
#include <stdexcept>

#include "analysis/numerics/error_bound.hpp"
#include "analysis/numerics/fptrap.hpp"
#include "analysis/numerics/shadow.hpp"
#include "analysis/race_detect.hpp"
#include "core/canonical.hpp"
#include "core/kernels.hpp"
#include "core/recursion.hpp"
#include "core/work_span.hpp"
#include "core/zero_tree.hpp"
#include "layout/bits.hpp"
#include "layout/convert.hpp"
#include "obs/collector.hpp"
#include "obs/perf.hpp"
#include "obs/treeprof/treeprof.hpp"
#include "parallel/worker_pool.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "robust/verify.hpp"
#include "support/sync.hpp"
#include "util/aligned_buffer.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace rla {

namespace {

/// Anything past this is a config bug, not a big machine.
constexpr unsigned kMaxThreads = 4096;
/// Tile grids are 2^d × 2^d over uint32 extents; past 30 nothing is feasible.
constexpr int kMaxForcedDepth = 30;

/// Multiplexing-scaled perf sample -> the profile's named-field form.
GemmProfile::HwCounters to_hw_counters(const obs::perf::Sample& s) {
  GemmProfile::HwCounters hw;
  hw.cycles = s.value[obs::perf::kCycles];
  hw.instructions = s.value[obs::perf::kInstructions];
  hw.l1d_read_misses = s.value[obs::perf::kL1dReadMisses];
  hw.llc_misses = s.value[obs::perf::kLlcMisses];
  hw.dtlb_misses = s.value[obs::perf::kDtlbMisses];
  hw.task_clock_ns = s.value[obs::perf::kTaskClock];
  return hw;
}

/// Mutable accumulation wrapper so split pieces can report concurrently.
/// Also collects the degradation trail (kept internally so it is available
/// for rla::Error even when the caller passed no profile).
struct ProfileSink {
  GemmProfile* RLA_PT_GUARDED_BY(mutex) out = nullptr;
  Mutex mutex;  // lock-level: registry
  std::vector<std::string> trail RLA_GUARDED_BY(mutex);
  unsigned fp_mask RLA_GUARDED_BY(mutex) = 0;  ///< hazards noted so far

  void add(double conv_in, double compute, double conv_out, int depth,
           std::uint32_t tm, std::uint32_t tk, std::uint32_t tn) {
    if (out == nullptr) return;
    MutexLock lock(mutex);
    out->convert_in += conv_in;
    out->compute += compute;
    out->convert_out += conv_out;
    out->depth = depth;
    out->tile_m = tm;
    out->tile_k = tk;
    out->tile_n = tn;
  }

  void count_split() {
    if (out == nullptr) return;
    MutexLock lock(mutex);
    ++out->splits;
  }

  void degrade(std::string step) {
    MutexLock lock(mutex);
    trail.push_back(std::move(step));
  }

  /// Record the a priori bound of one executed piece; the profile keeps the
  /// worst (largest) bound across split pieces.
  void set_bound(const numerics::ErrorBound& b) {
    if (out == nullptr) return;
    MutexLock lock(mutex);
    if (b.constant >= out->bound_constant) {
      out->bound_constant = b.constant;
      out->error_bound = b.relative;
    }
    out->bound_fast_levels = std::max(out->bound_fast_levels, b.fast_levels);
  }

  /// Record an FP hazard with phase attribution ("fp:<phase>:<flags>").
  void note_fp(const char* phase, unsigned mask) {
    MutexLock lock(mutex);
    trail.push_back(std::string("fp:") + phase + ":" +
                    numerics::fp_describe(mask));
    fp_mask |= mask;
  }

  unsigned hazards() {
    MutexLock lock(mutex);
    return fp_mask;
  }

  /// Copy the trail into the caller's profile (call once, at quiescence).
  void flush_trail() {
    if (out == nullptr) return;
    MutexLock lock(mutex);
    out->degradation_trail = trail;
    out->degradations = static_cast<int>(trail.size());
  }
};

/// Drain the FP-flag accumulator at a phase boundary and attribute anything
/// raised since the last drain to `phase`. One relaxed load when fp_check is
/// off.
void fp_phase(ProfileSink& sink, const char* phase) {
  if (!numerics::fp_capture_armed()) return;
  const unsigned mask = numerics::fp_drain();
  if (mask != 0) sink.note_fp(phase, mask);
}

/// Apply GemmConfig::error_budget to one piece before it runs: shrink the
/// fast-recursion levels (by raising the standard switchover) until the
/// certified bound fits, falling back to the classical algorithm — which is
/// run even when its own bound is over budget, with the infeasibility on
/// record (a result with a documented bound beats no result).
void apply_error_budget(GemmConfig& cfg, std::uint32_t m, std::uint32_t n,
                        std::uint32_t k, int depth, ProfileSink& sink) {
  if (cfg.error_budget <= 0.0) return;
  if (cfg.algorithm != Algorithm::Standard) {
    const int configured =
        std::clamp(depth - std::max(cfg.fast_cutoff_level, 0), 0, depth);
    const int allowed = numerics::max_fast_levels(cfg.algorithm, m, n, k, depth,
                                                  cfg.error_budget);
    if (allowed >= configured) return;
    if (allowed >= 1) {
      cfg.fast_cutoff_level = depth - allowed;
      sink.degrade("numerics:budget:fast-levels=" + std::to_string(configured) +
                   "->" + std::to_string(allowed));
      return;
    }
    cfg.algorithm = Algorithm::Standard;
    sink.degrade("numerics:budget->standard");
  }
  const numerics::ErrorBound classical =
      numerics::error_bound(Algorithm::Standard, m, n, k, depth);
  if (classical.relative > cfg.error_budget) {
    sink.degrade("numerics:budget-infeasible");
  }
}

/// Driver-level cancellation checkpoint: one relaxed load, then
/// rla::Error{Cancelled}. Placed at phase boundaries so a cancelled call
/// never converts a partially computed C back into the caller's array.
void throw_if_cancelled(const GemmConfig& cfg, std::uint32_t m, std::uint32_t n,
                        std::uint32_t k) {
  if (cfg.cancel != nullptr && cfg.cancel->load(std::memory_order_relaxed)) {
    throw Error(ErrorKind::Cancelled, "gemm", "cooperative cancellation requested",
                {m, n, k});
  }
}

struct Operand {
  const double* data;
  std::size_t ld;
  bool transpose;

  /// Pointer to logical element (i, j) of op(X).
  const double* at(std::uint32_t i, std::uint32_t j) const {
    return transpose ? data + static_cast<std::size_t>(i) * ld + j
                     : data + static_cast<std::size_t>(j) * ld + i;
  }
};

/// One squat gemm piece on the recursive layout, at the given shared depth.
/// The caller's C region is only written by the final remap, so any
/// exception thrown before that leaves C untouched — which is what makes
/// the retry ladder in run_piece_degrading safe.
void run_tiled_piece(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                     double alpha, Operand a, Operand b, double beta, double* c,
                     std::size_t ldc, int depth, const GemmConfig& cfg,
                     WorkerPool& pool, ProfileSink& sink) {
  throw_if_cancelled(cfg, m, n, k);
  fault::maybe_fail_alloc(fault::Site::AllocTiled);
  const TileGeometry ga = make_geometry(m, k, depth, cfg.layout);
  const TileGeometry gb = make_geometry(k, n, depth, cfg.layout);
  const TileGeometry gc = make_geometry(m, n, depth, cfg.layout);

  // The three conversion buffers are the call's dominant allocations; a
  // service-managed allocator (GemmConfig::acquire_scratch) recycles them
  // across requests. The guard returns them on every exit path — including
  // the cancellation/fault throws below — so the arena never leaks a buffer.
  auto make_tiled = [&cfg](const TileGeometry& g) {
    return cfg.acquire_scratch ? TiledMatrix(g, cfg.acquire_scratch(g.total_elems()))
                               : TiledMatrix(g);
  };
  TiledMatrix ta = make_tiled(ga), tb = make_tiled(gb), tc = make_tiled(gc);
  struct ScratchReturn {
    const GemmConfig& cfg;
    TiledMatrix *a, *b, *c;
    ~ScratchReturn() {
      if (cfg.release_scratch) {
        cfg.release_scratch(a->take_buffer());
        cfg.release_scratch(b->take_buffer());
        cfg.release_scratch(c->take_buffer());
      }
    }
  } scratch_return{cfg, &ta, &tb, &tc};

  const std::uint64_t tiles = ga.tile_count();
  const std::uint64_t grain =
      std::max<std::uint64_t>(1, tiles / (8 * (pool.thread_count() + 1)));

  Timer timer;
  {
    obs::PhaseScope phase("convert.in");
    // Parallel remap (paper §4: "amenable to parallel execution"); α is
    // folded into A's remap and β into C's.
    pool.parallel_for(
        0, tiles, grain,
        [&](std::uint64_t s0, std::uint64_t s1) {
          canonical_to_tiled(a.data, a.ld, a.transpose, alpha, ga, ta.data(), s0, s1);
        },
        cfg.priority);
    pool.parallel_for(
        0, tiles, grain,
        [&](std::uint64_t s0, std::uint64_t s1) {
          canonical_to_tiled(b.data, b.ld, b.transpose, 1.0, gb, tb.data(), s0, s1);
        },
        cfg.priority);
    if (beta == 0.0) {
      tc.zero();
    } else {
      pool.parallel_for(
          0, tiles, grain,
          [&](std::uint64_t s0, std::uint64_t s1) {
            canonical_to_tiled(c, ldc, false, beta, gc, tc.data(), s0, s1);
          },
          cfg.priority);
    }
  }
  const double conv_in = timer.seconds();
  fp_phase(sink, "convert.in");
  throw_if_cancelled(cfg, m, n, k);

  timer.reset();
  // Piece-local cancellation: the first exception in this piece's recursion
  // prunes its sibling subtrees, the nested groups drain, and the exception
  // resurfaces here — with C still pristine, so the piece can be retried.
  std::atomic<bool> cancelled{false};
  MulContext ctx;
  ctx.kernel = cfg.kernel;
  ctx.standard_variant = cfg.standard_variant;
  ctx.fast_variant = cfg.fast_variant;
  ctx.fast_cutoff_level = cfg.fast_cutoff_level;
  ctx.force_generic_additions = cfg.force_generic_additions;
  ctx.pool = &pool;
  ctx.cancel = &cancelled;
  ctx.external_cancel = cfg.cancel;
  ctx.priority = cfg.priority;
  ZeroTree zero_a, zero_b;
  if (cfg.skip_zero_tiles && cfg.algorithm == Algorithm::Standard) {
    zero_a = ZeroTree::build(ta, &pool);
    zero_b = ZeroTree::build(tb, &pool);
    ctx.zero_a = &zero_a;
    ctx.zero_b = &zero_b;
  }
  {
    obs::PhaseScope phase("compute");
    mul_dispatch(ctx, cfg.algorithm, tc.root(), ta.root(), tb.root());
  }
  const double compute = timer.seconds();
  fp_phase(sink, "compute");
  // The recursion returns early (no exception) when externally cancelled, so
  // this check is what keeps a pruned, partially computed tc out of C.
  throw_if_cancelled(cfg, m, n, k);

  timer.reset();
  {
    obs::PhaseScope phase("convert.out");
    pool.parallel_for(
        0, tiles, grain,
        [&](std::uint64_t s0, std::uint64_t s1) {
          tiled_to_canonical(tc.data(), gc, c, ldc, s0, s1);
        },
        cfg.priority);
  }
  fp_phase(sink, "convert.out");
  sink.add(conv_in, compute, timer.seconds(), depth, ga.tile_rows, ga.tile_cols,
           gb.tile_cols);
  sink.set_bound(numerics::error_bound(cfg.algorithm, m, n, k, depth,
                                       cfg.fast_cutoff_level));
}

std::optional<int> choose_depth(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                                const GemmConfig& cfg) {
  if (cfg.forced_depth >= 0) {
    // Explicit depth (Fig. 4 experiment). Honoured whenever it yields tiles
    // of at least one element per side.
    const std::uint32_t side = std::uint32_t{1} << cfg.forced_depth;
    if (side <= std::max({m, n, k})) return cfg.forced_depth;
    return std::nullopt;
  }
  const std::array<std::uint64_t, 3> dims{m, k, n};
  return common_depth(dims, cfg.tiles);
}

void run_canonical(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                   Operand a, Operand b, double beta, double* c, std::size_t ldc,
                   const GemmConfig& cfg, WorkerPool& pool, ProfileSink& sink);

/// Degradation ladder for one tiled piece: on std::bad_alloc (real or the
/// injected alloc.tiled / alloc.temp sites) retry with progressively less
/// memory-hungry configurations instead of propagating. C is untouched until
/// a piece attempt fully succeeds, so each retry restarts from clean state.
void run_piece_degrading(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                         double alpha, Operand a, Operand b, double beta,
                         double* c, std::size_t ldc, int depth,
                         const GemmConfig& cfg, WorkerPool& pool,
                         ProfileSink& sink) {
  GemmConfig attempt = cfg;
  apply_error_budget(attempt, m, n, k, depth, sink);
  // 0 = as configured, 1 = fast serial-lowmem, 2 = allocation-free standard
  // recursion at a shallower depth, 3 = canonical in-place.
  int stage = 0;
  for (;;) {
    try {
      if (stage < 3) {
        run_tiled_piece(m, n, k, alpha, a, b, beta, c, ldc, depth, attempt, pool,
                        sink);
      } else {
        GemmConfig canon = attempt;
        canon.layout = Curve::ColMajor;
        canon.algorithm = Algorithm::Standard;
        run_canonical(m, n, k, alpha, a, b, beta, c, ldc, canon, pool, sink);
      }
      return;
    } catch (const std::bad_alloc&) {
      if (stage == 0 && attempt.algorithm != Algorithm::Standard &&
          attempt.fast_variant != FastVariant::SerialLowMem) {
        // One S/T/P buffer per recursion level instead of 17 per node.
        attempt.fast_variant = FastVariant::SerialLowMem;
        sink.degrade("alloc:fast->serial-lowmem");
        stage = 1;
        continue;
      }
      if (stage <= 1) {
        // The in-place standard recursion allocates nothing beyond the three
        // tiled operands; dropping a depth level also shrinks padding waste
        // for awkward extents.
        attempt.algorithm = Algorithm::Standard;
        attempt.standard_variant = StandardVariant::InPlace;
        attempt.skip_zero_tiles = false;
        if (depth > 0) {
          --depth;
          sink.degrade("alloc:standard-inplace,depth-1");
        } else {
          sink.degrade("alloc:standard-inplace");
        }
        stage = 2;
        continue;
      }
      if (stage == 2) {
        // Last resort: no tiled storage at all, multiply in place on the
        // caller's arrays.
        sink.degrade("alloc:canonical-inplace");
        stage = 3;
        continue;
      }
      throw;  // even the canonical path failed; gemm() wraps into rla::Error
    }
  }
}

/// Cut an extent near its midpoint, rounded to a multiple of t_max so the
/// resulting pieces tile cleanly.
std::uint32_t split_point(std::uint32_t x, const TileRange& tiles) {
  const std::uint32_t unit = tiles.t_max;
  std::uint32_t cut = (x / 2 / unit) * unit;
  if (cut == 0) cut = std::min(unit, x - 1);
  return cut;
}

void run_or_split(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                  Operand a, Operand b, double beta, double* c, std::size_t ldc,
                  const GemmConfig& cfg, WorkerPool& pool, ProfileSink& sink) {
  if (cfg.forced_depth >= 0) {
    const auto depth = choose_depth(m, n, k, cfg);
    if (!depth) throw std::invalid_argument("forced_depth infeasible for shape");
    run_piece_degrading(m, n, k, alpha, a, b, beta, c, ldc, *depth, cfg, pool,
                        sink);
    return;
  }
  if (const auto depth = choose_depth(m, n, k, cfg)) {
    run_piece_degrading(m, n, k, alpha, a, b, beta, c, ldc, *depth, cfg, pool,
                        sink);
    return;
  }
  // Wide or lean shape (paper Fig. 3): split the largest extent and
  // reconstruct the product from squat pieces.
  sink.count_split();
  if (m >= n && m >= k) {
    const std::uint32_t cut = split_point(m, cfg.tiles);
    TaskGroup group(pool, nullptr, cfg.priority);
    group.spawn([=, &cfg, &pool, &sink] {
      run_or_split(cut, n, k, alpha, a, b, beta, c, ldc, cfg, pool, sink);
    });
    Operand a2{a.at(cut, 0), a.ld, a.transpose};
    group.run([=, &cfg, &pool, &sink] {
      run_or_split(m - cut, n, k, alpha, a2, b, beta, c + cut, ldc, cfg, pool, sink);
    });
    group.wait();
  } else if (n >= k) {
    const std::uint32_t cut = split_point(n, cfg.tiles);
    TaskGroup group(pool, nullptr, cfg.priority);
    group.spawn([=, &cfg, &pool, &sink] {
      run_or_split(m, cut, k, alpha, a, b, beta, c, ldc, cfg, pool, sink);
    });
    Operand b2{b.at(0, cut), b.ld, b.transpose};
    group.run([=, &cfg, &pool, &sink] {
      run_or_split(m, n - cut, k, alpha, a, b2, beta,
                   c + static_cast<std::size_t>(cut) * ldc, ldc, cfg, pool, sink);
    });
    group.wait();
  } else {
    // Inner-dimension split: the two pieces accumulate into the same C, so
    // they run sequentially (the second with β = 1).
    const std::uint32_t cut = split_point(k, cfg.tiles);
    run_or_split(m, n, cut, alpha, a, b, beta, c, ldc, cfg, pool, sink);
    Operand a2{a.at(0, cut), a.ld, a.transpose};
    Operand b2{b.at(cut, 0), b.ld, b.transpose};
    run_or_split(m, n, k - cut, alpha, a2, b2, 1.0, c, ldc, cfg, pool, sink);
  }
}

/// Canonical-layout baseline. The standard algorithm runs in place on the
/// caller's arrays (materializing op/α copies only when needed); the fast
/// algorithms run on padded square copies.
void run_canonical(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
                   Operand a, Operand b, double beta, double* c, std::size_t ldc,
                   const GemmConfig& cfg, WorkerPool& pool, ProfileSink& sink) {
  throw_if_cancelled(cfg, m, n, k);
  CanonContext ctx;
  ctx.kernel = cfg.kernel;
  ctx.standard_variant = cfg.standard_variant;
  ctx.fast_variant = cfg.fast_variant;
  ctx.leaf = cfg.tiles.t_max;
  ctx.pool = &pool;
  ctx.cancel = cfg.cancel;
  ctx.priority = cfg.priority;

  // The fast canonical recursion halves a padded square all the way to the
  // leaf (no cutoff knob), so the bound is modeled on the padded side: its
  // own padding model then matches the implementation exactly.
  Algorithm algo = cfg.algorithm;
  const std::uint32_t big = std::max({m, n, k, cfg.tiles.t_max});
  const int levels = static_cast<int>(
      bits::ceil_log2(bits::ceil_div(big, cfg.tiles.t_max)));
  const std::uint32_t side = static_cast<std::uint32_t>(
      bits::ceil_div(big, std::uint64_t{1} << levels) << levels);
  if (algo != Algorithm::Standard && cfg.error_budget > 0.0) {
    const numerics::ErrorBound fast_bound =
        numerics::error_bound(algo, side, side, side, levels);
    if (fast_bound.relative > cfg.error_budget) {
      sink.degrade("numerics:budget->standard");
      algo = Algorithm::Standard;
    }
  }

  Timer timer;
  if (algo == Algorithm::Standard) {
    const numerics::ErrorBound bound =
        numerics::error_bound(Algorithm::Standard, m, n, k, 0);
    if (cfg.error_budget > 0.0 && bound.relative > cfg.error_budget) {
      sink.degrade("numerics:budget-infeasible");
    }
    // Materialize op(A)/op(B) and fold α only when required.
    std::optional<Matrix> a_copy, b_copy;
    ConstMatrixView av{a.data, a.ld, m, k};
    if (a.transpose || alpha != 1.0) {
      a_copy.emplace(m, k);
      if (a.transpose) {
        strided_transpose(a_copy->data(), a_copy->ld(), a.data, a.ld, m, k);
      } else {
        strided_copy(a_copy->data(), a_copy->ld(), a.data, a.ld, m, k);
      }
      if (alpha != 1.0) strided_scale(a_copy->data(), a_copy->ld(), alpha, m, k);
      av = a_copy->view();
    }
    std::optional<Matrix> b_t;
    ConstMatrixView bv{b.data, b.ld, k, n};
    if (b.transpose) {
      b_t.emplace(k, n);
      strided_transpose(b_t->data(), b_t->ld(), b.data, b.ld, k, n);
      bv = b_t->view();
    }
    const double conv = timer.seconds();
    fp_phase(sink, "convert.in");
    timer.reset();
    {
      obs::PhaseScope phase("compute");
      if (beta != 1.0) strided_scale(c, ldc, beta, m, n);
      canon_standard(ctx, MatrixView{c, ldc, m, n}, av, bv);
    }
    fp_phase(sink, "compute");
    // In-place on the caller's C: a cancelled recursion has already written
    // partial sums, but the Cancelled error tells the caller C is dead.
    throw_if_cancelled(cfg, m, n, k);
    sink.add(conv, timer.seconds(), 0.0, 0, 0, 0, 0);
    sink.set_bound(bound);
    return;
  }

  // Fast algorithms: pad to a square whose side halves down to the leaf.
  // These three side² buffers are the canonical fast path's equivalent of
  // the recursion temporaries, so they share the alloc.temp injection site.
  fault::maybe_fail_alloc(fault::Site::AllocTemp);

  Matrix pa(side, side), pb(side, side), pc(side, side);
  pa.zero();
  pb.zero();
  pc.zero();
  if (a.transpose) {
    strided_transpose(pa.data(), pa.ld(), a.data, a.ld, m, k);
  } else {
    strided_copy(pa.data(), pa.ld(), a.data, a.ld, m, k);
  }
  if (alpha != 1.0) strided_scale(pa.data(), pa.ld(), alpha, m, k);
  if (b.transpose) {
    strided_transpose(pb.data(), pb.ld(), b.data, b.ld, k, n);
  } else {
    strided_copy(pb.data(), pb.ld(), b.data, b.ld, k, n);
  }
  const double conv_in = timer.seconds();
  fp_phase(sink, "convert.in");

  timer.reset();
  {
    obs::PhaseScope phase("compute");
    if (algo == Algorithm::Strassen) {
      canon_strassen(ctx, pc.view(), pa.view(), pb.view());
    } else {
      canon_winograd(ctx, pc.view(), pa.view(), pb.view());
    }
  }
  const double compute = timer.seconds();
  fp_phase(sink, "compute");
  throw_if_cancelled(cfg, m, n, k);  // keep the pruned padded product out of C

  timer.reset();
  {
    obs::PhaseScope phase("convert.out");
    if (beta != 1.0) strided_scale(c, ldc, beta, m, n);
    strided_acc(c, ldc, 1.0, pc.data(), pc.ld(), m, n);
  }
  fp_phase(sink, "convert.out");
  sink.add(conv_in, compute, timer.seconds(), levels, side, side, side);
  sink.set_bound(numerics::error_bound(algo, side, side, side, levels));
}

/// Canonical entry with its own one-step ladder: the fast algorithms' padded
/// square copies are the only big allocation, so on bad_alloc fall straight
/// back to the in-place standard algorithm.
void run_canonical_degrading(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                             double alpha, Operand a, Operand b, double beta,
                             double* c, std::size_t ldc, const GemmConfig& cfg,
                             WorkerPool& pool, ProfileSink& sink) {
  try {
    run_canonical(m, n, k, alpha, a, b, beta, c, ldc, cfg, pool, sink);
  } catch (const std::bad_alloc&) {
    if (cfg.algorithm == Algorithm::Standard) throw;
    sink.degrade("alloc:canonical-standard");
    GemmConfig fallback = cfg;
    fallback.algorithm = Algorithm::Standard;
    run_canonical(m, n, k, alpha, a, b, beta, c, ldc, fallback, pool, sink);
  }
}

/// Reject configs whose downstream behavior would be confusing misbehavior
/// instead of a clear error.
void validate_config(const GemmConfig& cfg) {
  if (cfg.tiles.t_min == 0 || cfg.tiles.t_min > cfg.tiles.t_max) {
    throw std::invalid_argument(
        "gemm: invalid TileRange: t_min must satisfy 1 <= t_min <= t_max");
  }
  if (cfg.forced_depth < -1 || cfg.forced_depth > kMaxForcedDepth) {
    throw std::invalid_argument(
        "gemm: forced_depth must be in [-1, 30] (tile grid is 2^d per side)");
  }
  if (cfg.threads > kMaxThreads) {
    throw std::invalid_argument("gemm: threads exceeds the sane cap of 4096");
  }
  if (cfg.verify && (cfg.verify_probes < 1 || cfg.verify_probes > 64)) {
    throw std::invalid_argument("gemm: verify_probes must be in [1, 64]");
  }
  if (cfg.verify && !(cfg.verify_tolerance > 0.0)) {
    throw std::invalid_argument("gemm: verify_tolerance must be positive");
  }
  if (!(cfg.error_budget >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument("gemm: error_budget must be >= 0 (0 = off)");
  }
}

/// ld-indexed accesses reach element (cols-1)·ld + rows; make sure that
/// byte offset cannot overflow std::size_t (a malformed ld otherwise turns
/// into a wild pointer, not an exception).
void check_ld_overflow(std::size_t ld, std::uint32_t cols, const char* name) {
  constexpr std::size_t kMaxElems =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  if (cols != 0 && ld > kMaxElems / cols) {
    throw std::invalid_argument(std::string("gemm: ld overflow for ") + name);
  }
}

}  // namespace

void gemm(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
          const double* a, std::size_t lda, Op op_a, const double* b,
          std::size_t ldb, Op op_b, double beta, double* c, std::size_t ldc,
          const GemmConfig& cfg, GemmProfile* profile) {
  validate_config(cfg);
  if (c == nullptr || ldc < m) throw std::invalid_argument("gemm: bad C/ldc");
  check_ld_overflow(ldc, n, "C");
  if (m == 0 || n == 0) return;
  if (profile != nullptr) *profile = GemmProfile{};

  Timer total;
  if (alpha == 0.0 || k == 0) {
    if (beta != 1.0) strided_scale(c, ldc, beta, m, n);
    if (profile != nullptr) profile->total = total.seconds();
    return;
  }
  if (a == nullptr || b == nullptr) throw std::invalid_argument("gemm: null A/B");
  if ((op_a == Op::None && lda < m) || (op_a == Op::Transpose && lda < k)) {
    throw std::invalid_argument("gemm: bad lda");
  }
  if ((op_b == Op::None && ldb < k) || (op_b == Op::Transpose && ldb < n)) {
    throw std::invalid_argument("gemm: bad ldb");
  }
  check_ld_overflow(lda, op_a == Op::None ? k : m, "A");
  check_ld_overflow(ldb, op_b == Op::None ? n : k, "B");
  if (cfg.layout == Curve::RowMajor) {
    throw std::invalid_argument("gemm: RowMajor is not a supported gemm layout");
  }

  throw_if_cancelled(cfg, m, n, k);  // don't even build a pool past a deadline

  fault::arm_from_env();
  std::optional<fault::ScopedPlan> scoped_plan;
  if (!cfg.fault_spec.empty()) scoped_plan.emplace(cfg.fault_spec);

  ProfileSink sink;
  sink.out = profile;

  // Request-scoped trace id: explicit from the config, else whatever is
  // already ambient (a service executor running several pieces under one
  // request). Ambient for the whole call — TaskGroup::spawn stamps it into
  // every task, so trace events and flight records keep request identity
  // across steals — and recorded in the profile for joining artifacts.
  const std::uint64_t trace_id =
      cfg.trace_id != 0 ? cfg.trace_id : obs::current_trace_id();
  obs::TraceIdScope trace_id_scope(trace_id);
  if (profile != nullptr) profile->trace_id = trace_id;

  std::optional<WorkerPool> owned;
  WorkerPool* pool = cfg.pool;
  if (cfg.detect_races || cfg.analyze_numerics) {
    // SP-bags certification requires the serial depth-first schedule; one
    // race-free serial run covers every schedule of the same task DAG, so
    // overriding the configured parallelism loses nothing but wall-clock.
    // The shadow analyzer makes the same trade for a different reason: its
    // shadow map is thread-local and the serial schedule makes the measured
    // rounding history deterministic.
    if (pool != nullptr || cfg.threads > 1) {
      sink.degrade(cfg.detect_races ? "race-detect:serial-schedule"
                                    : "numerics:serial-schedule");
    }
    owned.emplace(0u);
    pool = &*owned;
  } else if (pool == nullptr) {
    const unsigned want = cfg.threads <= 1 ? 0u : cfg.threads;
    owned.emplace(want);
    pool = &*owned;
    if (pool->thread_count() < want) {
      sink.degrade("pool:requested=" + std::to_string(want) +
                   ",got=" + std::to_string(pool->thread_count()));
    }
  }

  // Hardware performance counters (perf_event_open). One armed session per
  // process, like the collector below; a kernel refusal (paranoid level,
  // seccomp, PMU-less VM) degrades the call to uncounted instead of failing
  // it, with the reason on record.
  const bool want_hw = cfg.hw_counters || env_int("RLA_PERF", 0) != 0;
  std::optional<obs::perf::Session> perf_session;
  if (want_hw) {
    perf_session.emplace();
    if (!perf_session->try_attach()) {
      sink.degrade("perf:busy");
      perf_session.reset();
    } else if (!perf_session->available()) {
      sink.degrade("perf:unavailable:" + perf_session->reason());
      perf_session->detach();
      perf_session.reset();
    }
  }

  // Tracer / work-span measurement. One armed collector per process: a
  // nested or concurrent traced gemm runs untraced with "trace:busy" on
  // record rather than corrupting the outer trace. Live HW counting implies
  // measurement: the counters ride on the same phase spans.
  const std::string trace_path =
      cfg.trace_path.empty() ? env_string("RLA_TRACE") : cfg.trace_path;
  const bool want_tree = cfg.tree_profile || env_int("RLA_TREEPROF", 0) != 0;
  std::optional<obs::Collector> collector;
  if (cfg.measure || !trace_path.empty() || perf_session || want_tree) {
    collector.emplace();
    if (!collector->try_attach()) {
      sink.degrade("trace:busy");
      collector.reset();
    }
  }

  // Recursion-resolved profiling (obs/treeprof/). One armed session per
  // process, like the other slots; a collision runs unprofiled. Armed after
  // the perf session so frame transitions can read this call's counters.
  std::optional<obs::treeprof::Session> tree_session;
  if (want_tree) {
    tree_session.emplace();
    if (!tree_session->try_attach()) {
      sink.degrade("treeprof:busy");
      tree_session.reset();
    }
  }
  // Root frame spanning every run_all below (degradation, FP and verify
  // reruns included): sequential reruns extend the measured critical path.
  std::optional<obs::ScopedRoot> obs_root;
  if (collector) obs_root.emplace("gemm");

  // Scheduler counters are pool-lifetime; delta against entry so an
  // external long-lived pool reports only this call's activity.
  const std::uint64_t base_tasks = pool->tasks_executed();
  const std::uint64_t base_steals = pool->steals();
  const std::uint64_t base_failed = pool->failed_steals();
  const std::uint64_t base_wakeups = pool->idle_wakeups();
  const std::uint64_t base_inject = pool->injection_pops();

  std::optional<analysis::RaceDetector> detector;
  std::optional<analysis::ScopedDetection> detect_scope;
  if (cfg.detect_races) {
    detector.emplace();
    detect_scope.emplace(*detector);
  }

  std::optional<numerics::ShadowAnalyzer> shadow;
  std::optional<numerics::ScopedShadow> shadow_scope;
  if (cfg.analyze_numerics) {
    shadow.emplace();
    shadow_scope.emplace(*shadow);
  }

  std::optional<numerics::ScopedFpCapture> fp_capture;
  if (cfg.fp_check) fp_capture.emplace();

  const Operand oa{a, lda, op_a == Op::Transpose};
  const Operand ob{b, ldb, op_b == Op::Transpose};

  // Freivalds verification only guards the fast algorithms; the classical
  // recursion is the trusted fallback. FP-hazard capture shares the rerun
  // machinery (and therefore the C backup) on the same grounds.
  const bool verify_active = cfg.verify && cfg.algorithm != Algorithm::Standard;
  const bool fp_rerun_possible =
      cfg.fp_check && cfg.algorithm != Algorithm::Standard;
  std::optional<FreivaldsCheck> checker;
  AlignedBuffer<double> c_backup;  // packed m×n copy for the rerun (β ≠ 0)
  bool have_backup = false;
  if (verify_active) {
    checker.emplace(m, n, cfg.verify_probes, cfg.verify_seed);
    checker->capture(c, ldc, beta);
  }
  if ((verify_active || fp_rerun_possible) && beta != 0.0) {
    try {
      c_backup = AlignedBuffer<double>(static_cast<std::size_t>(m) * n);
      for (std::uint32_t j = 0; j < n; ++j) {
        const double* src = c + static_cast<std::size_t>(j) * ldc;
        double* dst = c_backup.data() + static_cast<std::size_t>(j) * m;
        std::copy(src, src + m, dst);
      }
      have_backup = true;
    } catch (const std::bad_alloc&) {
      sink.degrade("verify:no-backup");
    }
  }
  const auto restore_c = [&] {
    for (std::uint32_t j = 0; j < n; ++j) {
      const double* src = c_backup.data() + static_cast<std::size_t>(j) * m;
      double* dst = c + static_cast<std::size_t>(j) * ldc;
      RLA_SHADOW_MOVE(dst, src, m);
      std::copy(src, src + m, dst);
    }
  };

  const auto run_all = [&](const GemmConfig& run_cfg) {
    if (run_cfg.layout == Curve::ColMajor) {
      run_canonical_degrading(m, n, k, alpha, oa, ob, beta, c, ldc, run_cfg,
                              *pool, sink);
    } else {
      run_or_split(m, n, k, alpha, oa, ob, beta, c, ldc, run_cfg, *pool, sink);
    }
  };

  const auto finish = [&] {
    if (profile != nullptr) {
      profile->sched.workers = pool->thread_count();
      profile->sched.tasks = pool->tasks_executed() - base_tasks;
      profile->sched.steals = pool->steals() - base_steals;
      profile->sched.failed_steals = pool->failed_steals() - base_failed;
      profile->sched.idle_wakeups = pool->idle_wakeups() - base_wakeups;
      profile->sched.injection_pops = pool->injection_pops() - base_inject;
      profile->sched.deque_high_water = pool->deque_high_water();
    }
    if (tree_session) {
      // Disarm (quiescence barrier) and fold the per-thread tables before
      // the perf session detaches — frame flushes read its counters — and
      // before the collector freezes its metrics snapshot.
      tree_session->detach();
      const std::vector<obs::treeprof::Node> tree_nodes = tree_session->fold();
      if (profile != nullptr) {
        profile->tree_measured = true;
        profile->tree_profile.clear();
        for (const auto& node : tree_nodes) {
          GemmProfile::TreeNode tn;
          tn.key = obs::treeprof::path_key(node.path);
          tn.time_ns = node.stats.time_ns;
          tn.flops = node.stats.flops;
          tn.tasks = node.stats.tasks;
          tn.hw_valid = node.stats.hw.mask != 0;
          tn.hw = to_hw_counters(node.stats.hw);
          profile->tree_profile.push_back(std::move(tn));
        }
      }
      if (collector) {
        // Per-depth aggregates into the trace's rla_metrics block (the
        // folded list is sorted by depth, so one linear sweep per level).
        obs::Registry& reg = collector->registry();
        reg.counter("treeprof.nodes").set(tree_nodes.size());
        std::size_t i = 0;
        while (i < tree_nodes.size()) {
          const int d = obs::treeprof::path_depth(tree_nodes[i].path);
          std::uint64_t t_ns = 0, flops = 0, tasks = 0;
          std::size_t j = i;
          for (; j < tree_nodes.size() &&
                 obs::treeprof::path_depth(tree_nodes[j].path) == d;
               ++j) {
            t_ns += tree_nodes[j].stats.time_ns;
            flops += tree_nodes[j].stats.flops;
            tasks += tree_nodes[j].stats.tasks;
          }
          const std::string prefix = "treeprof.d" + std::to_string(d) + ".";
          // metric-family: treeprof.*
          reg.counter(prefix + "time_ns").set(t_ns);
          reg.counter(prefix + "flops").set(flops);
          reg.counter(prefix + "tasks").set(tasks);
          i = j;
        }
      }
      tree_session.reset();
    }
    if (perf_session) {
      // Freeze the counters before the collector snapshot so the aggregate
      // and per-thread values land in the trace's rla_metrics block.
      const obs::perf::Sample hw_total = perf_session->read_total();
      const auto hw_threads = perf_session->per_thread();
      const auto hw_phases = perf_session->phase_totals();
      perf_session->detach();
      if (collector) {
        obs::Registry& reg = collector->registry();
        for (int i = 0; i < obs::perf::kEventCount; ++i) {
          if (!hw_total.has(i)) continue;
          reg.counter(std::string("perf.total.") +  // metric-family: perf.total.*
                      obs::perf::event_name(i))
              .set(hw_total.value[i]);
        }
        for (const auto& tc : hw_threads) {
          for (int i = 0; i < obs::perf::kEventCount; ++i) {
            if (!tc.sample.has(i)) continue;
            reg.counter("perf." + tc.label + "." +  // metric-family: perf.*
                        obs::perf::event_name(i))
                .set(tc.sample.value[i]);
          }
        }
      }
      if (profile != nullptr && hw_total.mask != 0) {
        profile->hw_measured = true;
        profile->hw_scale = hw_total.scale;
        profile->hw_events.clear();
        for (int i = 0; i < obs::perf::kEventCount; ++i) {
          if (hw_total.has(i)) {
            profile->hw_events.emplace_back(obs::perf::event_name(i));
          }
        }
        profile->hw_total = to_hw_counters(hw_total);
        profile->hw_phases.clear();
        for (const auto& [phase, sample] : hw_phases) {
          profile->hw_phases.emplace_back(phase, to_hw_counters(sample));
        }
      }
      perf_session.reset();
    }
    if (collector) {
      obs_root.reset();  // close the root span before freezing results
      // Publish this call's scheduler counters into the trace's metrics
      // snapshot (per steal slot; the trailing slot is external threads).
      obs::Registry& reg = collector->registry();
      const auto slots = pool->sched_snapshot();
      for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::string prefix =
            i + 1 == slots.size() ? std::string("sched.external.")
                                  : "sched.w" + std::to_string(i) + ".";
        // metric-family: sched.w*.* sched.external.*
        reg.counter(prefix + "steals").set(slots[i].steals);
        reg.counter(prefix + "failed_steals").set(slots[i].failed_steals);
        reg.counter(prefix + "idle_wakeups").set(slots[i].idle_wakeups);
        reg.counter(prefix + "injection_pops").set(slots[i].injection_pops);
        reg.gauge(prefix + "deque_high_water").set(slots[i].deque_high_water);
      }
      // Pool-wide aggregates so SLO consumers (service registry,
      // trace_summary.py) need no per-slot reconstruction or
      // sched_snapshot() call of their own.
      reg.counter("sched.total.steals").set(pool->steals());
      reg.counter("sched.total.failed_steals").set(pool->failed_steals());
      reg.counter("sched.total.idle_wakeups").set(pool->idle_wakeups());
      reg.counter("sched.total.injection_pops").set(pool->injection_pops());
      reg.counter("sched.total.tasks").set(pool->tasks_executed());
      reg.gauge("sched.total.deque_high_water").set(pool->deque_high_water());
      reg.counter("sched.exceptions_swallowed").set(pool->exceptions_swallowed());
      if (trace_id != 0) {
        // Keyed into the trace's rla_metrics block so a metrics series and
        // a Chrome trace join on the same request id.
        reg.gauge("telemetry.trace_id")
            .set(static_cast<std::int64_t>(trace_id));
      }
      collector->detach();
      if (profile != nullptr) {
        profile->measured = true;
        profile->measured_work = static_cast<double>(collector->work_ns()) / 1e9;
        profile->measured_span = static_cast<double>(collector->span_ns()) / 1e9;
        profile->achieved_parallelism = collector->achieved_parallelism();
        profile->parallel_slackness =
            profile->achieved_parallelism /
            static_cast<double>(std::max(1u, pool->thread_count()));
        profile->tasks_traced = collector->tasks();
        profile->trace_events_dropped = collector->events_dropped();
        const obs::Histogram& hist = collector->task_durations();
        int top = obs::Histogram::kBuckets;
        while (top > 0 && hist.bucket(top - 1) == 0) --top;
        profile->task_ns_hist.clear();
        for (int i = 0; i < top; ++i) {
          profile->task_ns_hist.push_back(hist.bucket(i));
        }
        try {
          // Cross-check against the a-priori DAG model of the *configured*
          // algorithm (degradations can make the executed DAG differ).
          const WorkSpan model = analyze_gemm(m, n, k, cfg);
          profile->model_work = model.work;
          profile->model_span = model.span;
          profile->model_parallelism = model.parallelism();
        } catch (const std::exception&) {
          // Shape requires splitting; the per-piece model does not compose
          // into one number, so the model fields stay zero.
        }
      }
      if (!trace_path.empty()) {
        if (collector->write_chrome_trace_file(trace_path)) {
          if (profile != nullptr) profile->trace_file = trace_path;
        } else {
          sink.degrade("trace:write-failed");
        }
      }
      collector.reset();
    }
    detect_scope.reset();  // detach before reading results
    if (detector && profile != nullptr) {
      profile->races = static_cast<int>(detector->race_count());
      profile->race_certified = detector->certified();
      profile->race_cells = detector->cells_tracked();
      profile->race_reports.clear();
      for (const auto& r : detector->races()) {
        profile->race_reports.push_back(r.to_string());
      }
    }
    shadow_scope.reset();  // stop mirroring before measuring
    if (shadow && profile != nullptr) {
      profile->numerics_analyzed = numerics::instrumented();
      const numerics::ShadowStats st = shadow->measure(c, ldc, m, n);
      profile->observed_abs_error = st.max_abs_error;
      profile->observed_rel_error = st.max_rel_error;
      profile->cancellations = shadow->cancellations();
      profile->shadow_cells = shadow->cells_tracked();
      profile->worst_cell_path = numerics::quadrant_path(
          st.worst_i, st.worst_j, m, n, std::max(profile->depth, 0));
    }
    sink.flush_trail();
    if (profile != nullptr) profile->total = total.seconds();
  };

  try {
    run_all(cfg);
  } catch (const std::bad_alloc&) {
    finish();
    throw Error(ErrorKind::Allocation, "gemm",
                "allocation failed even after exhausting the degradation ladder",
                {m, n, k}, sink.trail);
  } catch (...) {
    // Task failures (including injected ones) propagate to the caller, but
    // the trace of the dying run is exactly what a post-mortem needs: drain
    // the collector and write the export before unwinding further.
    finish();
    throw;
  }

  if (cfg.fp_check) {
    // Sweep up anything raised outside an attributed phase (e.g. on the
    // canonical ladder's materialization of op/α copies).
    const unsigned tail = numerics::fp_drain();
    if (tail != 0) sink.note_fp("other", tail);
    const unsigned hazards = sink.hazards();
    if (profile != nullptr) profile->fp_hazards = hazards;
    if (hazards != 0 && cfg.algorithm != Algorithm::Standard &&
        (beta == 0.0 || have_backup)) {
      // A fast-algorithm run raised INVALID/OVERFLOW/DIVBYZERO: rerun with
      // the classical algorithm, which cannot manufacture intermediate
      // overflows or Inf − Inf cancellations from finite inputs. (Without a
      // backup under β ≠ 0 the hazard stays on record but C is kept.)
      sink.degrade("fp:hazard->standard");
      if (have_backup) restore_c();
      GemmConfig retry = cfg;
      retry.algorithm = Algorithm::Standard;
      try {
        run_all(retry);
      } catch (const std::bad_alloc&) {
        finish();
        throw Error(ErrorKind::Allocation, "gemm",
                    "allocation failed during the FP-hazard rerun", {m, n, k},
                    sink.trail);
      } catch (...) {
        finish();
        throw;
      }
      if (profile != nullptr) profile->fp_degraded = true;
      const unsigned rerun_mask = numerics::fp_drain();
      if (rerun_mask != 0) sink.note_fp("rerun", rerun_mask);
      if (profile != nullptr) profile->fp_hazards = sink.hazards();
    }
    // Stop monitoring before the Freivalds probes: their residual
    // arithmetic is diagnostic, not product computation.
    fp_capture.reset();
  }

  if (checker) {
    const bool at = op_a == Op::Transpose, bt = op_b == Op::Transpose;
    VerifyResult result = [&] {
      obs::PhaseScope phase("verify");
      return checker->check(k, alpha, a, lda, at, b, ldb, bt, c, ldc,
                            cfg.verify_tolerance);
    }();
    if (profile != nullptr) {
      profile->verify_probes = result.probes;
      profile->verify_max_residual = result.max_scaled_residual;
    }
    if (!result.ok) {
      if (profile != nullptr) profile->verify_failed = true;
      sink.degrade("verify:failed->standard");
      if (beta != 0.0 && !have_backup) {
        finish();
        throw Error(ErrorKind::VerificationFailed, "gemm",
                    "verification failed and C could not be restored for a rerun",
                    {m, n, k}, sink.trail);
      }
      if (have_backup) restore_c();
      GemmConfig retry = cfg;
      retry.algorithm = Algorithm::Standard;
      try {
        run_all(retry);
      } catch (const std::bad_alloc&) {
        finish();
        throw Error(ErrorKind::Allocation, "gemm",
                    "allocation failed during the verification rerun", {m, n, k},
                    sink.trail);
      } catch (...) {
        finish();
        throw;
      }
      if (profile != nullptr) profile->verify_rerun = true;
      VerifyResult recheck = [&] {
        obs::PhaseScope phase("verify");
        return checker->check(k, alpha, a, lda, at, b, ldb, bt, c, ldc,
                              cfg.verify_tolerance);
      }();
      if (profile != nullptr) {
        profile->verify_max_residual =
            std::max(profile->verify_max_residual, recheck.max_scaled_residual);
      }
      if (!recheck.ok) {
        finish();
        throw Error(ErrorKind::VerificationFailed, "gemm",
                    "standard-algorithm rerun still fails verification",
                    {m, n, k}, sink.trail);
      }
    }
  }
  finish();
}

void multiply(Matrix& c, const Matrix& a, const Matrix& b, const GemmConfig& cfg,
              GemmProfile* profile) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("multiply: shape mismatch");
  }
  gemm(c.rows(), c.cols(), a.cols(), 1.0, a.data(), a.ld(), Op::None, b.data(),
       b.ld(), Op::None, 0.0, c.data(), c.ld(), cfg, profile);
}

}  // namespace rla
