#include "core/work_span.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "layout/tiled_layout.hpp"

namespace rla {

namespace {

struct Model {
  WorkSpanParams p;
  // Elements of one level-l block per operand shape.
  double ea(int l) const {
    return static_cast<double>(std::uint64_t{1} << (2 * l)) * p.tile_m * p.tile_k;
  }
  double eb(int l) const {
    return static_cast<double>(std::uint64_t{1} << (2 * l)) * p.tile_k * p.tile_n;
  }
  double ec(int l) const {
    return static_cast<double>(std::uint64_t{1} << (2 * l)) * p.tile_m * p.tile_n;
  }
  double leaf_flops() const {
    return 2.0 * p.tile_m * p.tile_k * p.tile_n;
  }

  WorkSpan standard(int l) const {
    if (l == 0) return {leaf_flops(), leaf_flops()};
    const WorkSpan child = standard(l - 1);
    const double e = ec(l - 1);
    if (p.standard_variant == StandardVariant::InPlace) {
      // Two barriers of four parallel products each.
      return {8.0 * child.work, 2.0 * child.span};
    }
    // Eight parallel products (four preceded by a temp zero), then four
    // parallel post-additions.
    WorkSpan r;
    r.work = 8.0 * child.work + 4.0 * e /*zeros*/ + 4.0 * e /*post adds*/;
    r.span = (e + child.span) + e;
    return r;
  }

  WorkSpan fast(int l, bool winograd) const {
    if (l <= p.fast_cutoff_level) return standard(l);
    const WorkSpan child = fast(l - 1, winograd);
    const double a = ea(l - 1), b = eb(l - 1), c = ec(l - 1);
    if (p.fast_variant == FastVariant::SerialLowMem) {
      // Entirely sequential: span equals work. Expanded post-additions
      // (18 for Strassen: 7 zeros + 11 C accumulations; Winograd expanded
      // costs more adds than its parallel form — that is the trade).
      const double pre = winograd ? (6.0 * a + 6.0 * b) : (5.0 * a + 5.0 * b);
      const double post = winograd ? 14.0 * c : 11.0 * c;
      WorkSpan r;
      r.work = 7.0 * child.work + pre + 7.0 * c /*zeros*/ + post;
      r.span = r.work;
      return r;
    }
    WorkSpan r;
    if (!winograd) {
      // Strassen: 10 parallel pre-adds; 7 parallel (zero + product); post
      // adds 4+2+2+4 element-passes, in parallel.
      r.work = 7.0 * child.work + 5.0 * a + 5.0 * b + 7.0 * c + 12.0 * c;
      r.span = std::max(a, b) + (c + child.span) + 4.0 * c;
    } else {
      // Winograd: two 3-add chains (+1 independent) per side; 7 parallel
      // products; U-chain post-adds (see recursion.cpp).
      r.work = 7.0 * child.work + 4.0 * a + 4.0 * b + 7.0 * c + 11.0 * c;
      r.span = 3.0 * std::max(a, b) + (c + child.span) + 5.0 * c;
    }
    return r;
  }
};

}  // namespace

WorkSpan analyze_work_span(const WorkSpanParams& params) {
  Model m{params};
  switch (params.algorithm) {
    case Algorithm::Standard:
      return m.standard(params.depth);
    case Algorithm::Strassen:
      return m.fast(params.depth, false);
    case Algorithm::Winograd:
      return m.fast(params.depth, true);
  }
  return {};
}

WorkSpan analyze_gemm(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                      const GemmConfig& cfg) {
  const std::array<std::uint64_t, 3> dims{m, k, n};
  const auto depth = cfg.forced_depth >= 0
                         ? std::optional<int>(cfg.forced_depth)
                         : common_depth(dims, cfg.tiles);
  if (!depth) {
    throw std::invalid_argument("analyze_gemm: shape requires splitting");
  }
  WorkSpanParams p;
  p.algorithm = cfg.algorithm;
  p.standard_variant = cfg.standard_variant;
  p.fast_variant = cfg.fast_variant;
  p.depth = *depth;
  p.fast_cutoff_level = cfg.fast_cutoff_level;
  const std::uint32_t side = std::uint32_t{1} << *depth;
  p.tile_m = (m + side - 1) / side;
  p.tile_k = (k + side - 1) / side;
  p.tile_n = (n + side - 1) / side;
  return analyze_work_span(p);
}

}  // namespace rla
