#pragma once

// Zero-block flags over the tile quadtree — the Frens–Wise alternative that
// paper §4 contrasts with its explicit-padding scheme.
//
// Frens & Wise "keep a flag at internal nodes of their quad-tree
// representation to indicate empty or nearly full subtrees, which directs
// the algebra around zeroes (as additive identities and multiplicative
// annihilators)". The paper instead pads explicitly and computes on the
// zeros blindly. Implementing both lets bench_ablation quantify the trade:
// the flags win on block-sparse or heavily padded operands and cost a
// per-node test otherwise.
//
// The "quad-tree internal nodes" need no pointers here: an aligned level-l
// block's flag lives at index s_base >> 2l of the level-l flag array,
// because aligned blocks are contiguous curve ranges.

#include <cstdint>
#include <vector>

#include "core/tiled_matrix.hpp"

namespace rla {

class WorkerPool;

/// Per-level all-zero flags for every aligned block of a tiled matrix.
class ZeroTree {
 public:
  ZeroTree() = default;

  /// Scan the matrix and build flags bottom-up (parallel over tiles when a
  /// pool is supplied).
  static ZeroTree build(const TiledMatrix& m, WorkerPool* pool = nullptr);

  bool empty() const noexcept { return levels_.empty(); }

  /// Is the level-`level` block starting at curve position `s_base`
  /// entirely zero?
  bool zero(int level, std::uint64_t s_base) const noexcept {
    return levels_[static_cast<std::size_t>(level)]
                  [s_base >> (2 * level)] != 0;
  }

  /// Fraction of leaf tiles that are all-zero.
  double zero_tile_fraction() const noexcept;

 private:
  // levels_[l][k]: 1 when the k-th aligned level-l block is all zero.
  std::vector<std::vector<std::uint8_t>> levels_;
};

}  // namespace rla
