#pragma once

// Transposition directly in the recursive layout.
//
// For a quadrant-recursive curve, the transpose of the tile at curve
// position S(t_i, t_j) lives at S(t_j, t_i) — a tile-coordinate swap plus a
// per-tile transpose — so no round trip through canonical storage is
// needed. (For Z-Morton this is literally swapping the interleave arguments,
// the paper's §3 closing remark about computing reflections "by
// interchanging the i and j arguments".)

#include "core/tiled_matrix.hpp"

namespace rla {

class WorkerPool;

/// dst ← srcᵀ. dst's geometry must be the transpose of src's: same curve
/// and depth, rows/cols and tile_rows/tile_cols swapped. Throws
/// std::invalid_argument otherwise. If `pool` is non-null the tile loop is
/// parallelized.
void transpose_tiled(const TiledMatrix& src, TiledMatrix& dst,
                     WorkerPool* pool = nullptr);

/// Convenience: build the transpose-shaped geometry of `g`.
TileGeometry transposed_geometry(const TileGeometry& g) noexcept;

}  // namespace rla
