#pragma once

// Leaf-level multiply kernels (paper §5).
//
// The recursion terminates on cache-resident column-major tiles; all the
// floating-point work happens here.  Three tiers are provided, mirroring the
// kernel tiers of the paper's Fig. 7 study:
//
//   Naive         — textbook dot-product triple loop (the "unoptimized" tier)
//   TiledUnrolled — the paper's own C kernel: 6-loop tiled multiply with the
//                   innermost accumulation loop unrolled four-way
//   Blocked4x4    — register-blocked 4×4 micro-kernel, the stand-in for the
//                   vendor dgemm tier
//
// All kernels compute C += alpha * A·B on column-major blocks with leading
// dimensions, so they serve both the tiled leaves (ld == tile rows) and the
// canonical recursion's in-place leaves (ld == full matrix rows).

#include <cstddef>
#include <cstdint>

#include "core/config.hpp"

namespace rla {

/// C (m×n, ldc) += alpha * A (m×k, lda) · B (k×n, ldb); all column-major.
void leaf_mm(KernelKind kind, std::uint32_t m, std::uint32_t n, std::uint32_t k,
             double alpha, const double* a, std::size_t lda, const double* b,
             std::size_t ldb, double* c, std::size_t ldc) noexcept;

/// Contiguous-tile convenience: C (tm×tn) += A (tm×tk) · B (tk×tn), each
/// tile dense column-major (ld == rows).
inline void leaf_mm_tile(KernelKind kind, std::uint32_t tm, std::uint32_t tn,
                         std::uint32_t tk, const double* a, const double* b,
                         double* c) noexcept {
  leaf_mm(kind, tm, tn, tk, 1.0, a, tm, b, tk, c, tm);
}

// ---- contiguous elementwise vector ops (quadrant additions stream through
// these; paper §4 notes the adds are "ideally suited to streaming") ----

/// dst[i] = a[i] + sb * b[i]   (sb is ±1)
void vset_add(double* dst, const double* a, double sb, const double* b,
              std::uint64_t n) noexcept;

/// dst[i] += s * src[i]
void vacc(double* dst, double s, const double* src, std::uint64_t n) noexcept;

/// dst[i] += s1*a[i] + s2*b[i]
void vacc2(double* dst, double s1, const double* a, double s2, const double* b,
           std::uint64_t n) noexcept;

/// dst[i] += s1*a[i] + s2*b[i] + s3*c[i]
void vacc3(double* dst, double s1, const double* a, double s2, const double* b,
           double s3, const double* c, std::uint64_t n) noexcept;

/// dst[i] += s1*a[i] + s2*b[i] + s3*c[i] + s4*d[i]
void vacc4(double* dst, double s1, const double* a, double s2, const double* b,
           double s3, const double* c, double s4, const double* d,
           std::uint64_t n) noexcept;

// ---- strided (leading-dimension) counterparts for the canonical path ----

/// dst = a + sb * b over an m×n column-major block.
void strided_set_add(double* dst, std::size_t ldd, const double* a, std::size_t lda,
                     double sb, const double* b, std::size_t ldb, std::uint32_t m,
                     std::uint32_t n) noexcept;

/// dst += s * src over an m×n column-major block.
void strided_acc(double* dst, std::size_t ldd, double s, const double* src,
                 std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept;

/// dst *= s over an m×n column-major block (s == 0 becomes a store of zeros).
void strided_scale(double* dst, std::size_t ldd, double s, std::uint32_t m,
                   std::uint32_t n) noexcept;

/// dst = src over an m×n column-major block.
void strided_copy(double* dst, std::size_t ldd, const double* src, std::size_t lds,
                  std::uint32_t m, std::uint32_t n) noexcept;

/// dst (m×n) = transpose of src (n×m), both column-major.
void strided_transpose(double* dst, std::size_t ldd, const double* src,
                       std::size_t lds, std::uint32_t m, std::uint32_t n) noexcept;

}  // namespace rla
