// GemmProfile <-> JSON (schema in DESIGN.md §10).
//
// to_json emits every field in a fixed order; from_json reads the same
// layout back, so to_json(from_json(s)) == s for any s that to_json
// produced. Unknown keys are ignored on input (forward compatibility),
// missing keys leave the default value in place.

#include <utility>

#include "core/gemm.hpp"
#include "obs/json.hpp"

namespace rla {

namespace {

using obs::json::Value;

Value string_array(const std::vector<std::string>& items) {
  Value out = Value::array();
  for (const auto& s : items) out.push_back(Value::string(s));
  return out;
}

Value uint_array(const std::vector<std::uint64_t>& items) {
  Value out = Value::array();
  for (std::uint64_t v : items) out.push_back(Value::number(v));
  return out;
}

void read_double(const Value& obj, const char* key, double& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_number()) {
    out = v->as_double();
  }
}

void read_int(const Value& obj, const char* key, int& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_number()) {
    out = static_cast<int>(v->as_int());
  }
}

void read_u32(const Value& obj, const char* key, std::uint32_t& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_number()) {
    out = static_cast<std::uint32_t>(v->as_uint());
  }
}

void read_u64(const Value& obj, const char* key, std::uint64_t& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_number()) {
    out = v->as_uint();
  }
}

void read_i64(const Value& obj, const char* key, std::int64_t& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_number()) {
    out = v->as_int();
  }
}

void read_unsigned(const Value& obj, const char* key, unsigned& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_number()) {
    out = static_cast<unsigned>(v->as_uint());
  }
}

void read_bool(const Value& obj, const char* key, bool& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_bool()) {
    out = v->as_bool();
  }
}

void read_string(const Value& obj, const char* key, std::string& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_string()) {
    out = v->as_string();
  }
}

void read_strings(const Value& obj, const char* key,
                  std::vector<std::string>& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_array()) {
    out.clear();
    for (const Value& item : v->items()) {
      if (item.is_string()) out.push_back(item.as_string());
    }
  }
}

void read_uints(const Value& obj, const char* key,
                std::vector<std::uint64_t>& out) {
  if (const Value* v = obj.find(key); v != nullptr && v->is_array()) {
    out.clear();
    for (const Value& item : v->items()) {
      if (item.is_number()) out.push_back(item.as_uint());
    }
  }
}

void hw_fill(Value& obj, const GemmProfile::HwCounters& hw) {
  obj.set("cycles", Value::number(hw.cycles));
  obj.set("instructions", Value::number(hw.instructions));
  obj.set("l1d_read_misses", Value::number(hw.l1d_read_misses));
  obj.set("llc_misses", Value::number(hw.llc_misses));
  obj.set("dtlb_misses", Value::number(hw.dtlb_misses));
  obj.set("task_clock_ns", Value::number(hw.task_clock_ns));
}

Value hw_object(const GemmProfile::HwCounters& hw) {
  Value obj = Value::object();
  hw_fill(obj, hw);
  return obj;
}

void read_hw(const Value& obj, GemmProfile::HwCounters& out) {
  read_u64(obj, "cycles", out.cycles);
  read_u64(obj, "instructions", out.instructions);
  read_u64(obj, "l1d_read_misses", out.l1d_read_misses);
  read_u64(obj, "llc_misses", out.llc_misses);
  read_u64(obj, "dtlb_misses", out.dtlb_misses);
  read_u64(obj, "task_clock_ns", out.task_clock_ns);
}

}  // namespace

std::string GemmProfile::to_json() const {
  Value o = Value::object();
  o.set("trace_id", Value::number(trace_id));
  o.set("convert_in", Value::number(convert_in));
  o.set("compute", Value::number(compute));
  o.set("convert_out", Value::number(convert_out));
  o.set("total", Value::number(total));
  o.set("depth", Value::number(depth));
  o.set("tile_m", Value::number(tile_m));
  o.set("tile_k", Value::number(tile_k));
  o.set("tile_n", Value::number(tile_n));
  o.set("splits", Value::number(splits));
  o.set("degradation_trail", string_array(degradation_trail));
  o.set("degradations", Value::number(degradations));
  o.set("verify_probes", Value::number(verify_probes));
  o.set("verify_max_residual", Value::number(verify_max_residual));
  o.set("verify_failed", Value::boolean(verify_failed));
  o.set("verify_rerun", Value::boolean(verify_rerun));
  o.set("races", Value::number(races));
  o.set("race_certified", Value::boolean(race_certified));
  o.set("race_cells", Value::number(race_cells));
  o.set("race_reports", string_array(race_reports));
  o.set("bound_constant", Value::number(bound_constant));
  o.set("error_bound", Value::number(error_bound));
  o.set("bound_fast_levels", Value::number(bound_fast_levels));
  o.set("numerics_analyzed", Value::boolean(numerics_analyzed));
  o.set("observed_abs_error", Value::number(observed_abs_error));
  o.set("observed_rel_error", Value::number(observed_rel_error));
  o.set("cancellations", Value::number(cancellations));
  o.set("shadow_cells", Value::number(shadow_cells));
  o.set("worst_cell_path", Value::string(worst_cell_path));
  o.set("fp_hazards", Value::number(fp_hazards));
  o.set("fp_degraded", Value::boolean(fp_degraded));

  Value s = Value::object();
  s.set("workers", Value::number(sched.workers));
  s.set("tasks", Value::number(sched.tasks));
  s.set("steals", Value::number(sched.steals));
  s.set("failed_steals", Value::number(sched.failed_steals));
  s.set("idle_wakeups", Value::number(sched.idle_wakeups));
  s.set("injection_pops", Value::number(sched.injection_pops));
  s.set("deque_high_water", Value::number(sched.deque_high_water));
  o.set("sched", std::move(s));

  o.set("measured", Value::boolean(measured));
  o.set("measured_work", Value::number(measured_work));
  o.set("measured_span", Value::number(measured_span));
  o.set("achieved_parallelism", Value::number(achieved_parallelism));
  o.set("parallel_slackness", Value::number(parallel_slackness));
  o.set("tasks_traced", Value::number(tasks_traced));
  o.set("trace_events_dropped", Value::number(trace_events_dropped));
  o.set("trace_file", Value::string(trace_file));
  o.set("task_ns_hist", uint_array(task_ns_hist));
  o.set("model_work", Value::number(model_work));
  o.set("model_span", Value::number(model_span));
  o.set("model_parallelism", Value::number(model_parallelism));

  o.set("hw_measured", Value::boolean(hw_measured));
  o.set("hw_scale", Value::number(hw_scale));
  o.set("hw_events", string_array(hw_events));
  o.set("hw_total", hw_object(hw_total));
  Value phases = Value::array();
  for (const auto& [name, hw] : hw_phases) {
    Value entry = Value::object();
    entry.set("phase", Value::string(name));
    hw_fill(entry, hw);
    phases.push_back(std::move(entry));
  }
  o.set("hw_phases", std::move(phases));

  o.set("tree_measured", Value::boolean(tree_measured));
  Value tree = Value::array();
  for (const auto& node : tree_profile) {
    Value entry = Value::object();
    entry.set("key", Value::string(node.key));
    entry.set("time_ns", Value::number(node.time_ns));
    entry.set("flops", Value::number(node.flops));
    entry.set("tasks", Value::number(node.tasks));
    entry.set("hw_valid", Value::boolean(node.hw_valid));
    hw_fill(entry, node.hw);
    tree.push_back(std::move(entry));
  }
  o.set("tree_profile", std::move(tree));
  return o.dump();
}

bool GemmProfile::from_json(const std::string& text, GemmProfile& out) {
  const std::optional<Value> parsed = Value::parse(text);
  if (!parsed || !parsed->is_object()) return false;
  const Value& o = *parsed;
  GemmProfile p;
  read_u64(o, "trace_id", p.trace_id);
  read_double(o, "convert_in", p.convert_in);
  read_double(o, "compute", p.compute);
  read_double(o, "convert_out", p.convert_out);
  read_double(o, "total", p.total);
  read_int(o, "depth", p.depth);
  read_u32(o, "tile_m", p.tile_m);
  read_u32(o, "tile_k", p.tile_k);
  read_u32(o, "tile_n", p.tile_n);
  read_int(o, "splits", p.splits);
  read_strings(o, "degradation_trail", p.degradation_trail);
  read_int(o, "degradations", p.degradations);
  read_int(o, "verify_probes", p.verify_probes);
  read_double(o, "verify_max_residual", p.verify_max_residual);
  read_bool(o, "verify_failed", p.verify_failed);
  read_bool(o, "verify_rerun", p.verify_rerun);
  read_int(o, "races", p.races);
  read_bool(o, "race_certified", p.race_certified);
  read_u64(o, "race_cells", p.race_cells);
  read_strings(o, "race_reports", p.race_reports);
  read_double(o, "bound_constant", p.bound_constant);
  read_double(o, "error_bound", p.error_bound);
  read_int(o, "bound_fast_levels", p.bound_fast_levels);
  read_bool(o, "numerics_analyzed", p.numerics_analyzed);
  read_double(o, "observed_abs_error", p.observed_abs_error);
  read_double(o, "observed_rel_error", p.observed_rel_error);
  read_u64(o, "cancellations", p.cancellations);
  read_u64(o, "shadow_cells", p.shadow_cells);
  read_string(o, "worst_cell_path", p.worst_cell_path);
  read_unsigned(o, "fp_hazards", p.fp_hazards);
  read_bool(o, "fp_degraded", p.fp_degraded);
  if (const Value* s = o.find("sched"); s != nullptr && s->is_object()) {
    read_unsigned(*s, "workers", p.sched.workers);
    read_u64(*s, "tasks", p.sched.tasks);
    read_u64(*s, "steals", p.sched.steals);
    read_u64(*s, "failed_steals", p.sched.failed_steals);
    read_u64(*s, "idle_wakeups", p.sched.idle_wakeups);
    read_u64(*s, "injection_pops", p.sched.injection_pops);
    read_i64(*s, "deque_high_water", p.sched.deque_high_water);
  }
  read_bool(o, "measured", p.measured);
  read_double(o, "measured_work", p.measured_work);
  read_double(o, "measured_span", p.measured_span);
  read_double(o, "achieved_parallelism", p.achieved_parallelism);
  read_double(o, "parallel_slackness", p.parallel_slackness);
  read_u64(o, "tasks_traced", p.tasks_traced);
  read_u64(o, "trace_events_dropped", p.trace_events_dropped);
  read_string(o, "trace_file", p.trace_file);
  read_uints(o, "task_ns_hist", p.task_ns_hist);
  read_double(o, "model_work", p.model_work);
  read_double(o, "model_span", p.model_span);
  read_double(o, "model_parallelism", p.model_parallelism);
  read_bool(o, "hw_measured", p.hw_measured);
  read_double(o, "hw_scale", p.hw_scale);
  read_strings(o, "hw_events", p.hw_events);
  if (const Value* v = o.find("hw_total"); v != nullptr && v->is_object()) {
    read_hw(*v, p.hw_total);
  }
  if (const Value* v = o.find("hw_phases"); v != nullptr && v->is_array()) {
    p.hw_phases.clear();
    for (const Value& entry : v->items()) {
      if (!entry.is_object()) continue;
      std::pair<std::string, HwCounters> ph;
      read_string(entry, "phase", ph.first);
      read_hw(entry, ph.second);
      p.hw_phases.push_back(std::move(ph));
    }
  }
  read_bool(o, "tree_measured", p.tree_measured);
  if (const Value* v = o.find("tree_profile"); v != nullptr && v->is_array()) {
    p.tree_profile.clear();
    for (const Value& entry : v->items()) {
      if (!entry.is_object()) continue;
      TreeNode node;
      read_string(entry, "key", node.key);
      read_u64(entry, "time_ns", node.time_ns);
      read_u64(entry, "flops", node.flops);
      read_u64(entry, "tasks", node.tasks);
      read_bool(entry, "hw_valid", node.hw_valid);
      read_hw(entry, node.hw);
      p.tree_profile.push_back(std::move(node));
    }
  }
  out = std::move(p);
  return true;
}

}  // namespace rla
