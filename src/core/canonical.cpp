#include "core/canonical.hpp"

#include <array>
#include <cassert>

#include "analysis/annotations.hpp"
#include "core/kernels.hpp"

namespace rla {

namespace treeprof = obs::treeprof;

namespace {

ConstMatrixView sub(ConstMatrixView v, std::uint32_t r0, std::uint32_t c0,
                    std::uint32_t rows, std::uint32_t cols) {
  return {v.data + static_cast<std::size_t>(c0) * v.ld + r0, v.ld, rows, cols};
}

MatrixView sub(MatrixView v, std::uint32_t r0, std::uint32_t c0, std::uint32_t rows,
               std::uint32_t cols) {
  return {v.data + static_cast<std::size_t>(c0) * v.ld + r0, v.ld, rows, cols};
}

void leaf(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
          ConstMatrixView b) {
  leaf_mm(ctx.kernel, c.rows, c.cols, a.cols, 1.0, a.data, a.ld, b.data, b.ld,
          c.data, c.ld);
  treeprof::add_flops(2ull * c.rows * c.cols * a.cols);
}

/// External-cancellation check at node granularity (one relaxed load); the
/// canonical counterpart of recursion.cpp's node_cancelled.
bool canon_cancelled(const CanonContext& ctx) noexcept {
  return ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed);
}

// Column-major multi-operand accumulators over views (the canonical-path
// counterparts of the tiled block_accN routines).
void sacc2(MatrixView d, double s1, ConstMatrixView p1, double s2,
           ConstMatrixView p2) {
  RLA_RACE_WRITE_STRIDED(d.data, d.rows * sizeof(double), d.ld * sizeof(double),
                         d.cols);
  RLA_RACE_READ_STRIDED(p1.data, p1.rows * sizeof(double),
                        p1.ld * sizeof(double), p1.cols);
  RLA_RACE_READ_STRIDED(p2.data, p2.rows * sizeof(double),
                        p2.ld * sizeof(double), p2.cols);
  for (std::uint32_t j = 0; j < d.cols; ++j) {
    vacc2(&d(0, j), s1, &p1(0, j), s2, &p2(0, j), d.rows);
  }
}

void sacc3(MatrixView d, double s1, ConstMatrixView p1, double s2,
           ConstMatrixView p2, double s3, ConstMatrixView p3) {
  RLA_RACE_WRITE_STRIDED(d.data, d.rows * sizeof(double), d.ld * sizeof(double),
                         d.cols);
  RLA_RACE_READ_STRIDED(p1.data, p1.rows * sizeof(double),
                        p1.ld * sizeof(double), p1.cols);
  RLA_RACE_READ_STRIDED(p2.data, p2.rows * sizeof(double),
                        p2.ld * sizeof(double), p2.cols);
  RLA_RACE_READ_STRIDED(p3.data, p3.rows * sizeof(double),
                        p3.ld * sizeof(double), p3.cols);
  for (std::uint32_t j = 0; j < d.cols; ++j) {
    vacc3(&d(0, j), s1, &p1(0, j), s2, &p2(0, j), s3, &p3(0, j), d.rows);
  }
}

void sacc4(MatrixView d, double s1, ConstMatrixView p1, double s2,
           ConstMatrixView p2, double s3, ConstMatrixView p3, double s4,
           ConstMatrixView p4) {
  RLA_RACE_WRITE_STRIDED(d.data, d.rows * sizeof(double), d.ld * sizeof(double),
                         d.cols);
  RLA_RACE_READ_STRIDED(p1.data, p1.rows * sizeof(double),
                        p1.ld * sizeof(double), p1.cols);
  RLA_RACE_READ_STRIDED(p2.data, p2.rows * sizeof(double),
                        p2.ld * sizeof(double), p2.cols);
  RLA_RACE_READ_STRIDED(p3.data, p3.rows * sizeof(double),
                        p3.ld * sizeof(double), p3.cols);
  RLA_RACE_READ_STRIDED(p4.data, p4.rows * sizeof(double),
                        p4.ld * sizeof(double), p4.cols);
  for (std::uint32_t j = 0; j < d.cols; ++j) {
    vacc4(&d(0, j), s1, &p1(0, j), s2, &p2(0, j), s3, &p3(0, j), s4, &p4(0, j),
          d.rows);
  }
}

void sset_add(MatrixView d, ConstMatrixView a, double sb, ConstMatrixView b) {
  strided_set_add(d.data, d.ld, a.data, a.ld, sb, b.data, b.ld, d.rows, d.cols);
}

void sacc(MatrixView d, double s, ConstMatrixView src) {
  strided_acc(d.data, d.ld, s, src.data, src.ld, d.rows, d.cols);
}

template <typename F>
void fork(TaskGroup& group, bool parallel, F&& f) {
  if (parallel) {
    group.spawn(std::forward<F>(f));
  } else {
    f();
  }
}

std::uint64_t flops(std::uint64_t m, std::uint64_t n, std::uint64_t k) {
  return 2 * m * n * k;
}

struct Quads {
  std::uint32_t h;
};

}  // namespace

void canon_standard(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                    ConstMatrixView b, std::uint64_t path) {
  if (canon_cancelled(ctx)) return;
  treeprof::NodeScope tree_node(path);
  const std::uint32_t m = c.rows, n = c.cols, k = a.cols;
  if (m <= ctx.leaf && n <= ctx.leaf && k <= ctx.leaf) {
    leaf(ctx, c, a, b);
    return;
  }
  // Ceiling-half boundaries for each dimension that needs splitting.
  auto bounds = [&](std::uint32_t x) {
    std::array<std::uint32_t, 3> edges{0, x, x};
    std::size_t pieces = 1;
    if (x > ctx.leaf) {
      edges[1] = (x + 1) / 2;
      pieces = 2;
    }
    return std::pair(edges, pieces);
  };
  const auto [me, mp] = bounds(m);
  const auto [ne, np] = bounds(n);
  const auto [ke, kp] = bounds(k);
  const bool par =
      analysis::detection_active() ||
      (!ctx.pool->serial() && flops(m, n, k) >= ctx.spawn_flops);

  TaskGroup group(*ctx.pool, nullptr, ctx.priority);
  for (std::size_t mi = 0; mi < mp; ++mi) {
    for (std::size_t nj = 0; nj < np; ++nj) {
      const std::uint32_t r0 = me[mi], rows = me[mi + 1] - me[mi];
      const std::uint32_t c0 = ne[nj], cols = ne[nj + 1] - ne[nj];
      MatrixView cc = sub(c, r0, c0, rows, cols);
      // Tree addresses follow the tiled recursion's convention: C-quadrant
      // products of the first k-half are children 0..3, the second k-half
      // 4..7.
      const unsigned ci = static_cast<unsigned>(mi * 2 + nj);
      fork(group, par, [=, &ctx, &ke = ke, kp = kp] {
        if (kp == 1) {
          canon_standard(ctx, cc, sub(a, r0, 0, rows, k), sub(b, 0, c0, k, cols),
                         treeprof::child_path(path, ci));
          return;
        }
        const std::uint32_t k1 = ke[1];
        ConstMatrixView a1 = sub(a, r0, 0, rows, k1);
        ConstMatrixView a2 = sub(a, r0, k1, rows, k - k1);
        ConstMatrixView b1 = sub(b, 0, c0, k1, cols);
        ConstMatrixView b2 = sub(b, k1, c0, k - k1, cols);
        if (ctx.standard_variant == StandardVariant::Temporaries && par) {
          // Paper Fig. 1(a) parallel form: both k-halves at once, the second
          // into a temporary folded in by a post-addition.
          Matrix tmp(rows, cols);
          TaskGroup inner(*ctx.pool, nullptr, ctx.priority);
          inner.spawn([=, &ctx] {
            canon_standard(ctx, cc, a1, b1, treeprof::child_path(path, ci));
          });
          inner.spawn([&tmp, a2, b2, &ctx, path, ci] {
            tmp.zero();
            canon_standard(ctx, tmp.view(), a2, b2,
                           treeprof::child_path(path, 4 + ci));
          });
          inner.wait();
          treeprof::NodeScope add_node(path);
          sacc(cc, 1.0, tmp.view());
          treeprof::add_flops(static_cast<std::uint64_t>(rows) * cols);
        } else {
          canon_standard(ctx, cc, a1, b1, treeprof::child_path(path, ci));
          canon_standard(ctx, cc, a2, b2, treeprof::child_path(path, 4 + ci));
        }
      });
    }
  }
  group.wait();
}

namespace {

/// Shared implementation of the two fast canonical recursions.
template <typename Recurse>
void canon_fast_node(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                     ConstMatrixView b, bool winograd, std::uint64_t path,
                     Recurse&& recurse) {
  if (canon_cancelled(ctx)) return;
  treeprof::NodeScope tree_node(path);
  const std::uint32_t s = c.rows;
  assert(c.cols == s && a.cols == s && b.rows == s);
  if (s <= ctx.leaf || (s & 1) != 0) {
    leaf(ctx, c, a, b);
    return;
  }
  const std::uint32_t h = s / 2;
  const std::uint64_t hh = static_cast<std::uint64_t>(h) * h;
  const bool par = analysis::detection_active() ||
                   (!ctx.pool->serial() && flops(s, s, s) >= ctx.spawn_flops);
  // Runs `body` (a pre- or post-addition of this node) inside the node's own
  // treeprof frame, crediting `passes` full-quadrant element passes, forked
  // like any other node work.
  auto node_add = [par, path, hh](TaskGroup& g, std::uint64_t passes,
                                  auto body) {
    fork(g, par, [=] {
      treeprof::NodeScope add_node(path);
      body();
      treeprof::add_flops(passes * hh);
    });
  };

  ConstMatrixView a11 = sub(a, 0, 0, h, h), a12 = sub(a, 0, h, h, h);
  ConstMatrixView a21 = sub(a, h, 0, h, h), a22 = sub(a, h, h, h, h);
  ConstMatrixView b11 = sub(b, 0, 0, h, h), b12 = sub(b, 0, h, h, h);
  ConstMatrixView b21 = sub(b, h, 0, h, h), b22 = sub(b, h, h, h, h);
  MatrixView c11 = sub(c, 0, 0, h, h), c12 = sub(c, 0, h, h, h);
  MatrixView c21 = sub(c, h, 0, h, h), c22 = sub(c, h, h, h, h);

  // Temporaries are compact (ld == h): each level of the fast recursions
  // halves the leading dimension (paper §5.1).
  const int n_s = winograd ? 4 : 5;
  const int n_t = winograd ? 4 : 5;
  std::array<Matrix, 5> S, T;
  std::array<Matrix, 7> P;
  for (int i = 0; i < n_s; ++i) S[static_cast<std::size_t>(i)] = Matrix(h, h);
  for (int i = 0; i < n_t; ++i) T[static_cast<std::size_t>(i)] = Matrix(h, h);
  for (auto& p : P) p = Matrix(h, h);
  auto sv = [&](int i) { return S[static_cast<std::size_t>(i - 1)].view(); };
  auto tv = [&](int i) { return T[static_cast<std::size_t>(i - 1)].view(); };
  auto pv = [&](int i) { return P[static_cast<std::size_t>(i - 1)].view(); };

  {
    TaskGroup group(*ctx.pool, nullptr, ctx.priority);
    if (!winograd) {
      node_add(group, 1, [&] { sset_add(sv(1), a11, +1.0, a22); });
      node_add(group, 1, [&] { sset_add(sv(2), a21, +1.0, a22); });
      // S3 = A11 + A12 (see the sign note in recursion.cpp).
      node_add(group, 1, [&] { sset_add(sv(3), a11, +1.0, a12); });
      node_add(group, 1, [&] { sset_add(sv(4), a21, -1.0, a11); });
      node_add(group, 1, [&] { sset_add(sv(5), a12, -1.0, a22); });
      node_add(group, 1, [&] { sset_add(tv(1), b11, +1.0, b22); });
      node_add(group, 1, [&] { sset_add(tv(2), b12, -1.0, b22); });
      node_add(group, 1, [&] { sset_add(tv(3), b21, -1.0, b11); });
      node_add(group, 1, [&] { sset_add(tv(4), b11, +1.0, b12); });
      node_add(group, 1, [&] { sset_add(tv(5), b21, +1.0, b22); });
    } else {
      node_add(group, 3, [&] {
        sset_add(sv(1), a21, +1.0, a22);
        sset_add(sv(2), sv(1), -1.0, a11);
        sset_add(sv(4), a12, -1.0, sv(2));
      });
      node_add(group, 1, [&] { sset_add(sv(3), a11, -1.0, a21); });
      node_add(group, 3, [&] {
        sset_add(tv(1), b12, -1.0, b11);
        sset_add(tv(2), b22, -1.0, tv(1));
        sset_add(tv(4), b21, -1.0, tv(2));
      });
      node_add(group, 1, [&] { sset_add(tv(3), b22, -1.0, b12); });
    }
    group.wait();
  }
  {
    TaskGroup group(*ctx.pool, nullptr, ctx.priority);
    auto product = [&](unsigned idx, MatrixView dst, ConstMatrixView x,
                       ConstMatrixView y) {
      return [=, &ctx, &recurse] {
        strided_scale(dst.data, dst.ld, 0.0, dst.rows, dst.cols);
        recurse(ctx, dst, x, y, treeprof::child_path(path, idx));
      };
    };
    if (!winograd) {
      fork(group, par, product(0, pv(1), sv(1), tv(1)));
      fork(group, par, product(1, pv(2), sv(2), b11));
      fork(group, par, product(2, pv(3), a11, tv(2)));
      fork(group, par, product(3, pv(4), a22, tv(3)));
      fork(group, par, product(4, pv(5), sv(3), b22));
      fork(group, par, product(5, pv(6), sv(4), tv(4)));
      fork(group, par, product(6, pv(7), sv(5), tv(5)));
    } else {
      fork(group, par, product(0, pv(1), a11, b11));
      fork(group, par, product(1, pv(2), a12, b21));
      fork(group, par, product(2, pv(3), sv(1), tv(1)));
      fork(group, par, product(3, pv(4), sv(2), tv(2)));
      fork(group, par, product(4, pv(5), sv(3), tv(3)));
      fork(group, par, product(5, pv(6), sv(4), b22));
      fork(group, par, product(6, pv(7), a22, tv(4)));
    }
    group.wait();
  }
  TaskGroup group(*ctx.pool, nullptr, ctx.priority);
  if (!winograd) {
    node_add(group, 4, [&] { sacc4(c11, +1.0, pv(1), +1.0, pv(4), -1.0, pv(5), +1.0, pv(7)); });
    node_add(group, 2, [&] { sacc2(c21, +1.0, pv(2), +1.0, pv(4)); });
    node_add(group, 2, [&] { sacc2(c12, +1.0, pv(3), +1.0, pv(5)); });
    node_add(group, 4, [&] { sacc4(c22, +1.0, pv(1), +1.0, pv(3), -1.0, pv(2), +1.0, pv(6)); });
  } else {
    node_add(group, 2, [&] { sacc2(c11, +1.0, pv(1), +1.0, pv(2)); });
    node_add(group, 2, [&] {
      sacc(pv(4), 1.0, pv(1));  // U2 = P1 + P4
      sacc(pv(5), 1.0, pv(4));  // U3 = U2 + P5
      TaskGroup inner(*ctx.pool, nullptr, ctx.priority);
      node_add(inner, 2, [&] { sacc2(c21, +1.0, pv(5), +1.0, pv(7)); });
      node_add(inner, 2, [&] { sacc2(c22, +1.0, pv(5), +1.0, pv(3)); });
      node_add(inner, 3, [&] { sacc3(c12, +1.0, pv(4), +1.0, pv(3), +1.0, pv(6)); });
      inner.wait();
    });
  }
  group.wait();
}

/// Paper §5.1's sequential space-conserving variant on canonical views:
/// one S, one T, one P buffer; see the tiled counterpart in recursion.cpp.
void canon_fast_lowmem(const CanonContext& ctx, bool winograd, MatrixView c,
                       ConstMatrixView a, ConstMatrixView b,
                       std::uint64_t path) {
  if (canon_cancelled(ctx)) return;
  treeprof::NodeScope tree_node(path);
  const std::uint32_t size = c.rows;
  if (size <= ctx.leaf || (size & 1) != 0) {
    leaf(ctx, c, a, b);
    return;
  }
  const std::uint32_t h = size / 2;
  const std::uint64_t hh = static_cast<std::uint64_t>(h) * h;
  ConstMatrixView a11 = sub(a, 0, 0, h, h), a12 = sub(a, 0, h, h, h);
  ConstMatrixView a21 = sub(a, h, 0, h, h), a22 = sub(a, h, h, h, h);
  ConstMatrixView b11 = sub(b, 0, 0, h, h), b12 = sub(b, 0, h, h, h);
  ConstMatrixView b21 = sub(b, h, 0, h, h), b22 = sub(b, h, h, h, h);
  MatrixView c11 = sub(c, 0, 0, h, h), c12 = sub(c, 0, h, h, h);
  MatrixView c21 = sub(c, h, 0, h, h), c22 = sub(c, h, h, h, h);

  Matrix s_buf(h, h), t_buf(h, h), p_buf(h, h);
  MatrixView s = s_buf.view(), t = t_buf.view(), p = p_buf.view();
  // Products are the node's children 0..6, in P1..P7 emission order (both
  // branches run all seven); the serial adds between them stay on this
  // node's frame, credited one element pass per call.
  unsigned next_child = 0;
  auto product = [&](ConstMatrixView x, ConstMatrixView y) {
    p_buf.zero();
    canon_fast_lowmem(ctx, winograd, p, x, y,
                      treeprof::child_path(path, next_child++));
  };
  auto add = [&](MatrixView d, ConstMatrixView x, double sb, ConstMatrixView y) {
    sset_add(d, x, sb, y);
    treeprof::add_flops(hh);
  };
  auto acc = [&](MatrixView d, double sc, ConstMatrixView src) {
    sacc(d, sc, src);
    treeprof::add_flops(hh);
  };

  if (!winograd) {
    sset_add(s, a11, +1.0, a22);
    sset_add(t, b11, +1.0, b22);
    product(s, t);  // P1 -> C11, C22
    sacc(c11, +1.0, p);
    sacc(c22, +1.0, p);
    sset_add(s, a21, +1.0, a22);
    product(s, b11);  // P2 -> C21, -C22
    sacc(c21, +1.0, p);
    sacc(c22, -1.0, p);
    sset_add(t, b12, -1.0, b22);
    product(a11, t);  // P3 -> C12, C22
    sacc(c12, +1.0, p);
    sacc(c22, +1.0, p);
    sset_add(t, b21, -1.0, b11);
    product(a22, t);  // P4 -> C11, C21
    sacc(c11, +1.0, p);
    sacc(c21, +1.0, p);
    sset_add(s, a11, +1.0, a12);
    product(s, b22);  // P5 -> -C11, C12
    sacc(c11, -1.0, p);
    sacc(c12, +1.0, p);
    sset_add(s, a21, -1.0, a11);
    sset_add(t, b11, +1.0, b12);
    product(s, t);  // P6 -> C22
    sacc(c22, +1.0, p);
    sset_add(s, a12, -1.0, a22);
    sset_add(t, b21, +1.0, b22);
    product(s, t);  // P7 -> C11
    sacc(c11, +1.0, p);
    return;
  }

  // Winograd with expanded U-chains (see recursion.cpp).
  product(a11, b11);  // P1 -> all four
  acc(c11, +1.0, p);
  acc(c21, +1.0, p);
  acc(c22, +1.0, p);
  acc(c12, +1.0, p);
  product(a12, b21);  // P2 -> C11
  acc(c11, +1.0, p);
  add(s, a21, +1.0, a22);
  add(t, b12, -1.0, b11);
  product(s, t);  // P3 -> C22, C12
  acc(c22, +1.0, p);
  acc(c12, +1.0, p);
  add(s, a21, +1.0, a22);
  acc(s, -1.0, a11);
  add(t, b22, -1.0, b12);
  acc(t, +1.0, b11);
  product(s, t);  // P4 -> C21, C22, C12
  acc(c21, +1.0, p);
  acc(c22, +1.0, p);
  acc(c12, +1.0, p);
  add(s, a11, -1.0, a21);
  add(t, b22, -1.0, b12);
  product(s, t);  // P5 -> C21, C22
  acc(c21, +1.0, p);
  acc(c22, +1.0, p);
  add(s, a12, -1.0, a21);
  acc(s, -1.0, a22);
  acc(s, +1.0, a11);
  product(s, b22);  // P6 -> C12
  acc(c12, +1.0, p);
  add(t, b21, -1.0, b22);
  acc(t, +1.0, b12);
  acc(t, -1.0, b11);
  product(a22, t);  // P7 -> C21
  acc(c21, +1.0, p);
}

}  // namespace

void canon_strassen(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                    ConstMatrixView b, std::uint64_t path) {
  if (ctx.fast_variant == FastVariant::SerialLowMem) {
    canon_fast_lowmem(ctx, /*winograd=*/false, c, a, b, path);
    return;
  }
  canon_fast_node(ctx, c, a, b, /*winograd=*/false, path,
                  [](const CanonContext& cx, MatrixView cc, ConstMatrixView aa,
                     ConstMatrixView bb, std::uint64_t p) {
                    canon_strassen(cx, cc, aa, bb, p);
                  });
}

void canon_winograd(const CanonContext& ctx, MatrixView c, ConstMatrixView a,
                    ConstMatrixView b, std::uint64_t path) {
  if (ctx.fast_variant == FastVariant::SerialLowMem) {
    canon_fast_lowmem(ctx, /*winograd=*/true, c, a, b, path);
    return;
  }
  canon_fast_node(ctx, c, a, b, /*winograd=*/true, path,
                  [](const CanonContext& cx, MatrixView cc, ConstMatrixView aa,
                     ConstMatrixView bb, std::uint64_t p) {
                    canon_winograd(cx, cc, aa, bb, p);
                  });
}

}  // namespace rla
