#pragma once

// Analytic work/span (critical path) model of the three parallel recursions.
//
// The paper (§5) used Cilk's critical-path tracking to report that at
// n = 1000 the standard algorithm has enough parallelism to keep ~40
// processors busy versus ~23 for the fast algorithms, with work O(n^{2+δ})
// and span O(lg² n).  Work/span is a property of the task DAG, independent
// of the hardware, so we reproduce the claim by mirroring the exact spawn
// structure of recursion.cpp: leaf multiplies cost 2·t_m·t_k·t_n flops,
// quadrant additions one flop per element (multi-operand adds one per
// operand), temporary zeroing one store per element.

#include <cstdint>

#include "core/config.hpp"

namespace rla {

/// Work and critical-path length, both in (weighted) flops.
struct WorkSpan {
  double work = 0.0;
  double span = 0.0;
  double parallelism() const noexcept { return span > 0.0 ? work / span : 0.0; }
};

struct WorkSpanParams {
  Algorithm algorithm = Algorithm::Standard;
  StandardVariant standard_variant = StandardVariant::Temporaries;
  FastVariant fast_variant = FastVariant::Parallel;
  int depth = 0;                 ///< recursion depth d (grid is 2^d tiles)
  std::uint32_t tile_m = 16;     ///< C tile rows (= A tile rows)
  std::uint32_t tile_k = 16;     ///< A tile cols (= B tile rows)
  std::uint32_t tile_n = 16;     ///< C tile cols (= B tile cols)
  int fast_cutoff_level = 0;     ///< as GemmConfig::fast_cutoff_level
};

/// Work/span of the multiplication DAG (conversion excluded, matching the
/// paper's measurement of the parallel multiply itself).
WorkSpan analyze_work_span(const WorkSpanParams& params);

/// Convenience: model an n×n (or m×n×k) multiply under `cfg`, choosing the
/// depth the gemm driver would choose. Throws if the shape would require
/// splitting (analyze pieces individually instead).
WorkSpan analyze_gemm(std::uint32_t m, std::uint32_t n, std::uint32_t k,
                      const GemmConfig& cfg);

}  // namespace rla
