#pragma once

// User-facing configuration of the gemm driver.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/aligned_buffer.hpp"

#include "layout/curve.hpp"
#include "layout/tiled_layout.hpp"

namespace rla {

class WorkerPool;

/// Which multiplication recursion to run (paper §2, Fig. 1).
enum class Algorithm : std::uint8_t {
  Standard,  ///< 8 recursive multiplies, O(n^3)
  Strassen,  ///< 7 multiplies + 18 adds, O(n^lg 7)
  Winograd,  ///< 7 multiplies + 15 adds (minimum possible)
};

/// How the standard algorithm arranges its 8 products.
enum class StandardVariant : std::uint8_t {
  /// Paper Fig. 1(a): all 8 products spawned at once, the second four into
  /// quadrant-sized temporaries, followed by 4 post-additions.
  Temporaries,
  /// Two phases of 4 accumulating products; no temporaries, half the
  /// one-level parallelism (ablation of the paper's choice).
  InPlace,
};

/// How the fast algorithms organize their seven products.
enum class FastVariant : std::uint8_t {
  /// Paper §2: all pre-additions, then all seven products spawned in
  /// parallel, then the post-additions — maximum parallelism, temporaries
  /// for every S/T/P.
  Parallel,
  /// Paper §5.1's space-conserving sequential variant: recursive calls are
  /// interspersed with the pre- and post-additions, reusing one S, one T
  /// and one P buffer. No parallelism, far less memory; the paper observes
  /// it "behaves more like the standard algorithm" with respect to layouts.
  SerialLowMem,
};

/// Leaf-level multiply kernel tiers (stand-ins for the paper's Fig. 7
/// compiler/BLAS tiers; see DESIGN.md).
enum class KernelKind : std::uint8_t {
  Naive,          ///< textbook jik dot-product loop
  TiledUnrolled,  ///< the paper's C kernel: tiled loops, k unrolled 4-way
  Blocked4x4,     ///< register-blocked 4x4 micro-kernel ("native BLAS" tier)
};

std::string_view algorithm_name(Algorithm a) noexcept;
std::string_view kernel_name(KernelKind k) noexcept;
bool parse_algorithm(std::string_view text, Algorithm& out) noexcept;

/// Transposition selector for gemm operands (BLAS op(X)).
enum class Op : std::uint8_t { None, Transpose };

struct GemmConfig {
  /// Array layout. Curve::ColMajor runs the canonical baseline (standard
  /// algorithm in place on the user's arrays; fast algorithms on padded
  /// column-major copies). The recursive curves use tiled storage per Eq. 3.
  Curve layout = Curve::ZMorton;

  Algorithm algorithm = Algorithm::Standard;
  StandardVariant standard_variant = StandardVariant::Temporaries;
  FastVariant fast_variant = FastVariant::Parallel;

  /// Tile-size range [T_min, T_max] (paper §4).
  TileRange tiles{};

  /// Force the recursion depth d (tile grid 2^d); -1 = choose automatically.
  /// Used by the Fig. 4 tile-size experiment. Only honoured when feasible
  /// tile shapes result (tile edges >= 1).
  int forced_depth = -1;

  /// Strassen/Winograd switch to the standard recursion for blocks of
  /// 2^level tiles or fewer. 0 = run the fast recurrence all the way down to
  /// single tiles (the paper's configuration).
  int fast_cutoff_level = 0;

  /// Worker threads. 0 or 1 = serial execution. Ignored if `pool` is set.
  unsigned threads = 0;

  /// Optional externally managed pool (avoids per-call thread start-up).
  WorkerPool* pool = nullptr;

  /// Cooperative cancellation token. When the pointed-to flag becomes true
  /// the driver abandons the call at the next checkpoint — recursion nodes
  /// stop descending through the same TaskGroup pruning path a task failure
  /// uses, in-flight tasks drain, and gemm throws rla::Error with kind
  /// Cancelled. C may hold partial garbage afterwards (the conversion back
  /// is skipped, so the caller's C is only clobbered if the canonical
  /// in-place path was already running). Deadline enforcement in the service
  /// layer is built on this token; null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;

  /// Scheduling priority when several calls share one external pool: tasks
  /// this call injects from non-worker threads overtake lower-priority
  /// backlogs in the pool's injection queue (FIFO within equal priority).
  /// The service layer maps request priorities onto this. Irrelevant for a
  /// call that owns its pool.
  int priority = 0;

  /// Optional recycling allocator for the tiled conversion buffers (the
  /// call's three largest allocations). When set, the driver obtains each
  /// buffer via acquire_scratch(min_elements) — which may hand back a
  /// previously used, page-aligned buffer of at least that many doubles —
  /// and returns it through release_scratch when the piece finishes (or
  /// fails). The service layer points these at its BufferArena so a stream
  /// of requests stops hammering the system allocator. acquire_scratch may
  /// throw std::bad_alloc, which feeds the normal degradation ladder. Both
  /// must be set together; the hooks must be thread-safe.
  std::function<AlignedBuffer<double>(std::size_t)> acquire_scratch;
  std::function<void(AlignedBuffer<double>&&)> release_scratch;

  KernelKind kernel = KernelKind::TiledUnrolled;

  /// Use the generic (mapping-array) path for *all* quadrant additions
  /// instead of the streaming / Gray-half-step fast paths; ablation knob for
  /// bench_addressing.
  bool force_generic_additions = false;

  /// Frens–Wise zero-block flags (paper §4's alternative to blind padding
  /// arithmetic): scan A and B after conversion and skip products whose
  /// operand block is entirely zero. Standard algorithm on recursive
  /// layouts only; pays an O(n²) scan plus a per-node test, wins on
  /// block-sparse or heavily padded operands.
  bool skip_zero_tiles = false;

  /// Opt-in Freivalds randomized verification of fast-algorithm runs
  /// (Strassen/Winograd have weaker error bounds than classical gemm; see
  /// robust/verify.hpp). Each probe costs O(mn + mk + kn). On a failed
  /// check the driver restores C and reruns with Algorithm::Standard,
  /// recording the event in GemmProfile::degradation_trail. No effect when
  /// `algorithm == Algorithm::Standard`.
  bool verify = false;
  int verify_probes = 2;               ///< escape probability <= 2^-probes
  std::uint64_t verify_seed = 0;       ///< probe-vector seed (deterministic)
  double verify_tolerance = 1e-6;      ///< allowed scaled residual per element

  /// Fault-injection spec (robust/fault.hpp grammar) armed for the duration
  /// of this call, replacing any process-wide plan; disarmed on return.
  /// Empty = leave the RLA_FAULT-configured plan (if any) in effect.
  std::string fault_spec;

  /// Run the call under the SP-bags determinacy-race detector (see
  /// src/analysis/). Forces the serial depth-first schedule — any
  /// `threads`/`pool` setting is overridden and the override recorded in the
  /// degradation trail — because one race-free serial run certifies every
  /// parallel schedule of the same task DAG. Results land in
  /// GemmProfile::races / race_reports / race_certified. Accesses are only
  /// visible to the detector in builds configured with -DRLA_RACE_DETECT=ON;
  /// elsewhere the run completes but race_certified stays false.
  bool detect_races = false;

  /// A priori forward-error budget: the certified relative normwise bound
  /// (‖C − Ĉ‖_max ≤ bound · ‖op(A)‖_max·‖op(B)‖_max, computed by
  /// analysis/numerics/error_bound.hpp) of the algorithm/depth the planner
  /// runs must not exceed this. 0 = no budget. When the configured fast
  /// algorithm's bound is over budget the planner first raises the
  /// standard-recursion switchover (fewer fast levels), then falls back to
  /// Algorithm::Standard; if even the classical bound exceeds the budget it
  /// records "numerics:budget-infeasible" and runs classical anyway. Every
  /// adjustment lands in GemmProfile::degradation_trail, and the bound that
  /// was actually certified in GemmProfile::error_bound.
  double error_budget = 0.0;

  /// Run under the shadow-precision analyzer: every hooked store is mirrored
  /// in long double and GemmProfile reports the observed max error,
  /// cancellation count and worst-cell recursion path. Forces the serial
  /// schedule (recorded in the degradation trail) like detect_races.
  /// Measurements are only live in builds configured with -DRLA_NUMERICS=ON;
  /// elsewhere the run completes but numerics_analyzed stays false.
  bool analyze_numerics = false;

  /// Write a Chrome trace-event JSON file (chrome://tracing / Perfetto) of
  /// this call: per-worker task spans, spawns, steals, group syncs and the
  /// driver phases, plus the scheduler-metrics snapshot and the measured
  /// work/span summary under extra top-level keys. Empty = no trace file;
  /// the RLA_TRACE environment variable supplies a path when this is empty.
  /// Tracing implies `measure`. If another collector is already armed (one
  /// traced gemm at a time per process) the call runs untraced and records
  /// "trace:busy" in the degradation trail.
  std::string trace_path;

  /// Request-scoped trace id (0 = none). Minted by GemmService::submit (or a
  /// caller correlating several gemms); the driver makes it ambient for the
  /// whole call so every spawned task, trace event and flight-recorder
  /// record carries it, and copies it into GemmProfile::trace_id.
  std::uint64_t trace_id = 0;

  /// Measure burdened work/span along the executed task DAG (Cilkview-style)
  /// without necessarily writing a trace file: fills the measured_* fields
  /// of GemmProfile (achieved parallelism, critical path, slackness).
  /// Instrumentation is always compiled in; when neither this nor a trace
  /// path is set the scheduler hooks cost one relaxed load each.
  bool measure = false;

  /// Attach Linux perf_event_open hardware counters to this call: one
  /// counter group per participating thread (cycles, instructions,
  /// L1d-read-misses, LLC-misses, dTLB-misses, task-clock) with
  /// multiplexing-scaled grouped reads. Fills GemmProfile::hw_* (whole-call
  /// totals plus per-driver-phase deltas) and annotates the trace's phase
  /// spans and metrics snapshot. Implies `measure`. The RLA_PERF environment
  /// variable (truthy) arms this when the flag is false. When the kernel
  /// refuses (perf_event_paranoid, seccomp ENOSYS, PMU-less VMs) the call
  /// completes normally and records "perf:unavailable:<reason>" in the
  /// degradation trail; a concurrent counting call records "perf:busy".
  bool hw_counters = false;

  /// Recursion-resolved profiling (obs/treeprof/): attribute exclusive wall
  /// time, FLOPs, task counts and per-thread PMU deltas to each node of the
  /// quadrant recursion, keyed by its path ("d3:021"), down to
  /// RLA_TREEPROF_MAX_DEPTH levels (deeper cost rolls up; default 3). Fills
  /// GemmProfile::tree_profile, feeds the per-depth metric export and the
  /// --flame folded-stack output, and emits nested "node" spans into the
  /// trace when one is being written. Implies `measure`. The RLA_TREEPROF
  /// environment variable (truthy) arms this when the flag is false. If
  /// another tree-profiling session is armed the call runs unprofiled and
  /// records "treeprof:busy" in the degradation trail.
  bool tree_profile = false;

  /// Watch the IEEE sticky exception flags (INVALID / OVERFLOW / DIVBYZERO)
  /// around the call, attributing hazards to the phase that raised them (in
  /// the degradation trail, e.g. "fp:compute:invalid"). A hazard raised by a
  /// fast-algorithm run triggers a rerun with Algorithm::Standard — the
  /// classical algorithm cannot manufacture the intermediate overflows and
  /// Inf − Inf cancellations Strassen/Winograd pre-additions can. Works on
  /// any build and any schedule (workers poll their own flags per task).
  bool fp_check = false;
};

}  // namespace rla
