#pragma once

// Tiled recursive-layout storage and the block views the recursion walks.
//
// A TiledMatrix owns a buffer laid out per paper Eq. (3). A TiledBlock is a
// view of an aligned 2^level × 2^level block of tiles; because every curve
// here is quadrant-recursive, the block occupies a contiguous range of tiles
// starting at curve position `s_base`, and carries the orientation of its
// sub-curve. Quadrant navigation is O(1) table lookups — this is the paper's
// "address computations embedded implicitly in the control structure".

#include <cassert>
#include <cstdint>

#include "layout/quadrant.hpp"
#include "layout/tiled_layout.hpp"
#include "util/aligned_buffer.hpp"

namespace rla {

class TiledMatrix;

/// View of an aligned block of 2^level × 2^level tiles of a TiledMatrix.
struct TiledBlock {
  double* data = nullptr;           ///< base of the whole tiled buffer
  const TileGeometry* geom = nullptr;
  const CurveOps* ops = nullptr;    ///< quadrant FSM of geom->curve
  std::uint32_t ti0 = 0;            ///< top-left tile coordinate (row)
  std::uint32_t tj0 = 0;            ///< top-left tile coordinate (column)
  int level = 0;                    ///< block spans 2^level tiles per side
  std::uint64_t s_base = 0;         ///< curve position of the block's first tile
  int orient = 0;                   ///< orientation of the block's sub-curve

  std::uint32_t tiles_per_side() const noexcept { return std::uint32_t{1} << level; }
  std::uint64_t tile_count() const noexcept { return std::uint64_t{1} << (2 * level); }

  /// First element of the block's contiguous storage.
  double* begin() const noexcept { return data + s_base * geom->tile_elems(); }

  /// Elements in the block (contiguous from begin()).
  std::uint64_t elems() const noexcept { return tile_count() * geom->tile_elems(); }

  /// Quadrant view (q is the Quadrant enum: kNW, kNE, kSW, kSE).
  TiledBlock quadrant(int q) const noexcept {
    assert(level > 0);
    TiledBlock child = *this;
    const std::uint32_t h = std::uint32_t{1} << (level - 1);
    child.ti0 = ti0 + (static_cast<std::uint32_t>(q) >> 1) * h;
    child.tj0 = tj0 + (static_cast<std::uint32_t>(q) & 1) * h;
    child.level = level - 1;
    child.s_base =
        s_base + (static_cast<std::uint64_t>(ops->chunk(orient, q)) << (2 * (level - 1)));
    child.orient = ops->child_orientation(orient, q);
    return child;
  }

  /// Storage of the single tile (level-0 block only).
  double* tile() const noexcept {
    assert(level == 0);
    return data + s_base * geom->tile_elems();
  }
};

/// Owning tiled-layout matrix (paper Eq. 3): 2^d × 2^d tiles of
/// tile_rows × tile_cols elements, tiles ordered along geom.curve, each tile
/// column-major.
class TiledMatrix {
 public:
  TiledMatrix() = default;

  explicit TiledMatrix(const TileGeometry& geom)
      : geom_(geom),
        ops_(&CurveOps::get(geom.curve)),
        buffer_(geom.total_elems(), kPageBytes) {}

  /// Adopt pre-allocated (possibly recycled) storage instead of allocating.
  /// `storage` must hold at least geom.total_elems() doubles; the service
  /// arena hands out page-aligned size-class buffers for exactly this.
  TiledMatrix(const TileGeometry& geom, AlignedBuffer<double>&& storage)
      : geom_(geom), ops_(&CurveOps::get(geom.curve)), buffer_(std::move(storage)) {
    assert(buffer_.size() >= geom.total_elems());
  }

  /// Surrender the storage (for recycling); *this becomes empty.
  AlignedBuffer<double> take_buffer() noexcept { return std::move(buffer_); }

  const TileGeometry& geom() const noexcept { return geom_; }
  double* data() noexcept { return buffer_.data(); }
  const double* data() const noexcept { return buffer_.data(); }
  std::uint64_t size() const noexcept { return buffer_.size(); }

  void zero() noexcept { buffer_.zero(); }

  /// Root view covering the whole tile grid (orientation 0 by convention).
  TiledBlock root() noexcept {
    return {data(), &geom_, ops_, 0, 0, geom_.depth, 0, 0};
  }

  /// Logical element access through the layout function (test/debug aid; the
  /// hot paths never address element-by-element).
  double& at(std::uint32_t i, std::uint32_t j) noexcept {
    return buffer_[geom_.address(i, j)];
  }
  const double& at(std::uint32_t i, std::uint32_t j) const noexcept {
    return buffer_[geom_.address(i, j)];
  }

 private:
  TileGeometry geom_{};
  const CurveOps* ops_ = nullptr;
  AlignedBuffer<double> buffer_;
};

}  // namespace rla
