#include "core/transpose.hpp"

#include <stdexcept>

#include "core/kernels.hpp"
#include "parallel/worker_pool.hpp"

namespace rla {

TileGeometry transposed_geometry(const TileGeometry& g) noexcept {
  TileGeometry t = g;
  t.rows = g.cols;
  t.cols = g.rows;
  t.tile_rows = g.tile_cols;
  t.tile_cols = g.tile_rows;
  return t;
}

void transpose_tiled(const TiledMatrix& src, TiledMatrix& dst, WorkerPool* pool) {
  const TileGeometry& gs = src.geom();
  const TileGeometry& gd = dst.geom();
  if (gd.curve != gs.curve || gd.depth != gs.depth || gd.rows != gs.cols ||
      gd.cols != gs.rows || gd.tile_rows != gs.tile_cols ||
      gd.tile_cols != gs.tile_rows) {
    throw std::invalid_argument("transpose_tiled: dst geometry is not srcᵀ");
  }
  const std::uint64_t tiles = gs.tile_count();
  const std::uint64_t tsz = gs.tile_elems();
  auto body = [&](std::uint64_t s0, std::uint64_t s1) {
    for (std::uint64_t s = s0; s < s1; ++s) {
      // Destination-order walk: writes stream, reads hop along the swapped
      // coordinate.
      const TileCoord tc = s_inverse(gd.curve, s, gd.depth);
      const std::uint64_t src_s = s_index(gs.curve, tc.j, tc.i, gs.depth);
      strided_transpose(dst.data() + s * tsz, gd.tile_rows,
                        src.data() + src_s * tsz, gs.tile_rows, gd.tile_rows,
                        gd.tile_cols);
    }
  };
  if (pool != nullptr && !pool->serial()) {
    const std::uint64_t grain =
        std::max<std::uint64_t>(1, tiles / (8 * (pool->thread_count() + 1)));
    pool->parallel_for(0, tiles, grain, body);
  } else {
    body(0, tiles);
  }
}

}  // namespace rla
