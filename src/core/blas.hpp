#pragma once

// BLAS-compatible C entry point (paper §2.1: "all our implementations follow
// the same calling conventions as the dgemm subroutine in the Level 3 BLAS
// library").
//
// rla_dgemm is a drop-in signature for the classic C-style dgemm wrapper:
// Fortran column-major arrays, character transpose flags. The layout /
// algorithm used by calls through this entry are process-wide configuration
// (set_default_gemm_config), since the BLAS interface has no parameter for
// them.

#include "core/config.hpp"

namespace rla {

/// Set the configuration used by rla_dgemm. Thread-safe (mutex-guarded
/// copy); affects subsequent calls.
void set_default_gemm_config(const GemmConfig& cfg);

/// Current rla_dgemm configuration.
GemmConfig default_gemm_config();

}  // namespace rla

extern "C" {

/// C ← alpha·op(A)·op(B) + beta·C. `transa`/`transb` accept 'N'/'n' (no
/// transpose) or 'T'/'t'/'C'/'c' (transpose; conjugation is a no-op for
/// real data). Returns 0 on success, nonzero on invalid arguments (instead
/// of calling xerbla).
int rla_dgemm(char transa, char transb, int m, int n, int k, double alpha,
              const double* a, int lda, const double* b, int ldb, double beta,
              double* c, int ldc);

}  // extern "C"
