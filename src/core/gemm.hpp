#pragma once

// The public dgemm-compatible entry point (paper §2.1, §4).
//
//   C ← α·op(A)·op(B) + β·C
//
// Matrices are column-major with leading dimensions, exactly as Level 3
// BLAS. Internally the driver (for recursive layouts) selects a shared
// recursion depth and tile shape, allocates tiled storage, remaps the
// operands in parallel (fusing transposition and the α/β scaling into the
// remap), runs the selected recursive algorithm, and remaps C back — "an
// honest accounting of costs" for the format conversion, which
// bench_conversion measures.
//
// Wide/lean shapes with no feasible shared depth are split into squat
// submatrix products (paper Fig. 3) that are themselves spawned in parallel
// (row/column splits) or accumulated (inner-dimension splits).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/matrix.hpp"

namespace rla {

/// Cost breakdown of one gemm call (all wall-clock seconds).
/// The per-phase fields are aggregated across any submatrix splits.
struct GemmProfile {
  /// Request-scoped trace id this call ran under (GemmConfig::trace_id;
  /// 0 = no request scope). Joins this profile with the matching Chrome
  /// trace events, flight-recorder records and service metrics.
  std::uint64_t trace_id = 0;

  double convert_in = 0.0;   ///< canonical -> recursive remap (A, B, C)
  double compute = 0.0;      ///< recursive multiplication proper
  double convert_out = 0.0;  ///< recursive -> canonical remap of C
  double total = 0.0;
  int depth = -1;            ///< chosen recursion depth d (last split piece)
  std::uint32_t tile_m = 0, tile_k = 0, tile_n = 0;  ///< chosen tile edges
  int splits = 0;            ///< number of squat pieces (0 = no splitting)

  /// Graceful-degradation events, in the order the driver took them (empty =
  /// the configured path ran cleanly). Entries are short machine-checkable
  /// strings, e.g. "alloc:fast->serial-lowmem", "pool:requested=8,got=3",
  /// "verify:failed->standard".
  std::vector<std::string> degradation_trail;
  int degradations = 0;      ///< == degradation_trail.size(), for quick asserts

  int verify_probes = 0;            ///< Freivalds probes run (0 = verify off)
  double verify_max_residual = 0.0; ///< worst scaled residual observed
  bool verify_failed = false;       ///< primary run failed the check
  bool verify_rerun = false;        ///< standard-algorithm rerun happened

  // Race-detection results (GemmConfig::detect_races; see src/analysis/).
  int races = 0;                    ///< distinct determinacy races found
  bool race_certified = false;      ///< instrumented run, serial schedule, 0 races
  std::uint64_t race_cells = 0;     ///< shadow cells carrying provenance
  std::vector<std::string> race_reports;  ///< formatted, capped at 64

  // A priori error certification (always filled when the multiply ran; see
  // analysis/numerics/error_bound.hpp). The bound covers the algorithm and
  // depth that actually executed — after any budget capping or degradation —
  // and is the worst (largest) bound across split pieces.
  double bound_constant = 0.0;  ///< ‖C−Ĉ‖_max ≤ constant·u·‖A‖_max·‖B‖_max
  double error_bound = 0.0;     ///< bound_constant · u (relative bound)
  int bound_fast_levels = -1;   ///< fast levels the bound assumed (-1 = not set)

  // Shadow-precision measurements (GemmConfig::analyze_numerics; live only
  // in -DRLA_NUMERICS=ON builds).
  bool numerics_analyzed = false;    ///< instrumented build, analyzer attached
  double observed_abs_error = 0.0;   ///< max |C − shadow| over the output
  double observed_rel_error = 0.0;   ///< observed_abs_error / max |shadow C|
  std::uint64_t cancellations = 0;   ///< accumulation steps that cancelled ≥ 2²⁶
  std::uint64_t shadow_cells = 0;    ///< live shadow cells at measurement
  std::string worst_cell_path;       ///< quadrant path of the worst cell, "R.NW…"

  // FP-hazard capture (GemmConfig::fp_check).
  unsigned fp_hazards = 0;   ///< mask of numerics::kFp* bits observed
  bool fp_degraded = false;  ///< hazard forced a standard-algorithm rerun

  /// Scheduler health for this call (always filled; deltas against the
  /// pool's counters at entry, so an external long-lived pool reports only
  /// this call's activity — except deque_high_water, a pool-lifetime max).
  struct SchedStats {
    unsigned workers = 0;              ///< worker threads actually running
    std::uint64_t tasks = 0;           ///< tasks executed by the pool
    std::uint64_t steals = 0;          ///< successful steals
    std::uint64_t failed_steals = 0;   ///< acquire sweeps that found nothing
    std::uint64_t idle_wakeups = 0;    ///< worker sleeps that ended empty
    std::uint64_t injection_pops = 0;  ///< tasks taken via the injection queue
    std::int64_t deque_high_water = 0; ///< deepest work deque observed
  };
  SchedStats sched;

  // Measured work/span along the executed DAG (GemmConfig::measure, or any
  // trace request). Burdened accounting: each task's spawn-to-start queue
  // latency is charged to the critical path, Cilkview-style.
  bool measured = false;             ///< collector armed for this call
  double measured_work = 0.0;        ///< seconds of exclusive task time (T_1)
  double measured_span = 0.0;        ///< burdened critical path (T_inf)
  double achieved_parallelism = 0.0; ///< measured_work / measured_span
  double parallel_slackness = 0.0;   ///< achieved_parallelism / workers
  std::uint64_t tasks_traced = 0;    ///< task frames the collector closed
  std::uint64_t trace_events_dropped = 0;  ///< ring-buffer overflow losses
  std::string trace_file;            ///< Chrome trace written (empty = none)
  /// Log2-bucketed task-duration histogram in ns: bucket i counts tasks in
  /// [2^i, 2^(i+1)); trimmed to the highest non-empty bucket.
  std::vector<std::uint64_t> task_ns_hist;

  // A priori work/span model (core/work_span) for cross-checking the
  // measured numbers; zero when the shape needs splitting (model N/A).
  double model_work = 0.0;           ///< flop-weighted unit-cost work
  double model_span = 0.0;
  double model_parallelism = 0.0;

  /// One set of multiplexing-scaled hardware-counter values
  /// (raw × time_enabled/time_running; see src/obs/perf.hpp). An event that
  /// could not be opened on this machine stays 0 and is absent from
  /// hw_events.
  struct HwCounters {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1d_read_misses = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t dtlb_misses = 0;
    std::uint64_t task_clock_ns = 0;
  };

  // Hardware performance counters (GemmConfig::hw_counters / RLA_PERF).
  // All-empty when counting was off or unavailable — the trail then carries
  // "perf:unavailable:<reason>".
  bool hw_measured = false;          ///< a counter group was live for this call
  double hw_scale = 1.0;             ///< worst time_running/time_enabled (1 = exact)
  std::vector<std::string> hw_events;  ///< event names that actually counted
  HwCounters hw_total;               ///< whole-call totals over all threads
  /// Per driver-phase counter deltas (convert.in / compute / adds / verify /
  /// convert.out), aggregated across split pieces, in first-seen order.
  std::vector<std::pair<std::string, HwCounters>> hw_phases;

  /// One recursion-tree node's attribution (GemmConfig::tree_profile /
  /// RLA_TREEPROF; see obs/treeprof/). `key` is the quadrant-path key
  /// ("d0", "d3:021"); `time_ns` is *exclusive* wall time (children and
  /// group waits excluded), so sums per depth reconcile against the compute
  /// phase. Nodes deeper than RLA_TREEPROF_MAX_DEPTH roll up into their
  /// ancestor at the cap. `hw` carries exclusive PMU deltas when a perf
  /// session was also counting (hw_valid false = no event counted).
  struct TreeNode {
    std::string key;
    std::uint64_t time_ns = 0;
    std::uint64_t flops = 0;
    std::uint64_t tasks = 0;
    bool hw_valid = false;
    HwCounters hw;
  };

  // Recursion-resolved profile, sorted by (depth, path); empty when
  // profiling was off or the session slot was busy ("treeprof:busy").
  bool tree_measured = false;   ///< a treeprof session was armed for this call
  std::vector<TreeNode> tree_profile;

  /// Serialize every field to a single JSON object (schema documented in
  /// DESIGN.md §10). Machine-readable companion to the trace file.
  std::string to_json() const;

  /// Parse a to_json() string back. Returns false (leaving *out untouched)
  /// on malformed input. to_json(from_json(s)) == s for any s produced by
  /// to_json — the round-trip contract the tests pin down.
  static bool from_json(const std::string& text, GemmProfile& out);
};

/// C (m×n, ldc) ← alpha · op(A) · op(B) + beta · C.
/// op(A) is m×k (A is m×k when op_a == Op::None, k×m otherwise);
/// op(B) is k×n. Throws std::invalid_argument on inconsistent arguments or
/// an invalid cfg (inverted TileRange, out-of-range forced_depth, absurd
/// thread counts, ld×extent products that overflow the address space).
///
/// Allocation failure does not propagate as std::bad_alloc: the driver
/// degrades — fast variant → SerialLowMem, then a shallower-depth in-place
/// standard recursion, then the canonical in-place path — and records each
/// step in GemmProfile::degradation_trail. Only when the last-resort path
/// also fails does it throw rla::Error (kind Allocation, with the trail).
void gemm(std::uint32_t m, std::uint32_t n, std::uint32_t k, double alpha,
          const double* a, std::size_t lda, Op op_a, const double* b,
          std::size_t ldb, Op op_b, double beta, double* c, std::size_t ldc,
          const GemmConfig& cfg = {}, GemmProfile* profile = nullptr);

/// Convenience: C = A·B on owning matrices (alpha = 1, beta = 0).
void multiply(Matrix& c, const Matrix& a, const Matrix& b,
              const GemmConfig& cfg = {}, GemmProfile* profile = nullptr);

}  // namespace rla
