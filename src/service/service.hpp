#pragma once

// Gemm-as-a-service: a long-lived engine that owns one WorkerPool and one
// BufferArena and serves many concurrent gemm requests.
//
// Everything this repo built call-by-call — the degradation ladder, fault
// injection, Freivalds verification, the metrics registry, cooperative
// cancellation — becomes service policy here:
//
//   submit() ──► admission ──► queue (priority, FIFO within) ──► executor
//                  │                                               │
//                  │ queue full            deadline/stall          │ gemm()
//                  ▼                       (watchdog)              ▼
//               Rejected ◄─── expiry ──────────┘               finalize
//                                                     Completed / Degraded /
//                                                     Cancelled / Failed
//
// Guarantees (the soak harness asserts these under chaos):
//  * Every accepted request terminates with exactly one Outcome — never
//    hangs, never leaks, even when gemm faults or the deadline fires
//    mid-flight.
//  * Deadlines are enforced cooperatively: the watchdog sets the request's
//    cancel flag, the recursion prunes, and the driver raises Cancelled at
//    its next checkpoint.
//  * Admission is priority-aware and memory-aware: when the arena cannot
//    cover a request's footprint the service degrades it (fast → standard →
//    canonical, each step cheaper in temporaries) before rejecting.
//  * Backpressure: at most max_inflight requests queued+running; beyond
//    that submit() completes immediately with Rejected{reason="queue-full"}.
//
// Environment knobs (all optional; constructor arguments win):
//   RLA_SERVICE_THREADS      worker threads in the shared pool
//   RLA_SERVICE_EXECUTORS    concurrent request executors
//   RLA_SERVICE_MAX_INFLIGHT backpressure bound (queued + running)
//   RLA_SERVICE_ARENA_MB     arena byte budget in MiB (0 = unlimited)
//   RLA_SERVICE_WATCHDOG_MS  watchdog sweep period

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gemm.hpp"
#include "obs/metrics.hpp"
#include "parallel/worker_pool.hpp"
#include "service/arena.hpp"
#include "support/sync.hpp"

namespace rla::service {

/// How one request ended. Exactly one of these per accepted request.
enum class Outcome : std::uint8_t {
  Completed,  ///< ran the configured path cleanly
  Degraded,   ///< completed, but on a cheaper path (see degradation_trail)
  Rejected,   ///< never ran: queue full, arena broke, or shutdown
  Cancelled,  ///< deadline expired while queued or running
  Failed,     ///< every attempt (including retries) raised a non-cancel error
};

std::string_view outcome_name(Outcome o) noexcept;

/// One gemm request. Operand pointers must stay valid until the returned
/// future resolves.
struct Request {
  std::uint32_t m = 0, n = 0, k = 0;
  double alpha = 1.0;
  const double* a = nullptr;
  std::size_t lda = 0;
  Op op_a = Op::None;
  const double* b = nullptr;
  std::size_t ldb = 0;
  Op op_b = Op::None;
  double beta = 0.0;
  double* c = nullptr;
  std::size_t ldc = 0;

  /// Per-request gemm configuration. `pool`, `cancel`, `threads` and
  /// `priority` are owned by the service and overwritten at admission.
  GemmConfig cfg;

  /// Larger runs first among queued requests (FIFO within a priority).
  int priority = 0;

  /// Wall-clock budget from submit(); 0 = none. An expired request is
  /// finalized Cancelled — from the queue immediately, from a running
  /// executor via the cooperative cancel flag.
  std::chrono::microseconds deadline{0};

  /// Attempts after the first on a non-cancellation failure (each retry may
  /// first degrade the config one more step). 0 = fail fast.
  int retry_budget = 1;

  /// Permit the admission/retry ladder to rewrite the config onto cheaper
  /// paths. When false a request that does not fit is rejected instead.
  bool allow_degradation = true;
};

/// Terminal record of one request.
struct Response {
  Outcome outcome = Outcome::Rejected;
  std::string reason;          ///< human-readable detail for non-Completed
  GemmProfile profile;         ///< profile of the final (successful) attempt
  /// Service-level events prepended to the gemm trail, e.g.
  /// "service:degraded:arena:fast->standard", "service:retry:1",
  /// "service:deadline". The gemm driver's own trail follows.
  std::vector<std::string> degradation_trail;
  int attempts = 0;            ///< gemm() invocations made (0 = rejected)
  std::uint64_t id = 0;        ///< service-assigned sequence number
  double queue_seconds = 0.0;  ///< submit -> executor pickup
  double run_seconds = 0.0;    ///< executor pickup -> terminal
};

struct ServiceConfig {
  unsigned threads = 0;        ///< 0 = hardware_concurrency - 1
  unsigned executors = 2;      ///< concurrent requests actually running
  std::size_t max_inflight = 64;   ///< queued + running bound (backpressure)
  std::size_t arena_bytes = 0;     ///< 0 = unlimited
  std::chrono::milliseconds watchdog_period{10};
  /// A running request this far past its deadline (factor of the deadline,
  /// minimum one watchdog period) is reported stuck: the watchdog records a
  /// service.stalls_detected tick. Cancellation remains cooperative — the
  /// flag is already set — so this is detection, not preemption.
  double stall_factor = 2.0;

  /// Overlay RLA_SERVICE_* environment variables onto the defaults.
  static ServiceConfig from_env();
};

/// The engine. Thread-safe: submit from any number of threads.
class GemmService {
 public:
  explicit GemmService(ServiceConfig cfg = ServiceConfig::from_env());

  /// Drains: every accepted request runs to a terminal outcome (deadlined
  /// ones still get cancelled by the watchdog) before the pool is torn down.
  ~GemmService();

  GemmService(const GemmService&) = delete;
  GemmService& operator=(const GemmService&) = delete;

  /// Submit one request. Always returns a future that resolves — with
  /// Rejected when backpressure or shutdown refused it.
  std::future<Response> submit(const Request& req)
      RLA_EXCLUDES(service_mutex_);

  /// Submit a batch; element i's future is result[i]. Elements are admitted
  /// independently — one rejected or faulting element does not disturb the
  /// rest (the batch-fault test pins this down).
  std::vector<std::future<Response>> submit_batch(const std::vector<Request>& reqs);

  /// Finish everything in flight, refuse new work. Idempotent; the
  /// destructor calls it.
  void shutdown() RLA_EXCLUDES(shutdown_mutex_, service_mutex_);

  /// Export queue/latency/outcome/arena/scheduler metrics (obs::Registry
  /// JSON snapshot, same shape trace_summary.py and bench_compare read).
  std::string metrics_json() const RLA_EXCLUDES(service_mutex_);

  std::size_t in_flight() const noexcept
      RLA_EXCLUDES(service_mutex_);  ///< queued + running now
  WorkerPool& pool() noexcept { return *pool_; }
  BufferArena& arena() noexcept { return arena_; }
  const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  struct Pending;  // shared between queue, executor, watchdog, and future

  void executor_main() RLA_EXCLUDES(service_mutex_);
  void watchdog_main() RLA_EXCLUDES(service_mutex_);
  /// Blocks; null = stop.
  std::shared_ptr<Pending> dequeue() RLA_EXCLUDES(service_mutex_);
  void run_request(const std::shared_ptr<Pending>& p)
      RLA_EXCLUDES(service_mutex_);
  void finalize(const std::shared_ptr<Pending>& p, Outcome outcome,
                std::string reason, GemmProfile profile)
      RLA_EXCLUDES(service_mutex_);
  /// Degrade p's config one step; false when already at the floor.
  static bool degrade_step(Pending& p, const char* why);
  std::size_t estimate_bytes(const Request& req) const noexcept;

  ServiceConfig cfg_;
  std::unique_ptr<WorkerPool> pool_;
  BufferArena arena_;
  /// mutable: metrics_json() folds point-in-time gauges in before snapshot.
  mutable obs::Registry registry_;
  /// Serializes shutdown() callers. Ranked above service_mutex_: shutdown()
  /// nests the service lock inside it, never the reverse.
  Mutex shutdown_mutex_;  // lock-level: lifecycle

  mutable Mutex service_mutex_;  // lock-level: service
  CondVar work_cv_;  ///< executors: work queued / stopping
  /// The watchdog sleeps on its own CV: if it shared work_cv_, submit()'s
  /// notify_one could wake the watchdog instead of an executor, leaving a
  /// deadline-less request queued until the next periodic sweep.
  CondVar watchdog_cv_;
  /// Priority-ordered pending requests.
  std::deque<std::shared_ptr<Pending>> queue_ RLA_GUARDED_BY(service_mutex_);
  /// The watchdog's view of executing requests.
  std::vector<std::shared_ptr<Pending>> running_ RLA_GUARDED_BY(service_mutex_);
  bool stopping_ RLA_GUARDED_BY(service_mutex_) = false;
  /// queued + running (admission counter).
  std::size_t inflight_ RLA_GUARDED_BY(service_mutex_) = 0;
  std::uint64_t next_id_ RLA_GUARDED_BY(service_mutex_) = 1;

  std::vector<std::thread> executors_ RLA_GUARDED_BY(shutdown_mutex_);
  std::thread watchdog_ RLA_GUARDED_BY(shutdown_mutex_);
};

}  // namespace rla::service
