#pragma once

// Gemm-as-a-service: a long-lived engine that owns one WorkerPool and one
// BufferArena and serves many concurrent gemm requests.
//
// Everything this repo built call-by-call — the degradation ladder, fault
// injection, Freivalds verification, the metrics registry, cooperative
// cancellation — becomes service policy here:
//
//   submit() ──► admission ──► queue (priority, FIFO within) ──► executor
//                  │                                               │
//                  │ queue full            deadline/stall          │ gemm()
//                  ▼                       (watchdog)              ▼
//               Rejected ◄─── expiry ──────────┘               finalize
//                                                     Completed / Degraded /
//                                                     Cancelled / Failed
//
// Guarantees (the soak harness asserts these under chaos):
//  * Every accepted request terminates with exactly one Outcome — never
//    hangs, never leaks, even when gemm faults or the deadline fires
//    mid-flight.
//  * Deadlines are enforced cooperatively: the watchdog sets the request's
//    cancel flag, the recursion prunes, and the driver raises Cancelled at
//    its next checkpoint.
//  * Admission is priority-aware and memory-aware: when the arena cannot
//    cover a request's footprint the service degrades it (fast → standard →
//    canonical, each step cheaper in temporaries) before rejecting.
//  * Backpressure: at most max_inflight requests queued+running; beyond
//    that submit() completes immediately with Rejected{reason="queue-full"}.
//
// Telemetry (DESIGN.md §15): submit() mints a request-scoped trace id that
// follows the request through the pool into every task span, trace event and
// the returned profile; an always-on flight recorder keeps a bounded ring of
// lifecycle events (admit/queue/start/degrade/retry/deadline/stall/finalize)
// that the watchdog dumps as a post-mortem bundle when it detects a stall;
// and an optional snapshotter thread folds the whole metrics surface —
// including per-priority latency quantiles and deadline-miss-rate SLO
// gauges — into a retained time series, exported as JSONL or Prometheus
// text exposition.
//
// Environment knobs (all optional; constructor arguments win):
//   RLA_SERVICE_THREADS        worker threads in the shared pool
//   RLA_SERVICE_EXECUTORS      concurrent request executors
//   RLA_SERVICE_MAX_INFLIGHT   backpressure bound (queued + running)
//   RLA_SERVICE_ARENA_MB       arena byte budget in MiB (0 = unlimited)
//   RLA_SERVICE_WATCHDOG_MS    watchdog sweep period
//   RLA_TELEMETRY_PERIOD_MS    snapshotter sample period (0 = no snapshotter)
//   RLA_TELEMETRY_FLIGHT_DUMP  bundle path armed for the watchdog stall dump

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/gemm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/flight_recorder.hpp"
#include "obs/telemetry/snapshotter.hpp"
#include "parallel/worker_pool.hpp"
#include "service/arena.hpp"
#include "support/sync.hpp"

namespace rla::service {

/// How one request ended. Exactly one of these per accepted request.
enum class Outcome : std::uint8_t {
  Completed,  ///< ran the configured path cleanly
  Degraded,   ///< completed, but on a cheaper path (see degradation_trail)
  Rejected,   ///< never ran: queue full, arena broke, or shutdown
  Cancelled,  ///< deadline expired while queued or running
  Failed,     ///< every attempt (including retries) raised a non-cancel error
};

std::string_view outcome_name(Outcome o) noexcept;

/// One gemm request. Operand pointers must stay valid until the returned
/// future resolves.
struct Request {
  std::uint32_t m = 0, n = 0, k = 0;
  double alpha = 1.0;
  const double* a = nullptr;
  std::size_t lda = 0;
  Op op_a = Op::None;
  const double* b = nullptr;
  std::size_t ldb = 0;
  Op op_b = Op::None;
  double beta = 0.0;
  double* c = nullptr;
  std::size_t ldc = 0;

  /// Per-request gemm configuration. `pool`, `cancel`, `threads` and
  /// `priority` are owned by the service and overwritten at admission.
  GemmConfig cfg;

  /// Larger runs first among queued requests (FIFO within a priority).
  int priority = 0;

  /// Wall-clock budget from submit(); 0 = none. An expired request is
  /// finalized Cancelled — from the queue immediately, from a running
  /// executor via the cooperative cancel flag.
  std::chrono::microseconds deadline{0};

  /// Attempts after the first on a non-cancellation failure (each retry may
  /// first degrade the config one more step). 0 = fail fast.
  int retry_budget = 1;

  /// Permit the admission/retry ladder to rewrite the config onto cheaper
  /// paths. When false a request that does not fit is rejected instead.
  bool allow_degradation = true;
};

/// Terminal record of one request.
struct Response {
  Outcome outcome = Outcome::Rejected;
  std::string reason;          ///< human-readable detail for non-Completed
  GemmProfile profile;         ///< profile of the final (successful) attempt
  /// Service-level events prepended to the gemm trail, e.g.
  /// "service:degraded:arena:fast->standard", "service:retry:1",
  /// "service:deadline". The gemm driver's own trail follows.
  std::vector<std::string> degradation_trail;
  int attempts = 0;            ///< gemm() invocations made (0 = rejected)
  std::uint64_t id = 0;        ///< service-assigned sequence number
  /// Request-scoped trace id, minted at submit() entry so even a Rejected
  /// response carries one. The same id appears in profile.trace_id, in every
  /// Chrome trace event of the request's gemm, and in its flight-recorder
  /// events — the join key across all observability surfaces.
  std::uint64_t trace_id = 0;
  double queue_seconds = 0.0;  ///< submit -> executor pickup
  double run_seconds = 0.0;    ///< executor pickup -> terminal
};

struct ServiceConfig {
  unsigned threads = 0;        ///< 0 = hardware_concurrency - 1
  unsigned executors = 2;      ///< concurrent requests actually running
  std::size_t max_inflight = 64;   ///< queued + running bound (backpressure)
  std::size_t arena_bytes = 0;     ///< 0 = unlimited
  std::chrono::milliseconds watchdog_period{10};
  /// A running request this far past its deadline (factor of the deadline,
  /// minimum one watchdog period) is reported stuck: the watchdog records a
  /// service.stalls_detected tick. Cancellation remains cooperative — the
  /// flag is already set — so this is detection, not preemption.
  double stall_factor = 2.0;

  /// Snapshotter sample period; 0 (the default) runs no snapshotter thread.
  std::chrono::milliseconds telemetry_period{0};
  /// When non-empty, the watchdog dumps the flight-recorder bundle here the
  /// first time it detects a stall (and the count lands in
  /// telemetry.flight.dumps). Empty = stall detection only, no auto-dump.
  std::string flight_dump_path;

  /// Overlay RLA_SERVICE_* / RLA_TELEMETRY_* environment variables onto the
  /// defaults.
  static ServiceConfig from_env();
};

/// The engine. Thread-safe: submit from any number of threads.
class GemmService {
 public:
  explicit GemmService(ServiceConfig cfg = ServiceConfig::from_env());

  /// Drains: every accepted request runs to a terminal outcome (deadlined
  /// ones still get cancelled by the watchdog) before the pool is torn down.
  ~GemmService();

  GemmService(const GemmService&) = delete;
  GemmService& operator=(const GemmService&) = delete;

  /// Submit one request. Always returns a future that resolves — with
  /// Rejected when backpressure or shutdown refused it.
  std::future<Response> submit(const Request& req)
      RLA_EXCLUDES(service_mutex_);

  /// Submit a batch; element i's future is result[i]. Elements are admitted
  /// independently — one rejected or faulting element does not disturb the
  /// rest (the batch-fault test pins this down).
  std::vector<std::future<Response>> submit_batch(const std::vector<Request>& reqs);

  /// Finish everything in flight, refuse new work. Idempotent; the
  /// destructor calls it.
  void shutdown() RLA_EXCLUDES(shutdown_mutex_, service_mutex_);

  /// Export queue/latency/outcome/arena/scheduler metrics (obs::Registry
  /// JSON snapshot, same shape trace_summary.py and bench_compare read).
  /// Includes the SLO surface: per-priority-class latency quantiles
  /// (service.slo.<class>.p50_ns/p95_ns/p99_ns), the deadline-miss rate and
  /// the oldest queued request's age.
  std::string metrics_json() const RLA_EXCLUDES(service_mutex_);

  /// The same metrics surface as metrics_json(), rendered as Prometheus
  /// text exposition (version 0.0.4) for scrape-style consumers.
  std::string telemetry_prometheus() const RLA_EXCLUDES(service_mutex_);

  /// The snapshotter's retained time series as JSONL (oldest first); empty
  /// string when no snapshotter is running (telemetry_period == 0).
  std::string telemetry_jsonl() const RLA_EXCLUDES(service_mutex_);

  /// Live introspection document: config, queue/running counts, and the
  /// inflight-request table (id, trace, priority, state, age). This is what
  /// the --serve SIGUSR1 status dump and the telemetry socket serve.
  std::string status_json() const RLA_EXCLUDES(service_mutex_);

  /// Write the post-mortem bundle (flight-recorder JSONL + inflight table +
  /// footer) to `path`. The events and the table are captured under one
  /// service_mutex_ hold, so the bundle is closed: every request with
  /// events but no finalize event appears in the inflight table. Returns
  /// false on I/O failure. The watchdog calls this on first stall when
  /// cfg.flight_dump_path is set; tests and operators may call it any time.
  bool dump_flight_bundle(const std::string& path) const
      RLA_EXCLUDES(service_mutex_);

  /// The always-on lifecycle event ring (for tests and external dumpers —
  /// e.g. wiring into install_fatal_dump).
  obs::telemetry::FlightRecorder& flight() const noexcept { return flight_; }

  std::size_t in_flight() const noexcept
      RLA_EXCLUDES(service_mutex_);  ///< queued + running now
  WorkerPool& pool() noexcept { return *pool_; }
  BufferArena& arena() noexcept { return arena_; }
  const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  struct Pending;  // shared between queue, executor, watchdog, and future

  void executor_main() RLA_EXCLUDES(service_mutex_);
  void watchdog_main() RLA_EXCLUDES(service_mutex_);
  /// Blocks; null = stop.
  std::shared_ptr<Pending> dequeue() RLA_EXCLUDES(service_mutex_);
  void run_request(const std::shared_ptr<Pending>& p)
      RLA_EXCLUDES(service_mutex_);
  void finalize(const std::shared_ptr<Pending>& p, Outcome outcome,
                std::string reason, GemmProfile profile)
      RLA_EXCLUDES(service_mutex_);
  /// Degrade p's config one step; false when already at the floor. Records
  /// a flight Degrade event when `record_flight` (suppressed during the
  /// admission ladder: the request is not admitted yet, and the bundle
  /// invariant only covers admitted requests).
  bool degrade_step(Pending& p, const char* why, bool record_flight);
  std::size_t estimate_bytes(const Request& req) const noexcept;
  /// Fold every point-in-time surface (queue gauges, arena, scheduler
  /// totals, SLO quantiles, telemetry counters) into registry_.
  void fold_runtime_metrics() const RLA_EXCLUDES(service_mutex_);
  /// One snapshotter sample: fold + registry snapshot.
  obs::json::Value telemetry_sample() const RLA_EXCLUDES(service_mutex_);
  /// Inflight table rows from open_ (id/trace/priority/state/age_ns).
  obs::json::Value inflight_table_locked() const RLA_REQUIRES(service_mutex_);
  bool dump_bundle_locked(const char* path) const RLA_REQUIRES(service_mutex_);

  ServiceConfig cfg_;
  std::unique_ptr<WorkerPool> pool_;
  BufferArena arena_;
  /// mutable: metrics_json() folds point-in-time gauges in before snapshot.
  mutable obs::Registry registry_;
  /// Always-on lifecycle ring; mutable because const introspection paths
  /// (dump_flight_bundle) read it and record() is the writers' concern.
  mutable obs::telemetry::FlightRecorder flight_;
  /// Bundle dumps performed (watchdog auto-dump + explicit calls).
  mutable std::atomic<std::uint64_t> flight_dumps_{0};
  /// Serializes shutdown() callers. Ranked above service_mutex_: shutdown()
  /// nests the service lock inside it, never the reverse.
  Mutex shutdown_mutex_;  // lock-level: lifecycle

  mutable Mutex service_mutex_;  // lock-level: service
  CondVar work_cv_;  ///< executors: work queued / stopping
  /// The watchdog sleeps on its own CV: if it shared work_cv_, submit()'s
  /// notify_one could wake the watchdog instead of an executor, leaving a
  /// deadline-less request queued until the next periodic sweep.
  CondVar watchdog_cv_;
  /// Priority-ordered pending requests.
  std::deque<std::shared_ptr<Pending>> queue_ RLA_GUARDED_BY(service_mutex_);
  /// The watchdog's view of executing requests.
  std::vector<std::shared_ptr<Pending>> running_ RLA_GUARDED_BY(service_mutex_);
  /// Every admitted-but-not-finalized request, keyed by id. Inserted in the
  /// same lock hold that records the Admit flight event, erased in the one
  /// that records Finalize — so a bundle dump (also one lock hold) always
  /// sees a closed set: open flight requests ⊆ this table. Unlike queue_ and
  /// running_, membership here is exact across the watchdog's erase-then-
  /// finalize window.
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> open_
      RLA_GUARDED_BY(service_mutex_);
  bool stopping_ RLA_GUARDED_BY(service_mutex_) = false;
  /// The watchdog's stall auto-dump fires once per service lifetime (the
  /// first bundle captures the interesting state; later stalls still record
  /// Stall events and operators can dump_flight_bundle() at will).
  mutable bool stall_dumped_ RLA_GUARDED_BY(service_mutex_) = false;
  /// queued + running (admission counter).
  std::size_t inflight_ RLA_GUARDED_BY(service_mutex_) = 0;
  std::uint64_t next_id_ RLA_GUARDED_BY(service_mutex_) = 1;

  std::vector<std::thread> executors_ RLA_GUARDED_BY(shutdown_mutex_);
  std::thread watchdog_ RLA_GUARDED_BY(shutdown_mutex_);
  /// Optional sampling thread (cfg.telemetry_period > 0). Constructed last
  /// and stopped by shutdown() after the drain, so its sampler — which
  /// reads pool_/arena_/service state — never outlives them.
  std::unique_ptr<obs::telemetry::Snapshotter> snapshotter_;
};

}  // namespace rla::service
