#include "service/arena.hpp"

#include <algorithm>

#include "analysis/annotations.hpp"
#include "analysis/numerics/shadow.hpp"

namespace rla::service {

namespace {

/// Size class of a request: next power of two, so recycled buffers from one
/// problem shape serve nearby shapes too.
std::size_t size_class(std::size_t count) noexcept {
  if (count <= 64) return 64;
  std::size_t c = 64;
  while (c < count) c <<= 1;
  return c;
}

}  // namespace

BufferArena::BufferArena(std::size_t budget_bytes) : budget_(budget_bytes) {}

void BufferArena::Reservation::release() noexcept {
  if (arena_ != nullptr) {
    arena_->release_reservation(bytes_);
    arena_ = nullptr;
    bytes_ = 0;
  }
}

BufferArena::Reservation BufferArena::try_reserve(std::size_t bytes) {
  MutexLock lock(arena_mutex_);
  // The budget caps reserved + cached: idle buffers count as real memory.
  if (budget_ != 0 &&
      bytes > budget_ - std::min(budget_, reserved_ + cached_)) {
    // Under pressure, cached (idle) buffers are the first thing to go:
    // evict, then re-check against live reservations only.
    if (cached_ != 0) {
      free_lists_.clear();
      cached_ = 0;
    }
    if (bytes > budget_ - std::min(budget_, reserved_)) {
      ++rejections_;
      return Reservation{};
    }
  }
  reserved_ += bytes;
  reserved_high_water_ = std::max(reserved_high_water_, reserved_);
  return Reservation{this, bytes};
}

void BufferArena::release_reservation(std::size_t bytes) noexcept {
  MutexLock lock(arena_mutex_);
  reserved_ -= std::min(reserved_, bytes);
}

AlignedBuffer<double> BufferArena::acquire(std::size_t count) {
  const std::size_t cls = size_class(count);
  {
    MutexLock lock(arena_mutex_);
    auto it = free_lists_.find(cls);
    if (it != free_lists_.end() && !it->second.empty()) {
      AlignedBuffer<double> buf = std::move(it->second.back());
      it->second.pop_back();
      cached_ -= std::min(cached_, buf.size() * sizeof(double));
      ++recycled_;
      // A recycled buffer must look freshly allocated to the race/shadow
      // analyzers: stale provenance from its previous request would read as
      // a determinacy race across logically unrelated task trees.
      analysis::hook_buffer_lifetime(buf.data(), buf.size() * sizeof(double));
      RLA_SHADOW_CLEAR(buf.data(), buf.size() * sizeof(double));
      return buf;
    }
    ++allocations_;
  }
  // Page-aligned like TiledMatrix's own storage (these buffers back tiled
  // conversion matrices). May throw bad_alloc: that feeds the caller's
  // degradation ladder exactly like a direct allocation failure.
  return AlignedBuffer<double>(cls, kPageBytes);
}

void BufferArena::release(AlignedBuffer<double> buf) {
  if (buf.empty()) return;
  const std::size_t bytes = buf.size() * sizeof(double);
  MutexLock lock(arena_mutex_);
  // The cache shares the budget with live reservations; never let idle
  // buffers squeeze out admissions.
  if (budget_ != 0 && reserved_ + cached_ + bytes > budget_) return;  // drop
  cached_ += bytes;
  free_lists_[size_class(buf.size())].push_back(std::move(buf));
}

void BufferArena::trim() noexcept {
  MutexLock lock(arena_mutex_);
  free_lists_.clear();
  cached_ = 0;
}

std::size_t BufferArena::reserved_bytes() const noexcept {
  MutexLock lock(arena_mutex_);
  return reserved_;
}

std::size_t BufferArena::cached_bytes() const noexcept {
  MutexLock lock(arena_mutex_);
  return cached_;
}

std::size_t BufferArena::reserved_high_water() const noexcept {
  MutexLock lock(arena_mutex_);
  return reserved_high_water_;
}

std::uint64_t BufferArena::recycled() const noexcept {
  MutexLock lock(arena_mutex_);
  return recycled_;
}

std::uint64_t BufferArena::allocations() const noexcept {
  MutexLock lock(arena_mutex_);
  return allocations_;
}

std::uint64_t BufferArena::rejections() const noexcept {
  MutexLock lock(arena_mutex_);
  return rejections_;
}

}  // namespace rla::service
