#pragma once

// Byte-budgeted buffer arena: the PR-1 allocation ladder promoted to
// service-level admission control.
//
// A single gemm call degrades when *its own* allocation fails; a service
// running many concurrent calls must not get that far — by the time malloc
// fails, every in-flight request is at risk. The arena moves the decision up
// front: each admitted request RESERVES its estimated tiled/temporary
// footprint against a fixed budget, and a request that does not fit is
// degraded to a cheaper configuration (fast → standard → canonical) or
// rejected before it allocates anything. Within the budget, the arena also
// RECYCLES aligned buffers across requests (size-class free lists), so a
// steady stream of same-shaped problems stops hammering the system
// allocator — the pooling Huang et al.'s BLIS-Strassen work argues shared
// packing/temp buffers need.
//
// Thread-safe; every method may be called from any executor thread.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "support/sync.hpp"
#include "util/aligned_buffer.hpp"

namespace rla::service {

class BufferArena {
 public:
  /// `budget_bytes` caps reserved + cached bytes. 0 = unlimited (reservations
  /// always succeed; recycling still works, nothing is ever dropped).
  explicit BufferArena(std::size_t budget_bytes);

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// RAII byte reservation. Empty (operator bool == false) when the arena
  /// could not admit the bytes; destruction releases automatically.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept { swap(other); }
    Reservation& operator=(Reservation&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    ~Reservation() { release(); }

    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;

    explicit operator bool() const noexcept { return arena_ != nullptr; }
    std::size_t bytes() const noexcept { return bytes_; }

    /// Release early (idempotent).
    void release() noexcept;

   private:
    friend class BufferArena;
    Reservation(BufferArena* arena, std::size_t bytes)
        : arena_(arena), bytes_(bytes) {}
    void swap(Reservation& other) noexcept {
      std::swap(arena_, other.arena_);
      std::swap(bytes_, other.bytes_);
    }

    BufferArena* arena_ = nullptr;
    std::size_t bytes_ = 0;
  };

  /// Reserve `bytes` against the budget, or return an empty Reservation when
  /// the remaining budget is insufficient (the caller then degrades or
  /// rejects). Zero-byte reservations always succeed.
  Reservation try_reserve(std::size_t bytes) RLA_EXCLUDES(arena_mutex_);

  /// A recycled (or fresh) buffer of at least `count` doubles. The returned
  /// buffer's size is the size-class rounding of `count` (next power of two),
  /// which is what makes cross-request reuse hit. Does NOT count against the
  /// budget by itself — callers hold a Reservation covering their footprint.
  AlignedBuffer<double> acquire(std::size_t count) RLA_EXCLUDES(arena_mutex_);

  /// Return a buffer to the free list for reuse. Dropped (freed) when
  /// caching it would exceed the budget's cache share.
  void release(AlignedBuffer<double> buf) RLA_EXCLUDES(arena_mutex_);

  /// Drop every cached buffer (memory-pressure valve; also used by tests).
  void trim() noexcept RLA_EXCLUDES(arena_mutex_);

  std::size_t budget() const noexcept { return budget_; }
  std::size_t reserved_bytes() const noexcept RLA_EXCLUDES(arena_mutex_);
  std::size_t cached_bytes() const noexcept RLA_EXCLUDES(arena_mutex_);
  std::size_t reserved_high_water() const noexcept RLA_EXCLUDES(arena_mutex_);
  /// acquires served from cache
  std::uint64_t recycled() const noexcept RLA_EXCLUDES(arena_mutex_);
  /// acquires that hit malloc
  std::uint64_t allocations() const noexcept RLA_EXCLUDES(arena_mutex_);
  /// failed try_reserve calls
  std::uint64_t rejections() const noexcept RLA_EXCLUDES(arena_mutex_);

 private:
  void release_reservation(std::size_t bytes) noexcept
      RLA_EXCLUDES(arena_mutex_);

  const std::size_t budget_;
  mutable Mutex arena_mutex_;  // lock-level: arena
  std::size_t reserved_ RLA_GUARDED_BY(arena_mutex_) = 0;
  std::size_t cached_ RLA_GUARDED_BY(arena_mutex_) = 0;
  std::size_t reserved_high_water_ RLA_GUARDED_BY(arena_mutex_) = 0;
  std::uint64_t recycled_ RLA_GUARDED_BY(arena_mutex_) = 0;
  std::uint64_t allocations_ RLA_GUARDED_BY(arena_mutex_) = 0;
  std::uint64_t rejections_ RLA_GUARDED_BY(arena_mutex_) = 0;
  /// Size-class free lists keyed by element count (power-of-two classes).
  std::map<std::size_t, std::vector<AlignedBuffer<double>>> free_lists_
      RLA_GUARDED_BY(arena_mutex_);
};

}  // namespace rla::service
