#include "service/service.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/schema.hpp"
#include "obs/telemetry/exposition.hpp"
#include "obs/telemetry/trace_id.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "util/env.hpp"

namespace rla::service {

using FlightKind = obs::telemetry::FlightEventKind;

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

std::uint64_t next_pow2(std::uint64_t v) noexcept {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// SLO bucketing: three coarse priority classes keep the per-class
/// histogram count fixed and the series names enumerable.
const char* priority_class(int priority) noexcept {
  return priority < 0 ? "low" : priority > 0 ? "high" : "normal";
}

constexpr const char* kPriorityClasses[] = {"low", "normal", "high"};

}  // namespace

std::string_view outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Completed:
      return "completed";
    case Outcome::Degraded:
      return "degraded";
    case Outcome::Rejected:
      return "rejected";
    case Outcome::Cancelled:
      return "cancelled";
    case Outcome::Failed:
      return "failed";
  }
  return "?";
}

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  cfg.threads = static_cast<unsigned>(
      std::max<std::int64_t>(0, env_int("RLA_SERVICE_THREADS", 0)));
  cfg.executors = static_cast<unsigned>(
      std::max<std::int64_t>(1, env_int("RLA_SERVICE_EXECUTORS", 2)));
  cfg.max_inflight = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("RLA_SERVICE_MAX_INFLIGHT", 64)));
  cfg.arena_bytes = static_cast<std::size_t>(std::max<std::int64_t>(
                        0, env_int("RLA_SERVICE_ARENA_MB", 0))) *
                    (std::size_t{1} << 20);
  cfg.watchdog_period = std::chrono::milliseconds(
      std::max<std::int64_t>(1, env_int("RLA_SERVICE_WATCHDOG_MS", 10)));
  cfg.telemetry_period = std::chrono::milliseconds(
      std::max<std::int64_t>(0, env_int("RLA_TELEMETRY_PERIOD_MS", 0)));
  cfg.flight_dump_path = env_string("RLA_TELEMETRY_FLIGHT_DUMP");
  return cfg;
}

/// Everything the queue, an executor, the watchdog and the caller's future
/// share about one request. Owned by shared_ptr: whoever finalizes last
/// keeps it alive, so no path can observe a freed request.
struct GemmService::Pending {
  Request req;
  std::promise<Response> promise;
  std::uint64_t id = 0;
  std::uint64_t trace = 0;  ///< minted at submit; immutable afterwards

  /// The cooperative cancel token GemmConfig::cancel points at. Set by the
  /// watchdog on deadline expiry, or by nobody.
  std::atomic<bool> cancel{false};
  std::atomic<bool> done{false};             ///< finalize-once latch
  std::atomic<bool> deadline_flagged{false};  ///< deadline metric fired
  std::atomic<bool> stall_flagged{false};     ///< stall metric fired

  Clock::time_point submit_tp{};
  Clock::time_point deadline_tp{};  ///< epoch = no deadline
  Clock::time_point run_tp{};       ///< executor pickup (epoch = never ran)
  /// Publishes run_tp: dequeue() writes run_tp then stores true (release);
  /// finalize() pairs with an acquire load. An atomic rather than a
  /// service_mutex_-guarded bool because finalize() must read it without
  /// the service lock (it may run on the submit path, pre-admission) and
  /// GUARDED_BY cannot name another object's mutex anyway.
  std::atomic<bool> started{false};

  BufferArena::Reservation reservation;

  /// Service-level trail ("service:..." entries). Executor and watchdog both
  /// append; tiny dedicated mutex so the watchdog never waits on a gemm.
  Mutex trail_mutex;  // lock-level: registry
  std::vector<std::string> trail RLA_GUARDED_BY(trail_mutex);
  int attempts RLA_GUARDED_BY(trail_mutex) = 0;

  void note(std::string entry) RLA_EXCLUDES(trail_mutex) {
    MutexLock lock(trail_mutex);
    trail.push_back(std::move(entry));
  }
  bool has_deadline() const noexcept {
    return deadline_tp != Clock::time_point{};
  }
};

GemmService::GemmService(ServiceConfig cfg)
    : cfg_(cfg), arena_(cfg.arena_bytes) {
  unsigned threads = cfg_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 1;
  }
  cfg_.threads = threads;
  cfg_.executors = std::max(1u, cfg_.executors);
  cfg_.max_inflight = std::max<std::size_t>(1, cfg_.max_inflight);
  pool_ = std::make_unique<WorkerPool>(threads);
  registry_.gauge("service.workers").set(pool_->thread_count());
  registry_.gauge("service.executors").set(cfg_.executors);
  registry_.gauge("service.max_inflight")
      .set(static_cast<std::int64_t>(cfg_.max_inflight));
  // Pre-register every series the canonical schema (obs/schema.hpp) tags,
  // so an export after a quiet run (or one where nothing was
  // rejected/retried) still carries every series — tools/soak_check.py
  // validates against the full set.
  for (const obs::schema::Entry& e : obs::schema::kMetrics) {
    if (!e.preregister) continue;
    const std::string name(e.name);
    switch (e.kind) {
      case obs::schema::Kind::Counter:
        registry_.counter(name);  // metric-family: schema
        break;
      case obs::schema::Kind::Gauge:
        registry_.gauge(name);  // metric-family: schema
        break;
      case obs::schema::Kind::Histogram:
        registry_.histogram(name);  // metric-family: schema
        break;
    }
  }
  for (Outcome o : {Outcome::Completed, Outcome::Degraded, Outcome::Rejected,
                    Outcome::Cancelled, Outcome::Failed}) {
    registry_.counter(std::string("service.outcome.") +  // metric-family: service.outcome.*
                      std::string(outcome_name(o)));
  }
  for (const char* cls : kPriorityClasses) {
    registry_.histogram(std::string("service.priority.") +  // metric-family: service.priority.*
                        cls + ".total_ns");
  }
  executors_.reserve(cfg_.executors);
  for (unsigned e = 0; e < cfg_.executors; ++e) {
    executors_.emplace_back([this] { executor_main(); });
  }
  watchdog_ = std::thread([this] { watchdog_main(); });
  if (cfg_.telemetry_period.count() > 0) {
    obs::telemetry::Snapshotter::Options opts;
    opts.period = cfg_.telemetry_period;
    snapshotter_ = std::make_unique<obs::telemetry::Snapshotter>(
        [this] { return telemetry_sample(); }, opts);
  }
}

GemmService::~GemmService() { shutdown(); }

std::size_t GemmService::in_flight() const noexcept {
  MutexLock lock(service_mutex_);
  return inflight_;
}

std::size_t GemmService::estimate_bytes(const Request& req) const noexcept {
  const auto m = static_cast<std::uint64_t>(req.m);
  const auto n = static_cast<std::uint64_t>(req.n);
  const auto k = static_cast<std::uint64_t>(req.k);
  const GemmConfig& g = req.cfg;
  if (g.layout == Curve::ColMajor) {
    // Canonical fast path: three padded square copies. Canonical standard:
    // in place on the caller's arrays, the admission floor.
    if (g.algorithm == Algorithm::Standard) return 0;
    const std::uint64_t p = next_pow2(std::max({m, n, k, std::uint64_t{1}}));
    return 3 * p * p * sizeof(double);
  }
  // Tiled path: three conversion matrices; padding to the tile grid at most
  // doubles each dimension, so 4x elements bounds the worst case.
  return 4 * (m * k + k * n + m * n) * sizeof(double);
}

bool GemmService::degrade_step(Pending& p, const char* why, bool record_flight) {
  GemmConfig& g = p.req.cfg;
  std::string step("service:degraded:");
  step += why;
  std::int64_t rung = 0;
  if (g.algorithm != Algorithm::Standard &&
      g.fast_variant != FastVariant::SerialLowMem) {
    g.fast_variant = FastVariant::SerialLowMem;
    p.note(step + ":fast->serial-lowmem");
    rung = 1;
  } else if (g.algorithm != Algorithm::Standard ||
             g.standard_variant != StandardVariant::InPlace) {
    g.algorithm = Algorithm::Standard;
    g.standard_variant = StandardVariant::InPlace;
    p.note(step + ":->standard-inplace");
    rung = 2;
  } else if (g.layout != Curve::ColMajor) {
    g.layout = Curve::ColMajor;
    p.note(step + ":->canonical");
    rung = 3;
  } else {
    return false;  // already at the floor
  }
  // Admission-ladder degrades (record_flight = false) stay out of the ring:
  // the request is not admitted yet, and the bundle-closure invariant only
  // covers requests between their Admit and Finalize events.
  if (record_flight) {
    flight_.record(FlightKind::Degrade, p.id, p.trace, rung);
  }
  return true;
}

std::future<Response> GemmService::submit(const Request& req) {
  auto p = std::make_shared<Pending>();
  p->req = req;
  p->submit_tp = Clock::now();
  if (req.deadline.count() > 0) p->deadline_tp = p->submit_tp + req.deadline;
  // Mint the request-scoped trace id before anything can fail: every
  // response — even a Rejected one — carries it, and the gemm driver makes
  // it ambient so trace events and the profile join back to this request.
  p->trace = obs::telemetry::mint_trace_id();
  p->req.cfg.trace_id = p->trace;
  std::future<Response> fut = p->promise.get_future();
  registry_.counter("service.submitted").add();

  bool slot_held = false;
  auto reject = [&](const char* reason) RLA_EXCLUDES(service_mutex_) {
    if (slot_held) {
      MutexLock lock(service_mutex_);
      --inflight_;
    }
    registry_.counter("service.rejected").add();
    Response r;
    r.outcome = Outcome::Rejected;
    r.reason = reason;
    r.id = p->id;
    r.trace_id = p->trace;
    p->done.store(true, std::memory_order_release);
    p->promise.set_value(std::move(r));
    return std::move(fut);
  };

  MutexLock lock(service_mutex_);
  if (stopping_) {
    lock.unlock();
    return reject("shutdown");
  }
  if (inflight_ >= cfg_.max_inflight) {
    lock.unlock();
    return reject("queue-full");
  }
  // Claim the inflight slot now so concurrent submits can't collectively
  // overshoot the bound during the (lock-free) arena admission below.
  ++inflight_;
  slot_held = true;
  p->id = next_id_++;
  lock.unlock();

  // Memory admission: reserve the estimated footprint, degrading the config
  // onto cheaper paths until it fits (the PR-1 ladder, run *before* any
  // allocation instead of after a failure).
  BufferArena::Reservation res = arena_.try_reserve(estimate_bytes(p->req));
  while (!res) {
    if (!p->req.allow_degradation || !degrade_step(*p, "arena", false)) {
      registry_.counter("service.arena_rejections").add();
      return reject("arena-budget");
    }
    registry_.counter("service.degraded_admission").add();
    res = arena_.try_reserve(estimate_bytes(p->req));
  }
  p->reservation = std::move(res);

  lock.lock();
  if (stopping_) {
    lock.unlock();
    return reject("shutdown");
  }
  // Priority-ordered insert, FIFO within a priority (same back-scan as the
  // pool's injection queue: the common same-priority case is O(1)).
  auto it = queue_.end();
  while (it != queue_.begin() && (*std::prev(it))->req.priority < p->req.priority) {
    --it;
  }
  queue_.insert(it, p);
  registry_.counter("service.accepted").add();
  registry_.gauge("service.queue_depth_high_water")
      .fold_max(static_cast<std::int64_t>(queue_.size()));
  // Admit + Queue under the same hold that makes the request visible, and
  // the open_ insert with them: a bundle dump (one hold of this mutex) can
  // then prove closure — flight events without a Finalize imply a row in
  // the inflight table.
  open_.emplace(p->id, p);
  flight_.record(FlightKind::Admit, p->id, p->trace, p->req.priority);
  flight_.record(FlightKind::Queue, p->id, p->trace,
                 static_cast<std::int64_t>(queue_.size()));
  lock.unlock();
  work_cv_.notify_one();  // publishes: queue_ (one new Pending)
  return fut;
}

std::vector<std::future<Response>> GemmService::submit_batch(
    const std::vector<Request>& reqs) {
  std::vector<std::future<Response>> futures;
  futures.reserve(reqs.size());
  for (const Request& r : reqs) futures.push_back(submit(r));
  return futures;
}

std::shared_ptr<GemmService::Pending> GemmService::dequeue() {
  MutexLock lock(service_mutex_);
  work_cv_.wait(service_mutex_, lock, [this]() RLA_REQUIRES(service_mutex_) {
    return stopping_ || !queue_.empty();
  });
  if (queue_.empty()) return nullptr;  // stopping and drained
  std::shared_ptr<Pending> p = queue_.front();
  queue_.pop_front();
  p->run_tp = Clock::now();
  // Release-publishes run_tp to finalize()'s acquire load.
  p->started.store(true, std::memory_order_release);
  running_.push_back(p);
  flight_.record(FlightKind::Start, p->id, p->trace);
  return p;
}

void GemmService::finalize(const std::shared_ptr<Pending>& p, Outcome outcome,
                           std::string reason, GemmProfile profile) {
  if (p->done.exchange(true, std::memory_order_acq_rel)) return;
  const Clock::time_point now = Clock::now();

  Response r;
  r.outcome = outcome;
  r.reason = std::move(reason);
  r.profile = std::move(profile);
  r.id = p->id;
  r.trace_id = p->trace;
  {
    MutexLock lock(p->trail_mutex);
    r.degradation_trail = p->trail;
    r.attempts = p->attempts;
  }
  // Service events first, then the gemm driver's own trail from the final
  // attempt — one list tells the request's whole degradation story.
  r.degradation_trail.insert(r.degradation_trail.end(),
                             r.profile.degradation_trail.begin(),
                             r.profile.degradation_trail.end());
  // Acquire pairs with dequeue()'s release store, making run_tp visible
  // even when the finalizer is the watchdog or a shutdown path rather than
  // the executor that picked the request up.
  const bool started = p->started.load(std::memory_order_acquire);
  const Clock::time_point picked = started ? p->run_tp : now;
  const std::int64_t queue_ns = ns_between(p->submit_tp, picked);
  const std::int64_t run_ns = started ? ns_between(p->run_tp, now) : 0;
  r.queue_seconds = static_cast<double>(queue_ns) * 1e-9;
  r.run_seconds = static_cast<double>(run_ns) * 1e-9;

  p->reservation.release();

  {
    MutexLock lock(service_mutex_);
    --inflight_;
    // Remove from whichever list still holds it (queue for never-run
    // requests finalized by the watchdog or shutdown).
    auto rit = std::find(running_.begin(), running_.end(), p);
    if (rit != running_.end()) running_.erase(rit);
    auto qit = std::find(queue_.begin(), queue_.end(), p);
    if (qit != queue_.end()) queue_.erase(qit);
    // Finalize in the same hold as the open_ erase — the closing half of
    // the bundle invariant (see submit()).
    open_.erase(p->id);
    flight_.record(FlightKind::Finalize, p->id, p->trace,
                   static_cast<std::int64_t>(outcome));
  }

  registry_.counter(std::string("service.outcome.") +  // metric-family: service.outcome.*
                    std::string(outcome_name(outcome)))
      .add();
  registry_.histogram("service.queue_ns").record(queue_ns);
  registry_.histogram("service.run_ns").record(run_ns);
  // Tree-profiled requests (GemmConfig::tree_profile): nodes attributed
  // across the service lifetime; 0-increment otherwise, so the preregistered
  // family always exports.
  registry_.counter("treeprof.nodes").add(r.profile.tree_profile.size());
  const std::int64_t total_ns = ns_between(p->submit_tp, now);
  registry_.histogram("service.total_ns").record(total_ns);
  registry_.histogram(std::string("service.priority.") +  // metric-family: service.priority.*
                      priority_class(p->req.priority) + ".total_ns")
      .record(total_ns);

  p->promise.set_value(std::move(r));
  watchdog_cv_.notify_all();  // publishes: inflight_ (drain exits at zero)
}

void GemmService::run_request(const std::shared_ptr<Pending>& p) {
  // A request whose deadline lapsed while queued never runs.
  if (p->cancel.load(std::memory_order_relaxed) ||
      (p->has_deadline() && Clock::now() >= p->deadline_tp)) {
    p->note("service:deadline");
    if (!p->deadline_flagged.exchange(true)) {
      registry_.counter("service.deadline_expired").add();
      flight_.record(FlightKind::Deadline, p->id, p->trace);
    }
    finalize(p, Outcome::Cancelled, "deadline expired in queue", {});
    return;
  }

  // Injected stall (fault site "service.stall"): the executor goes dark in
  // 1 ms slices. The first 50 slices deliberately ignore cancellation — a
  // stall that bailed the instant the watchdog flagged its deadline would
  // exit before `deadline + grace` elapses and the stall detector could
  // never fire, making `service.stalls_detected` (and the flight-recorder
  // dump it triggers) untestable. The loop stays hard-bounded at 200 ms
  // either way, so the every-request-terminates guarantee is intact.
  if (fault::should_fail(fault::Site::ServiceStall)) {
    p->note("service:stall-injected");
    for (int i = 0; i < 200; ++i) {
      if (i >= 50 && p->cancel.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const int max_attempts = 1 + std::max(0, p->req.retry_budget);
  std::string last_error;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GemmConfig cfg = p->req.cfg;  // degrade_step may rewrite between tries
    cfg.pool = pool_.get();
    cfg.threads = 0;
    cfg.cancel = &p->cancel;
    cfg.priority = p->req.priority;
    cfg.acquire_scratch = [this](std::size_t count) { return arena_.acquire(count); };
    cfg.release_scratch = [this](AlignedBuffer<double>&& buf) {
      arena_.release(std::move(buf));
    };

    GemmProfile profile;
    {
      MutexLock lock(p->trail_mutex);
      p->attempts = attempt + 1;
    }
    try {
      const Request& q = p->req;
      gemm(q.m, q.n, q.k, q.alpha, q.a, q.lda, q.op_a, q.b, q.ldb, q.op_b,
           q.beta, q.c, q.ldc, cfg, &profile);
      bool degraded = profile.degradations > 0;
      {
        // Only config rewrites and retries make the outcome Degraded;
        // informational entries (e.g. "service:stall-injected") on an
        // otherwise clean run do not.
        MutexLock lock(p->trail_mutex);
        for (const std::string& entry : p->trail) {
          if (entry.rfind("service:degraded:", 0) == 0 ||
              entry.rfind("service:retry:", 0) == 0) {
            degraded = true;
            break;
          }
        }
      }
      finalize(p, degraded ? Outcome::Degraded : Outcome::Completed, "",
               std::move(profile));
      return;
    } catch (const Error& e) {
      if (e.kind() == ErrorKind::Cancelled) {
        p->note("service:deadline");
        if (!p->deadline_flagged.exchange(true)) {
          registry_.counter("service.deadline_expired").add();
          flight_.record(FlightKind::Deadline, p->id, p->trace);
        }
        finalize(p, Outcome::Cancelled, e.what(), std::move(profile));
        return;
      }
      if (e.kind() == ErrorKind::Config) {
        // A malformed config (e.g. a bad fault spec) is deterministic: no
        // retry or degradation can make it parse. Fail fast like bad args.
        finalize(p, Outcome::Failed, e.what(), std::move(profile));
        return;
      }
      last_error = e.what();
    } catch (const std::invalid_argument& e) {
      // Bad arguments cannot succeed on retry; fail fast.
      finalize(p, Outcome::Failed, e.what(), std::move(profile));
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
    }
    if (attempt + 1 < max_attempts) {
      registry_.counter("service.retries").add();
      p->note("service:retry:" + std::to_string(attempt + 1));
      flight_.record(FlightKind::Retry, p->id, p->trace, attempt + 1);
      // Each retry steps the config down one rung first (when permitted):
      // retrying the exact configuration that just failed is only useful
      // against transient faults, and cheaper paths dodge persistent ones.
      if (p->req.allow_degradation) degrade_step(*p, "retry", true);
    }
  }
  finalize(p, Outcome::Failed, last_error, {});
}

void GemmService::executor_main() {
  while (std::shared_ptr<Pending> p = dequeue()) {
    run_request(p);
  }
}

void GemmService::watchdog_main() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> expired;
    {
      MutexLock lock(service_mutex_);
      // Predicate wait: wake early only for the drain condition; the
      // periodic deadline sweep runs on timeout. The predicate-less form
      // this replaces could absorb finalize()'s drain notify during a
      // sweep and push shutdown out by one period.
      const bool draining = watchdog_cv_.wait_for(
          service_mutex_, lock, cfg_.watchdog_period,
          [this]() RLA_REQUIRES(service_mutex_) {
            return stopping_ && inflight_ == 0;
          });
      if (draining) return;

      const Clock::time_point now = Clock::now();
      // Queued past their deadline: pull them out and finalize below
      // (outside the lock — finalize re-takes it).
      for (auto it = queue_.begin(); it != queue_.end();) {
        Pending& p = **it;
        if (p.has_deadline() && now >= p.deadline_tp) {
          p.cancel.store(true, std::memory_order_relaxed);
          expired.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& sp : running_) {
        Pending& p = *sp;
        if (!p.has_deadline()) continue;
        if (now >= p.deadline_tp) {
          // Cooperative: set the flag; the driver raises Cancelled at its
          // next checkpoint and the executor finalizes.
          p.cancel.store(true, std::memory_order_relaxed);
          if (!p.deadline_flagged.exchange(true)) {
            registry_.counter("service.deadline_expired").add();
            flight_.record(FlightKind::Deadline, p.id, p.trace);
          }
        }
        // Stuck detection (fault site semantics, not preemption): a request
        // this far past its deadline means a checkpoint is overdue —
        // an injected stall, a wedged worker, or a cancellation bug.
        const auto grace = std::max<Clock::duration>(
            cfg_.watchdog_period,
            std::chrono::duration_cast<Clock::duration>(
                (cfg_.stall_factor - 1.0) * p.req.deadline));
        if (now >= p.deadline_tp + grace && !p.stall_flagged.exchange(true)) {
          registry_.counter("service.stalls_detected").add();
          p.note("service:stall-detected");
          flight_.record(FlightKind::Stall, p.id, p.trace);
          // First stall: capture the post-mortem bundle while the stalled
          // request is still in flight. Same lock hold as the sweep, so
          // the bundle is a consistent point-in-time cut.
          if (!cfg_.flight_dump_path.empty() && !stall_dumped_) {
            stall_dumped_ = true;
            dump_bundle_locked(cfg_.flight_dump_path.c_str());
          }
        }
      }
    }
    for (const auto& sp : expired) {
      sp->note("service:deadline");
      if (!sp->deadline_flagged.exchange(true)) {
        registry_.counter("service.deadline_expired").add();
        flight_.record(FlightKind::Deadline, sp->id, sp->trace);
      }
      finalize(sp, Outcome::Cancelled, "deadline expired in queue", {});
    }
  }
}

void GemmService::shutdown() {
  MutexLock shutdown_lock(shutdown_mutex_);
  {
    MutexLock lock(service_mutex_);  // lifecycle → service nesting
    if (stopping_ && executors_.empty()) return;  // already shut down
    stopping_ = true;
  }
  work_cv_.notify_all();      // publishes: stopping_
  watchdog_cv_.notify_all();  // publishes: stopping_
  // Graceful drain: new submits bounce with Rejected{shutdown}, but every
  // already-accepted request still runs to a terminal outcome — executors
  // keep dequeuing until the queue is empty, and the watchdog keeps
  // enforcing deadlines on whatever is left, so a drain can never hang on
  // a stalled or overdue request.
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  watchdog_cv_.notify_all();  // publishes: inflight_ (drained to zero above)
  if (watchdog_.joinable()) watchdog_.join();
  // Stop sampling after the drain so the final sample (stop() takes one)
  // shows the drained end state: in_flight 0, terminal outcome totals.
  if (snapshotter_) snapshotter_->stop();
}

void GemmService::fold_runtime_metrics() const {
  // Fold the point-in-time surfaces (queue, arena, scheduler, SLO) into the
  // registry before a snapshot. The sched.total.* and exceptions_swallowed
  // names match what the per-call collector exports, so trace_summary.py
  // reads both without a sched_snapshot call.
  obs::Registry& reg = registry_;
  {
    MutexLock lock(service_mutex_);  // service → registry nesting
    reg.gauge("service.in_flight").set(static_cast<std::int64_t>(inflight_));
    reg.gauge("service.queue_depth").set(static_cast<std::int64_t>(queue_.size()));
    reg.gauge("service.running").set(static_cast<std::int64_t>(running_.size()));
    // Queue-age SLO gauge: how stale is the oldest queued request right now.
    std::int64_t oldest_ns = 0;
    const Clock::time_point now = Clock::now();
    for (const auto& sp : queue_) {
      oldest_ns = std::max(oldest_ns, ns_between(sp->submit_tp, now));
    }
    reg.gauge("service.slo.queue_age_ns").set(oldest_ns);  // metric-family: service.slo.*
  }
  reg.gauge("arena.budget_bytes").set(static_cast<std::int64_t>(arena_.budget()));
  reg.gauge("arena.reserved_bytes")
      .set(static_cast<std::int64_t>(arena_.reserved_bytes()));
  reg.gauge("arena.cached_bytes")
      .set(static_cast<std::int64_t>(arena_.cached_bytes()));
  reg.gauge("arena.reserved_high_water")
      .set(static_cast<std::int64_t>(arena_.reserved_high_water()));
  reg.counter("arena.recycled").set(arena_.recycled());
  reg.counter("arena.allocations").set(arena_.allocations());
  reg.counter("arena.rejections").set(arena_.rejections());
  reg.counter("sched.total.steals").set(pool_->steals());
  reg.counter("sched.total.failed_steals").set(pool_->failed_steals());
  reg.counter("sched.total.idle_wakeups").set(pool_->idle_wakeups());
  reg.counter("sched.total.injection_pops").set(pool_->injection_pops());
  reg.counter("sched.total.tasks").set(pool_->tasks_executed());
  reg.gauge("sched.total.deque_high_water").set(pool_->deque_high_water());
  reg.counter("sched.exceptions_swallowed").set(pool_->exceptions_swallowed());
  // SLO surface: per-priority-class end-to-end latency quantiles (from the
  // log2 histograms finalize() feeds, interpolated inside the bucket) and
  // the deadline-miss rate in parts per million of accepted requests.
  for (const char* cls : kPriorityClasses) {
    obs::Histogram& h =
        reg.histogram(std::string("service.priority.") +  // metric-family: service.priority.*
                      cls + ".total_ns");
    const std::string base = std::string("service.slo.") + cls;
    reg.gauge(base + ".p50_ns")  // metric-family: service.slo.*
        .set(static_cast<std::int64_t>(h.quantile_interpolated(0.50)));
    reg.gauge(base + ".p95_ns")  // metric-family: service.slo.*
        .set(static_cast<std::int64_t>(h.quantile_interpolated(0.95)));
    reg.gauge(base + ".p99_ns")  // metric-family: service.slo.*
        .set(static_cast<std::int64_t>(h.quantile_interpolated(0.99)));
  }
  const std::uint64_t accepted = reg.counter("service.accepted").value();
  const std::uint64_t missed = reg.counter("service.deadline_expired").value();
  reg.gauge("service.slo.deadline_miss_ppm")  // metric-family: service.slo.*
      .set(accepted > 0
               ? static_cast<std::int64_t>(missed * 1000000 / accepted)
               : 0);
  reg.counter("telemetry.flight.events").set(flight_.recorded());
  reg.counter("telemetry.flight.dropped").set(flight_.dropped());
  reg.counter("telemetry.flight.dumps")
      .set(flight_dumps_.load(std::memory_order_relaxed));
}

std::string GemmService::metrics_json() const {
  fold_runtime_metrics();
  return registry_.snapshot().dump();
}

obs::json::Value GemmService::telemetry_sample() const {
  registry_.counter("telemetry.snapshots").add();
  fold_runtime_metrics();
  return registry_.snapshot();
}

std::string GemmService::telemetry_prometheus() const {
  fold_runtime_metrics();
  return obs::telemetry::prometheus_text(registry_.snapshot());
}

std::string GemmService::telemetry_jsonl() const {
  return snapshotter_ ? snapshotter_->jsonl() : std::string();
}

obs::json::Value GemmService::inflight_table_locked() const {
  using obs::json::Value;
  const Clock::time_point now = Clock::now();
  Value rows = Value::array();
  for (const auto& [id, sp] : open_) {
    const Pending& p = *sp;
    Value row = Value::object();
    row.set("id", Value::number(id));
    row.set("trace", Value::number(p.trace));
    row.set("priority", Value::number(p.req.priority));
    // "finalizing": finalize() latched done but has not erased the row yet
    // (it records Finalize in that same later critical section).
    const char* state = p.done.load(std::memory_order_acquire) ? "finalizing"
                        : p.started.load(std::memory_order_acquire)
                            ? "running"
                            : "queued";
    row.set("state", Value::string(state));
    row.set("age_ns", Value::number(ns_between(p.submit_tp, now)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string GemmService::status_json() const {
  using obs::json::Value;
  Value o = Value::object();
  o.set("workers", Value::number(pool_->thread_count()));
  o.set("executors", Value::number(cfg_.executors));
  o.set("max_inflight", Value::number(cfg_.max_inflight));
  {
    MutexLock lock(service_mutex_);
    o.set("in_flight", Value::number(inflight_));
    o.set("queue_depth", Value::number(queue_.size()));
    o.set("running", Value::number(running_.size()));
    o.set("requests", inflight_table_locked());
  }
  o.set("flight_recorded", Value::number(flight_.recorded()));
  o.set("flight_dropped", Value::number(flight_.dropped()));
  o.set("flight_dumps",
        Value::number(flight_dumps_.load(std::memory_order_relaxed)));
  o.set("snapshots",
        Value::number(snapshotter_ ? snapshotter_->samples()
                                   : std::uint64_t{0}));
  return o.dump();
}

bool GemmService::dump_bundle_locked(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = flight_.dump_fd(fd);
  // The inflight table rides in the same file, captured in the same
  // service_mutex_ hold as the event dump above — that single hold is what
  // makes the bundle closed (soak_check.py --flight asserts it).
  using obs::json::Value;
  std::string tail;
  const Value rows = inflight_table_locked();
  for (const Value& row : rows.items()) {
    Value line = row;
    line.set("kind", Value::string("inflight"));
    tail += line.dump();
    tail += '\n';
  }
  Value footer = Value::object();
  footer.set("kind", Value::string("bundle_end"));
  footer.set("open", Value::number(open_.size()));
  footer.set("recorded", Value::number(flight_.recorded()));
  footer.set("dropped", Value::number(flight_.dropped()));
  tail += footer.dump();
  tail += '\n';
  const char* data = tail.data();
  std::size_t left = tail.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, data, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    data += w;
    left -= static_cast<std::size_t>(w);
  }
  ::close(fd);
  flight_dumps_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

bool GemmService::dump_flight_bundle(const std::string& path) const {
  MutexLock lock(service_mutex_);
  return dump_bundle_locked(path.c_str());
}

}  // namespace rla::service
