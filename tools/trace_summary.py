#!/usr/bin/env python3
"""Summarize a Chrome trace written by the rla observability collector.

Consumes the JSON produced by ``GemmConfig::trace_path`` / ``RLA_TRACE=file``
(see DESIGN.md section 10) and prints

  * per-worker utilization: exclusive task nanoseconds per thread over the
    trace's wall-clock extent,
  * the recursion-resolved per-depth table (exclusive time share, FLOPs,
    misses-per-FLOP, IPC) when the trace carries treeprof node spans,
  * the top-10 longest tasks by exclusive time,
  * the measured critical path: the chain of tasks from the root whose
    burdened contributions (off_ns + lat_ns + span_ns) dominate each
    parent's span, with the chain total cross-checked against the
    ``rla_summary`` block the collector embeds.

The tool is read-only and dependency-free (stdlib json only); CI runs it
against a traced smoke gemm to validate the trace end-to-end.

Usage:
  tools/trace_summary.py trace.json [--top N] [--json]
  tools/trace_summary.py --self-test

Exit status: 0 ok, 1 malformed or inconsistent trace, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_trace(path: Path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return None
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        print(f"error: {path} is not a Chrome trace (no traceEvents)", file=sys.stderr)
        return None
    return doc


def thread_names(events):
    """tid -> label from the M metadata events."""
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev.get("tid", 0)] = ev.get("args", {}).get("name", "")
    return names


def task_events(events):
    """Complete task spans. Events without an args.id (hand-edited or
    truncated traces) are dropped rather than crashing the walk below."""
    return [
        ev
        for ev in events
        if ev.get("ph") == "X"
        and ev.get("cat") == "task"
        and isinstance(ev.get("args"), dict)
        and "id" in ev["args"]
    ]


# Trace-arg keys on phase spans that are structure, not counters.
_PHASE_STRUCTURE_KEYS = {"id", "parent", "seq", "trace"}


def phase_events(events):
    return [ev for ev in events if ev.get("ph") == "X" and ev.get("cat") == "phase"]


def phase_table(phases):
    """Aggregate phase spans by name, in first-appearance order.

    Returns [{name, count, wall_ms, counters: {event: total}}]. The counters
    are whatever numeric args the collector attached beyond the structural
    ids — with hardware counting on, the perf events (cycles,
    l1d_read_misses, ...); otherwise empty.
    """
    order = []
    agg = {}
    for ev in sorted(phases, key=lambda e: e.get("ts", 0.0)):
        name = ev.get("name", "phase")
        if name not in agg:
            order.append(name)
            agg[name] = {"name": name, "count": 0, "wall_ms": 0.0, "counters": {}}
        entry = agg[name]
        entry["count"] += 1
        entry["wall_ms"] += ev.get("dur", 0.0) / 1e3
        args = ev.get("args")
        if isinstance(args, dict):
            for key, value in args.items():
                if key in _PHASE_STRUCTURE_KEYS:
                    continue
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    entry["counters"][key] = entry["counters"].get(key, 0) + value
    return [agg[name] for name in order]


# Node-span args that are structure or already-folded fields, not PMU
# counters to sum into the per-depth counter map.
_NODE_STRUCTURE_KEYS = {"id", "parent", "seq", "trace", "depth", "excl_ns", "flops"}


def node_events(events):
    """Recursion-tree node spans from the treeprof profiler (cat 'node')."""
    return [
        ev
        for ev in events
        if ev.get("ph") == "X"
        and ev.get("cat") == "node"
        and isinstance(ev.get("args"), dict)
        and "depth" in ev["args"]
    ]


def tree_table(nodes):
    """Fold node spans per recursion depth.

    Returns [{depth, spans, excl_ms, time_share, flops, counters, ...}] in
    depth order; l1_per_flop and ipc are present when the spans carried the
    corresponding PMU args (perf counting was on).
    """
    agg = {}
    for ev in nodes:
        args = ev["args"]
        depth = args["depth"]
        if not isinstance(depth, int) or isinstance(depth, bool):
            continue
        entry = agg.setdefault(
            depth,
            {"depth": depth, "spans": 0, "excl_ms": 0.0, "flops": 0, "counters": {}},
        )
        entry["spans"] += 1
        entry["excl_ms"] += args.get("excl_ns", 0) / 1e6
        entry["flops"] += args.get("flops", 0)
        for key, value in args.items():
            if key in _NODE_STRUCTURE_KEYS:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                entry["counters"][key] = entry["counters"].get(key, 0) + value
    rows = [agg[depth] for depth in sorted(agg)]
    total_ms = sum(r["excl_ms"] for r in rows)
    for r in rows:
        r["time_share"] = r["excl_ms"] / total_ms if total_ms > 0 else 0.0
        l1 = r["counters"].get("l1d_read_misses")
        if l1 is not None and r["flops"]:
            r["l1_per_flop"] = l1 / r["flops"]
        cycles = r["counters"].get("cycles")
        if cycles:
            r["ipc"] = r["counters"].get("instructions", 0) / cycles
    return rows


def utilization(tasks, events):
    """Per-tid (busy_ns, share-of-wall) over the trace extent."""
    if not events:
        return {}, 0.0
    timed = [ev for ev in events if "ts" in ev]
    start = min(ev["ts"] for ev in timed)
    end = max(ev["ts"] + ev.get("dur", 0.0) for ev in timed)
    wall_ns = max((end - start) * 1e3, 1.0)  # ts/dur are microseconds
    busy = defaultdict(float)
    for ev in tasks:
        busy[ev.get("tid", 0)] += ev["args"].get("excl_ns", 0)
    return {tid: (ns, ns / wall_ns) for tid, ns in sorted(busy.items())}, wall_ns


def critical_path(tasks):
    """Walk the executed DAG root-down along the dominant span contributions.

    Each task event carries its subtree's burdened span (span_ns) plus the
    burden it added to its parent (off_ns spawn overhead + lat_ns queue
    latency).  The chain from the root that repeatedly picks the child with
    the largest off + lat + span is the measured critical path; its burdened
    length matches the root's span_ns up to the exclusive time interleaving
    that the fold attributes to the parent.
    """
    if not tasks:
        return []
    children = defaultdict(list)
    by_id = {}
    for ev in tasks:
        args = ev["args"]
        by_id[args["id"]] = ev
        children[args.get("parent", 0)].append(ev)
    roots = [ev for ev in tasks if ev["args"].get("parent", 0) not in by_id]
    root = max(roots, key=lambda ev: ev["args"].get("span_ns", 0))
    chain = [root]
    seen = {root["args"]["id"]}
    node = root
    while True:
        kids = [ev for ev in children[node["args"]["id"]] if ev["args"]["id"] not in seen]
        if not kids:
            break
        node = max(
            kids,
            key=lambda ev: ev["args"].get("off_ns", 0)
            + ev["args"].get("lat_ns", 0)
            + ev["args"].get("span_ns", 0),
        )
        seen.add(node["args"]["id"])
        chain.append(node)
    return chain


def summarize(doc, top_n=10):
    """Build the summary dict; returns (summary, problems)."""
    problems = []
    events = doc["traceEvents"]
    names = thread_names(events)
    tasks = task_events(events)
    if not tasks:
        problems.append("trace contains no task events")
        return {}, problems

    util, wall_ns = utilization(tasks, events)
    total_excl = sum(ev["args"].get("excl_ns", 0) for ev in tasks)

    longest = sorted(tasks, key=lambda ev: ev["args"].get("excl_ns", 0), reverse=True)
    top = [
        {
            "id": ev["args"]["id"],
            "name": ev.get("name", "task"),
            "tid": ev.get("tid", 0),
            "excl_ms": ev["args"].get("excl_ns", 0) / 1e6,
            "dur_ms": ev.get("dur", 0.0) / 1e3,
            "migrated": ev["args"].get("migrated", False),
        }
        for ev in longest[:top_n]
    ]

    chain = critical_path(tasks)
    root_span = chain[0]["args"].get("span_ns", 0) if chain else 0
    path = [
        {
            "id": ev["args"]["id"],
            "name": ev.get("name", "task"),
            "excl_ms": ev["args"].get("excl_ns", 0) / 1e6,
            "burden_ms": (ev["args"].get("off_ns", 0) + ev["args"].get("lat_ns", 0)) / 1e6,
        }
        for ev in chain
    ]

    tree = tree_table(node_events(events))

    summary = {
        "phases": phase_table(phase_events(events)),
        "tasks": len(tasks),
        "wall_ms": wall_ns / 1e6,
        "work_ms": total_excl / 1e6,
        "span_ms": root_span / 1e6,
        "parallelism": total_excl / root_span if root_span else 0.0,
        "workers": {
            str(tid): {
                "name": names.get(tid, f"tid {tid}"),
                "busy_ms": ns / 1e6,
                "utilization": share,
            }
            for tid, (ns, share) in util.items()
        },
        "top_tasks": top,
        "critical_path": path,
        "critical_path_tasks": len(path),
    }
    if tree:
        summary["tree"] = tree

    # Whole-call perf counters from the metrics snapshot, when the trace has
    # one (rla_metrics and rla_summary are both optional extensions: a trace
    # from another producer, or a truncated file, summarizes fine without).
    metrics = doc.get("rla_metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("counters"), dict):
        perf = {
            key[len("perf.total."):]: value
            for key, value in metrics["counters"].items()
            if key.startswith("perf.total.") and isinstance(value, (int, float))
        }
        if perf:
            summary["hw_total"] = perf
        sched = {
            key[len("sched.total."):]: value
            for key, value in metrics["counters"].items()
            if key.startswith("sched.total.") and isinstance(value, (int, float))
        }
        swallowed = metrics["counters"].get("sched.exceptions_swallowed")
        if isinstance(swallowed, (int, float)):
            sched["exceptions_swallowed"] = swallowed
        if sched:
            summary["sched_total"] = sched

    # Service SLO gauges and telemetry-pipeline counters, for traces taken
    # through the service layer (rla_gemm --serve / rla_soak metrics).
    if isinstance(metrics, dict):
        slo = {}
        telemetry = {}
        for section in ("counters", "gauges"):
            values = metrics.get(section)
            if not isinstance(values, dict):
                continue
            for key, value in values.items():
                if not isinstance(value, (int, float)):
                    continue
                if key.startswith("service.slo."):
                    slo[key[len("service.slo."):]] = value
                elif key.startswith("telemetry."):
                    telemetry[key[len("telemetry."):]] = value
        if slo:
            summary["slo"] = slo
        if telemetry:
            summary["telemetry"] = telemetry

    embedded = doc.get("rla_summary")
    if isinstance(embedded, dict):
        summary["embedded"] = embedded
        dropped = embedded.get("events_dropped", 0)
        # With a complete trace the recomputed work must match the
        # collector's own accounting; with ring overflow it can only be less.
        emb_work = embedded.get("work_ns", 0)
        if not dropped and emb_work and abs(total_excl - emb_work) > 0.01 * emb_work:
            problems.append(
                f"recomputed work {total_excl} ns disagrees with embedded "
                f"work_ns {emb_work} despite events_dropped == 0"
            )
        emb_span = embedded.get("span_ns", 0)
        if not dropped and emb_span and root_span > emb_span * 1.01:
            problems.append(
                f"root span {root_span} ns exceeds embedded span_ns {emb_span}"
            )
    return summary, problems


def print_report(summary):
    print(
        f"trace: {summary['tasks']} tasks, wall {summary['wall_ms']:.2f} ms, "
        f"work {summary['work_ms']:.2f} ms, span {summary['span_ms']:.2f} ms, "
        f"parallelism {summary['parallelism']:.2f}"
    )
    print("per-worker utilization:")
    for tid, w in summary["workers"].items():
        print(
            f"  tid {tid:>3} {w['name']:<12} busy {w['busy_ms']:9.2f} ms  "
            f"util {100.0 * w['utilization']:5.1f}%"
        )
    if summary.get("phases"):
        # Union of counter names across phases, in first-seen order.
        counter_names = []
        for ph in summary["phases"]:
            for key in ph["counters"]:
                if key not in counter_names:
                    counter_names.append(key)
        header = "".join(f" {name:>18}" for name in counter_names)
        print(f"driver phases:{'' if counter_names else ' (no HW counters)'}")
        print(f"  {'phase':<12} {'spans':>5} {'wall_ms':>9}{header}")
        for ph in summary["phases"]:
            cells = "".join(
                f" {ph['counters'].get(name, 0):>18.0f}" for name in counter_names
            )
            print(f"  {ph['name']:<12} {ph['count']:>5} {ph['wall_ms']:>9.2f}{cells}")
    if summary.get("tree"):
        print("recursion tree (exclusive per depth):")
        print(
            f"  {'depth':<6} {'spans':>6} {'excl_ms':>10} {'share':>7} "
            f"{'gflop':>9} {'L1/flop':>11} {'ipc':>6}"
        )
        for r in summary["tree"]:
            l1 = f"{r['l1_per_flop']:.3e}" if "l1_per_flop" in r else "n/a"
            ipc = f"{r['ipc']:.2f}" if "ipc" in r else "n/a"
            print(
                f"  d{r['depth']:<5} {r['spans']:>6} {r['excl_ms']:>10.3f} "
                f"{100.0 * r['time_share']:>6.1f}% {r['flops'] / 1e9:>9.3f} "
                f"{l1:>11} {ipc:>6}"
            )
    if summary.get("hw_total"):
        total = "  ".join(f"{k}={v:.0f}" for k, v in sorted(summary["hw_total"].items()))
        print(f"hw totals: {total}")
    if summary.get("sched_total"):
        total = "  ".join(
            f"{k}={v:.0f}" for k, v in sorted(summary["sched_total"].items())
        )
        print(f"scheduler totals: {total}")
    if summary.get("slo"):
        total = "  ".join(f"{k}={v:.0f}" for k, v in sorted(summary["slo"].items()))
        print(f"service slo: {total}")
    if summary.get("telemetry"):
        total = "  ".join(
            f"{k}={v:.0f}" for k, v in sorted(summary["telemetry"].items())
        )
        print(f"telemetry: {total}")
    print(f"top {len(summary['top_tasks'])} tasks by exclusive time:")
    for t in summary["top_tasks"]:
        mig = " (migrated)" if t["migrated"] else ""
        print(
            f"  id {t['id']:>8} {t['name']:<12} tid {t['tid']} "
            f"excl {t['excl_ms']:8.3f} ms  dur {t['dur_ms']:8.3f} ms{mig}"
        )
    path = summary["critical_path"]
    print(f"critical path: {len(path)} tasks, span {summary['span_ms']:.2f} ms")
    for t in path[:12]:
        print(
            f"  id {t['id']:>8} {t['name']:<12} excl {t['excl_ms']:8.3f} ms  "
            f"burden {t['burden_ms']:8.3f} ms"
        )
    if len(path) > 12:
        print(f"  ... {len(path) - 12} more")


# --- self test ---------------------------------------------------------------

def _task(tid, id_, parent, ts, dur_us, excl_ns, span_ns, off_ns=0, lat_ns=0):
    return {
        "name": "task",
        "cat": "task",
        "pid": 1,
        "tid": tid,
        "ph": "X",
        "ts": ts,
        "dur": dur_us,
        "args": {
            "id": id_,
            "parent": parent,
            "seq": 0,
            "off_ns": off_ns,
            "lat_ns": lat_ns,
            "span_ns": span_ns,
            "excl_ns": excl_ns,
            "migrated": False,
        },
    }


def seeded_trace():
    """Root (id 1) with two children; child 3's subtree dominates the span."""
    events = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "rla"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "main"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "worker 0"}},
        # ts/dur in us; excl/span in ns.  Wall extent: 0 .. 100 us.
        _task(1, 2, 1, 10.0, 30.0, 30_000, 30_000, lat_ns=1_000),
        _task(1, 4, 3, 50.0, 20.0, 20_000, 20_000),
        _task(0, 3, 1, 40.0, 60.0, 40_000, 60_000, lat_ns=2_000),
        _task(0, 1, 0, 0.0, 100.0, 30_000, 92_000),
        # Driver phases, the second with HW-counter args attached.
        {"name": "convert.in", "cat": "phase", "pid": 1, "tid": 0, "ph": "X",
         "ts": 0.0, "dur": 20.0, "args": {"id": 10, "parent": 1, "seq": 0}},
        {"name": "compute", "cat": "phase", "pid": 1, "tid": 0, "ph": "X",
         "ts": 20.0, "dur": 70.0,
         "args": {"id": 11, "parent": 1, "seq": 0,
                  "cycles": 900_000, "l1d_read_misses": 4_200}},
        {"name": "compute", "cat": "phase", "pid": 1, "tid": 0, "ph": "X",
         "ts": 90.0, "dur": 10.0,
         "args": {"id": 12, "parent": 1, "seq": 0,
                  "cycles": 100_000, "l1d_read_misses": 800}},
        # Treeprof node spans: one root, two depth-1 quadrants (the second
        # pair of PMU args checks the counter fold and the IPC derivation).
        {"name": "d0", "cat": "node", "pid": 1, "tid": 0, "ph": "X",
         "ts": 20.0, "dur": 70.0,
         "args": {"id": 1, "parent": 0, "seq": 0, "depth": 0,
                  "excl_ns": 25_000, "flops": 1_000}},
        {"name": "d1:0", "cat": "node", "pid": 1, "tid": 0, "ph": "X",
         "ts": 25.0, "dur": 30.0,
         "args": {"id": 8, "parent": 0, "seq": 1, "depth": 1,
                  "excl_ns": 50_000, "flops": 1_000,
                  "l1d_read_misses": 300, "cycles": 1_000,
                  "instructions": 2_000}},
        {"name": "d1:1", "cat": "node", "pid": 1, "tid": 1, "ph": "X",
         "ts": 60.0, "dur": 30.0,
         "args": {"id": 9, "parent": 0, "seq": 1, "depth": 1,
                  "excl_ns": 25_000, "flops": 2_000,
                  "l1d_read_misses": 300, "cycles": 1_000}},
        # A truncated task event with no args: must be ignored, not fatal.
        {"name": "task", "cat": "task", "pid": 1, "tid": 0, "ph": "X",
         "ts": 95.0, "dur": 1.0},
    ]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "rla_summary": {
            "tasks": 4,
            "work_ns": 120_000,
            "span_ns": 92_000,
            "parallelism": 120.0 / 92.0,
            "events_dropped": 0,
        },
    }


def self_test() -> int:
    doc = seeded_trace()
    summary, problems = summarize(doc, top_n=10)
    if problems:
        print(f"self-test FAILED: seeded trace reported problems: {problems}")
        return 2
    path_ids = [t["id"] for t in summary["critical_path"]]
    if path_ids != [1, 3, 4]:
        print(f"self-test FAILED: critical path {path_ids}, expected [1, 3, 4]")
        return 2
    if abs(summary["work_ms"] - 0.12) > 1e-9:
        print(f"self-test FAILED: work {summary['work_ms']} ms, expected 0.12")
        return 2
    util0 = summary["workers"]["0"]["utilization"]
    if abs(util0 - 0.7) > 1e-6:  # 70 us busy on tid 0 over 100 us wall
        print(f"self-test FAILED: tid-0 utilization {util0}, expected 0.70")
        return 2
    phases = {p["name"]: p for p in summary["phases"]}
    if list(phases) != ["convert.in", "compute"]:
        print(f"self-test FAILED: phase order {list(phases)}")
        return 2
    if phases["compute"]["count"] != 2 or abs(phases["compute"]["wall_ms"] - 0.08) > 1e-9:
        print(f"self-test FAILED: compute aggregation {phases['compute']}")
        return 2
    if phases["compute"]["counters"] != {"cycles": 1_000_000, "l1d_read_misses": 5_000}:
        print(f"self-test FAILED: compute counters {phases['compute']['counters']}")
        return 2
    if phases["convert.in"]["counters"] != {}:
        print(f"self-test FAILED: convert.in counters {phases['convert.in']['counters']}")
        return 2
    # Per-depth recursion fold: shares, PMU counters and derived rates.
    tree = summary.get("tree")
    if not tree or [r["depth"] for r in tree] != [0, 1]:
        print(f"self-test FAILED: tree depths {tree}")
        return 2
    d0, d1 = tree
    if d0["spans"] != 1 or d1["spans"] != 2 or d1["flops"] != 3_000:
        print(f"self-test FAILED: tree aggregation {tree}")
        return 2
    if abs(d0["time_share"] - 0.25) > 1e-9 or abs(d1["time_share"] - 0.75) > 1e-9:
        print(f"self-test FAILED: tree time shares {d0, d1}")
        return 2
    if abs(d1.get("l1_per_flop", 0.0) - 0.2) > 1e-9:  # 600 misses / 3000 flops
        print(f"self-test FAILED: l1_per_flop {d1.get('l1_per_flop')}")
        return 2
    if abs(d1.get("ipc", 0.0) - 1.0) > 1e-9:  # 2000 instructions / 2000 cycles
        print(f"self-test FAILED: ipc {d1.get('ipc')}")
        return 2
    if "l1_per_flop" in d0 or "depth" in d1["counters"] or "excl_ns" in d1["counters"]:
        print(f"self-test FAILED: node structural args leaked {d0, d1}")
        return 2
    # A mutilated trace must be caught: inflate embedded work 10x.
    bad = seeded_trace()
    bad["rla_summary"]["work_ns"] = 1_200_000
    _, bad_problems = summarize(bad, top_n=10)
    if not bad_problems:
        print("self-test FAILED: inconsistent embedded summary not detected")
        return 2
    # Traces without the rla_summary / rla_metrics extensions (or with a
    # non-dict in their place) must summarize cleanly.
    bare = seeded_trace()
    del bare["rla_summary"]
    bare["rla_metrics"] = "bogus"
    bare_summary, bare_problems = summarize(bare, top_n=10)
    if (
        bare_problems
        or "embedded" in bare_summary
        or "hw_total" in bare_summary
        or "sched_total" in bare_summary
    ):
        print(f"self-test FAILED: bare trace: {bare_problems}")
        return 2
    # And the metrics snapshot surfaces whole-call perf and scheduler totals
    # when present (per-worker series stay out of the rollup).
    counted = seeded_trace()
    counted["rla_metrics"] = {"counters": {"perf.total.cycles": 1_000_000,
                                           "perf.w0.cycles": 500_000,
                                           "sched.w0.steals": 3,
                                           "sched.total.steals": 7,
                                           "sched.total.tasks": 11,
                                           "sched.exceptions_swallowed": 2,
                                           "telemetry.flight.events": 42},
             "gauges": {"service.slo.normal.p99_ns": 5_000_000,
                        "service.slo.deadline_miss_ppm": 1_250,
                        "telemetry.trace_id": 17}}
    counted_summary, _ = summarize(counted, top_n=10)
    if counted_summary.get("hw_total") != {"cycles": 1_000_000}:
        print(f"self-test FAILED: hw_total {counted_summary.get('hw_total')}")
        return 2
    if counted_summary.get("sched_total") != {
        "steals": 7,
        "tasks": 11,
        "exceptions_swallowed": 2,
    }:
        print(f"self-test FAILED: sched_total {counted_summary.get('sched_total')}")
        return 2
    if counted_summary.get("slo") != {
        "normal.p99_ns": 5_000_000,
        "deadline_miss_ppm": 1_250,
    }:
        print(f"self-test FAILED: slo {counted_summary.get('slo')}")
        return 2
    if counted_summary.get("telemetry") != {"flight.events": 42, "trace_id": 17}:
        print(f"self-test FAILED: telemetry {counted_summary.get('telemetry')}")
        return 2
    # The structural trace-id arg on phase spans must not be summed as if it
    # were a hardware counter.
    traced = seeded_trace()
    for ev in traced["traceEvents"]:
        if ev.get("cat") == "phase":
            ev.setdefault("args", {})["trace"] = 12345
    traced_summary, _ = summarize(traced, top_n=10)
    for ph in traced_summary["phases"]:
        if "trace" in ph["counters"]:
            print("self-test FAILED: trace id counted as a phase counter")
            return 2
    print("self-test OK: critical path, utilization, and consistency checks hold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="Chrome trace JSON from RLA_TRACE/trace_path")
    parser.add_argument("--top", type=int, default=10, help="tasks to list (default 10)")
    parser.add_argument("--json", action="store_true", help="emit the summary as JSON")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.trace:
        parser.print_usage(sys.stderr)
        return 2

    doc = load_trace(Path(args.trace))
    if doc is None:
        return 1
    summary, problems = summarize(doc, top_n=args.top)
    if summary:
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print_report(summary)
    for p in problems:
        print(f"problem: {p}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_summary.py t.json | head`
        sys.exit(0)
