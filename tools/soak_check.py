#!/usr/bin/env python3
"""Validate the metrics JSON exported by a rla_soak run.

Consumes the ``GemmService::metrics_json()`` snapshot (written via
``rla_soak --metrics=FILE`` after the service drained) and checks the
invariants a healthy soak must leave behind:

  * accounting closes: submitted == accepted + rejected, and the accepted
    total equals the sum of the terminal service.outcome.* counters;
  * everything drained: in_flight, queue_depth, running, and
    arena.reserved_bytes are all zero;
  * latency histograms exist and are populated: service.queue_ns /
    service.run_ns / service.total_ns each carry one record per accepted
    request (p99 present);
  * the scheduler and arena series the service folds in are present
    (sched.total.*, sched.exceptions_swallowed, arena.*).

Optional thresholds let CI gate outcomes (e.g. ``--min-completed 100``
or ``--max-failed-pct 50`` under heavy chaos).

Usage:
  tools/soak_check.py metrics.json [--min-completed N] [--max-failed-pct P]
  tools/soak_check.py --self-test

Exit status: 0 ok, 1 invariant violated or malformed input, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_COUNTERS = [
    "service.submitted",
    "service.accepted",
    "service.rejected",
    "arena.recycled",
    "arena.allocations",
    "arena.rejections",
    "sched.total.steals",
    "sched.total.tasks",
    "sched.exceptions_swallowed",
]

REQUIRED_GAUGES = [
    "service.in_flight",
    "service.queue_depth",
    "service.running",
    "service.workers",
    "service.executors",
    "service.max_inflight",
    "arena.budget_bytes",
    "arena.reserved_bytes",
    "arena.reserved_high_water",
]

OUTCOMES = ["completed", "degraded", "rejected", "cancelled", "failed"]

LATENCY_HISTOGRAMS = ["service.queue_ns", "service.run_ns", "service.total_ns"]


def check(doc, min_completed=0, max_failed_pct=100.0):
    """Return a list of problem strings (empty = metrics are consistent)."""
    problems = []
    if not isinstance(doc, dict):
        return ["metrics document is not a JSON object"]
    counters = doc.get("counters")
    gauges = doc.get("gauges")
    histograms = doc.get("histograms")
    if not isinstance(counters, dict) or not isinstance(gauges, dict):
        return ["metrics document lacks counters/gauges sections"]
    if not isinstance(histograms, dict):
        return ["metrics document lacks a histograms section"]

    for key in REQUIRED_COUNTERS:
        if not isinstance(counters.get(key), (int, float)):
            problems.append(f"missing counter {key}")
    for key in REQUIRED_GAUGES:
        if not isinstance(gauges.get(key), (int, float)):
            problems.append(f"missing gauge {key}")
    if problems:
        return problems

    submitted = counters["service.submitted"]
    accepted = counters["service.accepted"]
    rejected = counters["service.rejected"]
    if submitted != accepted + rejected:
        problems.append(
            f"accounting leak: submitted {submitted} != accepted {accepted} "
            f"+ rejected {rejected}"
        )
    # Terminal outcomes: every accepted request lands in exactly one bucket.
    # service.outcome.rejected counts double-bounces (admission rejections are
    # already in service.rejected and never accepted), so exclude it here.
    terminal = sum(
        counters.get(f"service.outcome.{name}", 0)
        for name in OUTCOMES
        if name != "rejected"
    )
    if terminal != accepted:
        problems.append(
            f"outcome leak: {accepted} accepted but {terminal} terminal outcomes"
        )

    for gauge in ["service.in_flight", "service.queue_depth", "service.running"]:
        if gauges[gauge] != 0:
            problems.append(f"not drained: {gauge} = {gauges[gauge]}")
    if gauges["arena.reserved_bytes"] != 0:
        problems.append(
            f"arena leak: reserved_bytes = {gauges['arena.reserved_bytes']}"
        )

    for name in LATENCY_HISTOGRAMS:
        hist = histograms.get(name)
        if not isinstance(hist, dict):
            problems.append(f"missing histogram {name}")
            continue
        count = hist.get("count", 0)
        if count != accepted:
            problems.append(
                f"{name}: {count} records for {accepted} accepted requests"
            )
        if not isinstance(hist.get("p99"), (int, float)):
            problems.append(f"{name}: no p99")

    completed = counters.get("service.outcome.completed", 0) + counters.get(
        "service.outcome.degraded", 0
    )
    if completed < min_completed:
        problems.append(
            f"only {completed} requests completed (threshold {min_completed})"
        )
    failed = counters.get("service.outcome.failed", 0)
    if accepted and 100.0 * failed / accepted > max_failed_pct:
        problems.append(
            f"failure rate {100.0 * failed / accepted:.1f}% exceeds "
            f"{max_failed_pct:.1f}%"
        )
    return problems


# --- self test ---------------------------------------------------------------

def seeded_metrics():
    """A drained, closed-books snapshot (shape of GemmService::metrics_json)."""
    hist = {"count": 90, "sum": 1, "max": 1, "p50": 1, "p99": 1, "buckets": [90]}
    return {
        "counters": {
            "service.submitted": 100,
            "service.accepted": 90,
            "service.rejected": 10,
            "service.outcome.completed": 60,
            "service.outcome.degraded": 15,
            "service.outcome.cancelled": 10,
            "service.outcome.failed": 5,
            "arena.recycled": 40,
            "arena.allocations": 12,
            "arena.rejections": 2,
            "sched.total.steals": 7,
            "sched.total.tasks": 1000,
            "sched.exceptions_swallowed": 0,
        },
        "gauges": {
            "service.in_flight": 0,
            "service.queue_depth": 0,
            "service.running": 0,
            "service.workers": 3,
            "service.executors": 2,
            "service.max_inflight": 64,
            "arena.budget_bytes": 1 << 28,
            "arena.reserved_bytes": 0,
            "arena.reserved_high_water": 1 << 20,
        },
        "histograms": {name: dict(hist) for name in LATENCY_HISTOGRAMS},
    }


def self_test() -> int:
    good = seeded_metrics()
    problems = check(good, min_completed=70)
    if problems:
        print(f"self-test FAILED: clean snapshot flagged: {problems}")
        return 2

    cases = {
        "accounting leak": lambda d: d["counters"].update({"service.rejected": 9}),
        "outcome leak": lambda d: d["counters"].update(
            {"service.outcome.failed": 6}
        ),
        "not drained": lambda d: d["gauges"].update({"service.in_flight": 3}),
        "arena leak": lambda d: d["gauges"].update({"arena.reserved_bytes": 4096}),
        "histogram mismatch": lambda d: d["histograms"][
            "service.queue_ns"
        ].update({"count": 89}),
        "missing counter": lambda d: d["counters"].pop("sched.exceptions_swallowed"),
        "threshold": None,  # handled below
    }
    for label, mutate in cases.items():
        if mutate is None:
            continue
        doc = json.loads(json.dumps(seeded_metrics()))
        mutate(doc)
        if not check(doc):
            print(f"self-test FAILED: '{label}' mutation not detected")
            return 2
    if not check(seeded_metrics(), min_completed=99):
        print("self-test FAILED: min-completed threshold not enforced")
        return 2
    if not check(seeded_metrics(), max_failed_pct=1.0):
        print("self-test FAILED: max-failed-pct threshold not enforced")
        return 2
    print("self-test OK: accounting, drain, histogram and threshold checks hold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", nargs="?", help="metrics JSON from rla_soak --metrics")
    parser.add_argument("--min-completed", type=int, default=0,
                        help="require at least N Completed+Degraded requests")
    parser.add_argument("--max-failed-pct", type=float, default=100.0,
                        help="max percentage of accepted requests ending Failed")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.metrics:
        parser.print_usage(sys.stderr)
        return 2

    path = Path(args.metrics)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return 1

    problems = check(doc, args.min_completed, args.max_failed_pct)
    for p in problems:
        print(f"problem: {p}", file=sys.stderr)
    if not problems:
        counters = doc["counters"]
        print(
            f"soak metrics ok: {counters['service.submitted']:.0f} submitted, "
            f"{counters['service.accepted']:.0f} accepted, "
            f"{counters.get('service.outcome.completed', 0):.0f} completed, "
            f"{counters.get('service.outcome.degraded', 0):.0f} degraded, "
            f"{counters.get('service.outcome.cancelled', 0):.0f} cancelled, "
            f"{counters.get('service.outcome.failed', 0):.0f} failed, "
            f"arena recycled {counters['arena.recycled']:.0f}x"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
