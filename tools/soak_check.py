#!/usr/bin/env python3
"""Validate the metrics JSON exported by a rla_soak run.

Consumes the ``GemmService::metrics_json()`` snapshot (written via
``rla_soak --metrics=FILE`` after the service drained) and checks the
invariants a healthy soak must leave behind:

  * accounting closes: submitted == accepted + rejected, and the accepted
    total equals the sum of the terminal service.outcome.* counters;
  * everything drained: in_flight, queue_depth, running, and
    arena.reserved_bytes are all zero;
  * latency histograms exist and are populated: service.queue_ns /
    service.run_ns / service.total_ns each carry one record per accepted
    request (p99 present);
  * the scheduler and arena series the service folds in are present
    (sched.total.*, sched.exceptions_swallowed, arena.*).

Optional thresholds let CI gate outcomes (e.g. ``--min-completed 100``
or ``--max-failed-pct 50`` under heavy chaos).

``--flight BUNDLE`` additionally validates a flight-recorder post-mortem
bundle (``rla_soak --flight-dump`` / ``GemmService::dump_flight_bundle``):
header line, global seq order, per-request lifecycle order (admit first,
nothing after finalize), per-request time monotonicity (small cross-thread
slack), the closure invariant (every request with ring events but no
finalize appears in the bundle's inflight table, and vice versa — only
checkable when the ring reports zero drops), and the ``bundle_end`` footer
whose ``open`` count must equal the number of inflight rows.
``--require-stall`` demands at least one ``stall`` event, which is how CI
proves the watchdog actually captured the bundle from its stall path.

Usage:
  tools/soak_check.py metrics.json [--min-completed N] [--max-failed-pct P]
                      [--flight BUNDLE] [--require-stall]
  tools/soak_check.py --self-test

Exit status: 0 ok, 1 invariant violated or malformed input, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_COUNTERS = [
    "service.submitted",
    "service.accepted",
    "service.rejected",
    "arena.recycled",
    "arena.allocations",
    "arena.rejections",
    "sched.total.steals",
    "sched.total.tasks",
    "sched.exceptions_swallowed",
]

REQUIRED_GAUGES = [
    "service.in_flight",
    "service.queue_depth",
    "service.running",
    "service.workers",
    "service.executors",
    "service.max_inflight",
    "arena.budget_bytes",
    "arena.reserved_bytes",
    "arena.reserved_high_water",
]

OUTCOMES = ["completed", "degraded", "rejected", "cancelled", "failed"]

LATENCY_HISTOGRAMS = ["service.queue_ns", "service.run_ns", "service.total_ns"]


def check(doc, min_completed=0, max_failed_pct=100.0):
    """Return a list of problem strings (empty = metrics are consistent)."""
    problems = []
    if not isinstance(doc, dict):
        return ["metrics document is not a JSON object"]
    counters = doc.get("counters")
    gauges = doc.get("gauges")
    histograms = doc.get("histograms")
    if not isinstance(counters, dict) or not isinstance(gauges, dict):
        return ["metrics document lacks counters/gauges sections"]
    if not isinstance(histograms, dict):
        return ["metrics document lacks a histograms section"]

    for key in REQUIRED_COUNTERS:
        if not isinstance(counters.get(key), (int, float)):
            problems.append(f"missing counter {key}")
    for key in REQUIRED_GAUGES:
        if not isinstance(gauges.get(key), (int, float)):
            problems.append(f"missing gauge {key}")
    if problems:
        return problems

    submitted = counters["service.submitted"]
    accepted = counters["service.accepted"]
    rejected = counters["service.rejected"]
    if submitted != accepted + rejected:
        problems.append(
            f"accounting leak: submitted {submitted} != accepted {accepted} "
            f"+ rejected {rejected}"
        )
    # Terminal outcomes: every accepted request lands in exactly one bucket.
    # service.outcome.rejected counts double-bounces (admission rejections are
    # already in service.rejected and never accepted), so exclude it here.
    terminal = sum(
        counters.get(f"service.outcome.{name}", 0)
        for name in OUTCOMES
        if name != "rejected"
    )
    if terminal != accepted:
        problems.append(
            f"outcome leak: {accepted} accepted but {terminal} terminal outcomes"
        )

    for gauge in ["service.in_flight", "service.queue_depth", "service.running"]:
        if gauges[gauge] != 0:
            problems.append(f"not drained: {gauge} = {gauges[gauge]}")
    if gauges["arena.reserved_bytes"] != 0:
        problems.append(
            f"arena leak: reserved_bytes = {gauges['arena.reserved_bytes']}"
        )

    for name in LATENCY_HISTOGRAMS:
        hist = histograms.get(name)
        if not isinstance(hist, dict):
            problems.append(f"missing histogram {name}")
            continue
        count = hist.get("count", 0)
        if count != accepted:
            problems.append(
                f"{name}: {count} records for {accepted} accepted requests"
            )
        if not isinstance(hist.get("p99"), (int, float)):
            problems.append(f"{name}: no p99")

    completed = counters.get("service.outcome.completed", 0) + counters.get(
        "service.outcome.degraded", 0
    )
    if completed < min_completed:
        problems.append(
            f"only {completed} requests completed (threshold {min_completed})"
        )
    failed = counters.get("service.outcome.failed", 0)
    if accepted and 100.0 * failed / accepted > max_failed_pct:
        problems.append(
            f"failure rate {100.0 * failed / accepted:.1f}% exceeds "
            f"{max_failed_pct:.1f}%"
        )
    return problems


# --- flight-recorder bundle --------------------------------------------------

# Events recorded by concurrent threads (watchdog vs executor) may carry
# slightly out-of-order timestamps relative to their global ticket order.
TIME_SLACK_NS = 5_000_000

# Lifecycle rank per event kind; a request's events must never step backwards
# below "queue" re-entry (degrade/retry/deadline/stall float freely between
# start and finalize, so they share the running rank).
_LIFECYCLE_RANK = {
    "admit": 0,
    "queue": 1,
    "start": 2,
    "degrade": 2,
    "retry": 2,
    "deadline": 2,
    "stall": 2,
    "finalize": 3,
}


def check_flight(lines, require_stall=False):
    """Validate a flight-recorder bundle given as an iterable of JSONL lines.

    Returns a list of problem strings (empty = bundle is consistent).
    """
    problems = []
    records = []
    for i, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            records.append((i, json.loads(raw)))
        except json.JSONDecodeError as err:
            return [f"flight line {i}: not JSON ({err})"]
    if not records:
        return ["flight bundle is empty"]

    _, header = records[0]
    if header.get("kind") != "flight_recorder":
        return ["flight bundle does not start with a flight_recorder header"]
    for key in ("recorded", "dropped", "capacity"):
        if not isinstance(header.get(key), int):
            problems.append(f"flight header: missing {key}")
    if problems:
        return problems
    dropped = header["dropped"]

    events = []
    inflight = {}
    footer = None
    for i, doc in records[1:]:
        kind = doc.get("kind")
        if kind == "inflight":
            if footer is not None:
                problems.append(f"flight line {i}: inflight row after bundle_end")
            rid = doc.get("id")
            if not isinstance(rid, int):
                problems.append(f"flight line {i}: inflight row without id")
                continue
            if rid in inflight:
                problems.append(f"flight line {i}: duplicate inflight id {rid}")
            inflight[rid] = doc
        elif kind == "bundle_end":
            if footer is not None:
                problems.append(f"flight line {i}: duplicate bundle_end")
            footer = (i, doc)
        elif kind is None:
            events.append((i, doc))
        else:
            problems.append(f"flight line {i}: unknown kind {kind!r}")

    # Global seq order: the dump walks the ring oldest-first, so the global
    # ticket must be strictly increasing down the file.
    prev_seq = -1
    per_request = {}
    for i, ev in events:
        for key in ("seq", "request", "trace", "t_ns"):
            if not isinstance(ev.get(key), int):
                problems.append(f"flight line {i}: event missing {key}")
                break
        else:
            if ev["seq"] <= prev_seq:
                problems.append(
                    f"flight line {i}: seq {ev['seq']} not above {prev_seq}"
                )
            prev_seq = ev["seq"]
            per_request.setdefault(ev["request"], []).append((i, ev))

    for rid, evs in per_request.items():
        rank = -1
        last_t = None
        finalized = False
        for i, ev in evs:
            name = ev.get("event")
            if name not in _LIFECYCLE_RANK:
                problems.append(f"flight line {i}: unknown event {name!r}")
                continue
            if finalized:
                problems.append(
                    f"flight line {i}: request {rid} has events after finalize"
                )
            if _LIFECYCLE_RANK[name] < rank:
                problems.append(
                    f"flight line {i}: request {rid} lifecycle steps backwards "
                    f"({name} after rank {rank})"
                )
            rank = max(rank, _LIFECYCLE_RANK[name])
            if name == "finalize":
                finalized = True
            if last_t is not None and ev["t_ns"] + TIME_SLACK_NS < last_t:
                problems.append(
                    f"flight line {i}: request {rid} time runs backwards by "
                    f"{last_t - ev['t_ns']} ns"
                )
            last_t = max(last_t or 0, ev["t_ns"])
        if dropped == 0 and evs and evs[0][1].get("event") != "admit":
            problems.append(
                f"request {rid}: first ring event is "
                f"{evs[0][1].get('event')!r}, not admit (and ring reports "
                f"zero drops)"
            )

    # Closure: the dump snapshots events and the inflight table in one lock
    # hold, so (with no ring drops) a request that has events but never
    # finalized must still be open — and every open request must have at
    # least its admit event in the ring.
    if dropped == 0:
        unfinalized = {
            rid
            for rid, evs in per_request.items()
            if not any(ev.get("event") == "finalize" for _, ev in evs)
        }
        for rid in sorted(unfinalized - set(inflight)):
            problems.append(
                f"closure: request {rid} has ring events, no finalize, and "
                f"is missing from the inflight table"
            )
        for rid in sorted(set(inflight) - set(per_request)):
            problems.append(
                f"closure: inflight request {rid} has no ring events despite "
                f"zero drops"
            )

    if footer is None:
        problems.append("flight bundle has no bundle_end footer")
    else:
        i, doc = footer
        open_count = doc.get("open")
        if open_count != len(inflight):
            problems.append(
                f"flight line {i}: footer open={open_count} but "
                f"{len(inflight)} inflight rows"
            )

    if require_stall and not any(
        ev.get("event") == "stall" for _, ev in events
    ):
        problems.append("no stall event in bundle (--require-stall)")
    return problems


# --- self test ---------------------------------------------------------------

def seeded_metrics():
    """A drained, closed-books snapshot (shape of GemmService::metrics_json)."""
    hist = {"count": 90, "sum": 1, "max": 1, "p50": 1, "p99": 1, "buckets": [90]}
    return {
        "counters": {
            "service.submitted": 100,
            "service.accepted": 90,
            "service.rejected": 10,
            "service.outcome.completed": 60,
            "service.outcome.degraded": 15,
            "service.outcome.cancelled": 10,
            "service.outcome.failed": 5,
            "arena.recycled": 40,
            "arena.allocations": 12,
            "arena.rejections": 2,
            "sched.total.steals": 7,
            "sched.total.tasks": 1000,
            "sched.exceptions_swallowed": 0,
        },
        "gauges": {
            "service.in_flight": 0,
            "service.queue_depth": 0,
            "service.running": 0,
            "service.workers": 3,
            "service.executors": 2,
            "service.max_inflight": 64,
            "arena.budget_bytes": 1 << 28,
            "arena.reserved_bytes": 0,
            "arena.reserved_high_water": 1 << 20,
        },
        "histograms": {name: dict(hist) for name in LATENCY_HISTOGRAMS},
    }


def seeded_bundle():
    """A consistent post-mortem bundle: request 1 completed, 2 stalled
    mid-run, 3 still queued at dump time."""
    ms = 1_000_000  # fixture timestamps in ms so slack violations register
    lines = [
        {"kind": "flight_recorder", "recorded": 9, "dropped": 0, "capacity": 64},
        {"seq": 0, "request": 1, "trace": 11, "t_ns": 1 * ms, "event": "admit", "detail": 0},
        {"seq": 1, "request": 1, "trace": 11, "t_ns": 2 * ms, "event": "queue", "detail": 1},
        {"seq": 2, "request": 2, "trace": 12, "t_ns": 3 * ms, "event": "admit", "detail": 0},
        {"seq": 3, "request": 2, "trace": 12, "t_ns": 4 * ms, "event": "queue", "detail": 2},
        {"seq": 4, "request": 1, "trace": 11, "t_ns": 5 * ms, "event": "start", "detail": 0},
        {"seq": 5, "request": 1, "trace": 11, "t_ns": 9 * ms, "event": "finalize", "detail": 0},
        {"seq": 6, "request": 2, "trace": 12, "t_ns": 10 * ms, "event": "start", "detail": 0},
        {"seq": 7, "request": 3, "trace": 13, "t_ns": 11 * ms, "event": "admit", "detail": 0},
        {"seq": 8, "request": 2, "trace": 12, "t_ns": 50 * ms, "event": "stall", "detail": 0},
        {"id": 2, "trace": 12, "priority": 0, "state": "running", "age_ns": 45 * ms, "kind": "inflight"},
        {"id": 3, "trace": 13, "priority": 0, "state": "queued", "age_ns": 40 * ms, "kind": "inflight"},
        {"kind": "bundle_end", "open": 2, "recorded": 9, "dropped": 0},
    ]
    # request 3: admitted but its queue event raced the dump — still closed,
    # because admit lands in the same lock hold as the open-table insert.
    return [json.dumps(line) for line in lines]


def self_test() -> int:
    good = seeded_metrics()
    problems = check(good, min_completed=70)
    if problems:
        print(f"self-test FAILED: clean snapshot flagged: {problems}")
        return 2

    cases = {
        "accounting leak": lambda d: d["counters"].update({"service.rejected": 9}),
        "outcome leak": lambda d: d["counters"].update(
            {"service.outcome.failed": 6}
        ),
        "not drained": lambda d: d["gauges"].update({"service.in_flight": 3}),
        "arena leak": lambda d: d["gauges"].update({"arena.reserved_bytes": 4096}),
        "histogram mismatch": lambda d: d["histograms"][
            "service.queue_ns"
        ].update({"count": 89}),
        "missing counter": lambda d: d["counters"].pop("sched.exceptions_swallowed"),
        "threshold": None,  # handled below
    }
    for label, mutate in cases.items():
        if mutate is None:
            continue
        doc = json.loads(json.dumps(seeded_metrics()))
        mutate(doc)
        if not check(doc):
            print(f"self-test FAILED: '{label}' mutation not detected")
            return 2
    if not check(seeded_metrics(), min_completed=99):
        print("self-test FAILED: min-completed threshold not enforced")
        return 2
    if not check(seeded_metrics(), max_failed_pct=1.0):
        print("self-test FAILED: max-failed-pct threshold not enforced")
        return 2

    if check_flight(seeded_bundle(), require_stall=True):
        print(
            f"self-test FAILED: clean bundle flagged: "
            f"{check_flight(seeded_bundle(), require_stall=True)}"
        )
        return 2

    def mutate_bundle(fn):
        lines = [json.loads(line) for line in seeded_bundle()]
        fn(lines)
        return [json.dumps(line) for line in lines]

    flight_cases = {
        "seq regression": lambda l: l[5].update({"seq": 2}),
        "event after finalize": lambda l: l[7].update(
            {"request": 1, "trace": 11}
        ),
        "lifecycle backwards": lambda l: l[7].update({"event": "admit"}),
        "time backwards": lambda l: l[9].update({"t_ns": 1}),
        "closure (missing inflight row)": lambda l: l.pop(11),
        "closure (inflight without events)": lambda l: l[10].update({"id": 9}),
        "footer count": lambda l: l[12].update({"open": 1}),
        "missing footer": lambda l: l.pop(12),
        "headerless": lambda l: l.pop(0),
    }
    for label, mutate in flight_cases.items():
        if not check_flight(mutate_bundle(mutate)):
            print(f"self-test FAILED: flight '{label}' mutation not detected")
            return 2
    no_stall = mutate_bundle(lambda l: l[9].update({"event": "deadline"}))
    if check_flight(no_stall) or not check_flight(no_stall, require_stall=True):
        print("self-test FAILED: --require-stall not enforced")
        return 2

    print(
        "self-test OK: accounting, drain, histogram, threshold and "
        "flight-bundle checks hold"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", nargs="?", help="metrics JSON from rla_soak --metrics")
    parser.add_argument("--min-completed", type=int, default=0,
                        help="require at least N Completed+Degraded requests")
    parser.add_argument("--max-failed-pct", type=float, default=100.0,
                        help="max percentage of accepted requests ending Failed")
    parser.add_argument("--flight", metavar="BUNDLE",
                        help="also validate a flight-recorder bundle (JSONL)")
    parser.add_argument("--require-stall", action="store_true",
                        help="fail unless the bundle holds a stall event")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.metrics:
        parser.print_usage(sys.stderr)
        return 2

    path = Path(args.metrics)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return 1

    problems = check(doc, args.min_completed, args.max_failed_pct)
    if args.flight:
        try:
            with open(args.flight) as fh:
                flight_lines = fh.readlines()
        except OSError as err:
            print(f"error: cannot read {args.flight}: {err}", file=sys.stderr)
            return 1
        flight_problems = check_flight(flight_lines, args.require_stall)
        if not flight_problems:
            n_events = sum(
                1 for line in flight_lines
                if line.strip() and '"kind"' not in line
            )
            print(f"flight bundle ok: {n_events} events, closure holds")
        problems.extend(flight_problems)
    for p in problems:
        print(f"problem: {p}", file=sys.stderr)
    if not problems:
        counters = doc["counters"]
        print(
            f"soak metrics ok: {counters['service.submitted']:.0f} submitted, "
            f"{counters['service.accepted']:.0f} accepted, "
            f"{counters.get('service.outcome.completed', 0):.0f} completed, "
            f"{counters.get('service.outcome.degraded', 0):.0f} degraded, "
            f"{counters.get('service.outcome.cancelled', 0):.0f} cancelled, "
            f"{counters.get('service.outcome.failed', 0):.0f} failed, "
            f"arena recycled {counters['arena.recycled']:.0f}x"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
