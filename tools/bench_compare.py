#!/usr/bin/env python3
"""Diff two bench --json reports and flag performance regressions.

    bench_compare.py BASE.json NEW.json [--threshold=0.15] [--metric=median_gflops]

Compares the per-benchmark ``summary`` entries (median/min GFLOPS written by
bench_main's --json exporter). A benchmark regresses when its NEW value drops
more than ``threshold`` (a fraction: 0.15 = 15%) below BASE. Exit status:

    0  no regression (improvements and new/removed benchmarks are reported
       but never fail the run)
    1  at least one regression beyond the threshold
    2  usage or unreadable/malformed input

Benchmarks present in only one report are listed as added/removed and
tolerated: CI machines differ, and a renamed benchmark must not make every
subsequent run red. Stdlib only; ``--self-test`` exercises the comparison
logic on synthetic reports.
"""

import argparse
import json
import sys


def load_summary(path, metric):
    """Return {benchmark name: metric value} from one bench --json report."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        raise SystemExit(f"bench_compare: cannot read {path}: {err}")
    summary = report.get("summary")
    if not isinstance(summary, list):
        raise SystemExit(f"bench_compare: {path} has no summary array")
    out = {}
    for entry in summary:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        value = entry.get(metric)
        if isinstance(name, str) and isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def compare(base, new, threshold):
    """Classify each benchmark; returns (rows, regressed_names).

    rows are (status, name, base_value, new_value, change) with change as a
    fraction (+0.10 = 10% faster) or None for added/removed entries.
    """
    rows = []
    regressed = []
    for name in sorted(set(base) | set(new)):
        if name not in new:
            rows.append(("removed", name, base[name], None, None))
            continue
        if name not in base:
            rows.append(("added", name, None, new[name], None))
            continue
        b, n = base[name], new[name]
        if b <= 0:
            # A degenerate baseline (0 GFLOPS) cannot regress meaningfully.
            rows.append(("skipped", name, b, n, None))
            continue
        change = (n - b) / b
        if change < -threshold:
            status = "REGRESSED"
            regressed.append(name)
        elif change > threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append((status, name, b, n, change))
    return rows, regressed


def print_rows(rows, metric):
    width = max((len(r[1]) for r in rows), default=4)
    print(f"{'status':<10} {'benchmark':<{width}} {'base':>10} {'new':>10} {'change':>8}  ({metric})")
    for status, name, b, n, change in rows:
        base_s = f"{b:.3f}" if b is not None else "-"
        new_s = f"{n:.3f}" if n is not None else "-"
        change_s = f"{change:+.1%}" if change is not None else "-"
        print(f"{status:<10} {name:<{width}} {base_s:>10} {new_s:>10} {change_s:>8}")


def self_test():
    base = {"a": 10.0, "b": 10.0, "c": 10.0, "gone": 5.0, "zero": 0.0}
    new = {"a": 10.5, "b": 8.0, "c": 13.0, "fresh": 2.0, "zero": 1.0}
    rows, regressed = compare(base, new, threshold=0.15)
    by_name = {r[1]: r[0] for r in rows}
    assert by_name == {
        "a": "ok",           # +5% within threshold
        "b": "REGRESSED",    # -20% beyond threshold
        "c": "improved",     # +30%
        "gone": "removed",
        "fresh": "added",
        "zero": "skipped",   # degenerate baseline
    }, by_name
    assert regressed == ["b"], regressed

    # Tighter threshold flags the small drop too.
    _, regressed = compare({"a": 10.0, "b": 10.0}, {"a": 9.6, "b": 10.0}, 0.02)
    assert regressed == ["a"], regressed
    # Identical reports never regress.
    _, regressed = compare(base, dict(base), 0.0)
    assert regressed == [], regressed
    # Empty reports are fine (a filtered run compares nothing).
    rows, regressed = compare({}, {}, 0.1)
    assert rows == [] and regressed == []

    # End-to-end through the JSON loader.
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "r.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"summary": [
                {"name": "x", "median_gflops": 3.0, "min_gflops": 2.5},
                {"name": "bad"},              # no value: skipped
                "not-an-object",              # tolerated
            ]}, handle)
        loaded = load_summary(path, "median_gflops")
        assert loaded == {"x": 3.0}, loaded
        loaded = load_summary(path, "min_gflops")
        assert loaded == {"x": 2.5}, loaded
    print("bench_compare: self-test ok")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", nargs="?", help="baseline bench --json report")
    parser.add_argument("new", nargs="?", help="candidate bench --json report")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional drop (default 0.15 = 15%%)")
    parser.add_argument("--metric", default="median_gflops",
                        choices=["median_gflops", "min_gflops"])
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.base is None or args.new is None:
        parser.print_usage(sys.stderr)
        return 2
    if args.threshold < 0:
        print("bench_compare: threshold must be >= 0", file=sys.stderr)
        return 2

    base = load_summary(args.base, args.metric)
    new = load_summary(args.new, args.metric)
    rows, regressed = compare(base, new, args.threshold)
    print_rows(rows, args.metric)
    if regressed:
        print(f"\n{len(regressed)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressed)}")
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
