// Traced gemm driver: run one C = A·B and emit observability artifacts.
//
//   rla_gemm --m=1024 --n=1024 --k=1024 --threads=4 --layout=z
//            --algorithm=strassen --trace=trace.json --profile=profile.json
//
// --trace writes a Chrome trace-event file (chrome://tracing / Perfetto);
// --profile writes GemmProfile::to_json(). With neither, measurement still
// runs and a one-line summary goes to stdout. This binary is what the CI
// observability job drives and what tools/trace_summary.py consumes.

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/gemm.hpp"
#include "util/cli.hpp"

namespace {

void usage(const char* prog) {
  std::printf(
      "usage: %s [--m=N] [--n=N] [--k=N] [--threads=N] [--layout=z|u|h|x|col]\n"
      "          [--algorithm=standard|strassen|winograd] [--seed=N]\n"
      "          [--trace=FILE] [--profile=FILE] [--profile-json=FILE]\n"
      "          [--perf] [--no-measure]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  const rla::CliArgs args(argc, argv);
  if (args.get_bool("help")) {
    usage(argv[0]);
    return 0;
  }

  const auto m = static_cast<std::uint32_t>(args.get_int("m", 1024));
  const auto n = static_cast<std::uint32_t>(args.get_int("n", m));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", m));
  if (m == 0 || n == 0 || k == 0) {
    std::fprintf(stderr, "rla_gemm: extents must be positive\n");
    return 2;
  }

  rla::GemmConfig cfg;
  cfg.threads = static_cast<unsigned>(args.get_int("threads", 4));
  cfg.trace_path = args.get("trace");
  cfg.measure = !args.get_bool("no-measure");
  cfg.hw_counters = args.get_bool("perf");
  if (!rla::parse_curve(args.get("layout", "z"), cfg.layout)) {
    std::fprintf(stderr, "rla_gemm: unknown layout '%s'\n",
                 args.get("layout").c_str());
    return 2;
  }
  if (!rla::parse_algorithm(args.get("algorithm", "standard"), cfg.algorithm)) {
    std::fprintf(stderr, "rla_gemm: unknown algorithm '%s'\n",
                 args.get("algorithm").c_str());
    return 2;
  }

  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(m) * k);
  std::vector<double> b(static_cast<std::size_t>(k) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (double& x : a) x = dist(rng);
  for (double& x : b) x = dist(rng);

  rla::GemmProfile profile;
  try {
    rla::gemm(m, n, k, 1.0, a.data(), m, rla::Op::None, b.data(), k,
              rla::Op::None, 0.0, c.data(), m, cfg, &profile);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rla_gemm: %s\n", e.what());
    return 1;
  }

  // --profile-json is an alias kept for scripts that spell the format out.
  std::string profile_path = args.get("profile");
  if (profile_path.empty()) profile_path = args.get("profile-json");
  if (!profile_path.empty()) {
    std::ofstream out(profile_path);
    out << profile.to_json() << "\n";
    if (!out) {
      std::fprintf(stderr, "rla_gemm: cannot write %s\n", profile_path.c_str());
      return 1;
    }
  }

  const double gflops =
      profile.total > 0.0 ? 2.0 * m * n * static_cast<double>(k) / profile.total / 1e9
                          : 0.0;
  std::printf(
      "gemm %ux%ux%u threads=%u total=%.3fs gflops=%.2f tasks=%llu steals=%llu "
      "parallelism=%.2f span=%.3fms trace=%s\n",
      m, n, k, profile.sched.workers, profile.total, gflops,
      static_cast<unsigned long long>(profile.sched.tasks),
      static_cast<unsigned long long>(profile.sched.steals),
      profile.achieved_parallelism, profile.measured_span * 1e3,
      profile.trace_file.empty() ? "(none)" : profile.trace_file.c_str());
  return 0;
}
