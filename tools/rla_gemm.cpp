// Traced gemm driver: run one C = A·B and emit observability artifacts.
//
//   rla_gemm --m=1024 --n=1024 --k=1024 --threads=4 --layout=z
//            --algorithm=strassen --trace=trace.json --profile=profile.json
//
// --trace writes a Chrome trace-event file (chrome://tracing / Perfetto);
// --profile writes GemmProfile::to_json(). With neither, measurement still
// runs and a one-line summary goes to stdout. This binary is what the CI
// observability job drives and what tools/trace_summary.py consumes.
//
// --serve routes the call through the GemmService engine instead of a direct
// gemm() (admission, deadline, retry and arena policy all apply; the
// RLA_SERVICE_* environment variables configure the engine). --batch=N
// submits N independent requests of the same shape as one batch and reports
// per-outcome totals. --service-metrics=FILE dumps the engine's registry
// snapshot afterwards — the same JSON tools/soak_check.py reads.
//
// Live introspection while serving: SIGUSR1 prints the status document
// (inflight table with ids/traces/states, queue depths, flight-recorder
// counters) to stderr, and --telemetry-socket=PATH (or RLA_TELEMETRY_SOCKET)
// serves the Prometheus exposition over a Unix socket, one document per
// connection.

#include <csignal>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/gemm.hpp"
#include "obs/telemetry/endpoint.hpp"
#include "obs/treeprof/treeprof.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

namespace {

/// SIGUSR1 handshake: the handler only flips this flag; a poller thread does
/// the non-signal-safe status rendering.
volatile std::sig_atomic_t g_status_requested = 0;

void on_sigusr1(int) { g_status_requested = 1; }

void usage(const char* prog) {
  std::printf(
      "usage: %s [--m=N] [--n=N] [--k=N] [--threads=N] [--layout=z|u|h|x|col]\n"
      "          [--algorithm=standard|strassen|winograd] [--seed=N]\n"
      "          [--trace=FILE] [--profile=FILE] [--profile-json=FILE]\n"
      "          [--perf] [--no-measure] [--tree-profile] [--flame=FILE]\n"
      "          [--serve] [--batch=N] [--deadline-ms=N] [--priority=N]\n"
      "          [--service-metrics=FILE] [--telemetry-socket=PATH]\n"
      "          [--telemetry-ms=N]\n",
      prog);
}

/// Fold GemmProfile::tree_profile per depth and print the attribution table
/// plus the reconciliation line against the compute phase.
void print_tree_table(const rla::GemmProfile& profile) {
  if (!profile.tree_measured) return;
  struct Row {
    std::uint64_t nodes = 0, time_ns = 0, flops = 0, tasks = 0;
    double l1 = 0.0, instructions = 0.0, cycles = 0.0;
    bool hw = false;
  };
  std::vector<Row> rows;
  std::uint64_t total_ns = 0;
  for (const rla::GemmProfile::TreeNode& node : profile.tree_profile) {
    const int d = std::atoi(node.key.c_str() + 1);
    if (d < 0) continue;
    if (rows.size() <= static_cast<std::size_t>(d)) {
      rows.resize(static_cast<std::size_t>(d) + 1);
    }
    Row& row = rows[static_cast<std::size_t>(d)];
    row.nodes++;
    row.time_ns += node.time_ns;
    row.flops += node.flops;
    row.tasks += node.tasks;
    total_ns += node.time_ns;
    if (node.hw_valid) {
      row.hw = true;
      row.l1 += static_cast<double>(node.hw.l1d_read_misses);
      row.instructions += static_cast<double>(node.hw.instructions);
      row.cycles += static_cast<double>(node.hw.cycles);
    }
  }
  std::printf("tree profile: %zu nodes\n", profile.tree_profile.size());
  std::printf("  %-5s %6s %10s %7s %8s %8s %12s %6s\n", "depth", "nodes",
              "time-ms", "time%", "gflop", "tasks", "L1miss/flop", "IPC");
  for (std::size_t d = 0; d < rows.size(); ++d) {
    const Row& row = rows[d];
    if (row.nodes == 0) continue;
    char l1buf[32], ipcbuf[32];
    if (row.hw && row.flops > 0) {
      std::snprintf(l1buf, sizeof l1buf, "%.3e",
                    row.l1 / static_cast<double>(row.flops));
    } else {
      std::snprintf(l1buf, sizeof l1buf, "n/a");
    }
    if (row.hw && row.cycles > 0.0) {
      std::snprintf(ipcbuf, sizeof ipcbuf, "%.2f",
                    row.instructions / row.cycles);
    } else {
      std::snprintf(ipcbuf, sizeof ipcbuf, "n/a");
    }
    std::printf("  d%-4zu %6llu %10.3f %6.1f%% %8.3f %8llu %12s %6s\n", d,
                static_cast<unsigned long long>(row.nodes),
                static_cast<double>(row.time_ns) / 1e6,
                total_ns > 0 ? 100.0 * static_cast<double>(row.time_ns) /
                                   static_cast<double>(total_ns)
                             : 0.0,
                static_cast<double>(row.flops) / 1e9,
                static_cast<unsigned long long>(row.tasks), l1buf, ipcbuf);
  }
  // Tree time is exclusive CPU time summed over all workers, so the
  // comparable phase budget is compute wall time × workers. On a serial run
  // that is the compute phase itself and coverage should be ~100%; in
  // parallel the shortfall is worker idle/steal time.
  if (profile.compute > 0.0) {
    const double tree_s = static_cast<double>(total_ns) / 1e9;
    const unsigned workers = std::max(1u, profile.sched.workers);
    std::printf(
        "  reconcile: tree=%.3fms compute=%.3fms x %u workers "
        "cpu-coverage=%.1f%%\n",
        tree_s * 1e3, profile.compute * 1e3, workers,
        100.0 * tree_s / (profile.compute * workers));
  }
}

/// --flame=FILE: exclusive time per node as flamegraph.pl folded stacks.
bool write_flame(const std::string& path, const rla::GemmProfile& profile) {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  rows.reserve(profile.tree_profile.size());
  for (const rla::GemmProfile::TreeNode& node : profile.tree_profile) {
    rows.emplace_back(node.key, node.time_ns);
  }
  std::ofstream out(path);
  out << rla::obs::treeprof::folded_stacks(rows);
  return static_cast<bool>(out);
}

/// --serve / --batch: drive the request(s) through a GemmService.
int run_served(const rla::CliArgs& args, std::uint32_t m, std::uint32_t n,
               std::uint32_t k, const rla::GemmConfig& base_cfg) {
  const auto batch =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch", 1)));

  rla::service::ServiceConfig svc_cfg = rla::service::ServiceConfig::from_env();
  if (args.has("threads")) {
    svc_cfg.threads =
        static_cast<unsigned>(std::max<std::int64_t>(0, args.get_int("threads", 0)));
  }
  if (args.has("telemetry-ms")) {
    svc_cfg.telemetry_period = std::chrono::milliseconds(
        std::max<std::int64_t>(0, args.get_int("telemetry-ms", 0)));
  }
  rla::service::GemmService service(svc_cfg);

  // SIGUSR1 → status dump on stderr, rendered by a poller thread (the
  // handler itself only sets a flag).
  std::signal(SIGUSR1, on_sigusr1);
  std::atomic<bool> status_stop{false};
  std::thread status_thread([&service, &status_stop] {
    while (!status_stop.load(std::memory_order_acquire)) {
      if (g_status_requested != 0) {
        g_status_requested = 0;
        const std::string status = service.status_json();
        std::fprintf(stderr, "rla_gemm status: %s\n", status.c_str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::string socket_path = args.get("telemetry-socket");
  if (socket_path.empty()) socket_path = rla::env_string("RLA_TELEMETRY_SOCKET");
  std::unique_ptr<rla::obs::telemetry::ExpositionServer> endpoint;
  if (!socket_path.empty()) {
    endpoint = std::make_unique<rla::obs::telemetry::ExpositionServer>(
        socket_path, [&service] { return service.telemetry_prometheus(); });
    if (!endpoint->ok()) {
      std::fprintf(stderr, "rla_gemm: telemetry socket %s: %s\n",
                   socket_path.c_str(), endpoint->error().c_str());
    }
  }

  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  struct Operands {
    std::vector<double> a, b, c;
  };
  std::vector<Operands> ops(batch);
  std::vector<rla::service::Request> reqs(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    Operands& o = ops[i];
    o.a.resize(static_cast<std::size_t>(m) * k);
    o.b.resize(static_cast<std::size_t>(k) * n);
    o.c.assign(static_cast<std::size_t>(m) * n, 0.0);
    for (double& x : o.a) x = dist(rng);
    for (double& x : o.b) x = dist(rng);
    rla::service::Request& req = reqs[i];
    req.m = m;
    req.n = n;
    req.k = k;
    req.a = o.a.data();
    req.lda = m;
    req.b = o.b.data();
    req.ldb = k;
    req.c = o.c.data();
    req.ldc = m;
    req.cfg = base_cfg;
    if (i > 0) {
      // One trace collector per process: concurrent siblings would only
      // record trace:busy (and read as spuriously Degraded). The first
      // request carries the measurement; the rest run bare. Same for the
      // one-armed treeprof session (treeprof:busy).
      req.cfg.trace_path.clear();
      req.cfg.measure = false;
      req.cfg.hw_counters = false;
      req.cfg.tree_profile = false;
    }
    req.priority = static_cast<int>(args.get_int("priority", 0));
    req.deadline =
        std::chrono::milliseconds(std::max<std::int64_t>(0, args.get_int("deadline-ms", 0)));
  }

  std::vector<std::future<rla::service::Response>> futures =
      service.submit_batch(reqs);
  std::size_t outcomes[5] = {0, 0, 0, 0, 0};
  int rc = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const rla::service::Response r = futures[i].get();
    outcomes[static_cast<int>(r.outcome)]++;
    if (batch == 1 || r.outcome != rla::service::Outcome::Completed) {
      std::printf("request %llu: %s%s%s queue=%.3fms run=%.3fms attempts=%d\n",
                  static_cast<unsigned long long>(r.id),
                  rla::service::outcome_name(r.outcome).data(),
                  r.reason.empty() ? "" : " — ", r.reason.c_str(),
                  r.queue_seconds * 1e3, r.run_seconds * 1e3, r.attempts);
      for (const std::string& step : r.degradation_trail) {
        std::printf("  trail: %s\n", step.c_str());
      }
    }
    if (r.outcome == rla::service::Outcome::Failed) rc = 1;
  }
  if (endpoint) endpoint->stop();
  status_stop.store(true, std::memory_order_release);
  status_thread.join();
  std::signal(SIGUSR1, SIG_DFL);
  service.shutdown();
  std::printf(
      "serve %ux%ux%u batch=%zu workers=%u executors=%u completed=%zu "
      "degraded=%zu rejected=%zu cancelled=%zu failed=%zu\n",
      m, n, k, batch, service.config().threads, service.config().executors,
      outcomes[0], outcomes[1], outcomes[2], outcomes[3], outcomes[4]);

  const std::string metrics_path = args.get("service-metrics");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << service.metrics_json() << "\n";
    if (!out) {
      std::fprintf(stderr, "rla_gemm: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const rla::CliArgs args(argc, argv);
  if (args.get_bool("help")) {
    usage(argv[0]);
    return 0;
  }

  const auto m = static_cast<std::uint32_t>(args.get_int("m", 1024));
  const auto n = static_cast<std::uint32_t>(args.get_int("n", m));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", m));
  if (m == 0 || n == 0 || k == 0) {
    std::fprintf(stderr, "rla_gemm: extents must be positive\n");
    return 2;
  }

  rla::GemmConfig cfg;
  cfg.threads = static_cast<unsigned>(args.get_int("threads", 4));
  cfg.trace_path = args.get("trace");
  cfg.measure = !args.get_bool("no-measure");
  cfg.hw_counters = args.get_bool("perf");
  cfg.tree_profile = args.get_bool("tree-profile") || args.has("flame");
  if (!rla::parse_curve(args.get("layout", "z"), cfg.layout)) {
    std::fprintf(stderr, "rla_gemm: unknown layout '%s'\n",
                 args.get("layout").c_str());
    return 2;
  }
  if (!rla::parse_algorithm(args.get("algorithm", "standard"), cfg.algorithm)) {
    std::fprintf(stderr, "rla_gemm: unknown algorithm '%s'\n",
                 args.get("algorithm").c_str());
    return 2;
  }

  if (args.get_bool("serve") || args.has("batch")) {
    try {
      return run_served(args, m, n, k, cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rla_gemm: %s\n", e.what());
      return 1;
    }
  }

  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(m) * k);
  std::vector<double> b(static_cast<std::size_t>(k) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (double& x : a) x = dist(rng);
  for (double& x : b) x = dist(rng);

  rla::GemmProfile profile;
  try {
    rla::gemm(m, n, k, 1.0, a.data(), m, rla::Op::None, b.data(), k,
              rla::Op::None, 0.0, c.data(), m, cfg, &profile);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rla_gemm: %s\n", e.what());
    return 1;
  }

  // --profile-json is an alias kept for scripts that spell the format out.
  std::string profile_path = args.get("profile");
  if (profile_path.empty()) profile_path = args.get("profile-json");
  if (!profile_path.empty()) {
    std::ofstream out(profile_path);
    out << profile.to_json() << "\n";
    if (!out) {
      std::fprintf(stderr, "rla_gemm: cannot write %s\n", profile_path.c_str());
      return 1;
    }
  }

  const std::string flame_path = args.get("flame");
  if (!flame_path.empty() && !write_flame(flame_path, profile)) {
    std::fprintf(stderr, "rla_gemm: cannot write %s\n", flame_path.c_str());
    return 1;
  }

  print_tree_table(profile);

  const double gflops =
      profile.total > 0.0 ? 2.0 * m * n * static_cast<double>(k) / profile.total / 1e9
                          : 0.0;
  std::printf(
      "gemm %ux%ux%u threads=%u total=%.3fs gflops=%.2f tasks=%llu steals=%llu "
      "parallelism=%.2f span=%.3fms trace=%s\n",
      m, n, k, profile.sched.workers, profile.total, gflops,
      static_cast<unsigned long long>(profile.sched.tasks),
      static_cast<unsigned long long>(profile.sched.steals),
      profile.achieved_parallelism, profile.measured_span * 1e3,
      profile.trace_file.empty() ? "(none)" : profile.trace_file.c_str());
  return 0;
}
