"""Entry point so `python3 tools/rla_lint ...` runs the driver."""

import os
import sys

# Make both `rla_lint.*` and the sibling standalone tools (check_locks,
# check_annotations) importable no matter how we were invoked.
_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from rla_lint.driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
