"""Shared source model for rla_lint checkers.

The model is deliberately lexical: comments and strings are tracked exactly
(the same stripper the standalone lock/annotation lints use), functions are
recovered by brace matching, and calls by identifier-before-paren scanning.
That is enough for whole-project invariants — the checkers reason about
*names* (metric literals, fault-site specs, env vars, callee identifiers),
not types.  When the libclang bindings are available, clang_frontend.py
replaces the call-graph edges with AST-resolved ones; everything else is
unchanged.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclasses.dataclass
class Finding:
    """A single diagnostic. `checker` is the short name, `code` the C-id."""

    checker: str
    code: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


# ---------------------------------------------------------------------------
# Lexical stripping


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments (and, unless keep_strings, string/char literals).

    Replaced characters become spaces so line/column numbers survive.  With
    keep_strings=True only comments are blanked — used by checkers that need
    to see string literals (metric names, fault-site specs) but must not
    match names inside comments.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code, line_comment, block_comment, string, char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"' if keep_strings else " ")
                i += 1
            elif c == "'":
                state = "char"
                out.append("'" if keep_strings else " ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\" and nxt:
                out.append(c + nxt if keep_strings else "  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"' if keep_strings else " ")
                i += 1
            else:
                out.append(c if (keep_strings or c == "\n") else " ")
                i += 1
        elif state == "char":
            if c == "\\" and nxt:
                out.append(c + nxt if keep_strings else "  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'" if keep_strings else " ")
                i += 1
            else:
                out.append(c if (keep_strings or c == "\n") else " ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Function extraction

_TYPE_OPENERS = re.compile(
    r"\b(?:struct|class|enum|union|namespace)\b|^\s*(?:do|try|else)\b"
)
_CONTROL_KEYWORDS = frozenset(
    {
        "if",
        "for",
        "while",
        "switch",
        "catch",
        "return",
        "sizeof",
        "alignof",
        "decltype",
        "noexcept",
        "assert",
        "defined",
        "static_assert",
        "alignas",
        "co_return",
        "co_await",
        "throw",
        "new",
        "delete",
        "requires",
        "operator",
    }
)

# Identifier (possibly qualified) immediately followed by '('.
_CALL_RE = re.compile(r"(?:\b(?:\w+::)+)?([A-Za-z_]\w*)\s*\(")

_NAME_BEFORE_PAREN_RE = re.compile(r"([\w:~]+)\s*\($")


@dataclasses.dataclass
class Function:
    """A brace-matched function definition."""

    name: str  # last identifier of the declarator ("build")
    qualname: str  # as written ("ZeroTree::build")
    path: str
    start_line: int  # 1-based line of the opening '{'
    end_line: int
    intro: str  # declarator text preceding the '{'
    body_lines: List[Tuple[int, str]]  # (lineno, stripped text incl. braces)

    def key(self) -> str:
        return f"{self.path}:{self.start_line}:{self.qualname}"


def _intro_is_function(intro: str) -> bool:
    intro = intro.strip()
    if not intro or "(" not in intro or ")" not in intro:
        return False
    if intro.endswith(("=", ",", "return")):
        return False
    # Reject type/namespace blocks unless the opener is buried in a template
    # parameter or similar — good enough lexically.
    if _TYPE_OPENERS.search(intro):
        return False
    # Initializer lists: `Foo x{1}` / `int y[] = {` won't have a trailing ')'
    # or end after ')' optionally followed by specifiers.
    tail = re.sub(
        r"(?:\bconst\b|\bnoexcept\b(?:\s*\([^)]*\))?|\boverride\b|\bfinal\b|"
        r"->\s*[\w:<>,&*\s]+|\s)+$",
        "",
        intro,
    )
    if not tail.endswith(")"):
        return False
    return True


def _declarator_name(intro: str) -> Tuple[str, str]:
    """Return (name, qualname) of the declarator in a function intro."""
    # Find the '(' that opens the parameter list: the first '(' whose
    # preceding token is an identifier (skipping over template args).
    depth = 0
    for m in re.finditer(r"[()]", intro):
        if m.group() == "(":
            if depth == 0:
                head = intro[: m.start()].rstrip()
                nm = re.search(r"([\w:~]+)$", head)
                if nm:
                    qual = nm.group(1)
                    return qual.split("::")[-1], qual
                return "", ""
            depth += 1
        else:
            depth = max(0, depth - 1)
    return "", ""


def split_functions(stripped: str, path: str) -> List[Function]:
    """Recover top-level function definitions by brace matching.

    Blocks nested inside a recognised function (lambdas, local scopes) stay
    part of the enclosing function's body.  Type/namespace bodies recurse so
    member functions defined inline inside classes are still found.
    """
    lines = stripped.split("\n")
    funcs: List[Function] = []

    # Walk characters, tracking brace depth and the statement text since the
    # last ';', '}' or '{' — that's the candidate intro when a '{' opens.
    fn_stack: List[Tuple[Function, int]] = []  # (function, depth of its '{')
    depth = 0
    lineno = 1
    cur = ""
    in_pp = False  # inside a preprocessor directive (incl. continuations)

    for idx, raw in enumerate(lines):
        lineno = idx + 1
        line = raw
        s = line.lstrip()
        if in_pp or s.startswith("#"):
            in_pp = line.rstrip().endswith("\\")
            if fn_stack:
                fn_stack[0][0].body_lines.append((lineno, line))
            continue
        seg_start = 0
        for col, ch in enumerate(line):
            if ch == "{":
                cur += line[seg_start:col]
                seg_start = col + 1
                intro = cur.strip()
                cur = ""
                if not fn_stack and _intro_is_function(intro):
                    name, qual = _declarator_name(intro)
                    if name and name not in _CONTROL_KEYWORDS:
                        fn = Function(
                            name=name,
                            qualname=qual,
                            path=path,
                            start_line=lineno,
                            end_line=lineno,
                            intro=intro,
                            body_lines=[],
                        )
                        fn_stack.append((fn, depth))
                depth += 1
            elif ch == "}":
                cur += line[seg_start:col]
                seg_start = col + 1
                depth = max(0, depth - 1)
                cur = ""
                if fn_stack and depth == fn_stack[-1][1]:
                    fn, _ = fn_stack.pop()
                    fn.end_line = lineno
                    funcs.append(fn)
            elif ch == ";":
                cur += line[seg_start:col]
                seg_start = col + 1
                cur = ""
        cur += line[seg_start:]
        cur += " "
        if len(cur) > 4000:  # defensive: runaway intro on odd input
            cur = cur[-2000:]
        if fn_stack:
            fn_stack[0][0].body_lines.append((lineno, line))

    return funcs


def extract_calls(body_line: str) -> List[str]:
    """Identifier-before-'(' names on a stripped line, minus keywords/macros."""
    out = []
    for m in _CALL_RE.finditer(body_line):
        name = m.group(1)
        if name in _CONTROL_KEYWORDS:
            continue
        if name.isupper() or (name.startswith("RLA_") and name.isupper()):
            continue  # macro invocation — expanded code is checked at its def
        # Skip declarations like `int foo(` is indistinguishable lexically;
        # harmless: a same-named project function simply joins the closure.
        out.append(name)
    return out


# ---------------------------------------------------------------------------
# Files and project

_CPP_EXT = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl")
_PY_EXT = (".py",)


@dataclasses.dataclass
class SourceFile:
    path: str  # repo-relative, posix separators
    text: str
    lines: List[str]  # raw lines (comments intact — directives live here)
    stripped: str  # comments AND strings blanked
    code: str  # comments blanked, strings kept

    @property
    def is_python(self) -> bool:
        return self.path.endswith(_PY_EXT)

    @property
    def stripped_lines(self) -> List[str]:
        return self.stripped.split("\n")

    @property
    def code_lines(self) -> List[str]:
        return self.code.split("\n")


DEFAULT_SWEEP_ROOTS = ("src", "tools", "bench", "tests", "examples")

# Never part of a default sweep: deliberately-broken sources.
SKIP_DIR_PARTS = ("tests/compile_fail", "tests/lint_fixtures", "build")


class Project:
    """Everything the checkers need: files, functions, call graph, targets.

    `files` maps repo-relative path -> SourceFile for the whole tree (always
    loaded, so explicit-file runs still see full context: the schema header,
    the fault table, the call graph).  `targets` is the subset findings may
    be reported for — explicit CLI paths, or the default sweep.
    `explicit` is True when the user named files; checkers then skip their
    *global* coverage rules (dead schema entries, undocumented-var table
    sync) which are only meaningful for a whole-tree sweep.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.files: Dict[str, SourceFile] = {}
        self.targets: List[str] = []
        self.explicit = False
        self.backend = "text"
        self._functions: Optional[List[Function]] = None
        self._fn_by_name: Optional[Dict[str, List[Function]]] = None

    # -- loading ----------------------------------------------------------

    def _want(self, rel: str) -> bool:
        if not rel.endswith(_CPP_EXT + _PY_EXT):
            return False
        norm = rel.replace(os.sep, "/")
        return not any(
            norm == part or norm.startswith(part + "/") or ("/" + part + "/") in norm
            for part in SKIP_DIR_PARTS
        )

    def load_file(self, rel: str) -> Optional[SourceFile]:
        norm = rel.replace(os.sep, "/")
        if norm in self.files:
            return self.files[norm]
        full = os.path.join(self.root, rel)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            return None
        if norm.endswith(_PY_EXT):
            sf = SourceFile(norm, text, text.split("\n"), text, text)
        else:
            sf = SourceFile(
                norm,
                text,
                text.split("\n"),
                strip_comments_and_strings(text),
                strip_comments_and_strings(text, keep_strings=True),
            )
        self.files[norm] = sf
        return sf

    def load_tree(self, roots: Sequence[str] = DEFAULT_SWEEP_ROOTS) -> None:
        for top in roots:
            base = os.path.join(self.root, top)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = [d for d in sorted(dirnames) if d != "__pycache__"]
                for fn in sorted(filenames):
                    rel = os.path.relpath(os.path.join(dirpath, fn), self.root)
                    if self._want(rel):
                        self.load_file(rel)
        # README participates in the env-contract checker.
        for extra in ("README.md",):
            full = os.path.join(self.root, extra)
            if os.path.isfile(full):
                with open(full, "r", encoding="utf-8", errors="replace") as f:
                    text = f.read()
                self.files[extra] = SourceFile(
                    extra, text, text.split("\n"), text, text
                )

    def add_virtual_file(self, rel: str, text: str) -> SourceFile:
        """Register in-memory content (self-tests use this; no disk I/O)."""
        norm = rel.replace(os.sep, "/")
        if norm.endswith(_PY_EXT) or norm.endswith(".md"):
            sf = SourceFile(norm, text, text.split("\n"), text, text)
        else:
            sf = SourceFile(
                norm,
                text,
                text.split("\n"),
                strip_comments_and_strings(text),
                strip_comments_and_strings(text, keep_strings=True),
            )
        self.files[norm] = sf
        self._functions = None
        self._fn_by_name = None
        return sf

    # -- queries ----------------------------------------------------------

    def cpp_files(self) -> List[SourceFile]:
        return [f for f in self.files.values() if f.path.endswith(_CPP_EXT)]

    def python_files(self) -> List[SourceFile]:
        return [f for f in self.files.values() if f.path.endswith(_PY_EXT)]

    def target_set(self) -> frozenset:
        return frozenset(self.targets)

    def in_targets(self, path: str) -> bool:
        return not self.targets or path in self.target_set()

    def functions(self) -> List[Function]:
        if self._functions is None:
            fns: List[Function] = []
            for sf in self.cpp_files():
                fns.extend(split_functions(sf.stripped, sf.path))
            self._functions = fns
        return self._functions

    def functions_by_name(self) -> Dict[str, List[Function]]:
        if self._fn_by_name is None:
            table: Dict[str, List[Function]] = {}
            for fn in self.functions():
                table.setdefault(fn.name, []).append(fn)
            self._fn_by_name = table
        return self._fn_by_name


# ---------------------------------------------------------------------------
# compile_commands.json ingestion


def load_compile_commands(path: str, root: str) -> Tuple[List[str], List[str]]:
    """Return (repo-relative TU files, include dirs) from a compilation DB."""
    import json

    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    root = os.path.abspath(root)
    files: List[str] = []
    includes: List[str] = []
    seen_inc = set()
    for e in entries:
        src = e.get("file", "")
        directory = e.get("directory", root)
        if not os.path.isabs(src):
            src = os.path.join(directory, src)
        src = os.path.normpath(src)
        if src.startswith(root + os.sep):
            files.append(os.path.relpath(src, root).replace(os.sep, "/"))
        args = e.get("arguments")
        if args is None:
            args = (e.get("command") or "").split()
        for i, a in enumerate(args):
            inc = None
            if a.startswith("-I") and len(a) > 2:
                inc = a[2:]
            elif a == "-I" and i + 1 < len(args):
                inc = args[i + 1]
            elif a.startswith("-isystem") and len(a) > 8:
                inc = a[8:]
            if inc:
                if not os.path.isabs(inc):
                    inc = os.path.join(directory, inc)
                inc = os.path.normpath(inc)
                if inc not in seen_inc:
                    seen_inc.add(inc)
                    includes.append(inc)
    return sorted(set(files)), includes
