"""C4: environment-variable contract.

All environment access goes through src/util/env.{hpp,cpp} (env_int,
env_string, ...), and every `RLA_*` variable the code reads must appear in
README.md's environment table (a markdown table whose rows start with
`` | `RLA_... ``), and vice versa.  Enforced:

  * raw getenv/secure_getenv anywhere but src/util/env.cpp is a finding;
  * every env_int("RLA_X")/env_string("RLA_X") name must be documented in
    the README table;
  * (sweep only) every documented RLA_* variable must be read somewhere —
    a stale table row is a finding.

tests/ may *set* variables (setenv) freely; reading still goes through the
wrappers, and test-only names are excluded from the documentation contract.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from rla_lint.model import Finding, Project

ENV_IMPL = "src/util/env.cpp"
README = "README.md"

_RAW_GETENV = re.compile(r"\b(?:std::\s*)?(?:secure_)?getenv\s*\(")
_ENV_READ = re.compile(r"\benv_(?:int|string)\s*\(\s*\"([A-Z][A-Z0-9_]*)\"")
_README_ROW = re.compile(r"^\s*\|\s*`(RLA_[A-Z0-9_]+)")


def documented_vars(project: Project) -> Tuple[Set[str], Dict[str, int]]:
    sf = project.files.get(README)
    docs: Set[str] = set()
    lines: Dict[str, int] = {}
    if sf is None:
        return docs, lines
    for i, raw in enumerate(sf.lines, start=1):
        m = _README_ROW.match(raw)
        if m:
            docs.add(m.group(1))
            lines.setdefault(m.group(1), i)
    return docs, lines


class EnvContractChecker:
    name = "env-contract"
    code = "C4"
    description = (
        "getenv only in src/util/env.cpp; every RLA_* variable read in code "
        "must be documented in README's env table, and vice versa"
    )

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        docs, doc_lines = documented_vars(project)
        read_vars: Set[str] = set()

        for sf in project.cpp_files():
            for i, line in enumerate(sf.stripped_lines, start=1):
                if _RAW_GETENV.search(line) and sf.path != ENV_IMPL:
                    if project.in_targets(sf.path):
                        findings.append(
                            Finding(
                                self.name, self.code, sf.path, i,
                                "raw getenv() outside src/util/env.cpp — use "
                                "rla::env_int / rla::env_string",
                            )
                        )
            # Explicitly-named files (fixtures) join the contract even when
            # they live under tests/.
            test_file = sf.path.startswith("tests/") and not (
                project.explicit and sf.path in project.target_set()
            )
            for i, line in enumerate(sf.code_lines, start=1):
                for var in _ENV_READ.findall(line):
                    if not var.startswith("RLA_"):
                        continue
                    if test_file:
                        continue  # test-only knobs are not user contract
                    read_vars.add(var)
                    if var not in docs and project.in_targets(sf.path):
                        findings.append(
                            Finding(
                                self.name, self.code, sf.path, i,
                                f"{var} is read here but missing from "
                                "README.md's environment table",
                            )
                        )

        if not project.explicit:
            for var in sorted(docs - read_vars):
                findings.append(
                    Finding(
                        self.name, self.code, README,
                        doc_lines.get(var, 1),
                        f"README documents {var} but nothing reads it via "
                        "env_int/env_string — stale row?",
                    )
                )
        return findings

    # -- self-test --------------------------------------------------------

    def self_test(self) -> List[str]:
        errors: List[str] = []
        proj = Project(".")
        proj.add_virtual_file(
            README,
            "\n".join(
                [
                    "| Variable | Meaning |",
                    "|---|---|",
                    "| `RLA_DOCUMENTED` | a knob |",
                    "| `RLA_STALE_ROW` | nothing reads this |",
                ]
            ),
        )
        proj.add_virtual_file(
            ENV_IMPL,
            'int env_int(const char* k, int d) { return std::getenv(k) ? 1 : d; }',
        )
        proj.add_virtual_file(
            "src/core/use.cpp",
            "\n".join(
                [
                    "void f() {",
                    '  int a = env_int("RLA_DOCUMENTED", 0);',
                    '  int b = env_int("RLA_UNDOCUMENTED", 0);',
                    '  const char* raw = std::getenv("RLA_DOCUMENTED");',
                    "}",
                ]
            ),
        )
        proj.add_virtual_file(
            "tests/test_env.cpp",
            'void t() { int x = env_int("RLA_TEST_ONLY_KNOB", 0); }',
        )
        got = self.run(proj)
        msgs = [f"{f.path}:{f.message}" for f in got]

        def has(frag):
            return any(frag in m for m in msgs)

        if not has("raw getenv() outside"):
            errors.append("C4 missed raw getenv outside env.cpp")
        if any(f.path == ENV_IMPL and "raw getenv" in f.message for f in got):
            errors.append("C4 flagged getenv inside the sanctioned impl")
        if not has("RLA_UNDOCUMENTED is read here"):
            errors.append("C4 missed undocumented env var")
        if has("RLA_DOCUMENTED is read here"):
            errors.append("C4 flagged a documented env var")
        if not has("README documents RLA_STALE_ROW"):
            errors.append("C4 missed stale README row")
        if has("RLA_TEST_ONLY_KNOB"):
            errors.append("C4 dragged a test-only knob into the contract")
        return errors
