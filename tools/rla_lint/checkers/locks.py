"""C5: lock discipline — folds tools/check_locks.py into the driver.

The rules (R1-R7: raw primitive ban, hierarchy order, guard-while-locked,
wait-predicate shape, ...) live in check_locks.py, which remains directly
runnable; this wrapper feeds it files from the shared project model so one
`rla_lint` invocation covers everything.
"""

from __future__ import annotations

import os
import sys
from typing import List

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

import check_locks  # noqa: E402

from rla_lint.model import Finding, Project  # noqa: E402

# check_locks' own sweep scope.
SCOPE_PREFIXES = ("src/", "tests/", "bench/")


class LockChecker:
    name = "locks"
    code = "C5"
    description = (
        "lock discipline: no raw sync primitives outside src/support/sync.hpp, "
        "acquisition follows the declared hierarchy (tools/check_locks.py rules)"
    )

    def run(self, project: Project) -> List[Finding]:
        # Lock-level declarations are collected across the whole file set
        # (the hierarchy is cross-file), so feed lint_files one batch.
        batch = []
        for sf in project.cpp_files():
            if not sf.path.startswith(SCOPE_PREFIXES):
                continue
            if any(sf.path.startswith(s) for s in check_locks.SKIP_DIRS):
                continue
            # Use check_locks' own stripper — its rules were calibrated
            # against that exact blanking behaviour.
            batch.append(
                (sf.path, sf.text,
                 check_locks.strip_comments_and_strings(sf.text))
            )
        findings = [
            Finding(self.name, self.code, path, line, msg)
            for path, line, msg in check_locks.lint_files(batch)
            if project.in_targets(path)
        ]
        return findings

    def self_test(self) -> List[str]:
        import contextlib
        import io

        with contextlib.redirect_stdout(io.StringIO()):
            rc = check_locks.self_test()
        return [] if rc == 0 else ["check_locks embedded self-test failed"]
