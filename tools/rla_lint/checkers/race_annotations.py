"""C6: race-annotation coverage — folds tools/check_annotations.py.

Every function in src/core and src/layout that touches worker-shared state
must carry the RaceAnnotated marker or a covered-by-caller waiver; the rules
live in check_annotations.py (still directly runnable), this wrapper runs
them from the shared project model.
"""

from __future__ import annotations

import os
import sys
from typing import List

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

import check_annotations  # noqa: E402

from rla_lint.model import Finding, Project  # noqa: E402

# check_annotations' own sweep scope.
SCOPE_PREFIXES = ("src/core/", "src/layout/")


class RaceAnnotationChecker:
    name = "race-annotations"
    code = "C6"
    description = (
        "shared-state functions in src/core and src/layout carry race "
        "annotations (tools/check_annotations.py rules)"
    )

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for sf in project.cpp_files():
            if not sf.path.startswith(SCOPE_PREFIXES):
                continue
            if not project.in_targets(sf.path):
                continue
            for path, line, msg in check_annotations.lint_text(sf.text, sf.path):
                findings.append(Finding(self.name, self.code, path, line, msg))
        return findings

    def self_test(self) -> List[str]:
        import contextlib
        import io

        with contextlib.redirect_stdout(io.StringIO()):
            rc = check_annotations.self_test()
        return [] if rc == 0 else ["check_annotations embedded self-test failed"]
