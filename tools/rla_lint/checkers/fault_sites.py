"""C2: fault-site registry consistency.

src/robust/fault.hpp owns the canonical X-macro site list
(RLA_FAULT_SITE_LIST).  This checker parses it and enforces:

  * the enum/name-table/count in fault.hpp are generated from the list
    (no hand-written `kSiteCount = <n>` literal may reappear);
  * every `Site::<Sym>` reference in the tree names a listed symbol;
  * every RLA_FAULT-style spec string literal (`site[:nth=N][:p=P]`,
    ';'-separated clauses) uses canonical site names — a test that wants a
    deliberately bogus site marks the line `// rla-lint: bad-site-ok`;
  * (sweep only) no dead sites: each listed site must be referenced by
    `Site::<Sym>` somewhere outside fault.hpp/fault.cpp.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from rla_lint.model import Finding, Project

FAULT_HEADER = "src/robust/fault.hpp"
FAULT_IMPL = "src/robust/fault.cpp"
BAD_SITE_OK = "rla-lint: bad-site-ok"

_X_ROW = re.compile(r"X\(\s*(\w+)\s*,\s*\"([^\"]+)\"\s*\)")
_SITE_REF = re.compile(r"\bSite::(\w+)\b")
_STRING_LIT = re.compile(r'"((?:[^"\\]|\\.)*)"')
_SPEC_CLAUSE = re.compile(r"^([a-z][a-z0-9_.]*):(?:nth=\d+|p=[0-9.eE+-]+)")


def parse_site_list(project: Project, header: str = FAULT_HEADER):
    """Return ([(Sym, "name")...], header line of the list) or (None, msg)."""
    sf = project.files.get(header)
    if sf is None:
        return None, f"{header} not found"
    lines = sf.lines
    start = None
    for i, raw in enumerate(lines):
        if "#define RLA_FAULT_SITE_LIST(" in raw:
            start = i
            break
    if start is None:
        return None, f"{header} has no RLA_FAULT_SITE_LIST X-macro"
    block = []
    i = start
    while i < len(lines):
        block.append(lines[i])
        if not lines[i].rstrip().endswith("\\"):
            break
        i += 1
    rows = _X_ROW.findall("\n".join(block))
    if not rows:
        return None, "RLA_FAULT_SITE_LIST defines no X(Sym, \"name\") rows"
    return rows, start + 1


class FaultSiteChecker:
    name = "fault-sites"
    code = "C2"
    description = (
        "fault-site enum refs and RLA_FAULT spec literals must resolve to "
        "the canonical RLA_FAULT_SITE_LIST in src/robust/fault.hpp"
    )

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        rows, where = parse_site_list(project)
        if rows is None:
            if not project.explicit or project.in_targets(FAULT_HEADER):
                findings.append(
                    Finding(self.name, self.code, FAULT_HEADER, 1, str(where))
                )
            return findings
        syms = {sym for sym, _ in rows}
        names = {nm for _, nm in rows}

        hdr = project.files.get(FAULT_HEADER)
        # The count must be derived, not hand-written.
        for i, line in enumerate(hdr.stripped_lines, start=1):
            if re.search(r"\bkSiteCount\s*=\s*\d", line):
                findings.append(
                    Finding(
                        self.name, self.code, FAULT_HEADER, i,
                        "kSiteCount must be derived from the X-macro table, "
                        "not a hand-written literal",
                    )
                )
        if "static_assert" not in hdr.stripped:
            findings.append(
                Finding(
                    self.name, self.code, FAULT_HEADER, where,
                    "fault.hpp must static_assert the enum/table/count stay "
                    "in sync with RLA_FAULT_SITE_LIST",
                )
            )

        used_syms: Set[str] = set()
        for sf in project.cpp_files():
            # Site::<Sym> references must name listed symbols.
            for i, line in enumerate(sf.stripped_lines, start=1):
                for m in _SITE_REF.finditer(line):
                    sym = m.group(1)
                    if sym in syms:
                        if sf.path not in (FAULT_HEADER, FAULT_IMPL):
                            used_syms.add(sym)
                    elif project.in_targets(sf.path):
                        findings.append(
                            Finding(
                                self.name, self.code, sf.path, i,
                                f"Site::{sym} is not in RLA_FAULT_SITE_LIST "
                                f"({FAULT_HEADER}:{where})",
                            )
                        )
            # Spec-shaped string literals must use canonical site names.
            if sf.path in (FAULT_HEADER, FAULT_IMPL):
                continue  # parser/table internals mention sites generically
            if not project.in_targets(sf.path):
                continue
            for i, line in enumerate(sf.code_lines, start=1):
                raw = sf.lines[i - 1] if i - 1 < len(sf.lines) else ""
                if BAD_SITE_OK in raw or (
                    i >= 2 and BAD_SITE_OK in sf.lines[i - 2]
                ):
                    continue
                for lit in _STRING_LIT.findall(line):
                    for clause in lit.split(";"):
                        clause = clause.strip()
                        m = _SPEC_CLAUSE.match(clause)
                        if not m:
                            continue
                        site = m.group(1)
                        if site not in names:
                            findings.append(
                                Finding(
                                    self.name, self.code, sf.path, i,
                                    f"fault spec names unknown site '{site}' "
                                    f"(canonical list: {FAULT_HEADER}:{where}; "
                                    "deliberate? mark the line "
                                    f"'// {BAD_SITE_OK}')",
                                )
                            )

        if not project.explicit:
            for sym, nm in rows:
                if sym not in used_syms:
                    findings.append(
                        Finding(
                            self.name, self.code, FAULT_HEADER, where,
                            f"dead fault site: Site::{sym} (\"{nm}\") is never "
                            "referenced outside fault.hpp/fault.cpp — remove "
                            "the row or use the site",
                        )
                    )
        return findings

    # -- self-test --------------------------------------------------------

    def self_test(self) -> List[str]:
        errors: List[str] = []
        proj = Project(".")
        proj.add_virtual_file(
            FAULT_HEADER,
            "\n".join(
                [
                    "#pragma once",
                    "#define RLA_FAULT_SITE_LIST(X) \\",
                    '  X(AllocTiled, "alloc.tiled") \\',
                    '  X(TaskThrow, "task.throw")',
                    "enum class Site {};",
                    "inline constexpr int kSiteCount = 2;",
                ]
            ),
        )
        proj.add_virtual_file(
            "src/robust/use.cpp",
            "\n".join(
                [
                    "void f() {",
                    "  auto a = Site::AllocTiled;",
                    "  auto b = Site::Bogus;",
                    '  const char* s = "alloc.tiled:nth=2;nope.site:p=0.5";',
                    '  const char* ok = "nope.site:nth=1";  // rla-lint: bad-site-ok',
                    "}",
                ]
            ),
        )
        msgs = [f.message for f in self.run(proj)]
        if not any("Site::Bogus" in m for m in msgs):
            errors.append("C2 missed unknown Site:: symbol")
        if not any("'nope.site'" in m for m in msgs):
            errors.append("C2 missed unknown site in spec literal")
        if sum("'nope.site'" in m for m in msgs) != 1:
            errors.append("C2 ignored the bad-site-ok suppression marker")
        if not any("hand-written literal" in m for m in msgs):
            errors.append("C2 missed hand-written kSiteCount")
        if not any("static_assert" in m for m in msgs):
            errors.append("C2 missed missing static_assert")
        if not any("dead fault site: Site::TaskThrow" in m for m in msgs):
            errors.append("C2 missed dead site TaskThrow")
        if any("dead fault site: Site::AllocTiled" in m for m in msgs):
            errors.append("C2 flagged a live site as dead")
        return errors
