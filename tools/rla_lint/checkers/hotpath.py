"""C1: hot-path purity.

Functions marked `// rla-hotpath` — the leaf kernels, block add/copy loops,
layout index arithmetic — and everything they transitively call must not
allocate, take locks, throw, or do I/O.  The checker computes the call-graph
closure from each marked root and scans every reached function body for a
ban-list of constructs.  A line carrying `// hotpath-exempt: <why>` (or
directly below such a comment line) is excused AND not descended through;
a function whose definition is annotated `// hotpath-exempt: <why>` is
excused entirely.  Every exemption must carry a non-empty justification.

Lexical resolution is by callee name: a call joins the closure with every
project function of that name (conservative over overloads).  The libclang
backend, when available, replaces these edges with AST-resolved ones.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from rla_lint.model import Finding, Function, Project, extract_calls

HOTPATH_MARK = "rla-hotpath"
EXEMPT_MARK = "hotpath-exempt:"

# (regex over a stripped body line, human reason).  Strings and comments are
# already blanked, so literals can't trigger these.
BANNED: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bnew\b(?!\s*\()"), "allocates ('new')"),
    (re.compile(r"\bdelete\b(?!\s*;|\s*=)"), "frees heap memory ('delete')"),
    (
        re.compile(r"\b(?:malloc|calloc|realloc|aligned_alloc|posix_memalign)\s*\("),
        "allocates (C allocator)",
    ),
    (re.compile(r"\bfree\s*\("), "frees heap memory"),
    (
        re.compile(
            r"\bstd::(?:vector|deque|list|map|set|unordered_map|unordered_set|"
            r"multimap|multiset|function|any|valarray)\s*<"
        ),
        "constructs an allocating container",
    ),
    (re.compile(r"\bstd::string\b(?!_view)"), "constructs std::string"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "allocates (make_unique/shared)"),
    (
        re.compile(
            r"\.(?:resize|reserve|push_back|emplace_back|emplace|insert|assign|"
            r"shrink_to_fit)\s*\("
        ),
        "allocating container operation",
    ),
    (
        re.compile(r"\b(?:MutexLock|CondWait|std::mutex|std::lock_guard|"
                   r"std::unique_lock|std::scoped_lock|std::shared_mutex)\b"),
        "takes a lock",
    ),
    (re.compile(r"(?:\.|->)(?:lock|unlock|try_lock)\s*\("), "takes a lock"),
    (re.compile(r"\bthrow\b"), "throws"),
    (
        re.compile(
            r"\b(?:printf|fprintf|fputs|fputc|fwrite|fread|fopen|fclose|puts|"
            r"getline|system|popen)\s*\("
        ),
        "does I/O",
    ),
    (re.compile(r"\bstd::c(?:out|err|log)\b"), "does I/O (iostream)"),
    (re.compile(r"\bstd::o?f?stream\b|\bstd::[io]fstream\b"), "does I/O (fstream)"),
    (re.compile(r"\bgetenv\b"), "reads the environment"),
]


def _directive_lines(sf) -> Tuple[Set[int], Dict[int, str]]:
    """Return (hotpath marker lines, exempt line -> justification)."""
    marks: Set[int] = set()
    exempts: Dict[int, str] = {}
    for i, raw in enumerate(sf.lines, start=1):
        if "//" not in raw:
            continue
        comment = raw.split("//", 1)[1]
        if HOTPATH_MARK in comment and EXEMPT_MARK not in comment:
            marks.add(i)
        if EXEMPT_MARK in comment:
            why = comment.split(EXEMPT_MARK, 1)[1].strip()
            exempts[i] = why
    return marks, exempts


class HotpathChecker:
    name = "hotpath"
    code = "C1"
    description = (
        "functions marked // rla-hotpath (and transitive callees) must not "
        "allocate, lock, throw, or do I/O"
    )

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        fn_table = project.functions_by_name()

        # Index functions by (path, start_line) and collect directives.
        marks_by_file: Dict[str, Set[int]] = {}
        exempts_by_file: Dict[str, Dict[int, str]] = {}
        for sf in project.cpp_files():
            marks, exempts = _directive_lines(sf)
            if marks:
                marks_by_file[sf.path] = marks
            if exempts:
                exempts_by_file[sf.path] = exempts

        fn_at: Dict[Tuple[str, int], Function] = {}
        fns_in_file: Dict[str, List[Function]] = {}
        for fn in project.functions():
            fn_at[(fn.path, fn.start_line)] = fn
            fns_in_file.setdefault(fn.path, []).append(fn)

        def attached_function(path: str, mark_line: int):
            """The function a marker/exemption line annotates, if any.

            A directive annotates a function when it sits on the signature
            or opening-brace line, or on its own line at most 3 lines above
            the opening brace (multi-line signatures).
            """
            best = None
            for fn in fns_in_file.get(path, ()):
                if fn.start_line >= mark_line and fn.start_line - mark_line <= 3:
                    if best is None or fn.start_line < best.start_line:
                        best = fn
            return best

        # Roots: marked functions.  Complain about dangling markers.
        roots: List[Function] = []
        for path, marks in marks_by_file.items():
            for line in sorted(marks):
                fn = attached_function(path, line)
                if fn is None:
                    if project.in_targets(path):
                        findings.append(
                            Finding(
                                self.name, self.code, path, line,
                                "'// rla-hotpath' marker is not attached to a "
                                "function definition",
                            )
                        )
                    continue
                roots.append(fn)

        # Function-level exemptions (and empty-justification complaints).
        # A comment-only `// hotpath-exempt: why` line directly above a
        # definition (nothing but the signature between them — no ';'/'}')
        # exempts the whole function; anywhere else it exempts one line.
        exempt_fns: Set[str] = set()
        line_exempt: Dict[Tuple[str, int], str] = {}
        for path, table in exempts_by_file.items():
            for line, why in table.items():
                if not why:
                    if project.in_targets(path):
                        findings.append(
                            Finding(
                                self.name, self.code, path, line,
                                "'// hotpath-exempt:' requires a justification "
                                "after the colon",
                            )
                        )
                    continue
                fn = attached_function(path, line)
                whole_function = (
                    fn is not None
                    and not _code_at(project, path, line)
                    and not any(
                        ("}" in _stripped_at(project, path, k))
                        or (";" in _stripped_at(project, path, k))
                        for k in range(line + 1, fn.start_line)
                    )
                )
                if whole_function:
                    exempt_fns.add(fn.key())
                else:
                    line_exempt[(path, line)] = why

        # BFS the closure from each root; report at the offending line, with
        # the root so the reader knows which hot path is poisoned.
        for root in roots:
            seen: Set[str] = set()
            queue: List[Tuple[Function, str]] = [(root, root.qualname)]
            while queue:
                fn, chain = queue.pop()
                if fn.key() in seen or fn.key() in exempt_fns:
                    continue
                seen.add(fn.key())
                for lineno, text in fn.body_lines:
                    exempted = (fn.path, lineno) in line_exempt or (
                        (fn.path, lineno - 1) in line_exempt
                        and not _code_at(project, fn.path, lineno - 1)
                    )
                    if not exempted:
                        for pat, why in BANNED:
                            m = pat.search(text)
                            if m:
                                findings.append(
                                    Finding(
                                        self.name, self.code, fn.path, lineno,
                                        f"hot path '{chain}' {why} "
                                        f"('{m.group(0).strip()}'); wrap with "
                                        "'// hotpath-exempt: <why>' only if "
                                        "intentional",
                                    )
                                )
                    if exempted:
                        continue  # do not descend through exempted calls
                    for callee in extract_calls(text):
                        for target in fn_table.get(callee, ()):
                            if target.key() not in seen:
                                queue.append(
                                    (target, f"{chain} -> {target.qualname}")
                                )
        # Only report findings rooted in target files on explicit runs.
        if project.explicit:
            tgt = project.target_set()
            findings = [f for f in findings if f.path in tgt]
        return findings

    # -- self-test --------------------------------------------------------

    def self_test(self) -> List[str]:
        errors: List[str] = []
        proj = Project(".")
        proj.add_virtual_file(
            "seed/c1.cpp",
            "\n".join(
                [
                    "#include <vector>",
                    "namespace rla {",
                    "static int helper(int n) {",
                    "  std::vector<int> v(static_cast<unsigned>(n));  // bad",
                    "  return static_cast<int>(v.size());",
                    "}",
                    "int pure_helper(int n) { return n * 2; }",
                    "// rla-hotpath",
                    "int hot(int n) {",
                    "  return helper(n) + pure_helper(n);",
                    "}",
                    "// rla-hotpath",
                    "int hot_exempted(int n) {",
                    "  int k = helper(n);  // hotpath-exempt: setup, measured cold",
                    "  return k;",
                    "}",
                    "// rla-hotpath",
                    "int hot_direct(int n) {",
                    "  throw n;",
                    "}",
                    "}",
                ]
            ),
        )
        got = self.run(proj)
        msgs = [f"{f.line}:{f.message}" for f in got]
        if not any("'hot -> helper'" in m and "container" in m for m in msgs):
            errors.append("C1 missed transitive allocation through helper()")
        if not any("hot_direct" in m and "throws" in m for m in msgs):
            errors.append("C1 missed direct throw in marked function")
        if any("hot_exempted" in m for m in msgs):
            errors.append("C1 flagged an exempted call line")
        # Marker with no function, exemption with no justification.
        proj2 = Project(".")
        proj2.add_virtual_file(
            "seed/c1b.cpp",
            "\n".join(
                [
                    "// rla-hotpath",
                    "",
                    "",
                    "",
                    "",
                    "int unrelated(int n) { return n; }",
                    "// rla-hotpath",
                    "int f(int n) {",
                    "  int* p = new int[8];  // hotpath-exempt:",
                    "  delete[] p;",
                    "  return n;",
                    "}",
                ]
            ),
        )
        msgs2 = [f.message for f in self.run(proj2)]
        if not any("not attached" in m for m in msgs2):
            errors.append("C1 missed dangling rla-hotpath marker")
        if not any("requires a justification" in m for m in msgs2):
            errors.append("C1 missed empty exemption justification")
        if not any("'new'" in m for m in msgs2):
            errors.append("C1 let an unjustified exemption suppress 'new'")
        return errors


def _stripped_at(project: Project, path: str, lineno: int) -> str:
    sf = project.files.get(path)
    if sf is None or lineno < 1 or lineno > len(sf.stripped_lines):
        return ""
    return sf.stripped_lines[lineno - 1]


def _code_at(project: Project, path: str, lineno: int) -> bool:
    """True if the stripped line has non-whitespace (it's code, not a bare
    comment line)."""
    return bool(_stripped_at(project, path, lineno).strip())
