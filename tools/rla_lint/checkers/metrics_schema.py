"""C3: metric/trace-name schema consistency.

src/obs/schema.hpp owns the canonical observability name schema
(RLA_METRIC_SCHEMA / RLA_SPAN_SCHEMA).  This checker enforces, across
languages:

  * every static name passed to .counter()/.gauge()/.histogram() in C++
    production code matches a schema row ('*' matches [A-Za-z0-9_.]+);
  * every call site that *builds* a name at runtime declares its family with
    an adjacent `// metric-family: <row> [<row>...]` comment (same line or up
    to 5 lines above); each declared row must exist in the schema; the token
    `schema` marks loops that iterate the schema itself;
  * every PhaseScope/fp_phase span literal is a schema span;
  * every schema-shaped metric name consumed by the Python tools
    (soak_check.py, trace_summary.py) exists in the schema — `{...}`
    placeholders and trailing-dot prefixes are treated as wildcards;
  * (sweep only) no dead rows: each schema row must have at least one C++
    producer (a matching literal or a metric-family declaration).

tests/ are excluded as producers (unit tests register ad-hoc names on
private registries); bench/ and tools/ C++ are included.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from rla_lint.model import Finding, Project

SCHEMA_HEADER = "src/obs/schema.hpp"
FAMILY_MARK = "metric-family:"
FAMILY_WINDOW = 5  # lines above a call site searched for the declaration

_METRIC_ROW = re.compile(
    r"X\(\s*(Counter|Gauge|Histogram)\s*,\s*\"([^\"]+)\"\s*,\s*(true|false)\s*\)"
)
_SPAN_ROW = re.compile(r"X\(\s*\"([^\"]+)\"\s*\)")

# A call that names a metric: receiver.counter( / receiver->gauge( etc.
# A call is "literal" only when its whole first argument is one string
# literal; `("perf." + label + ...)` is a computed name.
_METRIC_CALL = re.compile(r"(?:\.|->)(counter|gauge|histogram)\s*\(\s*(.)")
_METRIC_CALL_LIT = re.compile(
    r"(?:\.|->)(?:counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"\s*[),]"
)
_SPAN_LIT = re.compile(
    r"\b(?:PhaseScope\s+\w+\s*\(\s*|PhaseScope\s*\(\s*|fp_phase\s*\(\s*[\w.]+\s*,\s*)"
    r"\"([^\"]+)\""
)

# Python side: string literals that look like metric names.
_PY_STRING = re.compile(r"""(?:f?)(['"])((?:service|arena|sched|perf)\.[^'"]*)\1""")
_NAME_CHAR = r"[A-Za-z0-9_.]+"


def _pattern_to_regex(pattern: str) -> re.Pattern:
    return re.compile(
        "^" + re.escape(pattern).replace(r"\*", _NAME_CHAR) + "$"
    )


def parse_schema(project: Project, header: str = SCHEMA_HEADER):
    """Return ({metric row -> (kind, preregister)}, [spans], line) or None."""
    sf = project.files.get(header)
    if sf is None:
        return None, None, f"{header} not found"
    text = "\n".join(sf.lines)
    m = text.find("#define RLA_METRIC_SCHEMA(")
    s = text.find("#define RLA_SPAN_SCHEMA(")
    if m < 0 or s < 0:
        return None, None, f"{header} lacks RLA_METRIC_SCHEMA/RLA_SPAN_SCHEMA"

    def macro_block(start: int) -> str:
        out = []
        for line in text[start:].split("\n"):
            out.append(line)
            if not line.rstrip().endswith("\\"):
                break
        return "\n".join(out)

    metrics: Dict[str, Tuple[str, bool]] = {}
    for kind, name, pre in _METRIC_ROW.findall(macro_block(m)):
        metrics[name] = (kind, pre == "true")
    spans = [nm for nm in _SPAN_ROW.findall(macro_block(s))]
    line = text[:m].count("\n") + 1
    if not metrics or not spans:
        return None, None, f"{header} schema macros define no rows"
    return metrics, spans, line


class MetricsSchemaChecker:
    name = "metrics-schema"
    code = "C3"
    description = (
        "metric and span names in C++ producers and Python consumers must "
        "match the canonical schema in src/obs/schema.hpp"
    )

    def _is_producer(self, path: str) -> bool:
        if path.startswith("tests/"):
            return False  # unit tests use ad-hoc names on private registries
        if path == SCHEMA_HEADER or path.startswith("src/obs/metrics"):
            return False  # the registry implementation itself
        return path.startswith(("src/", "bench/", "tools/")) and path.endswith(
            (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl")
        )

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        metrics, spans, where = parse_schema(project)
        if metrics is None:
            findings.append(
                Finding(self.name, self.code, SCHEMA_HEADER, 1, str(where))
            )
            return findings
        metric_res = {nm: _pattern_to_regex(nm) for nm in metrics}
        span_set = set(spans)
        covered: Set[str] = set()  # schema rows with a producer

        def match_schema(name: str) -> Optional[str]:
            if name in metrics:
                return name
            for nm, rx in metric_res.items():
                if "*" in nm and rx.match(name):
                    return nm
            return None

        def family_for(sf, lineno: int) -> Optional[List[str]]:
            """metric-family declaration on the line or <=5 lines above."""
            lo = max(0, lineno - 1 - FAMILY_WINDOW)
            for k in range(lineno - 1, lo - 1, -1):
                raw = sf.lines[k] if k < len(sf.lines) else ""
                if FAMILY_MARK in raw:
                    tail = raw.split(FAMILY_MARK, 1)[1].strip()
                    return [t for t in tail.split() if t]
            return None

        for sf in project.cpp_files():
            # Explicitly-named files (fixtures) are always treated as
            # producers; the path filter only shapes the default sweep.
            if not self._is_producer(sf.path) and not (
                project.explicit and sf.path in project.target_set()
            ):
                continue
            for i, line in enumerate(sf.code_lines, start=1):
                # Span literals.
                for nm in _SPAN_LIT.findall(line):
                    if nm in span_set:
                        covered.add("span:" + nm)
                    elif project.in_targets(sf.path):
                        findings.append(
                            Finding(
                                self.name, self.code, sf.path, i,
                                f"span name \"{nm}\" is not in RLA_SPAN_SCHEMA "
                                f"({SCHEMA_HEADER}:{where})",
                            )
                        )
                # Metric calls: literal names check against the schema;
                # computed names need a metric-family declaration.
                for m in _METRIC_CALL.finditer(line):
                    lit = _METRIC_CALL_LIT.match(line, m.start())
                    if lit:
                        nm = lit.group(1)
                        hit = match_schema(nm)
                        if hit:
                            covered.add(hit)
                        elif project.in_targets(sf.path):
                            findings.append(
                                Finding(
                                    self.name, self.code, sf.path, i,
                                    f"metric name \"{nm}\" is not in "
                                    f"RLA_METRIC_SCHEMA ({SCHEMA_HEADER}:"
                                    f"{where})",
                                )
                            )
                        continue
                    fam = family_for(sf, i)
                    if fam is None:
                        if project.in_targets(sf.path):
                            findings.append(
                                Finding(
                                    self.name, self.code, sf.path, i,
                                    f".{m.group(1)}() with a computed name "
                                    "needs an adjacent '// metric-family: "
                                    "<schema row>' declaration",
                                )
                            )
                        continue
                    for f_nm in fam:
                        if f_nm == "schema":
                            # Iterates the schema itself: every preregister
                            # row is produced here.
                            for nm, (_, pre) in metrics.items():
                                if pre:
                                    covered.add(nm)
                        elif f_nm in metrics:
                            covered.add(f_nm)
                        elif project.in_targets(sf.path):
                            findings.append(
                                Finding(
                                    self.name, self.code, sf.path, i,
                                    f"metric-family '{f_nm}' is not a row of "
                                    f"RLA_METRIC_SCHEMA ({SCHEMA_HEADER}:"
                                    f"{where})",
                                )
                            )

        # Python consumers.
        for sf in project.python_files():
            if not sf.path.startswith("tools/"):
                continue
            if sf.path.startswith("tools/rla_lint/"):
                continue  # the lint's own sources carry seeded bad names
            for i, line in enumerate(sf.lines, start=1):
                code = line.split("#", 1)[0]
                for _q, nm in _PY_STRING.findall(code):
                    norm = re.sub(r"\{[^}]*\}", "*", nm)
                    if norm.endswith("."):
                        norm += "*"
                    if not re.fullmatch(r"[A-Za-z0-9_.*]+", norm):
                        continue
                    if norm.rstrip("*").rstrip(".") in ("service", "arena",
                                                        "sched", "perf"):
                        continue  # bare prefix, not a name
                    ok = match_schema(norm) or (
                        "*" in norm
                        and any(
                            _covers(norm, row) for row in metrics
                        )
                    )
                    if not ok and project.in_targets(sf.path):
                        findings.append(
                            Finding(
                                self.name, self.code, sf.path, i,
                                f"python consumer references \"{nm}\" which "
                                f"matches no RLA_METRIC_SCHEMA row "
                                f"({SCHEMA_HEADER}:{where})",
                            )
                        )

        # Dead schema rows (sweep only).
        if not project.explicit:
            for nm in metrics:
                if nm not in covered:
                    findings.append(
                        Finding(
                            self.name, self.code, SCHEMA_HEADER, where,
                            f"dead schema row \"{nm}\": no C++ producer "
                            "(literal or metric-family declaration) emits it",
                        )
                    )
            for nm in spans:
                if ("span:" + nm) not in covered:
                    findings.append(
                        Finding(
                            self.name, self.code, SCHEMA_HEADER, where,
                            f"dead span row \"{nm}\": no PhaseScope/fp_phase "
                            "site uses it",
                        )
                    )
        return findings

    # -- self-test --------------------------------------------------------

    def self_test(self) -> List[str]:
        errors: List[str] = []
        proj = Project(".")
        proj.add_virtual_file(
            SCHEMA_HEADER,
            "\n".join(
                [
                    "#define RLA_METRIC_SCHEMA(X) \\",
                    '  X(Counter, "service.submitted", true) \\',
                    '  X(Counter, "service.outcome.*", false) \\',
                    '  X(Gauge, "arena.unused_row", false)',
                    "#define RLA_SPAN_SCHEMA(X) \\",
                    '  X("compute") \\',
                    '  X("verify")',
                ]
            ),
        )
        proj.add_virtual_file(
            "src/service/use.cpp",
            "\n".join(
                [
                    "void f(Registry& reg) {",
                    '  reg.counter("service.submitted").add(1);',
                    '  reg.counter("service.typo").add(1);',
                    "  // metric-family: service.outcome.*",
                    "  reg.counter(outcome_name(o)).add(1);",
                    "  // metric-family: service.no_such_row",
                    "  reg.gauge(other_name()).set(2);",
                    '  obs::PhaseScope ps("compute");',
                    '  obs::PhaseScope bad("comupte");',
                    "  int spacer1 = 0;",
                    "  int spacer2 = spacer1;",
                    "  reg.gauge(dynamic_name()).set(spacer2);",
                    "}",
                ]
            ),
        )
        proj.add_virtual_file(
            "tools/consume.py",
            "\n".join(
                [
                    'REQUIRED = ["service.submitted", "service.mistyped"]',
                    'fam = f"service.outcome.{name}"',
                ]
            ),
        )
        msgs = [f.message for f in self.run(proj)]

        def has(frag):
            return any(frag in m for m in msgs)

        if not has('"service.typo" is not'):
            errors.append("C3 missed off-schema C++ literal")
        if has('"service.submitted" is not'):
            errors.append("C3 flagged an on-schema literal")
        if not has("needs an adjacent"):
            errors.append("C3 missed computed name without metric-family")
        if not has("'service.no_such_row' is not a row"):
            errors.append("C3 missed bogus metric-family row")
        if not has('span name "comupte"'):
            errors.append("C3 missed off-schema span literal")
        if not has('"service.mistyped" which matches no'):
            errors.append("C3 missed off-schema python consumer name")
        if has('"service.outcome.{name}"'):
            errors.append("C3 flagged a family-shaped python f-string")
        if not has('dead schema row "arena.unused_row"'):
            errors.append("C3 missed dead schema row")
        if not has('dead span row "verify"'):
            errors.append("C3 missed dead span row")
        if has('dead schema row "service.outcome.*"'):
            errors.append("C3 ignored metric-family coverage")
        return errors


def _covers(consumer_pattern: str, row: str) -> bool:
    """True if a wildcard consumer pattern could name members of `row`.

    Both sides may hold '*'; treat each '*' as [A-Za-z0-9_.]+ and test the
    row pattern's literal prefix against the consumer regex (prefix overlap
    is enough: consumers slice prefixes like "perf.total.")."""
    rx = re.compile(
        "^" + re.escape(consumer_pattern).replace(r"\*", _NAME_CHAR)
    )
    probe = row.replace("*", "x")
    return bool(rx.match(probe))
