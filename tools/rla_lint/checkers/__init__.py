"""Checker registry for rla_lint."""

from rla_lint.checkers import (
    env_contract,
    fault_sites,
    hotpath,
    locks,
    metrics_schema,
    race_annotations,
)

ALL_CHECKERS = [
    hotpath.HotpathChecker(),
    fault_sites.FaultSiteChecker(),
    metrics_schema.MetricsSchemaChecker(),
    env_contract.EnvContractChecker(),
    locks.LockChecker(),
    race_annotations.RaceAnnotationChecker(),
]


def by_name(names):
    table = {c.name: c for c in ALL_CHECKERS}
    picked = []
    for n in names:
        if n not in table:
            raise KeyError(n)
        picked.append(table[n])
    return picked
