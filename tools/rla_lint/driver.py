"""rla_lint driver: CLI, project loading, output formats, self-test."""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from rla_lint import __version__
from rla_lint import checkers as registry
from rla_lint.model import Finding, Project, load_compile_commands


def _default_root() -> str:
    # tools/rla_lint/driver.py -> repo root is two levels up from tools/.
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )


def _emit_text(findings: List[Finding], out) -> None:
    for f in findings:
        print(f.render(), file=out)


def _emit_json(findings: List[Finding], out) -> None:
    json.dump(
        [
            {
                "checker": f.checker,
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in findings
        ],
        out,
        indent=2,
    )
    print(file=out)


def _emit_sarif(findings: List[Finding], selected, out) -> None:
    rules = [
        {
            "id": c.code,
            "name": c.name,
            "shortDescription": {"text": c.description},
        }
        for c in selected
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f"[{f.checker}] {f.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line},
                    }
                }
            ],
        }
        for f in findings
    ]
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "rla_lint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    json.dump(sarif, out, indent=2)
    print(file=out)


def run_self_tests(selected, out) -> int:
    failed = 0
    for c in selected:
        errors = c.self_test()
        if errors:
            failed += 1
            print(f"self-test FAILED [{c.code} {c.name}]:", file=out)
            for e in errors:
                print(f"  - {e}", file=out)
        else:
            print(f"self-test OK [{c.code} {c.name}]", file=out)
    if failed:
        print(f"rla_lint self-test: {failed} checker(s) FAILED", file=out)
        return 2
    print(
        f"rla_lint self-test: all {len(selected)} checkers detect their "
        "seeded violations",
        file=out,
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="rla_lint",
        description=(
            "Whole-project invariant analysis: hot-path purity, fault-site "
            "registry, metric/span schema, env contract, lock discipline, "
            "race annotations."
        ),
    )
    ap.add_argument(
        "paths",
        nargs="*",
        help="restrict findings to these files (repo-relative); default: sweep",
    )
    ap.add_argument("--root", default=_default_root(), help="repository root")
    ap.add_argument(
        "--checkers",
        default="all",
        help="comma-separated checker names (default: all); see --list-checkers",
    )
    ap.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json: adds its TUs to the sweep and feeds "
        "include paths to the libclang backend",
    )
    ap.add_argument(
        "--backend",
        choices=("auto", "text", "clang"),
        default="auto",
        help="call-graph frontend: libclang when importable (auto), force "
        "lexical (text), or require libclang (clang)",
    )
    ap.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list-checkers", action="store_true")
    ap.add_argument("--version", action="version", version=__version__)
    args = ap.parse_args(argv)

    try:
        if args.checkers == "all":
            selected = list(registry.ALL_CHECKERS)
        else:
            selected = registry.by_name(
                [c.strip() for c in args.checkers.split(",") if c.strip()]
            )
    except KeyError as e:
        known = ", ".join(c.name for c in registry.ALL_CHECKERS)
        print(f"error: unknown checker {e}; known: {known}", file=sys.stderr)
        return 2

    if args.list_checkers:
        for c in registry.ALL_CHECKERS:
            print(f"{c.code}  {c.name:18s} {c.description}")
        return 0

    if args.self_test:
        return run_self_tests(selected, sys.stdout)

    project = Project(args.root)
    project.load_tree()
    if args.compile_commands:
        try:
            tus, includes = load_compile_commands(
                args.compile_commands, args.root
            )
        except (OSError, ValueError) as e:
            print(f"error: bad compile_commands: {e}", file=sys.stderr)
            return 2
        for rel in tus:
            project.load_file(rel)
        project.clang_includes = includes

    if args.paths:
        project.explicit = True
        for rel in args.paths:
            # Accept repo-relative paths regardless of cwd (ctest runs from
            # the build tree), falling back to cwd-relative resolution.
            if not os.path.isabs(rel) and os.path.isfile(
                os.path.join(args.root, rel)
            ):
                rel = rel.replace(os.sep, "/")
            else:
                rel = os.path.relpath(
                    os.path.abspath(rel), os.path.abspath(args.root)
                ).replace(os.sep, "/")
            if project.load_file(rel) is None:
                print(f"error: no such file: {rel}", file=sys.stderr)
                return 2
            project.targets.append(rel)

    # Backend selection: libclang sharpens the C1 call graph when present.
    if args.backend in ("auto", "clang"):
        try:
            from rla_lint import clang_frontend

            clang_frontend.sharpen(project)
            project.backend = "clang"
        except clang_frontend.ClangUnavailable as e:
            if args.backend == "clang":
                print(f"error: libclang backend unavailable: {e}", file=sys.stderr)
                return 2
            project.backend = "text"

    findings: List[Finding] = []
    for c in selected:
        findings.extend(c.run(project))
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))

    if args.format == "json":
        _emit_json(findings, sys.stdout)
    elif args.format == "sarif":
        _emit_sarif(findings, selected, sys.stdout)
    else:
        _emit_text(findings, sys.stdout)
        scanned = len(project.targets) if project.explicit else len(project.files)
        names = ",".join(c.name for c in selected)
        verdict = "FAILED" if findings else "OK"
        print(
            f"rla_lint {verdict}: {scanned} file(s), {len(findings)} "
            f"violation(s), checkers: {names}, backend: {project.backend}"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
