"""rla_lint: whole-project invariant analysis for the rla tree.

A shared driver (compile-commands ingestion, per-checker fixtures,
--self-test, JSON/SARIF output) over a suite of project-invariant checkers:

  C1  hot-path purity        (checkers/hotpath.py)
  C2  fault-site registry    (checkers/fault_sites.py)
  C3  metric/span schema     (checkers/metrics_schema.py)
  C4  env-var contract       (checkers/env_contract.py)
  C5  lock discipline        (checkers/locks.py, folds tools/check_locks.py)
  C6  race annotations       (checkers/race_annotations.py,
                              folds tools/check_annotations.py)

Two frontends produce the source model the checkers consume: a pure-Python
lexical frontend (always available, deterministic) and a libclang
(clang.cindex) frontend that sharpens the C1 call graph with real AST
resolution when the bindings are installed.  `--backend auto` (the default)
uses libclang when importable and falls back to the lexical frontend
otherwise, so the lint runs identically on boxes without clang.

Run as `python3 tools/rla_lint [args]` (the package is directly runnable).
"""

__version__ = "1.0"
