"""Optional libclang frontend for rla_lint.

When the clang.cindex Python bindings (and a loadable libclang) are
available, this module re-derives the function table and call-graph edges
from real ASTs: overloads resolve to their actual targets, calls through
member pointers and templates stop being name-matched guesses, and macro
expansions are seen post-expansion.  Everything else in the checkers —
directives, ban-lists, schema parsing — is unchanged; only the Function
records and call resolution sharpen.

The container this project usually builds in has no libclang, so the import
is gated and `--backend auto` silently falls back to the lexical model.
Nothing here may be required for a green lint run.
"""

from __future__ import annotations

from typing import Dict, List

from rla_lint.model import Function, Project


class ClangUnavailable(RuntimeError):
    """Raised when clang.cindex or libclang.so cannot be loaded."""


def _load_cindex():
    try:
        from clang import cindex
    except ImportError as e:  # bindings not installed
        raise ClangUnavailable(f"clang.cindex not importable ({e})")
    try:
        # Trigger the libclang dlopen now so failure is attributable.
        cindex.Index.create()
    except Exception as e:  # libclang.so missing or ABI-mismatched
        raise ClangUnavailable(f"libclang not loadable ({e})")
    return cindex


def sharpen(project: Project) -> None:
    """Replace project's lexical function table with AST-derived records.

    Requires clang.cindex; raises ClangUnavailable otherwise.  Parse errors
    in individual TUs degrade to the lexical records for those files rather
    than failing the run (headers with unresolved includes still lint).
    """
    cindex = _load_cindex()

    index = cindex.Index.create()
    args = ["-std=c++20", "-x", "c++"]
    for inc in getattr(project, "clang_includes", []) or []:
        args.append(f"-I{inc}")

    ast_functions: List[Function] = []
    parsed_files = set()
    for sf in project.cpp_files():
        if not sf.path.endswith((".cpp", ".cc", ".cxx")):
            continue  # headers are parsed through their including TUs
        try:
            tu = index.parse(
                sf.path,
                args=args,
                unsaved_files=[(sf.path, sf.text)],
                options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
            )
        except cindex.TranslationUnitLoadError:
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (
                cindex.CursorKind.FUNCTION_DECL,
                cindex.CursorKind.CXX_METHOD,
                cindex.CursorKind.CONSTRUCTOR,
                cindex.CursorKind.DESTRUCTOR,
                cindex.CursorKind.FUNCTION_TEMPLATE,
            ):
                continue
            if not cur.is_definition() or cur.location.file is None:
                continue
            path = _rel(project, cur.location.file.name)
            if path is None or path not in project.files:
                continue
            ext = cur.extent
            body = []
            sfile = project.files[path]
            for ln in range(ext.start.line, ext.end.line + 1):
                if 1 <= ln <= len(sfile.stripped_lines):
                    body.append((ln, sfile.stripped_lines[ln - 1]))
            ast_functions.append(
                Function(
                    name=cur.spelling,
                    qualname=_qualname(cur),
                    path=path,
                    start_line=ext.start.line,
                    end_line=ext.end.line,
                    intro=cur.displayname,
                    body_lines=body,
                )
            )
            parsed_files.add(path)

    if not ast_functions:
        raise ClangUnavailable("libclang parsed no functions (broken install?)")

    # Keep lexical records for files no TU covered (standalone headers).
    lexical = [f for f in project.functions() if f.path not in parsed_files]
    merged: Dict[str, Function] = {}
    for fn in lexical + ast_functions:
        merged.setdefault(fn.key(), fn)
    project._functions = list(merged.values())
    project._fn_by_name = None


def _rel(project: Project, path: str):
    import os

    ap = os.path.abspath(path)
    root = project.root + os.sep
    if ap.startswith(root):
        return os.path.relpath(ap, project.root).replace(os.sep, "/")
    if not os.path.isabs(path):
        return path.replace(os.sep, "/")
    return None


def _qualname(cur) -> str:
    parts = [cur.spelling]
    p = cur.semantic_parent
    while p is not None and p.spelling and p.kind.name != "TRANSLATION_UNIT":
        parts.append(p.spelling)
        p = p.semantic_parent
    return "::".join(reversed(parts))
