#!/usr/bin/env python3
"""Annotation-coverage lint for the race-detector instrumentation.

The SP-bags determinacy-race detector (src/analysis) only sees memory the
code declares via RLA_RACE_READ / RLA_RACE_WRITE (and their _STRIDED
variants).  A hot loop that stores through a raw ``double*`` without an
annotation is invisible to the detector, so races through it certify
cleanly -- the worst failure mode a race certifier can have.

This lint walks the compute layers (src/core, src/layout by default) and
flags any function that

  * declares or receives a raw ``double*`` (or ``const double*``),
  * stores through it with an indexed or dereferencing assignment inside
    a ``for``/``while`` loop, and
  * contains no RLA_RACE_* annotation.

Functions whose accesses are deliberately covered by an annotation in
their caller (leaf helpers invoked under a wrapper that declares the
whole tile) opt out with a marker comment anywhere in the function:

    // rla-lint: covered-by-caller

The heuristic is intentionally syntactic: it never misses a textual
store, and the escape hatch is a grep-able audit trail of every loop the
detector does not watch directly.

Usage:
  tools/check_annotations.py [--root DIR] [paths...]   # lint (default: src/core src/layout)
  tools/check_annotations.py --self-test               # verify the lint finds a seeded violation

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

MARKER = "rla-lint: covered-by-caller"
ANNOTATION_RE = re.compile(r"\bRLA_RACE_(?:READ|WRITE)(?:_STRIDED)?\s*\(")
# `double* p`, `const double *p`, `double* const p` -- declaration or parameter.
DOUBLE_PTR_DECL_RE = re.compile(
    r"(?:\bconst\s+)?\bdouble\s*\*\s*(?:const\s+)?(?:__restrict(?:__)?\s+)?(\w+)"
)
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
# name[idx] = / += / -= ... (reject == and <=/>= comparisons).
INDEXED_STORE_RE = re.compile(r"\b(\w+)\s*\[[^\]]*\]\s*(?:[+\-*/%&|^]|<<|>>)?=(?!=)")
# *name = / *name += ... as a statement; the leading anchor rejects pointer
# declarations (`double* p = ...`), where `*` follows a type name.
DEREF_STORE_RE = re.compile(
    r"(?:^|[;{}(])\s*\*\s*(\w+)\s*(?:[+\-*/%&|^]|<<|>>)?=(?!=)"
)
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "else", "do"}
TYPE_OPENERS = {"namespace", "struct", "class", "enum", "union", "extern"}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append("".join(c if c == "\n" else " " for c in seg))
            i = j + 2
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Function:
    def __init__(self, signature: str, start_line: int):
        self.signature = signature
        self.start_line = start_line
        self.end_line = start_line
        self.body: list[tuple[int, str]] = []  # (line number, stripped text)


def split_functions(stripped: str):
    """Yield Function objects for every brace block that looks like a function.

    A block is a function when its introducing statement contains a
    parenthesised parameter list and is not a control construct or a type
    definition.  Nested blocks (lambdas, loops) stay part of the enclosing
    function; methods inside class bodies are picked up as their own
    functions.
    """
    lines = stripped.split("\n")
    functions: list[Function] = []
    stack: list[tuple[bool, Function | None]] = []  # (is_function, fn)
    statement = ""  # text since the last ; { or } -- the block introducer
    statement_line = 1

    for lineno, line in enumerate(lines, start=1):
        for fn in [f for is_fn, f in stack if is_fn and f is not None]:
            fn.body.append((lineno, line))
            break  # only the outermost function needs the line once
        col = 0
        for ch in line:
            col += 1
            if ch == "{":
                intro = statement.strip()
                first_word = re.match(r"[A-Za-z_]\w*", intro)
                word = first_word.group(0) if first_word else ""
                is_fn = (
                    "(" in intro
                    and ")" in intro
                    and word not in CONTROL_KEYWORDS
                    and word not in TYPE_OPENERS
                    and not intro.startswith("=")
                    and not any(f for f, _ in stack if f)  # not nested in a fn
                )
                fn = Function(intro, statement_line) if is_fn else None
                if fn is not None:
                    functions.append(fn)
                stack.append((is_fn, fn))
                statement = ""
                statement_line = lineno
            elif ch == "}":
                if stack:
                    is_fn, fn = stack.pop()
                    if is_fn and fn is not None:
                        fn.end_line = lineno
                statement = ""
                statement_line = lineno
            elif ch == ";":
                statement = ""
                statement_line = lineno
            else:
                if not statement:
                    statement_line = lineno
                statement += ch
        statement += " "
    return functions


def lint_text(text: str, path: str):
    """Return a list of (path, line, message) violations for one file."""
    marker_lines = {
        i for i, raw in enumerate(text.split("\n"), start=1) if MARKER in raw
    }
    stripped = strip_comments_and_strings(text)
    violations = []
    for fn in split_functions(stripped):
        body_text = "\n".join(line for _, line in fn.body)
        scope_text = fn.signature + "\n" + body_text
        if ANNOTATION_RE.search(scope_text):
            continue
        if any(fn.start_line <= m <= fn.end_line for m in marker_lines):
            continue
        ptr_names = set(DOUBLE_PTR_DECL_RE.findall(scope_text))
        if not ptr_names or not LOOP_RE.search(body_text):
            continue
        for lineno, line in fn.body:
            for regex in (INDEXED_STORE_RE, DEREF_STORE_RE):
                for m in regex.finditer(line):
                    if m.group(1) in ptr_names:
                        violations.append(
                            (
                                path,
                                lineno,
                                f"store through raw double* '{m.group(1)}' in a loop "
                                f"without RLA_RACE_WRITE/READ coverage "
                                f"(function at line {fn.start_line}; if the caller "
                                f"annotates this memory, add '// {MARKER}')",
                            )
                        )
                        break
                else:
                    continue
                break
    return violations


def lint_paths(root: Path, rel_paths):
    violations = []
    scanned = 0
    for rel in rel_paths:
        base = root / rel
        if not base.exists():
            print(f"error: no such path: {base}", file=sys.stderr)
            return None, 0
        files = sorted(base.rglob("*")) if base.is_dir() else [base]
        for f in files:
            if f.suffix not in {".cpp", ".hpp", ".h", ".cc"}:
                continue
            scanned += 1
            violations.extend(lint_text(f.read_text(), str(f.relative_to(root))))
    return violations, scanned


# --- self test ---------------------------------------------------------------

SEEDED_BAD = """
#include "analysis/annotations.hpp"
namespace rla {
void scale_rows(double* c, std::size_t ldc, double s, int m, int n) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) c[j * ldc + i] *= s;  // unannotated store
  }
}
}  // namespace rla
"""

SEEDED_GOOD = """
#include "analysis/annotations.hpp"
namespace rla {
void scale_rows(double* c, std::size_t ldc, double s, int m, int n) {
  RLA_RACE_WRITE_STRIDED(c, m * sizeof(double), ldc * sizeof(double), n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) c[j * ldc + i] *= s;
  }
}
// rla-lint: covered-by-caller -- the wrapper above declared the block.
void scale_leaf(double* c, int m) {
  for (int i = 0; i < m; ++i) c[i] *= 2.0;
}
void reads_only(const double* a, int m, double* out_sum) {
  double s = 0.0;
  for (int i = 0; i < m; ++i) s += a[i];
  *out_sum = s;  // single store outside any loop-carried pointer walk is
}                // still flagged only when a loop exists -- it does here.
}  // namespace rla
"""


def self_test() -> int:
    bad = lint_text(SEEDED_BAD, "<seeded-bad>")
    if len(bad) != 1 or "'c'" not in bad[0][2]:
        print(f"self-test FAILED: seeded violation not found (got {bad})")
        return 2
    good = lint_text(SEEDED_GOOD, "<seeded-good>")
    # `reads_only` stores *out_sum inside a function that has a loop: that is
    # a true positive of the conservative heuristic and must be reported;
    # the annotated and marker-escaped functions must not be.
    flagged_lines = {v[1] for v in good}
    annotated_fn_lines = set(range(3, 10))
    if flagged_lines & annotated_fn_lines:
        print(f"self-test FAILED: annotated function was flagged ({good})")
        return 2
    if any("scale_leaf" in v[2] for v in good):
        print(f"self-test FAILED: marker-escaped function was flagged ({good})")
        return 2
    print("self-test OK: seeded violation detected, covered code passes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--root", default=None, help="repository root (default: tool's parent)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    rel_paths = args.paths or ["src/core", "src/layout"]
    violations, scanned = lint_paths(root, rel_paths)
    if violations is None:
        return 2
    for path, line, msg in violations:
        print(f"{path}:{line}: {msg}")
    status = "FAILED" if violations else "OK"
    print(
        f"annotation lint {status}: {scanned} files scanned, "
        f"{len(violations)} unannotated raw-pointer loop store(s)"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
