#!/usr/bin/env python3
"""Diff clang static-analyzer (scan-build) results against a committed baseline.

scan-build has no native baseline mechanism, so CI uses this tool: the
`static-analysis` job runs `scan-build -plist -o <dir> cmake --build ...`
(the toolchain only exists on the CI image — the dev container has no
clang), then `scan_baseline.py compare` parses the emitted .plist files and
fails iff a diagnostic appears that the committed baseline
(tools/scan_build.baseline) does not list.

Baseline entries are one per line: `checker|file|issue_hash|description`.
The issue hash is clang's `issue_hash_content_of_line_in_context`, which is
stable across unrelated edits (it hashes the issue line's context, not its
line number), so the baseline does not churn when code moves.  Lines
starting with '#' are comments.  Stale entries (in the baseline, no longer
reported) are warnings, not failures — prune them with `--update`.

Usage:
  scan_baseline.py compare --plist-dir DIR [--baseline FILE] [--update]
  scan_baseline.py --self-test
"""

from __future__ import annotations

import argparse
import os
import plistlib
import sys
import tempfile

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "scan_build.baseline")


def collect_issues(plist_dir: str):
    """Parse every .plist under plist_dir -> sorted list of signature tuples."""
    issues = []
    for dirpath, _dirnames, filenames in os.walk(plist_dir):
        for fn in sorted(filenames):
            if not fn.endswith(".plist"):
                continue
            path = os.path.join(dirpath, fn)
            try:
                with open(path, "rb") as f:
                    data = plistlib.load(f)
            except Exception as e:  # malformed plist: surface, don't crash
                print(f"warning: unreadable plist {path}: {e}", file=sys.stderr)
                continue
            files = data.get("files", [])
            for diag in data.get("diagnostics", []):
                loc = diag.get("location", {})
                fidx = loc.get("file", -1)
                fname = files[fidx] if 0 <= fidx < len(files) else "?"
                # Normalize to a repo-relative-ish suffix so CI and local
                # runs agree regardless of checkout directory.
                fname = fname.replace("\\", "/")
                for marker in ("/src/", "/tests/", "/bench/", "/tools/",
                               "/examples/"):
                    k = fname.find(marker)
                    if k >= 0:
                        fname = fname[k + 1:]
                        break
                issues.append(
                    (
                        diag.get("check_name", "?"),
                        fname,
                        diag.get("issue_hash_content_of_line_in_context", "?"),
                        diag.get("description", "?"),
                    )
                )
    return sorted(set(issues))


def load_baseline(path: str):
    entries = set()
    if not os.path.isfile(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|", 3)
            if len(parts) == 4:
                entries.add(tuple(parts))
    return entries


def write_baseline(path: str, issues) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("# clang static-analyzer baseline for scan_baseline.py\n")
        f.write("# format: checker|file|issue_hash|description\n")
        f.write("# regenerate: tools/scan_baseline.py compare "
                "--plist-dir <dir> --update\n")
        for checker, fname, ihash, desc in issues:
            f.write(f"{checker}|{fname}|{ihash}|{desc}\n")


def compare(plist_dir: str, baseline_path: str, update: bool) -> int:
    issues = collect_issues(plist_dir)
    baseline = load_baseline(baseline_path)
    if update:
        write_baseline(baseline_path, issues)
        print(f"baseline updated: {len(issues)} issue(s) -> {baseline_path}")
        return 0
    new = [i for i in issues if i not in baseline]
    stale = sorted(baseline - set(issues))
    for checker, fname, ihash, desc in stale:
        print(f"warning: stale baseline entry: {checker}|{fname}|{ihash}",
              file=sys.stderr)
    if new:
        print(f"scan-build FAILED: {len(new)} issue(s) not in baseline "
              f"({baseline_path}):")
        for checker, fname, ihash, desc in new:
            print(f"  {fname}: [{checker}] {desc} (hash {ihash})")
        print("fix the issue, or if it is a deliberate false positive add "
              "the line above to the baseline via --update")
        return 1
    print(f"scan-build OK: {len(issues)} issue(s), all baselined; "
          f"{len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'}")
    return 0


# -- self test ---------------------------------------------------------------


def _mk_plist(path: str, desc: str, ihash: str) -> None:
    data = {
        "files": ["/ci/checkout/src/core/gemm.cpp"],
        "diagnostics": [
            {
                "check_name": "core.NullDereference",
                "description": desc,
                "issue_hash_content_of_line_in_context": ihash,
                "location": {"file": 0, "line": 42, "col": 3},
            }
        ],
    }
    with open(path, "wb") as f:
        plistlib.dump(data, f)


def self_test() -> int:
    with tempfile.TemporaryDirectory() as td:
        plist_dir = os.path.join(td, "plists")
        os.mkdir(plist_dir)
        _mk_plist(os.path.join(plist_dir, "a.plist"), "null deref", "h123")
        baseline = os.path.join(td, "baseline")

        # 1. empty baseline -> new issue must fail
        if compare(plist_dir, baseline, update=False) != 1:
            print("self-test FAILED: new issue did not fail the compare")
            return 2
        # 2. update, then compare -> clean
        if compare(plist_dir, baseline, update=True) != 0:
            print("self-test FAILED: --update errored")
            return 2
        if compare(plist_dir, baseline, update=False) != 0:
            print("self-test FAILED: baselined issue still fails")
            return 2
        # 3. baseline survives file-path prefix changes (hash-keyed)
        _mk_plist(os.path.join(plist_dir, "a.plist"), "null deref", "h123")
        with open(os.path.join(plist_dir, "a.plist"), "rb") as f:
            data = plistlib.load(f)
        data["files"] = ["/other/prefix/src/core/gemm.cpp"]
        with open(os.path.join(plist_dir, "a.plist"), "wb") as f:
            plistlib.dump(data, f)
        if compare(plist_dir, baseline, update=False) != 0:
            print("self-test FAILED: path prefix change broke the baseline")
            return 2
        # 4. a second, unbaselined issue must fail
        _mk_plist(os.path.join(plist_dir, "b.plist"), "leak", "h999")
        if compare(plist_dir, baseline, update=False) != 1:
            print("self-test FAILED: second new issue not caught")
            return 2
    print("self-test OK: new issues fail, baselined issues pass, "
          "hash keying survives path changes")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("command", nargs="?", choices=("compare",))
    ap.add_argument("--plist-dir", default=None)
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if args.command != "compare" or not args.plist_dir:
        print("usage: scan_baseline.py compare --plist-dir DIR "
              "[--baseline FILE] [--update]  (or --self-test)",
              file=sys.stderr)
        return 2
    return compare(args.plist_dir, args.baseline, args.update)


if __name__ == "__main__":
    sys.exit(main())
