// Chaos/soak driver for the gemm service layer.
//
//   rla_soak --requests=2000 --faults=alloc,worker,stall --seed=1
//            --metrics=soak_metrics.json
//
// Hammers one GemmService with a deterministic mixed workload — sizes,
// priorities, deadlines, algorithms, layouts, a sprinkling of invalid
// arguments — while a fault plan injects allocation failures, task throws
// and executor stalls, then asserts the service guarantees:
//
//   * every submitted request terminates with exactly one Outcome (no hung
//     futures, bounded wait per request);
//   * nothing leaks: in_flight() drains to zero and every arena reservation
//     is returned;
//   * completed work is *correct*: an O(n^2) Freivalds-style probe checks
//     C·r == A·(B·r) for every Completed/Degraded request (skipped when
//     kernel-corruption faults are armed, which corrupt by design).
//
// Exit status 0 = all guarantees held; 1 = violation (details on stderr);
// 2 = bad usage. CI runs this under ASan and TSan (the chaos-soak job);
// tools/soak_check.py validates the --metrics JSON afterwards.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "robust/fault.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"

namespace {

using namespace std::chrono_literals;
using rla::service::Outcome;
using rla::service::Response;

void usage(const char* prog) {
  std::printf(
      "usage: %s [--requests=N] [--faults=alloc,worker,stall,kernel|none]\n"
      "          [--seed=N] [--threads=N] [--executors=N] [--max-inflight=N]\n"
      "          [--arena-mb=N] [--max-size=N] [--deadline-pct=N]\n"
      "          [--metrics=FILE] [--timeout-s=N] [--quiet]\n"
      "          [--telemetry-ms=N] [--exposition=FILE] [--snapshots=FILE]\n"
      "          [--flight-dump=FILE] [--stall-p=F]\n",
      prog);
}

/// One outstanding request: operand storage (alive until the future
/// resolves) plus what the final audit needs.
struct Ticket {
  std::vector<double> a, b, c;
  std::uint32_t m = 0, n = 0, k = 0;
  bool check = false;     ///< Freivalds probe on success
  bool expect_failed = false;  ///< submitted with invalid arguments
  std::future<Response> fut;
};

/// O(mn + mk + kn) correctness probe: C·r vs A·(B·r) for a random ±1 vector.
/// Exact products are identical; floating-point noise stays far below tol.
bool probe_ok(const Ticket& t) {
  std::mt19937_64 rng(t.m * 1000003ull + t.n * 10007ull + t.k * 101ull);
  std::vector<double> r(t.n), br(t.k, 0.0), abr(t.m, 0.0), cr(t.m, 0.0);
  for (double& x : r) x = (rng() & 1) ? 1.0 : -1.0;
  for (std::uint32_t j = 0; j < t.n; ++j)
    for (std::uint32_t i = 0; i < t.k; ++i) br[i] += t.b[i + j * t.k] * r[j];
  for (std::uint32_t j = 0; j < t.k; ++j)
    for (std::uint32_t i = 0; i < t.m; ++i) abr[i] += t.a[i + j * t.m] * br[j];
  for (std::uint32_t j = 0; j < t.n; ++j)
    for (std::uint32_t i = 0; i < t.m; ++i) cr[i] += t.c[i + j * t.m] * r[j];
  double diff = 0.0, scale = 1.0;
  for (std::uint32_t i = 0; i < t.m; ++i) {
    diff = std::max(diff, std::abs(cr[i] - abr[i]));
    scale = std::max(scale, std::abs(abr[i]));
  }
  return diff <= 1e-8 * scale * std::max<std::uint32_t>(1, t.k);
}

/// Translate --faults categories into the fault-plan spec grammar.
/// `stall_p` is spliced into the stall clause verbatim so CI can force a
/// deterministic stall schedule (e.g. --stall-p=1 with a fixed seed).
bool build_fault_spec(const std::string& faults, std::uint64_t seed,
                      const std::string& stall_p, std::string& spec,
                      bool& kernel_chaos) {
  spec.clear();
  kernel_chaos = false;
  if (faults.empty() || faults == "none") return true;
  std::size_t pos = 0;
  while (pos <= faults.size()) {
    const std::size_t comma = std::min(faults.find(',', pos), faults.size());
    const std::string cat = faults.substr(pos, comma - pos);
    pos = comma + 1;
    std::string clause;
    if (cat == "alloc") {
      clause = "alloc.tiled:p=0.03;alloc.temp:p=0.02";
    } else if (cat == "worker") {
      clause = "task.throw:p=0.02";
    } else if (cat == "stall") {
      clause = "service.stall:p=" + stall_p;
    } else if (cat == "kernel") {
      clause = "kernel.corrupt:p=0.02";
      kernel_chaos = true;  // silent corruption: probes would misfire
    } else if (cat.empty()) {
      continue;
    } else {
      std::fprintf(stderr, "rla_soak: unknown fault category '%s'\n", cat.c_str());
      return false;
    }
    if (!spec.empty()) spec += ';';
    spec += clause;
  }
  if (!spec.empty()) spec += ";seed=" + std::to_string(seed);
  return true;
}

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const rla::CliArgs args(argc, argv);
  if (args.get_bool("help")) {
    usage(argv[0]);
    return 0;
  }
  const auto requests = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("requests", 2000)));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto max_size =
      static_cast<std::uint32_t>(std::max<std::int64_t>(8, args.get_int("max-size", 160)));
  const auto deadline_pct =
      std::clamp<std::int64_t>(args.get_int("deadline-pct", 25), 0, 100);
  const auto timeout = std::chrono::seconds(
      std::max<std::int64_t>(1, args.get_int("timeout-s", 120)));
  const bool quiet = args.get_bool("quiet");

  std::string fault_spec;
  bool kernel_chaos = false;
  if (!build_fault_spec(args.get("faults", "alloc,worker,stall"), seed,
                        args.get("stall-p", "0.04"), fault_spec, kernel_chaos)) {
    usage(argv[0]);
    return 2;
  }

  rla::service::ServiceConfig cfg;
  cfg.threads = static_cast<unsigned>(std::max<std::int64_t>(0, args.get_int("threads", 0)));
  cfg.executors =
      static_cast<unsigned>(std::max<std::int64_t>(1, args.get_int("executors", 3)));
  cfg.max_inflight = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("max-inflight", 64)));
  cfg.arena_bytes = static_cast<std::size_t>(
                        std::max<std::int64_t>(0, args.get_int("arena-mb", 256)))
                    << 20;
  cfg.watchdog_period = 5ms;
  cfg.telemetry_period = std::chrono::milliseconds(
      std::max<std::int64_t>(0, args.get_int("telemetry-ms", 0)));
  const std::string flight_dump = args.get("flight-dump");
  cfg.flight_dump_path = flight_dump;  // watchdog auto-dumps on first stall

  // Armed for the whole soak: probabilistic triggers are stateless per hit
  // index, so the chaos schedule is reproducible for a given seed no matter
  // how the concurrent requests interleave.
  std::unique_ptr<rla::fault::ScopedPlan> plan;
  try {
    if (!fault_spec.empty()) plan = std::make_unique<rla::fault::ScopedPlan>(fault_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rla_soak: bad fault spec: %s\n", e.what());
    return 2;
  }

  rla::service::GemmService service(cfg);
  // Arm the fatal-signal dump alongside the watchdog's stall dump: a crash
  // mid-soak still leaves the lifecycle ring on disk for the post-mortem.
  if (!flight_dump.empty()) {
    rla::obs::telemetry::install_fatal_dump(&service.flight(),
                                            flight_dump.c_str());
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::uint32_t sizes[] = {16,  24,  32,  48,  64,  80,  96,
                                 112, 128, 144, max_size};
  const std::size_t max_outstanding = std::max<std::size_t>(64, 2 * cfg.max_inflight);

  std::size_t outcomes[5] = {0, 0, 0, 0, 0};
  std::size_t hung = 0, wrong = 0, unexpected = 0, retried = 0, probed = 0;
  std::size_t untraced = 0;
  std::vector<double> queue_ms, total_ms;
  std::deque<std::unique_ptr<Ticket>> outstanding;

  auto settle = [&](Ticket& t) {
    if (t.fut.wait_for(timeout) != std::future_status::ready) {
      ++hung;  // guarantee violated: a future that never resolves
      return;
    }
    const Response r = t.fut.get();
    outcomes[static_cast<int>(r.outcome)]++;
    if (r.attempts > 1) ++retried;
    // Telemetry guarantee: every response carries a request-scoped trace id,
    // and a completed run's profile carries the same one.
    if (r.trace_id == 0 ||
        (r.outcome != Outcome::Rejected && r.attempts > 0 &&
         r.profile.trace_id != 0 && r.profile.trace_id != r.trace_id)) {
      ++untraced;
    }
    if (r.outcome != Outcome::Rejected) {
      queue_ms.push_back(r.queue_seconds * 1e3);
      total_ms.push_back((r.queue_seconds + r.run_seconds) * 1e3);
    }
    // Invalid arguments must never *succeed*; bouncing off backpressure or a
    // queue-deadline before the arguments are ever inspected is fine.
    if (t.expect_failed &&
        (r.outcome == Outcome::Completed || r.outcome == Outcome::Degraded)) {
      ++unexpected;
    }
    if (t.check && !kernel_chaos &&
        (r.outcome == Outcome::Completed || r.outcome == Outcome::Degraded)) {
      ++probed;
      if (!probe_ok(t)) {
        ++wrong;
        std::fprintf(stderr, "rla_soak: WRONG RESULT id=%llu %ux%ux%u (%s)\n",
                     static_cast<unsigned long long>(r.id), t.m, t.n, t.k,
                     rla::service::outcome_name(r.outcome).data());
      }
    }
  };

  for (std::size_t i = 0; i < requests; ++i) {
    auto t = std::make_unique<Ticket>();
    t->m = sizes[rng() % std::size(sizes)];
    t->n = sizes[rng() % std::size(sizes)];
    t->k = sizes[rng() % std::size(sizes)];
    t->a.resize(static_cast<std::size_t>(t->m) * t->k);
    t->b.resize(static_cast<std::size_t>(t->k) * t->n);
    t->c.assign(static_cast<std::size_t>(t->m) * t->n, 0.0);
    for (double& x : t->a) x = dist(rng);
    for (double& x : t->b) x = dist(rng);

    rla::service::Request req;
    req.m = t->m;
    req.n = t->n;
    req.k = t->k;
    req.a = t->a.data();
    req.lda = t->m;
    req.b = t->b.data();
    req.ldb = t->k;
    req.c = t->c.data();
    req.ldc = t->m;
    req.priority = static_cast<int>(rng() % 4);
    req.retry_budget = 1 + static_cast<int>(rng() % 2);
    switch (rng() % 10) {
      case 0:
      case 1:
        req.cfg.algorithm = rla::Algorithm::Strassen;
        break;
      case 2:
        req.cfg.algorithm = rla::Algorithm::Winograd;
        break;
      default:
        break;  // standard
    }
    if (rng() % 10 < 3) req.cfg.layout = rla::Curve::ColMajor;
    if (kernel_chaos && req.cfg.algorithm != rla::Algorithm::Standard) {
      req.cfg.verify = rng() % 2 == 0;  // exercise Freivalds rerun under chaos
    }
    if (static_cast<std::int64_t>(rng() % 100) < deadline_pct) {
      req.deadline = std::chrono::microseconds(500 + rng() % 50000);  // 0.5–50 ms
    }
    t->check = true;
    if (rng() % 100 == 0 && t->m > 1) {
      req.lda = 1;  // invalid: must fail fast, must not disturb anything else
      t->expect_failed = true;
      t->check = false;
    }

    t->fut = service.submit(req);
    outstanding.push_back(std::move(t));
    while (outstanding.size() > max_outstanding) {
      settle(*outstanding.front());
      outstanding.pop_front();
    }
  }
  while (!outstanding.empty()) {
    settle(*outstanding.front());
    outstanding.pop_front();
  }

  service.shutdown();
  const std::size_t leaked_inflight = service.in_flight();
  const std::size_t leaked_bytes = service.arena().reserved_bytes();

  const std::string metrics = service.metrics_json();
  const std::string metrics_path = args.get("metrics");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << metrics << "\n";
    if (!out) {
      std::fprintf(stderr, "rla_soak: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  const std::string exposition_path = args.get("exposition");
  if (!exposition_path.empty()) {
    std::ofstream out(exposition_path);
    out << service.telemetry_prometheus();
    if (!out) {
      std::fprintf(stderr, "rla_soak: cannot write %s\n", exposition_path.c_str());
      return 1;
    }
  }
  const std::string snapshots_path = args.get("snapshots");
  if (!snapshots_path.empty()) {
    std::ofstream out(snapshots_path);
    out << service.telemetry_jsonl();
    if (!out) {
      std::fprintf(stderr, "rla_soak: cannot write %s\n", snapshots_path.c_str());
      return 1;
    }
  }

  if (!quiet) {
    std::printf(
        "rla_soak: %zu requests faults=%s completed=%zu degraded=%zu "
        "rejected=%zu cancelled=%zu failed=%zu retried=%zu probed=%zu\n",
        requests, fault_spec.empty() ? "(none)" : fault_spec.c_str(),
        outcomes[static_cast<int>(Outcome::Completed)],
        outcomes[static_cast<int>(Outcome::Degraded)],
        outcomes[static_cast<int>(Outcome::Rejected)],
        outcomes[static_cast<int>(Outcome::Cancelled)],
        outcomes[static_cast<int>(Outcome::Failed)], retried, probed);
    std::printf(
        "rla_soak: queue p50=%.2fms p99=%.2fms total p99=%.2fms max=%.2fms\n",
        percentile(queue_ms, 0.5), percentile(queue_ms, 0.99),
        percentile(total_ms, 0.99),
        total_ms.empty() ? 0.0 : *std::max_element(total_ms.begin(), total_ms.end()));
  }

  bool ok = true;
  if (hung != 0) {
    std::fprintf(stderr, "rla_soak: FAIL %zu request(s) never resolved\n", hung);
    ok = false;
  }
  if (wrong != 0) {
    std::fprintf(stderr, "rla_soak: FAIL %zu wrong result(s)\n", wrong);
    ok = false;
  }
  if (unexpected != 0) {
    std::fprintf(stderr,
                 "rla_soak: FAIL %zu invalid request(s) not reported Failed\n",
                 unexpected);
    ok = false;
  }
  if (leaked_inflight != 0 || leaked_bytes != 0) {
    std::fprintf(stderr,
                 "rla_soak: FAIL leaked state after drain: in_flight=%zu "
                 "arena_reserved=%zu bytes\n",
                 leaked_inflight, leaked_bytes);
    ok = false;
  }
  if (untraced != 0) {
    std::fprintf(stderr,
                 "rla_soak: FAIL %zu response(s) with missing or mismatched "
                 "trace id\n",
                 untraced);
    ok = false;
  }
  if (!flight_dump.empty()) {
    rla::obs::telemetry::install_fatal_dump(nullptr, nullptr);
  }
  std::printf("rla_soak: %s\n", ok ? "PASS (every request terminated, nothing leaked)"
                                   : "FAIL");
  return ok ? 0 : 1;
}
