// Cross-validate the trace-driven cache simulator against hardware
// performance counters (ISSUE: sim-vs-hardware validation).
//
//   sim_vs_hw --n=1024 --sim-n=256 --tile=16 --layouts=col,z --threads=4
//
// For each layout the tool runs the same (layout, tile) point two ways:
//
//   sim: the standard-algorithm element trace (trace/access_logger) through
//        the modeled hierarchy (cachesim) at --sim-n, reporting L1d and TLB
//        miss rates and misses per FLOP;
//   hw:  a real gemm at --n with GemmConfig::hw_counters and the tile edge
//        pinned, reporting the compute phase's measured L1d-read and dTLB
//        misses per FLOP.
//
// Absolute numbers differ by design (the model is one idealized core, the
// run is a parallel machine), so the validation signal is the *cross-layout
// ratio*: if the simulator says L_Z takes 4x fewer L1 misses per FLOP than
// L_C, the PMU should agree on the direction and rough magnitude. The final
// table prints predicted vs measured ratios against the first layout.
//
// On machines without usable counters (perf_event_paranoid, VMs with no
// PMU) the hw columns are reported as unavailable and the tool still exits
// 0 — the simulator side alone is a valid artifact.
//
// With --depth=D (default: the treeprof depth cap) both sides are also
// resolved per recursion level: the simulated walk attributes exclusive
// misses and FLOPs to each depth through the hooked trace generators, and
// the hardware run arms GemmConfig::tree_profile so the PMU deltas land on
// the same depth-capped tree. The per-depth table reports predicted vs
// measured misses-per-FLOP level by level — the depth where the ratio walks
// away is the depth where the one-core model stops describing the machine.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "core/gemm.hpp"
#include "obs/treeprof/treeprof.hpp"
#include "trace/access_logger.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

namespace {

/// One recursion level's exclusive cost, on either side of the comparison.
struct DepthCosts {
  double flops = 0.0;
  double l1_misses = 0.0;
  double tlb_misses = 0.0;
  double time_ns = 0.0;    // hw side only
  bool hw_valid = false;   // hw side: some node at this depth carried PMU data
};

struct LayoutPoint {
  std::string name;        // as given on the command line
  rla::Curve curve;
  // Simulator side (per-FLOP rates at --sim-n).
  double sim_l1_miss_rate = 0.0;
  double sim_tlb_miss_rate = 0.0;
  double sim_l1_per_flop = 0.0;
  double sim_tlb_per_flop = 0.0;
  // Hardware side (per-FLOP rates at --n); valid only when the event counted.
  bool hw_l1 = false, hw_tlb = false;
  double hw_l1_per_flop = 0.0;
  double hw_tlb_per_flop = 0.0;
  double hw_gflops = 0.0;
  std::string hw_note;  // degradation summary when counters were missing
  // Per-recursion-depth exclusive attribution, index = depth (0..cap).
  bool hw_tree = false;  // the treeprof session armed for the hw run
  std::vector<DepthCosts> sim_depth;
  std::vector<DepthCosts> hw_depth;
};

/// Walk hooks charging hierarchy-counter deltas to the depth on top of the
/// stack, clamped at `cap` exactly like the treeprof rollup, so the sim and
/// hw trees have the same shape.
struct DepthHooks {
  rla::sim::MemoryHierarchy* hier;
  int cap;
  std::vector<DepthCosts>* rows;
  std::vector<int> stack;
  rla::sim::HierarchySnapshot mark{};

  void charge() {
    const rla::sim::HierarchySnapshot now = hier->snapshot();
    const rla::sim::HierarchySnapshot delta = now - mark;
    DepthCosts& row = (*rows)[static_cast<std::size_t>(stack.back())];
    row.l1_misses += static_cast<double>(delta.l1_misses);
    row.tlb_misses += static_cast<double>(delta.tlb_misses);
    mark = now;
  }
  void enter(int depth) {
    if (!stack.empty()) charge();
    stack.push_back(std::min(depth, cap));
  }
  void exit(int /*depth*/) {
    charge();
    stack.pop_back();
  }
  void leaf(int depth, std::uint32_t m, std::uint32_t n, std::uint32_t k) {
    (*rows)[static_cast<std::size_t>(std::min(depth, cap))].flops +=
        2.0 * m * n * static_cast<double>(k);
  }
};

bool has_event(const rla::GemmProfile& p, const char* name) {
  for (const auto& e : p.hw_events) {
    if (e == name) return true;
  }
  return false;
}

void run_sim(LayoutPoint& pt, std::uint32_t sim_n, std::uint32_t tile,
             int cap) {
  rla::sim::MemoryHierarchy hier{rla::sim::HierarchyConfig{}};
  pt.sim_depth.assign(static_cast<std::size_t>(cap) + 1, {});
  DepthHooks hooks{&hier, cap, &pt.sim_depth, {}, {}};
  auto sink = [&](std::uint64_t addr, bool write) { hier.access(addr, write); };
  if (pt.curve == rla::Curve::ColMajor) {
    rla::trace::walk_standard_canonical_hooked(sim_n, tile, {}, sink, hooks);
  } else {
    rla::trace::walk_standard_tiled_hooked(sim_n, tile, pt.curve, {}, sink,
                                           hooks);
  }
  const double flops = 2.0 * sim_n * sim_n * static_cast<double>(sim_n);
  pt.sim_l1_miss_rate = hier.l1().stats().miss_rate();
  pt.sim_tlb_miss_rate = hier.tlb().stats().miss_rate();
  pt.sim_l1_per_flop = static_cast<double>(hier.l1().stats().misses) / flops;
  pt.sim_tlb_per_flop = static_cast<double>(hier.tlb().stats().misses) / flops;
}

void run_hw(LayoutPoint& pt, std::uint32_t n, std::uint32_t tile,
            unsigned threads, int cap) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(static_cast<std::size_t>(n) * n);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  for (double& x : a) x = dist(rng);
  for (double& x : b) x = dist(rng);

  rla::GemmConfig cfg;
  cfg.layout = pt.curve;
  cfg.algorithm = rla::Algorithm::Standard;
  cfg.threads = threads;
  cfg.hw_counters = true;
  cfg.tree_profile = true;
  // Pin the tile edge so the hardware run uses the same leaf size the
  // simulated trace recursed to.
  cfg.tiles.t_min = cfg.tiles.t_max = cfg.tiles.t_pref = tile;
  // Match the simulated tree's rollup depth.
  ::setenv("RLA_TREEPROF_MAX_DEPTH", std::to_string(cap).c_str(), 1);

  rla::GemmProfile profile;
  rla::gemm(n, n, n, 1.0, a.data(), n, rla::Op::None, b.data(), n,
            rla::Op::None, 0.0, c.data(), n, cfg, &profile);

  for (const std::string& step : profile.degradation_trail) {
    if (step.rfind("perf:", 0) == 0) pt.hw_note = step;
  }

  // Fold the recursion-resolved profile per depth (keys are "d<depth>[:path]").
  pt.hw_tree = profile.tree_measured;
  pt.hw_depth.assign(static_cast<std::size_t>(cap) + 1, {});
  for (const rla::GemmProfile::TreeNode& node : profile.tree_profile) {
    const int d = std::atoi(node.key.c_str() + 1);
    if (d < 0 || d > cap) continue;
    DepthCosts& row = pt.hw_depth[static_cast<std::size_t>(d)];
    row.flops += static_cast<double>(node.flops);
    row.time_ns += static_cast<double>(node.time_ns);
    if (node.hw_valid) {
      row.hw_valid = true;
      row.l1_misses += static_cast<double>(node.hw.l1d_read_misses);
      row.tlb_misses += static_cast<double>(node.hw.dtlb_misses);
    }
  }
  if (!profile.hw_measured) {
    if (pt.hw_note.empty()) pt.hw_note = "perf:unavailable";
    return;
  }
  const double flops = 2.0 * n * n * static_cast<double>(n);
  // Charge the compute phase only: the converts touch the same arrays with
  // a streaming pattern the simulated trace does not model.
  const rla::GemmProfile::HwCounters* compute = &profile.hw_total;
  for (const auto& [phase, hw] : profile.hw_phases) {
    if (phase == "compute") compute = &hw;
  }
  pt.hw_l1 = has_event(profile, "l1d_read_misses");
  pt.hw_tlb = has_event(profile, "dtlb_misses");
  pt.hw_l1_per_flop = static_cast<double>(compute->l1d_read_misses) / flops;
  pt.hw_tlb_per_flop = static_cast<double>(compute->dtlb_misses) / flops;
  if (profile.compute > 0.0) pt.hw_gflops = flops / profile.compute / 1e9;
  if (!pt.hw_l1 && !pt.hw_tlb && pt.hw_note.empty()) {
    pt.hw_note = "perf:cache-events-missing";
  }
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

double ratio(double value, double base) {
  return base > 0.0 ? value / base : 0.0;
}

void print_depth_json(const char* field, const std::vector<DepthCosts>& rows) {
  std::printf(",\"%s\":[", field);
  for (std::size_t d = 0; d < rows.size(); ++d) {
    const DepthCosts& row = rows[d];
    std::printf(
        "%s{\"depth\":%zu,\"flops\":%.6g,\"l1_misses\":%.6g,"
        "\"tlb_misses\":%.6g,\"time_ns\":%.6g,\"hw_valid\":%s}",
        d == 0 ? "" : ",", d, row.flops, row.l1_misses, row.tlb_misses,
        row.time_ns, row.hw_valid ? "true" : "false");
  }
  std::printf("]");
}

void print_json(const std::vector<LayoutPoint>& points, std::uint32_t n,
                std::uint32_t sim_n, std::uint32_t tile, int cap) {
  std::printf("{\"n\":%u,\"sim_n\":%u,\"tile\":%u,\"depth_cap\":%d,"
              "\"layouts\":[",
              n, sim_n, tile, cap);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LayoutPoint& pt = points[i];
    std::printf(
        "%s{\"layout\":\"%s\",\"sim_l1_miss_rate\":%.6g,"
        "\"sim_tlb_miss_rate\":%.6g,\"sim_l1_per_flop\":%.6g,"
        "\"sim_tlb_per_flop\":%.6g,\"hw_l1\":%s,\"hw_tlb\":%s,"
        "\"hw_l1_per_flop\":%.6g,\"hw_tlb_per_flop\":%.6g,"
        "\"hw_gflops\":%.4g,\"hw_tree\":%s,\"hw_note\":\"%s\"",
        i == 0 ? "" : ",", pt.name.c_str(), pt.sim_l1_miss_rate,
        pt.sim_tlb_miss_rate, pt.sim_l1_per_flop, pt.sim_tlb_per_flop,
        pt.hw_l1 ? "true" : "false", pt.hw_tlb ? "true" : "false",
        pt.hw_l1_per_flop, pt.hw_tlb_per_flop, pt.hw_gflops,
        pt.hw_tree ? "true" : "false", pt.hw_note.c_str());
    print_depth_json("sim_depth", pt.sim_depth);
    print_depth_json("hw_depth", pt.hw_depth);
    std::printf("}");
  }
  std::printf("]}\n");
}

/// Per-depth predicted-vs-measured table for one layout, and the verdict
/// line naming the shallowest depth (with real work) where the L1 ratio
/// leaves [1/kDivergence, kDivergence].
void print_depth_table(const LayoutPoint& pt, int cap) {
  constexpr double kDivergence = 3.0;
  constexpr double kSignalShare = 0.01;  // ignore depths with <1% of the work
  double sim_flops = 0.0, hw_flops = 0.0;
  for (const DepthCosts& row : pt.sim_depth) sim_flops += row.flops;
  for (const DepthCosts& row : pt.hw_depth) hw_flops += row.flops;

  std::printf("\n%s per-depth (exclusive, cap d%d):\n", pt.name.c_str(), cap);
  std::printf("  %-5s %9s %14s %14s %8s %14s %14s %8s\n", "depth", "flops%",
              "sim-L1/flop", "hw-L1/flop", "ratio", "sim-TLB/flop",
              "hw-TLB/flop", "ratio");
  int diverged_at = -1;
  for (int d = 0; d <= cap; ++d) {
    const DepthCosts& sim = pt.sim_depth[static_cast<std::size_t>(d)];
    const DepthCosts& hw = pt.hw_depth[static_cast<std::size_t>(d)];
    const double share = hw_flops > 0.0 ? hw.flops / hw_flops
                         : sim_flops > 0.0 ? sim.flops / sim_flops
                                           : 0.0;
    const double sim_l1 = sim.flops > 0.0 ? sim.l1_misses / sim.flops : 0.0;
    const double sim_tlb = sim.flops > 0.0 ? sim.tlb_misses / sim.flops : 0.0;
    const double hw_l1 = hw.hw_valid && hw.flops > 0.0 ? hw.l1_misses / hw.flops
                                                       : 0.0;
    const double hw_tlb = hw.hw_valid && hw.flops > 0.0
                              ? hw.tlb_misses / hw.flops
                              : 0.0;
    char hwl1[32], hwtlb[32], rl1[32], rtlb[32];
    if (hw.hw_valid && hw.flops > 0.0) {
      std::snprintf(hwl1, sizeof hwl1, "%.3e", hw_l1);
      std::snprintf(hwtlb, sizeof hwtlb, "%.3e", hw_tlb);
    } else {
      std::snprintf(hwl1, sizeof hwl1, "n/a");
      std::snprintf(hwtlb, sizeof hwtlb, "n/a");
    }
    const bool comparable = hw.hw_valid && sim_l1 > 0.0 && hw_l1 > 0.0 &&
                            share >= kSignalShare;
    if (comparable) {
      const double r = hw_l1 / sim_l1;
      std::snprintf(rl1, sizeof rl1, "%.2f", r);
      if (diverged_at < 0 && (r > kDivergence || r < 1.0 / kDivergence)) {
        diverged_at = d;
      }
    } else {
      std::snprintf(rl1, sizeof rl1, "-");
    }
    if (hw.hw_valid && sim_tlb > 0.0 && hw_tlb > 0.0 && share >= kSignalShare) {
      std::snprintf(rtlb, sizeof rtlb, "%.2f", hw_tlb / sim_tlb);
    } else {
      std::snprintf(rtlb, sizeof rtlb, "-");
    }
    std::printf("  d%-4d %8.1f%% %14.3e %14s %8s %14.3e %14s %8s\n", d,
                100.0 * share, sim_l1, hwl1, rl1, sim_tlb, hwtlb, rtlb);
  }
  if (!pt.hw_tree) {
    std::printf("  (hw tree profile unavailable%s%s)\n",
                pt.hw_note.empty() ? "" : ": ", pt.hw_note.c_str());
  } else if (diverged_at >= 0) {
    std::printf("  L1 prediction diverges (> %.0fx) at depth d%d\n",
                kDivergence, diverged_at);
  } else {
    std::printf("  L1 prediction within %.0fx at every resolved depth\n",
                kDivergence);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const rla::CliArgs args(argc, argv);
  if (args.get_bool("help")) {
    std::printf(
        "usage: %s [--n=N] [--sim-n=N] [--tile=T] [--layouts=col,z,...]\n"
        "          [--threads=N] [--depth=D] [--json]\n"
        "Both N and sim-n must be tile*2^d for the tiled trace (e.g. 256,\n"
        "1024 with tile 16). --depth caps the per-level attribution tree on\n"
        "both the simulated and the hardware side (default: the treeprof\n"
        "cap, RLA_TREEPROF_MAX_DEPTH or %d).\n",
        argv[0], rla::obs::treeprof::kDefaultMaxDepth);
    return 0;
  }

  // Paper-scale point by default, scaled down under RLA_PAPER_SCALE=small.
  const auto n = static_cast<std::uint32_t>(
      args.get_int("n", static_cast<int>(rla::pick_size(1024, 256))));
  const auto sim_n = static_cast<std::uint32_t>(args.get_int("sim-n", 256));
  const auto tile = static_cast<std::uint32_t>(args.get_int("tile", 16));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 4));
  const int cap = std::clamp(
      static_cast<int>(
          args.get_int("depth", rla::obs::treeprof::default_max_depth())),
      0, rla::obs::treeprof::kMaxPathDepth);
  const bool json = args.get_bool("json");

  std::vector<LayoutPoint> points;
  for (const std::string& name : split_csv(args.get("layouts", "col,z"))) {
    LayoutPoint pt;
    pt.name = name;
    if (!rla::parse_curve(name, pt.curve)) {
      std::fprintf(stderr, "sim_vs_hw: unknown layout '%s'\n", name.c_str());
      return 2;
    }
    if (pt.curve == rla::Curve::RowMajor) {
      std::fprintf(stderr, "sim_vs_hw: row-major is not a gemm layout\n");
      return 2;
    }
    points.push_back(pt);
  }
  if (points.empty()) {
    std::fprintf(stderr, "sim_vs_hw: no layouts given\n");
    return 2;
  }

  for (LayoutPoint& pt : points) {
    try {
      run_sim(pt, sim_n, tile, cap);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sim_vs_hw: sim %s failed: %s\n", pt.name.c_str(),
                   e.what());
      return 2;
    }
    try {
      run_hw(pt, n, tile, threads, cap);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sim_vs_hw: hw %s failed: %s\n", pt.name.c_str(),
                   e.what());
      return 2;
    }
  }

  if (json) {
    print_json(points, n, sim_n, tile, cap);
    return 0;
  }

  std::printf("sim: n=%u tile=%u (modeled single core)   hw: n=%u threads=%u\n",
              sim_n, tile, n, threads);
  std::printf("%-6s %14s %14s %16s %16s %10s\n", "layout", "sim-L1-rate",
              "sim-TLB-rate", "hw-L1/flop", "hw-TLB/flop", "hw-gflops");
  for (const LayoutPoint& pt : points) {
    char l1buf[32], tlbbuf[32];
    if (pt.hw_l1) {
      std::snprintf(l1buf, sizeof l1buf, "%.3e", pt.hw_l1_per_flop);
    } else {
      std::snprintf(l1buf, sizeof l1buf, "n/a");
    }
    if (pt.hw_tlb) {
      std::snprintf(tlbbuf, sizeof tlbbuf, "%.3e", pt.hw_tlb_per_flop);
    } else {
      std::snprintf(tlbbuf, sizeof tlbbuf, "n/a");
    }
    std::printf("%-6s %14.6f %14.6f %16s %16s %10.2f\n", pt.name.c_str(),
                pt.sim_l1_miss_rate, pt.sim_tlb_miss_rate, l1buf, tlbbuf,
                pt.hw_gflops);
    if (!pt.hw_note.empty()) {
      std::printf("       (%s)\n", pt.hw_note.c_str());
    }
  }

  // Cross-layout ratios against the first layout: the validation signal.
  const LayoutPoint& base = points[0];
  if (points.size() > 1) {
    std::printf("\nratios vs %s (predicted = sim, measured = hw):\n",
                base.name.c_str());
    for (std::size_t i = 1; i < points.size(); ++i) {
      const LayoutPoint& pt = points[i];
      std::printf("  %-6s L1  predicted %.3f", pt.name.c_str(),
                  ratio(pt.sim_l1_per_flop, base.sim_l1_per_flop));
      if (pt.hw_l1 && base.hw_l1) {
        std::printf("  measured %.3f",
                    ratio(pt.hw_l1_per_flop, base.hw_l1_per_flop));
      } else {
        std::printf("  measured n/a");
      }
      std::printf("\n  %-6s TLB predicted %.3f", pt.name.c_str(),
                  ratio(pt.sim_tlb_per_flop, base.sim_tlb_per_flop));
      if (pt.hw_tlb && base.hw_tlb) {
        std::printf("  measured %.3f",
                    ratio(pt.hw_tlb_per_flop, base.hw_tlb_per_flop));
      } else {
        std::printf("  measured n/a");
      }
      std::printf("\n");
    }
  }

  // Per-depth divergence: at which recursion level does the one-core model
  // stop describing the machine?
  for (const LayoutPoint& pt : points) print_depth_table(pt, cap);
  return 0;
}
