// Cross-validate the trace-driven cache simulator against hardware
// performance counters (ISSUE: sim-vs-hardware validation).
//
//   sim_vs_hw --n=1024 --sim-n=256 --tile=16 --layouts=col,z --threads=4
//
// For each layout the tool runs the same (layout, tile) point two ways:
//
//   sim: the standard-algorithm element trace (trace/access_logger) through
//        the modeled hierarchy (cachesim) at --sim-n, reporting L1d and TLB
//        miss rates and misses per FLOP;
//   hw:  a real gemm at --n with GemmConfig::hw_counters and the tile edge
//        pinned, reporting the compute phase's measured L1d-read and dTLB
//        misses per FLOP.
//
// Absolute numbers differ by design (the model is one idealized core, the
// run is a parallel machine), so the validation signal is the *cross-layout
// ratio*: if the simulator says L_Z takes 4x fewer L1 misses per FLOP than
// L_C, the PMU should agree on the direction and rough magnitude. The final
// table prints predicted vs measured ratios against the first layout.
//
// On machines without usable counters (perf_event_paranoid, VMs with no
// PMU) the hw columns are reported as unavailable and the tool still exits
// 0 — the simulator side alone is a valid artifact.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "core/gemm.hpp"
#include "trace/access_logger.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

namespace {

struct LayoutPoint {
  std::string name;        // as given on the command line
  rla::Curve curve;
  // Simulator side (per-FLOP rates at --sim-n).
  double sim_l1_miss_rate = 0.0;
  double sim_tlb_miss_rate = 0.0;
  double sim_l1_per_flop = 0.0;
  double sim_tlb_per_flop = 0.0;
  // Hardware side (per-FLOP rates at --n); valid only when the event counted.
  bool hw_l1 = false, hw_tlb = false;
  double hw_l1_per_flop = 0.0;
  double hw_tlb_per_flop = 0.0;
  double hw_gflops = 0.0;
  std::string hw_note;  // degradation summary when counters were missing
};

bool has_event(const rla::GemmProfile& p, const char* name) {
  for (const auto& e : p.hw_events) {
    if (e == name) return true;
  }
  return false;
}

void run_sim(LayoutPoint& pt, std::uint32_t sim_n, std::uint32_t tile) {
  const std::vector<rla::sim::MemRef> trace =
      pt.curve == rla::Curve::ColMajor
          ? rla::trace::standard_canonical_trace(sim_n, tile)
          : rla::trace::standard_tiled_trace(sim_n, tile, pt.curve);
  rla::sim::MemoryHierarchy hier{rla::sim::HierarchyConfig{}};
  for (const rla::sim::MemRef& ref : trace) hier.access(ref);
  const double flops = 2.0 * sim_n * sim_n * static_cast<double>(sim_n);
  pt.sim_l1_miss_rate = hier.l1().stats().miss_rate();
  pt.sim_tlb_miss_rate = hier.tlb().stats().miss_rate();
  pt.sim_l1_per_flop = static_cast<double>(hier.l1().stats().misses) / flops;
  pt.sim_tlb_per_flop = static_cast<double>(hier.tlb().stats().misses) / flops;
}

void run_hw(LayoutPoint& pt, std::uint32_t n, std::uint32_t tile,
            unsigned threads) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(static_cast<std::size_t>(n) * n);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  for (double& x : a) x = dist(rng);
  for (double& x : b) x = dist(rng);

  rla::GemmConfig cfg;
  cfg.layout = pt.curve;
  cfg.algorithm = rla::Algorithm::Standard;
  cfg.threads = threads;
  cfg.hw_counters = true;
  // Pin the tile edge so the hardware run uses the same leaf size the
  // simulated trace recursed to.
  cfg.tiles.t_min = cfg.tiles.t_max = cfg.tiles.t_pref = tile;

  rla::GemmProfile profile;
  rla::gemm(n, n, n, 1.0, a.data(), n, rla::Op::None, b.data(), n,
            rla::Op::None, 0.0, c.data(), n, cfg, &profile);

  for (const std::string& step : profile.degradation_trail) {
    if (step.rfind("perf:", 0) == 0) pt.hw_note = step;
  }
  if (!profile.hw_measured) {
    if (pt.hw_note.empty()) pt.hw_note = "perf:unavailable";
    return;
  }
  const double flops = 2.0 * n * n * static_cast<double>(n);
  // Charge the compute phase only: the converts touch the same arrays with
  // a streaming pattern the simulated trace does not model.
  const rla::GemmProfile::HwCounters* compute = &profile.hw_total;
  for (const auto& [phase, hw] : profile.hw_phases) {
    if (phase == "compute") compute = &hw;
  }
  pt.hw_l1 = has_event(profile, "l1d_read_misses");
  pt.hw_tlb = has_event(profile, "dtlb_misses");
  pt.hw_l1_per_flop = static_cast<double>(compute->l1d_read_misses) / flops;
  pt.hw_tlb_per_flop = static_cast<double>(compute->dtlb_misses) / flops;
  if (profile.compute > 0.0) pt.hw_gflops = flops / profile.compute / 1e9;
  if (!pt.hw_l1 && !pt.hw_tlb && pt.hw_note.empty()) {
    pt.hw_note = "perf:cache-events-missing";
  }
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

double ratio(double value, double base) {
  return base > 0.0 ? value / base : 0.0;
}

void print_json(const std::vector<LayoutPoint>& points, std::uint32_t n,
                std::uint32_t sim_n, std::uint32_t tile) {
  std::printf("{\"n\":%u,\"sim_n\":%u,\"tile\":%u,\"layouts\":[", n, sim_n,
              tile);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LayoutPoint& pt = points[i];
    std::printf(
        "%s{\"layout\":\"%s\",\"sim_l1_miss_rate\":%.6g,"
        "\"sim_tlb_miss_rate\":%.6g,\"sim_l1_per_flop\":%.6g,"
        "\"sim_tlb_per_flop\":%.6g,\"hw_l1\":%s,\"hw_tlb\":%s,"
        "\"hw_l1_per_flop\":%.6g,\"hw_tlb_per_flop\":%.6g,"
        "\"hw_gflops\":%.4g,\"hw_note\":\"%s\"}",
        i == 0 ? "" : ",", pt.name.c_str(), pt.sim_l1_miss_rate,
        pt.sim_tlb_miss_rate, pt.sim_l1_per_flop, pt.sim_tlb_per_flop,
        pt.hw_l1 ? "true" : "false", pt.hw_tlb ? "true" : "false",
        pt.hw_l1_per_flop, pt.hw_tlb_per_flop, pt.hw_gflops,
        pt.hw_note.c_str());
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const rla::CliArgs args(argc, argv);
  if (args.get_bool("help")) {
    std::printf(
        "usage: %s [--n=N] [--sim-n=N] [--tile=T] [--layouts=col,z,...]\n"
        "          [--threads=N] [--json]\n"
        "Both N and sim-n must be tile*2^d for the tiled trace (e.g. 256,\n"
        "1024 with tile 16).\n",
        argv[0]);
    return 0;
  }

  // Paper-scale point by default, scaled down under RLA_PAPER_SCALE=small.
  const auto n = static_cast<std::uint32_t>(
      args.get_int("n", static_cast<int>(rla::pick_size(1024, 256))));
  const auto sim_n = static_cast<std::uint32_t>(args.get_int("sim-n", 256));
  const auto tile = static_cast<std::uint32_t>(args.get_int("tile", 16));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 4));
  const bool json = args.get_bool("json");

  std::vector<LayoutPoint> points;
  for (const std::string& name : split_csv(args.get("layouts", "col,z"))) {
    LayoutPoint pt;
    pt.name = name;
    if (!rla::parse_curve(name, pt.curve)) {
      std::fprintf(stderr, "sim_vs_hw: unknown layout '%s'\n", name.c_str());
      return 2;
    }
    if (pt.curve == rla::Curve::RowMajor) {
      std::fprintf(stderr, "sim_vs_hw: row-major is not a gemm layout\n");
      return 2;
    }
    points.push_back(pt);
  }
  if (points.empty()) {
    std::fprintf(stderr, "sim_vs_hw: no layouts given\n");
    return 2;
  }

  for (LayoutPoint& pt : points) {
    try {
      run_sim(pt, sim_n, tile);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sim_vs_hw: sim %s failed: %s\n", pt.name.c_str(),
                   e.what());
      return 2;
    }
    try {
      run_hw(pt, n, tile, threads);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sim_vs_hw: hw %s failed: %s\n", pt.name.c_str(),
                   e.what());
      return 2;
    }
  }

  if (json) {
    print_json(points, n, sim_n, tile);
    return 0;
  }

  std::printf("sim: n=%u tile=%u (modeled single core)   hw: n=%u threads=%u\n",
              sim_n, tile, n, threads);
  std::printf("%-6s %14s %14s %16s %16s %10s\n", "layout", "sim-L1-rate",
              "sim-TLB-rate", "hw-L1/flop", "hw-TLB/flop", "hw-gflops");
  for (const LayoutPoint& pt : points) {
    char l1buf[32], tlbbuf[32];
    if (pt.hw_l1) {
      std::snprintf(l1buf, sizeof l1buf, "%.3e", pt.hw_l1_per_flop);
    } else {
      std::snprintf(l1buf, sizeof l1buf, "n/a");
    }
    if (pt.hw_tlb) {
      std::snprintf(tlbbuf, sizeof tlbbuf, "%.3e", pt.hw_tlb_per_flop);
    } else {
      std::snprintf(tlbbuf, sizeof tlbbuf, "n/a");
    }
    std::printf("%-6s %14.6f %14.6f %16s %16s %10.2f\n", pt.name.c_str(),
                pt.sim_l1_miss_rate, pt.sim_tlb_miss_rate, l1buf, tlbbuf,
                pt.hw_gflops);
    if (!pt.hw_note.empty()) {
      std::printf("       (%s)\n", pt.hw_note.c_str());
    }
  }

  // Cross-layout ratios against the first layout: the validation signal.
  const LayoutPoint& base = points[0];
  if (points.size() > 1) {
    std::printf("\nratios vs %s (predicted = sim, measured = hw):\n",
                base.name.c_str());
    for (std::size_t i = 1; i < points.size(); ++i) {
      const LayoutPoint& pt = points[i];
      std::printf("  %-6s L1  predicted %.3f", pt.name.c_str(),
                  ratio(pt.sim_l1_per_flop, base.sim_l1_per_flop));
      if (pt.hw_l1 && base.hw_l1) {
        std::printf("  measured %.3f",
                    ratio(pt.hw_l1_per_flop, base.hw_l1_per_flop));
      } else {
        std::printf("  measured n/a");
      }
      std::printf("\n  %-6s TLB predicted %.3f", pt.name.c_str(),
                  ratio(pt.sim_tlb_per_flop, base.sim_tlb_per_flop));
      if (pt.hw_tlb && base.hw_tlb) {
        std::printf("  measured %.3f",
                    ratio(pt.hw_tlb_per_flop, base.hw_tlb_per_flop));
      } else {
        std::printf("  measured n/a");
      }
      std::printf("\n");
    }
  }
  return 0;
}
