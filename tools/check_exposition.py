#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document from the telemetry pipeline.

Consumes the output of ``GemmService::telemetry_prometheus()`` (written by
``rla_soak --exposition=FILE`` or served over the ``rla_gemm
--telemetry-socket`` endpoint) and checks that it is well-formed 0.0.4 text
exposition the way a scraper would see it:

  * every sample belongs to a family announced by a ``# TYPE`` line, and no
    family is announced twice;
  * sample lines parse (``name{labels} value``) with finite values;
  * histogram families are complete: ``_bucket`` series with ``le`` labels,
    cumulative and non-decreasing, ending in ``le="+Inf"`` whose value
    equals ``_count``, plus ``_sum`` and ``_count`` samples;
  * counters and gauges carry exactly one unlabelled sample;
  * the service families CI relies on are present (``--required`` adds
    more).

Usage:
  tools/check_exposition.py exposition.txt [--required FAMILY ...]
  tools/check_exposition.py --self-test

Exit status: 0 ok, 1 malformed exposition, 2 usage error.
"""

from __future__ import annotations

import argparse
import math
import re
import sys

# Families every service exposition must carry: admission accounting, one
# latency histogram, one SLO gauge, the flight-recorder counters, and the
# recursion-tree profiler's node counter (0 while treeprof is disarmed, but
# the family must still be announced so dashboards can rely on it).
DEFAULT_REQUIRED = [
    "rla_service_submitted",
    "rla_service_accepted",
    "rla_service_total_ns",
    "rla_service_slo_deadline_miss_ppm",
    "rla_telemetry_flight_events",
    "rla_treeprof_nodes",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)

_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def check(lines, required=None):
    """Return a list of problem strings (empty = exposition is valid)."""
    problems = []
    types = {}  # family -> declared type
    samples = {}  # family -> [(labels dict, value)]

    def family_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    for i, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"line {i}: malformed TYPE line")
                    continue
                _, _, name, kind = parts
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(f"line {i}: unknown type {kind!r}")
                if name in types:
                    problems.append(f"line {i}: duplicate TYPE for {name}")
                types[name] = kind
            continue  # HELP and other comments are free-form
        m = _SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {i}: unparseable sample: {line!r}")
            continue
        value = _parse_value(m.group("value"))
        if value is None or math.isnan(value):
            problems.append(f"line {i}: bad value {m.group('value')!r}")
            continue
        labels = {}
        label_text = m.group("labels")
        if label_text:
            for item in label_text.split(","):
                lm = _LABEL_RE.match(item.strip())
                if not lm:
                    problems.append(f"line {i}: bad label {item!r}")
                    break
                labels[lm.group("key")] = lm.group("val")
        name = m.group("name")
        family = family_of(name)
        if family not in types:
            problems.append(f"line {i}: sample {name} has no TYPE line")
            continue
        samples.setdefault(family, []).append((name, labels, value))

    for family, kind in types.items():
        series = samples.get(family, [])
        if not series:
            problems.append(f"{family}: TYPE line but no samples")
            continue
        if kind in ("counter", "gauge"):
            if len(series) != 1 or series[0][1]:
                problems.append(
                    f"{family}: {kind} must have exactly one unlabelled sample"
                )
            elif kind == "counter" and series[0][2] < 0:
                problems.append(f"{family}: negative counter")
        elif kind == "histogram":
            buckets = [
                (labels.get("le"), value)
                for name, labels, value in series
                if name == family + "_bucket"
            ]
            count = [v for n, l, v in series if n == family + "_count" and not l]
            total = [v for n, l, v in series if n == family + "_sum" and not l]
            if not buckets:
                problems.append(f"{family}: histogram without _bucket series")
                continue
            if len(count) != 1 or len(total) != 1:
                problems.append(f"{family}: histogram needs one _count and one _sum")
                continue
            prev = -math.inf
            for le, value in buckets:
                if le is None:
                    problems.append(f"{family}: bucket without le label")
                    break
                if value < prev:
                    problems.append(
                        f"{family}: bucket le={le} not cumulative "
                        f"({value} < {prev})"
                    )
                prev = value
            if buckets[-1][0] != "+Inf":
                problems.append(f"{family}: last bucket is not le=\"+Inf\"")
            elif buckets[-1][1] != count[0]:
                problems.append(
                    f"{family}: le=\"+Inf\" bucket {buckets[-1][1]} != "
                    f"_count {count[0]}"
                )

    for family in required or []:
        if family not in samples:
            problems.append(f"required family {family} is missing")
    return problems


# --- self test ---------------------------------------------------------------

def seeded_exposition():
    return [
        "# TYPE rla_service_submitted counter",
        "rla_service_submitted 100",
        "# TYPE rla_service_accepted counter",
        "rla_service_accepted 90",
        "# TYPE rla_service_slo_deadline_miss_ppm gauge",
        "rla_service_slo_deadline_miss_ppm 1250",
        "# TYPE rla_telemetry_flight_events counter",
        "rla_telemetry_flight_events 410",
        "# TYPE rla_treeprof_nodes counter",
        "rla_treeprof_nodes 400",
        "# TYPE rla_service_total_ns histogram",
        'rla_service_total_ns_bucket{le="1023"} 10',
        'rla_service_total_ns_bucket{le="2047"} 55',
        'rla_service_total_ns_bucket{le="+Inf"} 90',
        "rla_service_total_ns_sum 123456",
        "rla_service_total_ns_count 90",
    ]


def self_test() -> int:
    good = seeded_exposition()
    problems = check(good, required=DEFAULT_REQUIRED)
    if problems:
        print(f"self-test FAILED: clean exposition flagged: {problems}")
        return 2

    def mutate(fn):
        lines = list(seeded_exposition())
        fn(lines)
        return lines

    cases = {
        "sample without TYPE": lambda l: l.remove(
            "# TYPE rla_service_submitted counter"
        ),
        "TYPE without samples": lambda l: l.append(
            "# TYPE rla_orphan counter"
        ),
        "duplicate TYPE": lambda l: l.append(
            "# TYPE rla_service_accepted counter"
        ),
        "bad value": lambda l: l.__setitem__(1, "rla_service_submitted oops"),
        "negative counter": lambda l: l.__setitem__(3, "rla_service_accepted -4"),
        "labelled gauge": lambda l: l.__setitem__(
            5, 'rla_service_slo_deadline_miss_ppm{x="y"} 1'
        ),
        "non-cumulative buckets": lambda l: l.__setitem__(
            12, 'rla_service_total_ns_bucket{le="2047"} 5'
        ),
        "no +Inf bucket": lambda l: l.remove(
            'rla_service_total_ns_bucket{le="+Inf"} 90'
        ),
        "+Inf != count": lambda l: l.__setitem__(
            15, "rla_service_total_ns_count 91"
        ),
        "missing _sum": lambda l: l.remove("rla_service_total_ns_sum 123456"),
    }
    for label, fn in cases.items():
        if not check(mutate(fn)):
            print(f"self-test FAILED: '{label}' mutation not detected")
            return 2
    if not check(good, required=["rla_absent_family"]):
        print("self-test FAILED: --required not enforced")
        return 2
    stripped = [l for l in good if "rla_treeprof_nodes" not in l]
    if not check(stripped, required=DEFAULT_REQUIRED):
        print("self-test FAILED: missing treeprof family not detected")
        return 2
    print("self-test OK: TYPE coverage, histogram and required-family checks hold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("exposition", nargs="?",
                        help="Prometheus text exposition to validate")
    parser.add_argument("--required", nargs="*", default=DEFAULT_REQUIRED,
                        help="family names that must be present")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.exposition:
        parser.print_usage(sys.stderr)
        return 2

    try:
        with open(args.exposition) as fh:
            lines = fh.readlines()
    except OSError as err:
        print(f"error: cannot read {args.exposition}: {err}", file=sys.stderr)
        return 1

    problems = check(lines, required=args.required)
    for p in problems:
        print(f"problem: {p}", file=sys.stderr)
    if not problems:
        families = sum(1 for line in lines if line.startswith("# TYPE"))
        print(f"exposition ok: {families} families")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
