#!/usr/bin/env python3
"""Lock-discipline lint for the annotated sync primitives (DESIGN.md §13).

Clang's Thread Safety Analysis proves that guarded state is only touched
with the right capability held, but several repo rules live outside its
vocabulary.  This lint enforces those, on top of the compiler:

  R1  No raw ``std::mutex`` / ``std::condition_variable`` (or their lock
      helpers, or the <mutex>/<condition_variable> includes) outside
      ``src/support/sync.hpp`` -- everything goes through rla::Mutex /
      rla::CondVar so the annotations cover it.
  R2  Every ``Mutex`` member/variable declaration under ``src/`` carries a
      trailing ``// lock-level: <level>`` comment naming its rank in the
      acquisition hierarchy (lifecycle -> service -> pool -> arena ->
      registry).  The same mutex name may not claim two different levels
      anywhere in the tree (rename one -- that is why the service and the
      arena call theirs service_mutex_ / arena_mutex_).
  R3  Nested ``MutexLock`` acquisitions within one function must descend
      the hierarchy strictly: a thread holding a lock may only acquire a
      *lower*-ranked one, never a higher or equal rank.  (Syntactic and
      per-function: cross-function nesting is the compiler's and the
      reviewer's job.)
  R4  A ``CondVar::wait_for`` call without a predicate (exactly three
      arguments: mutex, lock, duration) is a timed poll and must justify
      itself with a ``// timed-wait:`` comment on or within four lines
      above the call.  ``wait()`` has predicate overloads only, so this is
      the one remaining lost-wakeup-shaped hole.
  R5  Every ``notify_one``/``notify_all`` on a CondVar documents the
      guarded state it publishes: ``// publishes: <state>`` on the same
      line or the line above.  This keeps the notify <-> predicate pairing
      reviewable (the PR-6 lost wakeup was exactly a mispaired notify).
  R6  Every use of ``RLA_NO_THREAD_SAFETY_ANALYSIS`` carries an adjacent
      ``// justification:`` comment (two lines above through four below).
  R7  CondVar variables have "cv" in their name.  R4/R5 match call sites
      by receiver name, so this is what makes them sound: an rla::CondVar
      can not hide from the lint behind a name like ``signal_``, while
      ``std::future::wait_for`` callers do not trip R4.

``src/support/sync.hpp`` itself is exempt from R1/R4/R5 (it is the one
place allowed to touch the std primitives, and its bodies forward to
them); it still answers to R6.  ``tests/compile_fail/`` is skipped
entirely -- those files violate the rules on purpose.

Usage:
  tools/check_locks.py [--root DIR] [paths...]   # lint (default: src tests bench)
  tools/check_locks.py --self-test               # verify seeded violations are found

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HIERARCHY = ["lifecycle", "service", "pool", "arena", "registry"]
RANK = {name: i for i, name in enumerate(HIERARCHY)}

EXEMPT_PRIMITIVES = "src/support/sync.hpp"
SKIP_DIRS = ("tests/compile_fail", "tests/lint_fixtures")

RAW_PRIMITIVE_RE = re.compile(
    r"std::(?:mutex\b|recursive_mutex\b|timed_mutex\b|shared_mutex\b"
    r"|condition_variable(?:_any)?\b|lock_guard\b|unique_lock\b"
    r"|scoped_lock\b|shared_lock\b)"
)
RAW_INCLUDE_RE = re.compile(r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
MUTEX_DECL_RE = re.compile(r"\bMutex\s+(\w+)\s*(?:;|\{)")
LOCK_LEVEL_RE = re.compile(r"//.*?lock-level:\s*([A-Za-z_]\w*)")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+(\w+)\s*\(\s*((?:\w+(?:\.|->))*\w+)\s*\)")
CONDVAR_DECL_RE = re.compile(r"\bCondVar\s+(\w+)\s*[;{]")
CV_CALL_RE = re.compile(r"\b((?:\w+(?:\.|->))*\w*cv\w*)\s*\.\s*(wait_for|notify_one|notify_all)\s*\(", re.IGNORECASE)
NTSA_RE = re.compile(r"\bRLA_NO_THREAD_SAFETY_ANALYSIS\b")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append("".join(c if c == "\n" else " " for c in seg))
            i = j + 2
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def last_component(name: str) -> str:
    """`p->trail_mutex` / `cache.mutex` -> `trail_mutex` / `mutex`."""
    return re.split(r"\.|->", name)[-1]


def call_args(stripped: str, open_paren: int):
    """Top-level argument count and end offset of a call's balanced parens."""
    depth = 0
    commas = 0
    saw_token = False
    i = open_paren
    while i < len(stripped):
        ch = stripped[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return (commas + 1 if saw_token else 0), i
        elif ch == "," and depth == 1:
            commas += 1
        elif depth == 1 and not ch.isspace():
            saw_token = True
        i += 1
    return None, i  # unbalanced (macro soup); caller skips


def nearby(raw_lines, lineno, before, after, needle):
    lo = max(0, lineno - 1 - before)
    hi = min(len(raw_lines), lineno + after)
    return any(needle in raw_lines[k] for k in range(lo, hi))


def collect_levels(files):
    """name -> (level, path, line) for every declared Mutex; plus conflicts."""
    levels = {}
    violations = []
    for path, text, stripped in files:
        raw_lines = text.split("\n")
        for lineno, line in enumerate(stripped.split("\n"), start=1):
            m = MUTEX_DECL_RE.search(line)
            if not m:
                continue
            name = m.group(1)
            lvl = LOCK_LEVEL_RE.search(raw_lines[lineno - 1])
            if lvl is None:
                if path.startswith("src/"):
                    violations.append(
                        (path, lineno,
                         f"R2: Mutex '{name}' declared without a "
                         f"'// lock-level: <{('|'.join(HIERARCHY))}>' comment")
                    )
                continue
            level = lvl.group(1)
            if level not in RANK:
                violations.append(
                    (path, lineno,
                     f"R2: Mutex '{name}' has unknown lock-level '{level}' "
                     f"(expected one of {', '.join(HIERARCHY)})")
                )
                continue
            prior = levels.get(name)
            if prior is not None and prior[0] != level:
                violations.append(
                    (path, lineno,
                     f"R2: Mutex name '{name}' claims level '{level}' but is "
                     f"'{prior[0]}' at {prior[1]}:{prior[2]} -- rename one "
                     f"(shared names must agree on a rank)")
                )
                continue
            levels[name] = (level, path, lineno)
    return levels, violations


def lint_hierarchy(path, stripped, levels):
    """R3: MutexLock nesting must strictly descend the hierarchy."""
    violations = []
    held = []  # (brace_depth, var, mutex_name, level)
    var_level = {}  # lock var -> (mutex_name, level), for unlock()/lock()
    depth = 0
    for lineno, line in enumerate(stripped.split("\n"), start=1):
        for m in MUTEXLOCK_RE.finditer(line):
            var, target = m.group(1), last_component(m.group(2))
            entry = levels.get(target)
            level = entry[0] if entry else None
            if level is not None and held:
                _, _, held_name, held_level = held[-1]
                if held_level is not None and RANK[level] <= RANK[held_level]:
                    violations.append(
                        (path, lineno,
                         f"R3: acquiring '{target}' (level {level}) while "
                         f"holding '{held_name}' (level {held_level}) inverts "
                         f"the hierarchy {' -> '.join(HIERARCHY)}")
                    )
            held.append((depth, var, target, level))
            var_level[var] = (target, level)
        for um in re.finditer(r"\b(\w+)\.unlock\s*\(\s*\)", line):
            var = um.group(1)
            for k in range(len(held) - 1, -1, -1):
                if held[k][1] == var:
                    del held[k]
                    break
        for lm in re.finditer(r"\b(\w+)\.lock\s*\(\s*\)", line):
            var = lm.group(1)
            if var in var_level and all(h[1] != var for h in held):
                held.append((depth, var, *var_level[var]))
        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while held and held[-1][0] >= depth:
                    held.pop()
                if depth <= 0:
                    depth = 0
                    held.clear()
                    var_level.clear()
    return violations


def lint_file(path, text, stripped, levels):
    violations = []
    raw_lines = text.split("\n")
    stripped_lines = stripped.split("\n")
    exempt_sync = path.endswith("support/sync.hpp")

    # R1: raw primitives.
    if not exempt_sync:
        for lineno, line in enumerate(stripped_lines, start=1):
            if RAW_PRIMITIVE_RE.search(line) or RAW_INCLUDE_RE.search(line):
                violations.append(
                    (path, lineno,
                     "R1: raw std synchronization primitive outside "
                     "src/support/sync.hpp -- use rla::Mutex / rla::MutexLock "
                     "/ rla::CondVar")
                )

    # R7: CondVar names must contain "cv" (R4/R5 match receivers by name).
    for lineno, line in enumerate(stripped_lines, start=1):
        for m in CONDVAR_DECL_RE.finditer(line):
            if "cv" not in m.group(1).lower():
                violations.append(
                    (path, lineno,
                     f"R7: CondVar '{m.group(1)}' must have 'cv' in its name "
                     f"so the wait/notify lint can see its call sites")
                )

    # R4/R5: CondVar call sites.
    if not exempt_sync:
        for m in CV_CALL_RE.finditer(stripped):
            lineno = stripped.count("\n", 0, m.start()) + 1
            method = m.group(2)
            if method == "wait_for":
                nargs, _ = call_args(stripped, m.end() - 1)
                if nargs == 3 and not nearby(raw_lines, lineno, 4, 1, "timed-wait:"):
                    violations.append(
                        (path, lineno,
                         "R4: predicate-less CondVar::wait_for (timed poll) "
                         "needs a '// timed-wait: <why no guarded predicate "
                         "exists>' comment within 4 lines above")
                    )
            else:
                if not nearby(raw_lines, lineno, 1, 1, "publishes:"):
                    violations.append(
                        (path, lineno,
                         f"R5: {method} without a '// publishes: <guarded "
                         f"state>' comment on this or the previous line")
                    )

    # R6: NO_THREAD_SAFETY_ANALYSIS escapes need justification.
    for lineno, line in enumerate(stripped_lines, start=1):
        if NTSA_RE.search(line) and not raw_lines[lineno - 1].lstrip().startswith("#"):
            if not nearby(raw_lines, lineno, 2, 4, "justification:"):
                violations.append(
                    (path, lineno,
                     "R6: RLA_NO_THREAD_SAFETY_ANALYSIS without an adjacent "
                     "'// justification:' comment")
                )

    # R3: acquisition order.
    violations.extend(lint_hierarchy(path, stripped, levels))
    return violations


def load_files(root: Path, rel_paths):
    files = []
    for rel in rel_paths:
        base = root / rel
        if not base.exists():
            print(f"error: no such path: {base}", file=sys.stderr)
            return None
        explicit = not base.is_dir()
        candidates = [base] if explicit else sorted(base.rglob("*"))
        for f in candidates:
            if f.suffix not in {".cpp", ".hpp", ".h", ".cc"}:
                continue
            rel_str = f.relative_to(root).as_posix()
            # Directory walks skip the deliberate violations under
            # tests/compile_fail/; naming such a file explicitly lints it
            # (that is how the WILL_FAIL ctest entries drive this tool).
            if not explicit and any(rel_str.startswith(s) for s in SKIP_DIRS):
                continue
            text = f.read_text()
            files.append((rel_str, text, strip_comments_and_strings(text)))
    return files


def lint_files(files):
    levels, violations = collect_levels(files)
    for path, text, stripped in files:
        violations.extend(lint_file(path, text, stripped, levels))
    return sorted(violations)


# --- self test ---------------------------------------------------------------

SEEDED_BAD = """\
#include <mutex>
namespace rla {
struct Engine {
  Mutex state_mutex_;
  Mutex queue_mutex_;  // lock-level: service
  Mutex cache_mutex_;  // lock-level: registry
  CondVar signal_;
  CondVar work_cv_;
  std::mutex raw_;

  void tick() {
    MutexLock lock(cache_mutex_);
    MutexLock inner(queue_mutex_);
    work_cv_.notify_one();
  }
  void nap(MutexLock& lock) RLA_NO_THREAD_SAFETY_ANALYSIS {
    work_cv_.wait_for(queue_mutex_, lock, kNap);
  }
};
}  // namespace rla
"""

SEEDED_GOOD = """\
namespace rla {
struct Engine {
  Mutex queue_mutex_;  // lock-level: service
  Mutex stats_mutex_;  // lock-level: registry
  CondVar work_cv_;
  bool ready_ = false;

  void tick() {
    MutexLock lock(queue_mutex_);
    {
      MutexLock inner(stats_mutex_);
    }
    ready_ = true;
    lock.unlock();
    work_cv_.notify_one();  // publishes: ready_
  }
  void nap() {
    MutexLock lock(queue_mutex_);
    // timed-wait: wake condition lives outside the mutex; callers re-check.
    work_cv_.wait_for(queue_mutex_, lock, kNap);
    work_cv_.wait(queue_mutex_, lock, [this] { return ready_; });
  }
  void escape() RLA_NO_THREAD_SAFETY_ANALYSIS {
    // justification: self-test fixture for the adjacency rule.
  }
};
}  // namespace rla
"""


def self_test() -> int:
    bad = lint_files([("src/seeded_bad.hpp", SEEDED_BAD,
                       strip_comments_and_strings(SEEDED_BAD))])
    want = {
        "R1": 2,  # the include and the std::mutex member
        "R2": 1,  # state_mutex_ without a lock-level comment
        "R3": 1,  # queue (service) acquired while holding cache (registry)
        "R4": 1,  # predicate-less wait_for without timed-wait comment
        "R5": 1,  # notify_one without publishes comment
        "R6": 1,  # NO_THREAD_SAFETY_ANALYSIS without justification
        "R7": 1,  # CondVar signal_ hides from the cv-name matcher
    }
    got = {}
    for _, _, msg in bad:
        got[msg[:2]] = got.get(msg[:2], 0) + 1
    if got != want:
        print(f"self-test FAILED: seeded-bad expected {want}, got {got}")
        for v in bad:
            print(f"  {v[0]}:{v[1]}: {v[2]}")
        return 2
    good = lint_files([("src/seeded_good.hpp", SEEDED_GOOD,
                        strip_comments_and_strings(SEEDED_GOOD))])
    if good:
        print(f"self-test FAILED: seeded-good flagged: {good}")
        return 2
    print("self-test OK: every seeded violation detected, compliant code passes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--root", default=None,
                        help="repository root (default: tool's parent)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    rel_paths = args.paths or ["src", "tests", "bench"]
    files = load_files(root, rel_paths)
    if files is None:
        return 2
    violations = lint_files(files)
    for path, line, msg in violations:
        print(f"{path}:{line}: {msg}")
    status = "FAILED" if violations else "OK"
    print(f"lock-discipline lint {status}: {len(files)} files scanned, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
