// Figure 6 reproduction: comparative performance of the six layouts under
// the three algorithms.
//
// Paper: n = 1000 and n = 1200, layouts {L_C, L_U, L_X, L_Z, L_G, L_H},
// algorithms {standard, Strassen, Winograd}, 1/2/4 processors. Headline
// results: recursive layouts cut the standard algorithm's time by 1.2-2.5x
// vs L_C; they help the fast algorithms only marginally (§5.1); and the five
// recursive layouts are mutually indistinguishable (addressing overheads
// under control even for Hilbert).
//
// Defaults: n ∈ {320, 440} (RLA_PAPER_SCALE=1 restores 1000/1200),
// threads {1} (RLA_BENCH_THREADS=4 adds 2 and 4).

#include "bench_common.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

constexpr Curve kLayouts[] = {Curve::ColMajor,   Curve::UMorton, Curve::XMorton,
                              Curve::ZMorton,    Curve::GrayMorton,
                              Curve::Hilbert};
constexpr Algorithm kAlgs[] = {Algorithm::Standard, Algorithm::Strassen,
                               Algorithm::Winograd};

void Fig6_Layouts(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Curve layout = kLayouts[state.range(1)];
  const Algorithm alg = kAlgs[state.range(2)];
  const auto threads = static_cast<unsigned>(state.range(3));

  Problem p(n);
  GemmConfig cfg;
  cfg.layout = layout;
  cfg.algorithm = alg;
  cfg.threads = threads;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
  // One untimed counted run per point: the --json export then carries
  // misses per FLOP per (layout, algorithm) — the measured companion to the
  // cache simulator's Fig. 5 analysis. Skipped silently where the PMU is
  // unavailable.
  GemmConfig counted_cfg = cfg;
  counted_cfg.hw_counters = true;
  GemmProfile profile;
  run_gemm(p, counted_cfg, &profile);
  set_hw_counters(state, profile, n);
  set_config_label(state, cfg);
}

void register_benchmarks() {
  const std::uint32_t sizes[] = {
      static_cast<std::uint32_t>(pick_size(1000, 320)),
      static_cast<std::uint32_t>(pick_size(1200, 440))};
  for (const unsigned threads : thread_sweep()) {
    for (std::size_t alg = 0; alg < 3; ++alg) {
      for (std::size_t layout = 0; layout < 6; ++layout) {
        for (const std::uint32_t n : sizes) {
          const std::string name =
              std::string("Fig6_Layouts/") +
              std::string(algorithm_name(kAlgs[alg])) + "_" +
              sanitize(curve_name(kLayouts[layout]));
          benchmark::RegisterBenchmark(name.c_str(), Fig6_Layouts)
              ->Args({n, static_cast<long>(layout), static_cast<long>(alg),
                      static_cast<long>(threads)})
              ->Unit(benchmark::kMillisecond)
              ->MinTime(0.05);
        }
      }
    }
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
