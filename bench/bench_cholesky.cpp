// Extension benchmark: recursive Cholesky over the recursive layouts
// (Gustavson-style recursion-as-variable-blocking, paper ref. [16]).
//
// Rows: factorization time per layout and size, plus the unblocked
// reference as the baseline tier and the conversion share. The interesting
// shape: the recursive tiled factorization beats the unblocked one by a
// growing factor as n leaves cache, and all recursive layouts are
// mutually close (the paper's Fig. 6 observation carrying over to a
// factorization).

#include <map>

#include "bench_common.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

/// A = M·Mᵀ + n·I: symmetric positive definite by construction.
Matrix make_spd(std::uint32_t n) {
  Matrix m(n, n);
  m.fill_random(0x5bd);
  Matrix a(n, n);
  a.zero();
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t l = 0; l < n; ++l) {
      const double mlj = m(j, l);
      for (std::uint32_t i = 0; i < n; ++i) a(i, j) += m(i, l) * mlj;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

const Matrix& spd_cache(std::uint32_t n) {
  static std::map<std::uint32_t, Matrix> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, make_spd(n)).first;
  return it->second;
}

void Cholesky_Recursive(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Curve layout = kRecursiveCurves[state.range(1)];
  const Matrix& a = spd_cache(n);
  Matrix l(n, n);
  CholeskyConfig cfg;
  cfg.layout = layout;
  CholeskyProfile profile;
  for (auto _ : state) {
    state.PauseTiming();
    l = a;
    state.ResumeTiming();
    cholesky(n, l.data(), l.ld(), cfg, &profile);
  }
  const double flops = static_cast<double>(n) * n * n / 3.0;
  state.counters["gflops"] = benchmark::Counter(
      flops, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["conv_share_pct"] =
      100.0 * (profile.convert_in + profile.convert_out) /
      (profile.total > 0 ? profile.total : 1.0);
}

void Cholesky_Unblocked(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Matrix& a = spd_cache(n);
  Matrix l(n, n);
  for (auto _ : state) {
    state.PauseTiming();
    l = a;
    state.ResumeTiming();
    benchmark::DoNotOptimize(reference_cholesky(n, l.data(), l.ld()));
  }
  const double flops = static_cast<double>(n) * n * n / 3.0;
  state.counters["gflops"] = benchmark::Counter(
      flops, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void Lu_Recursive(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Curve layout = kRecursiveCurves[state.range(1)];
  const Matrix& a = spd_cache(n);  // SPD is safely unpivoted-LU-factorable
  Matrix packed(n, n);
  LuConfig cfg;
  cfg.layout = layout;
  for (auto _ : state) {
    state.PauseTiming();
    packed = a;
    state.ResumeTiming();
    lu_nopivot(n, packed.data(), packed.ld(), cfg);
  }
  const double flops = 2.0 * static_cast<double>(n) * n * n / 3.0;
  state.counters["gflops"] = benchmark::Counter(
      flops, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void Lu_Unblocked(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Matrix& a = spd_cache(n);
  Matrix packed(n, n);
  for (auto _ : state) {
    state.PauseTiming();
    packed = a;
    state.ResumeTiming();
    benchmark::DoNotOptimize(reference_lu_nopivot(n, packed.data(), packed.ld()));
  }
  const double flops = 2.0 * static_cast<double>(n) * n * n / 3.0;
  state.counters["gflops"] = benchmark::Counter(
      flops, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void register_benchmarks() {
  const std::uint32_t sizes[] = {
      static_cast<std::uint32_t>(pick_size(512, 256)),
      static_cast<std::uint32_t>(pick_size(1024, 512))};
  for (const std::uint32_t n : sizes) {
    benchmark::RegisterBenchmark("Cholesky_Unblocked", Cholesky_Unblocked)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("Lu_Unblocked", Lu_Unblocked)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    for (long curve = 0; curve < 5; ++curve) {
      const std::string chol_name = std::string("Cholesky_Recursive/") +
                                    sanitize(curve_name(kRecursiveCurves[curve]));
      benchmark::RegisterBenchmark(chol_name.c_str(), Cholesky_Recursive)
          ->Args({n, curve})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
      const std::string lu_name = std::string("Lu_Recursive/") +
                                  sanitize(curve_name(kRecursiveCurves[curve]));
      benchmark::RegisterBenchmark(lu_name.c_str(), Lu_Recursive)
          ->Args({n, curve})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
