// Parallelism study (paper §5 text): Cilk's critical-path tracking showed
// "sufficient parallelism in the standard algorithm to keep about 40
// processors busy" at n = 1000 and "around 23" for the fast algorithms.
//
// Work/span is a property of the task DAG, not the machine, so the analytic
// model reproduces this claim exactly on any host (see core/work_span.hpp).
// Reported counters: work (flops), span (flops), parallelism = work/span.
// A second set of benchmarks exercises the actual work-stealing pool and
// reports its scheduler statistics (tasks, steals) — on a 1-core container
// speedup cannot manifest, but the scheduling behaviour is observable.

#include "bench_common.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

constexpr Algorithm kAlgs[] = {Algorithm::Standard, Algorithm::Strassen,
                               Algorithm::Winograd};

void Parallelism_WorkSpan(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Algorithm alg = kAlgs[state.range(1)];
  const bool in_place = state.range(2) != 0;
  GemmConfig cfg;
  cfg.algorithm = alg;
  cfg.standard_variant =
      in_place ? StandardVariant::InPlace : StandardVariant::Temporaries;
  WorkSpan ws{};
  for (auto _ : state) {
    ws = analyze_gemm(n, n, n, cfg);
    benchmark::DoNotOptimize(ws);
  }
  state.counters["work_gflop"] = ws.work * 1e-9;
  state.counters["span_mflop"] = ws.span * 1e-6;
  state.counters["parallelism"] = ws.parallelism();
}

void Parallelism_PoolExecution(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  WorkerPool pool(threads <= 1 ? 0 : threads);
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.pool = &pool;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
  state.counters["tasks"] = static_cast<double>(pool.tasks_executed());
  state.counters["steals"] = static_cast<double>(pool.steals());
}

void register_benchmarks() {
  // The paper's n = 1000 analysis is cheap (it's a closed-form recursion),
  // so always run it at paper size alongside the scaled size.
  for (const std::uint32_t n :
       {static_cast<std::uint32_t>(pick_size(1000, 320)), 1000u}) {
    for (long alg = 0; alg < 3; ++alg) {
      const std::string name = std::string("Parallelism_WorkSpan/") +
                               std::string(algorithm_name(kAlgs[alg])) + "_n" +
                               std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(), Parallelism_WorkSpan)
          ->Args({n, alg, 0});
    }
  }
  benchmark::RegisterBenchmark("Parallelism_WorkSpan/standard_inplace_n1000",
                               Parallelism_WorkSpan)
      ->Args({1000, 0, 1});
  const auto n = static_cast<std::uint32_t>(pick_size(1000, 256));
  for (const unsigned threads : thread_sweep()) {
    benchmark::RegisterBenchmark(
        ("Parallelism_PoolExecution/p" + std::to_string(threads)).c_str(),
        Parallelism_PoolExecution)
        ->Args({n, static_cast<long>(threads)})
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
