// Figure 7 reproduction: cost of the leaf-kernel tier (the paper's compiler
// and native-BLAS study).
//
// The paper compiled its serial code three ways: (i) vendor cc + native
// dgemm leaves, (ii) vendor cc + its own C kernel, (iii) gcc + its own C
// kernel, finding (ii)/(i) ≈ 1.2-1.4 and (iii)/(ii) ≈ 1.5-1.9. We have no
// 1997 Sun compilers, so the tiers are kernel tiers with the same role
// (see DESIGN.md): Blocked4x4 stands in for the native-dgemm tier,
// TiledUnrolled is the paper's own kernel, and Naive is the
// unoptimized-compiler tier. Ratios are reported against Blocked4x4.
//
// Both the raw kernels and full recursive gemms using each tier are timed.

#include <map>

#include "bench_common.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

constexpr KernelKind kKernels[] = {KernelKind::Blocked4x4,
                                   KernelKind::TiledUnrolled, KernelKind::Naive};

double& baseline_slot(const std::string& key) {
  static std::map<std::string, double> cache;
  return cache[key];
}

void Fig7_RawKernel(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const KernelKind kind = kKernels[state.range(1)];
  Problem p(n);
  double best = 1e300;
  for (auto _ : state) {
    best = std::min(best, run_flat_dgemm(p, kind));
  }
  set_flops_counters(state, n);
  const std::string key = "raw" + std::to_string(n);
  if (kind == KernelKind::Blocked4x4) baseline_slot(key) = best;
  const double base = baseline_slot(key);
  if (base > 0.0) state.counters["ratio_vs_blocked4x4"] = best / base;
}

void Fig7_GemmWithKernelTier(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const KernelKind kind = kKernels[state.range(1)];
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.kernel = kind;
  double best = 1e300;
  for (auto _ : state) {
    best = std::min(best, run_gemm(p, cfg));
  }
  set_flops_counters(state, n);
  const std::string key = "gemm" + std::to_string(n);
  if (kind == KernelKind::Blocked4x4) baseline_slot(key) = best;
  const double base = baseline_slot(key);
  if (base > 0.0) state.counters["ratio_vs_blocked4x4"] = best / base;
}

void register_benchmarks() {
  const std::uint32_t sizes[] = {
      static_cast<std::uint32_t>(pick_size(512, 256)),
      static_cast<std::uint32_t>(pick_size(1024, 448))};
  for (const std::uint32_t n : sizes) {
    for (long k = 0; k < 3; ++k) {
      const std::string kn = sanitize(kernel_name(kKernels[k]));
      benchmark::RegisterBenchmark(("Fig7_RawKernel/" + kn).c_str(),
                                   Fig7_RawKernel)
          ->Args({n, k})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
      benchmark::RegisterBenchmark(("Fig7_GemmWithKernelTier/" + kn).c_str(),
                                   Fig7_GemmWithKernelTier)
          ->Args({n, k})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
