// Figure 5 reproduction: robustness of performance as n varies over a dense
// range.
//
// Paper: standard and Strassen algorithms × {L_C, L_Z}, n ∈ [1000, 1048],
// 1-4 processors. The canonical layout's standard algorithm swings wildly
// with n (reproducible conflict-miss artifacts); L_Z damps the swings;
// Strassen is flat under both layouts (§5.1: its temporaries halve the
// leading dimension each level).
//
// Defaults sweep n ∈ [360, 408] step 4 (RLA_PAPER_SCALE=1 restores
// [1000, 1048] step 2). The companion bench_cachesim reproduces the
// *mechanism* with simulated conflict-miss rates; on a 1-core container the
// wall-clock swings are the observable here.

#include "bench_common.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

void Fig5_Robustness(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool recursive = state.range(1) != 0;
  const bool strassen = state.range(2) != 0;
  const auto threads = static_cast<unsigned>(state.range(3));

  Problem p(n);
  GemmConfig cfg;
  cfg.layout = recursive ? Curve::ZMorton : Curve::ColMajor;
  cfg.algorithm = strassen ? Algorithm::Strassen : Algorithm::Standard;
  cfg.threads = threads;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
}

void register_benchmarks() {
  const auto base = static_cast<std::uint32_t>(pick_size(1000, 360));
  const std::uint32_t span = 48;
  const std::uint32_t step = rla::paper_scale() ? 2 : 4;
  for (const unsigned threads : thread_sweep()) {
    for (int strassen = 0; strassen <= 1; ++strassen) {
      for (int recursive = 0; recursive <= 1; ++recursive) {
        for (std::uint32_t n = base; n <= base + span; n += step) {
          const std::string name =
              std::string("Fig5_Robustness/") +
              (strassen != 0 ? "strassen" : "standard") + "_" +
              (recursive != 0 ? "LZ" : "LC");
          benchmark::RegisterBenchmark(name.c_str(), Fig5_Robustness)
              ->Args({n, recursive, strassen, static_cast<long>(threads)})
              ->Unit(benchmark::kMillisecond)
              ->MinTime(0.02);
        }
      }
    }
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
