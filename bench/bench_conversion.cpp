// Format-conversion cost accounting (the paper's intro question 3 / §4).
//
// The dgemm interface presents column-major arrays; the recursive layouts
// require a remap in and out. The paper's position — disputing Frens &
// Wise's assumption of free quad-tree inputs — is that an honest account
// must charge for this. Benchmarks: raw remap bandwidth per curve (with and
// without fused transposition), and the remap's share of a whole gemm call
// (from GemmProfile), which shrinks as n grows since conversion is O(n²)
// against O(n^{2.8..3}) compute.

#include <array>

#include "bench_common.hpp"
#include "layout/convert.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

constexpr Curve kCurves[] = {Curve::UMorton, Curve::XMorton, Curve::ZMorton,
                             Curve::GrayMorton, Curve::Hilbert};

void Conversion_Remap(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Curve curve = kCurves[state.range(1)];
  const bool transpose = state.range(2) != 0;

  Matrix src(n, n);
  src.fill_random(1);
  const auto depth = common_depth(std::array<std::uint64_t, 1>{n}, TileRange{});
  const TileGeometry g = make_geometry(n, n, depth.value_or(4), curve);
  TiledMatrix dst(g);
  for (auto _ : state) {
    canonical_to_tiled(src.data(), src.ld(), transpose, 1.0, g, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  const double bytes = 2.0 * static_cast<double>(n) * n * sizeof(double);
  state.counters["GBps"] = benchmark::Counter(
      bytes, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void Conversion_RemapBack(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Curve curve = kCurves[state.range(1)];
  Matrix dst(n, n);
  const auto depth = common_depth(std::array<std::uint64_t, 1>{n}, TileRange{});
  const TileGeometry g = make_geometry(n, n, depth.value_or(4), curve);
  TiledMatrix src(g);
  src.zero();
  for (auto _ : state) {
    tiled_to_canonical(src.data(), g, dst.data(), dst.ld());
    benchmark::DoNotOptimize(dst.data());
  }
  const double bytes = 2.0 * static_cast<double>(n) * n * sizeof(double);
  state.counters["GBps"] = benchmark::Counter(
      bytes, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void Conversion_ShareOfGemm(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Curve curve = kCurves[state.range(1)];
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = curve;
  GemmProfile profile;
  for (auto _ : state) {
    run_gemm(p, cfg, &profile);
  }
  const double conversion = profile.convert_in + profile.convert_out;
  state.counters["conv_share_pct"] =
      100.0 * conversion / (profile.total > 0 ? profile.total : 1.0);
  set_flops_counters(state, n);
}

void register_benchmarks() {
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 384));
  for (long c = 0; c < 5; ++c) {
    const std::string cn = sanitize(curve_name(kCurves[c]));
    benchmark::RegisterBenchmark(("Conversion_Remap/" + cn).c_str(),
                                 Conversion_Remap)
        ->Args({n, c, 0})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Conversion_RemapTransposed/" + cn).c_str(),
                                 Conversion_Remap)
        ->Args({n, c, 1})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Conversion_RemapBack/" + cn).c_str(),
                                 Conversion_RemapBack)
        ->Args({n, c})
        ->Unit(benchmark::kMillisecond);
  }
  // Share-of-gemm at two sizes shows the O(n²)/O(n³) scaling.
  for (const std::uint32_t sz :
       {static_cast<std::uint32_t>(pick_size(500, 192)),
        static_cast<std::uint32_t>(pick_size(1500, 448))}) {
    benchmark::RegisterBenchmark("Conversion_ShareOfGemm/ZMorton",
                                 Conversion_ShareOfGemm)
        ->Args({sz, 2})
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
