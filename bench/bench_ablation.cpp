// Ablations of the design choices DESIGN.md calls out.
//
//   * Ablation_FastCutoff: Strassen's recursion truncation level — the paper
//     runs the fast recurrence down to single tiles; switching to the
//     standard recursion a level or two earlier trades multiplication count
//     against addition/temporary traffic (cf. Thottethodi/Chatterjee/Lebeck,
//     SC'98, paper ref. [37]).
//   * Ablation_StandardVariant: the Fig. 1(a) eight-spawn Temporaries form
//     vs the two-phase in-place form (memory vs one-level parallelism).
//   * Ablation_LowMemLayout: the §5.1 note — the sequential interleaved
//     fast variant "behaves more like the standard algorithm: L_Z reduces
//     execution times by 10-20%" relative to L_C. Rows give the interleaved
//     Strassen under both layouts, plus the parallel-form ones for contrast.
//   * Ablation_SpawnMinLevel: task granularity of the work-stealing runtime.

#include "bench_common.hpp"
#include "core/recursion.hpp"
#include "layout/convert.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

void Ablation_FastCutoff(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 384));
  const auto cutoff = static_cast<int>(state.range(0));
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fast_cutoff_level = cutoff;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
  state.counters["cutoff_level"] = cutoff;
}

void Ablation_StandardVariant(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 384));
  const bool in_place = state.range(0) != 0;
  const auto threads = static_cast<unsigned>(state.range(1));
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.standard_variant =
      in_place ? StandardVariant::InPlace : StandardVariant::Temporaries;
  cfg.threads = threads;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
}

void Ablation_LowMemLayout(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 384));
  const bool recursive = state.range(0) != 0;
  const bool lowmem = state.range(1) != 0;
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = recursive ? Curve::ZMorton : Curve::ColMajor;
  cfg.algorithm = Algorithm::Strassen;
  cfg.fast_variant = lowmem ? FastVariant::SerialLowMem : FastVariant::Parallel;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
}

void Ablation_ZeroTileSkip(benchmark::State& state) {
  // Paper §4 design contrast: Frens–Wise zero-block flags vs blind
  // arithmetic on zeros. Workload: block-diagonal A (3 dense blocks) times
  // dense B — two thirds of A's tiles are zero.
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 384));
  const bool skip = state.range(0) != 0;
  Matrix a(n, n), b(n, n);
  a.zero();
  b.fill_random(2);
  Xoshiro256 rng(3);
  const std::uint32_t blk = n / 3;
  for (std::uint32_t q = 0; q < 3; ++q) {
    for (std::uint32_t j = 0; j < blk; ++j) {
      for (std::uint32_t i = 0; i < blk; ++i) {
        a(q * blk + i, q * blk + j) = rng.next_double(-1.0, 1.0);
      }
    }
  }
  Matrix c(n, n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.skip_zero_tiles = skip;
  for (auto _ : state) {
    gemm(n, n, n, 1.0, a.data(), a.ld(), Op::None, b.data(), b.ld(), Op::None,
         0.0, c.data(), c.ld(), cfg);
  }
  set_flops_counters(state, n);
}

void Ablation_SpawnMinLevel(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 320));
  const auto spawn_level = static_cast<int>(state.range(0));
  const unsigned threads = 4;

  Matrix a(n, n), b(n, n);
  a.fill_random(1);
  b.fill_random(2);
  const auto depth = common_depth(std::array<std::uint64_t, 1>{n}, TileRange{});
  const TileGeometry g = make_geometry(n, n, depth.value_or(4), Curve::ZMorton);
  TiledMatrix ta(g), tb(g), tc(g);
  canonical_to_tiled(a.data(), a.ld(), false, 1.0, g, ta.data());
  canonical_to_tiled(b.data(), b.ld(), false, 1.0, g, tb.data());

  WorkerPool pool(threads);
  MulContext ctx;
  ctx.pool = &pool;
  ctx.spawn_min_level = spawn_level;
  for (auto _ : state) {
    tc.zero();
    mul_standard(ctx, tc.root(), ta.root(), tb.root());
  }
  set_flops_counters(state, n);
  state.counters["tasks"] = static_cast<double>(pool.tasks_executed());
  state.counters["steals"] = static_cast<double>(pool.steals());
}

void register_benchmarks() {
  for (int cutoff = 0; cutoff <= 4; ++cutoff) {
    benchmark::RegisterBenchmark("Ablation_FastCutoff", Ablation_FastCutoff)
        ->Arg(cutoff)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
  for (long in_place = 0; in_place <= 1; ++in_place) {
    for (const unsigned threads : thread_sweep()) {
      const std::string name = std::string("Ablation_StandardVariant/") +
                               (in_place != 0 ? "inplace" : "temporaries") +
                               "_p" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), Ablation_StandardVariant)
          ->Args({in_place, static_cast<long>(threads)})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
  for (long recursive = 0; recursive <= 1; ++recursive) {
    for (long lowmem = 0; lowmem <= 1; ++lowmem) {
      const std::string name = std::string("Ablation_LowMemLayout/") +
                               (lowmem != 0 ? "interleaved" : "parallelform") +
                               (recursive != 0 ? "_LZ" : "_LC");
      benchmark::RegisterBenchmark(name.c_str(), Ablation_LowMemLayout)
          ->Args({recursive, lowmem})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
  for (int level = 1; level <= 4; ++level) {
    benchmark::RegisterBenchmark("Ablation_SpawnMinLevel", Ablation_SpawnMinLevel)
        ->Arg(level)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
  for (long skip = 0; skip <= 1; ++skip) {
    const std::string name = std::string("Ablation_ZeroTileSkip/") +
                             (skip != 0 ? "flags" : "blind");
    benchmark::RegisterBenchmark(name.c_str(), Ablation_ZeroTileSkip)
        ->Arg(skip)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
