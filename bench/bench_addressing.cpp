// Addressing-overhead study (paper §3.4 summary and the §5 claim that "our
// implementation of the layouts is sufficiently efficient to control the
// addressing overheads even of L_H").
//
// Three measurements:
//   * S-function evaluation cost per curve (ns per call, random coords);
//   * S-inverse cost (used by the conversion streams);
//   * whole-gemm ablation: the paper's streaming / Gray-half-step fast
//     addition paths versus forcing the generic mapping-array path for all
//     quadrant additions (force_generic_additions).

#include <array>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

void Addressing_SFunction(benchmark::State& state) {
  const Curve curve = kAllCurves[state.range(0)];
  const int d = 10;  // 1024x1024 tile grid
  // Pre-generate pseudo-random coordinates so the RNG is out of the loop.
  Xoshiro256 rng(1);
  std::array<std::uint32_t, 1024> is{}, js{};
  for (std::size_t i = 0; i < is.size(); ++i) {
    is[i] = static_cast<std::uint32_t>(rng.next_below(1u << d));
    js[i] = static_cast<std::uint32_t>(rng.next_below(1u << d));
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < is.size(); ++i) {
      sink += s_index(curve, is[i], js[i], d);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(is.size()));
}

void Addressing_SInverse(benchmark::State& state) {
  const Curve curve = kAllCurves[state.range(0)];
  const int d = 10;
  Xoshiro256 rng(2);
  std::array<std::uint64_t, 1024> ss{};
  for (auto& s : ss) s = rng.next_below(std::uint64_t{1} << (2 * d));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (const std::uint64_t s : ss) {
      const TileCoord tc = s_inverse(curve, s, d);
      sink += tc.i + tc.j;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ss.size()));
}

void Addressing_AdditionPathAblation(benchmark::State& state) {
  // Strassen (addition-heavy) on the multi-orientation curves, fast paths
  // vs forced-generic mapping arrays.
  const Curve curve = state.range(0) == 0 ? Curve::GrayMorton : Curve::Hilbert;
  const bool generic = state.range(1) != 0;
  const auto n = static_cast<std::uint32_t>(pick_size(1024, 320));
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = curve;
  cfg.algorithm = Algorithm::Strassen;
  cfg.force_generic_additions = generic;
  for (auto _ : state) {
    run_gemm(p, cfg);
  }
  set_flops_counters(state, n);
}

void register_benchmarks() {
  for (long c = 0; c < static_cast<long>(std::size(kAllCurves)); ++c) {
    const std::string cn = sanitize(curve_name(kAllCurves[c]));
    benchmark::RegisterBenchmark(("Addressing_SFunction/" + cn).c_str(),
                                 Addressing_SFunction)
        ->Arg(c);
    benchmark::RegisterBenchmark(("Addressing_SInverse/" + cn).c_str(),
                                 Addressing_SInverse)
        ->Arg(c);
  }
  for (long curve = 0; curve < 2; ++curve) {
    for (long generic = 0; generic < 2; ++generic) {
      const std::string name =
          std::string("Addressing_AdditionPathAblation/") +
          (curve == 0 ? "GrayMorton" : "Hilbert") + "_" +
          (generic != 0 ? "generic" : "fast");
      benchmark::RegisterBenchmark(name.c_str(), Addressing_AdditionPathAblation)
          ->Args({curve, generic})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
