// Slowdown-vs-dgemm accounting (paper §5, "Choice of tile size" text):
// at the best tile size the paper's standard/L_Z recursive multiply runs at
// a 1.88x slowdown against Sun's native dgemm for n = 1024 and 1.56x for
// n = 1536 — versus the factor ≈ 8 Frens & Wise reported for element-level
// quad-tree recursion.
//
// Stand-ins here (no vendor BLAS offline): the flat register-blocked kernel
// plays native dgemm; an element-level (t = 1) run plays Frens–Wise. The
// orderings to reproduce: recursive/tiled ≈ small factor of flat;
// element-level ≫ tiled.

#include <map>

#include "bench_common.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

double flat_seconds(std::uint32_t n) {
  static std::map<std::uint32_t, double> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Problem p(n);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) best = std::min(best, run_flat_dgemm(p));
  cache[n] = best;
  return best;
}

// Only publish the ratio when the baseline produced a usable time: a
// sub-resolution or failed flat run would otherwise export inf/NaN and
// poison every downstream comparison (bench_compare.py, the CI schema
// check).
void set_slowdown(benchmark::State& state, double best, std::uint32_t n) {
  const double flat = flat_seconds(n);
  if (flat > 0.0 && best < 1e300) {
    state.counters["slowdown_vs_dgemm"] = best / flat;
  }
}

void Dgemm_FlatBaseline(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Problem p(n);
  for (auto _ : state) {
    run_flat_dgemm(p);
  }
  set_flops_counters(state, n);
}

void Dgemm_RecursiveBestTile(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  double best = 1e300;
  for (auto _ : state) {
    best = std::min(best, run_gemm(p, cfg));
  }
  set_flops_counters(state, n);
  set_slowdown(state, best, n);
  // One measured (untimed) run so the --json export carries span/parallelism,
  // the per-depth recursion-tree shares, and, where the PMU is usable,
  // misses per FLOP.
  GemmConfig measured_cfg = cfg;
  measured_cfg.measure = true;
  measured_cfg.hw_counters = true;
  measured_cfg.tree_profile = true;
  GemmProfile profile;
  run_gemm(p, measured_cfg, &profile);
  set_profile_counters(state, profile);
  set_hw_counters(state, profile, n);
  set_tree_counters(state, profile);
  set_config_label(state, cfg);
}

void Dgemm_ElementLevelFrensWise(benchmark::State& state) {
  // t = 1: the configuration the paper improves on (reported factor ≈ 8).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.standard_variant = StandardVariant::InPlace;  // see bench_tilesize
  cfg.forced_depth = bits::floor_log2(n);
  double best = 1e300;
  for (auto _ : state) {
    best = std::min(best, run_gemm(p, cfg));
  }
  set_flops_counters(state, n);
  set_slowdown(state, best, n);
}

void Dgemm_StrassenBest(benchmark::State& state) {
  // The fast algorithms can beat the flat O(n³) kernel outright at scale.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Strassen;
  double best = 1e300;
  for (auto _ : state) {
    best = std::min(best, run_gemm(p, cfg));
  }
  set_flops_counters(state, n);
  set_slowdown(state, best, n);
  GemmConfig measured_cfg = cfg;
  measured_cfg.measure = true;
  measured_cfg.hw_counters = true;
  measured_cfg.tree_profile = true;
  GemmProfile profile;
  run_gemm(p, measured_cfg, &profile);
  set_profile_counters(state, profile);
  set_hw_counters(state, profile, n);
  set_tree_counters(state, profile);
  set_config_label(state, cfg);
}

void register_benchmarks() {
  const std::uint32_t sizes[] = {
      static_cast<std::uint32_t>(pick_size(1024, 384)),
      static_cast<std::uint32_t>(pick_size(1536, 576))};
  for (const std::uint32_t n : sizes) {
    benchmark::RegisterBenchmark("Dgemm_FlatBaseline", Dgemm_FlatBaseline)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("Dgemm_RecursiveBestTile",
                                 Dgemm_RecursiveBestTile)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("Dgemm_StrassenBest", Dgemm_StrassenBest)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
  // Element-level recursion only at the smaller size (it is very slow —
  // that is the point).
  benchmark::RegisterBenchmark("Dgemm_ElementLevelFrensWise",
                               Dgemm_ElementLevelFrensWise)
      ->Arg(sizes[0])
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
