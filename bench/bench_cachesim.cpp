// Memory-system mechanism study on the cache-simulator substrate.
//
// This is the substitution experiment behind Fig. 5/6 and §3's false-sharing
// argument (see DESIGN.md): we cannot observe a 1997 4-CPU UltraSPARC's
// cache from this container, so we replay the algorithms' address traces
// through the simulated hierarchy instead. Geometry is scaled (a 1 KB
// direct-mapped L1 against n ≈ 128 plays the role of a 16 KB L1 against
// n ≈ 1024 — the pathology depends only on the stride/set-count alignment).
//
//   * CacheSim_MissRateSweep: standard algorithm, L_C vs L_Z, n swept
//     through a critical stride. Expected shape (Fig. 5's mechanism): the
//     canonical layout's conflict misses spike when the leading dimension
//     aliases the cache sets (n = 128 here: every k-step of a leaf's
//     dot-product lands in one set), while the tiled layout stays flat.
//   * CacheSim_FalseSharing: 4 cores computing the four C quadrants (paper
//     §3): with n chosen so the quadrant boundary is not line-aligned, the
//     canonical layout ping-pongs boundary lines between cores; recursive
//     layouts keep quadrants contiguous and see almost none of it.
//   * CacheSim_TlbPressure: TLB miss rates per layout when canonical columns
//     span pages.
//
// Counters are simulated quantities; the wall time of these benchmarks is
// the simulator's own speed and is not the result.

#include "bench_common.hpp"
#include "cachesim/coherence.hpp"
#include "cachesim/hierarchy.hpp"
#include "trace/access_logger.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

void CacheSim_MissRateSweep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool recursive = state.range(1) != 0;
  const std::uint32_t tile = n / 16;  // 16x16 grid of tiles/leaves

  sim::HierarchyConfig cfg;
  cfg.l1 = {1024, 32, 1, true};  // direct-mapped, 32 sets: the
                                 // conflict-sensitive design point
  cfg.l2 = {64 * 1024, 32, 8, false};
  sim::MemoryHierarchy mem(cfg);
  for (auto _ : state) {
    mem.reset();
    auto sink = [&](std::uint64_t addr, bool write) { mem.access(addr, write); };
    if (recursive) {
      trace::walk_standard_tiled(n, tile, Curve::ZMorton, {}, sink);
    } else {
      trace::walk_standard_canonical(n, tile, {}, sink);
    }
  }
  state.counters["l1_miss_pct"] = 100.0 * mem.l1().stats().miss_rate();
  state.counters["l1_conflict_pct"] =
      100.0 * static_cast<double>(mem.l1().stats().conflict_misses) /
      static_cast<double>(mem.l1().stats().accesses());
  state.counters["cycles_per_access"] = mem.cpa();
}

void CacheSim_FalseSharing(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool recursive = state.range(1) != 0;
  const std::uint32_t tile = n / 4;  // 4x4 grid: clean for both layouts

  sim::SmpConfig cfg;
  cfg.cores = 4;
  cfg.l1 = {16 * 1024, 64, 2, false};
  sim::SmpCaches smp(cfg);
  const auto refs = trace::quadrant_parallel_trace(
      n, tile, recursive ? Curve::ZMorton : Curve::ColMajor, {});
  for (auto _ : state) {
    smp.reset();
    for (const auto& ref : refs) smp.access(ref);
  }
  state.counters["false_sharing_inval"] =
      static_cast<double>(smp.stats().false_sharing_invalidations);
  state.counters["true_sharing_inval"] =
      static_cast<double>(smp.stats().true_sharing_invalidations);
  state.counters["coherence_misses"] =
      static_cast<double>(smp.stats().coherence_misses);
  state.counters["miss_pct"] = 100.0 * smp.miss_rate();
}

void CacheSim_TlbPressure(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool recursive = state.range(1) != 0;
  const std::uint32_t tile = 8;
  sim::HierarchyConfig cfg;
  cfg.tlb = {16, 4096};  // deliberately small TLB to expose dilation
  sim::MemoryHierarchy mem(cfg);
  for (auto _ : state) {
    mem.reset();
    auto sink = [&](std::uint64_t addr, bool write) { mem.access(addr, write); };
    if (recursive) {
      trace::walk_standard_tiled(n, tile, Curve::ZMorton, {}, sink);
    } else {
      trace::walk_standard_canonical(n, tile, {}, sink);
    }
  }
  state.counters["tlb_miss_pct"] = 100.0 * mem.tlb().stats().miss_rate();
}

void register_benchmarks() {
  // Fig. 5 mechanism: n = 128 makes the canonical column stride alias the
  // 32 L1 sets exactly; its neighbours do not. n/16 stays integral so both
  // layouts keep a clean 16x16 leaf grid.
  for (const std::uint32_t n : {112u, 128u, 144u, 160u, 176u, 192u}) {
    benchmark::RegisterBenchmark("CacheSim_MissRateSweep/LC",
                                 CacheSim_MissRateSweep)
        ->Args({n, 0})
        ->Iterations(1);
    benchmark::RegisterBenchmark("CacheSim_MissRateSweep/LZ",
                                 CacheSim_MissRateSweep)
        ->Args({n, 1})
        ->Iterations(1);
  }
  // Quadrant boundaries at rows 18 / 30: 144 and 240 bytes into a column —
  // not line-aligned, so canonical boundary lines straddle two cores.
  for (const std::uint32_t n : {36u, 60u}) {
    benchmark::RegisterBenchmark("CacheSim_FalseSharing/LC", CacheSim_FalseSharing)
        ->Args({n, 0})
        ->Iterations(1);
    benchmark::RegisterBenchmark("CacheSim_FalseSharing/LZ", CacheSim_FalseSharing)
        ->Args({n, 1})
        ->Iterations(1);
  }
  benchmark::RegisterBenchmark("CacheSim_TlbPressure/LC", CacheSim_TlbPressure)
      ->Args({128, 0})
      ->Iterations(1);
  benchmark::RegisterBenchmark("CacheSim_TlbPressure/LZ", CacheSim_TlbPressure)
      ->Args({128, 1})
      ->Iterations(1);
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
