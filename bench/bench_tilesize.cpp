// Figure 4 reproduction: effect of the depth of the recursive layout
// (equivalently, the tile size at which recursion stops) on performance.
//
// Paper: standard algorithm, L_Z layout, one processor, n = 1024 with
// t ∈ {1,2,...,512} and n = 1536 with t ∈ {3,6,...,768}. The curve is a
// U-shaped bowl: t = 1 (Frens–Wise element-level recursion) is several times
// slower than the sweet spot near t = 16, and a single giant tile is the
// plain kernel. Defaults here are n = 512 / 768 (RLA_PAPER_SCALE=1 restores
// the paper sizes); the bowl shape is scale-independent.
//
// Reported counters: tile (edge), depth d, gflops, and slowdown vs the flat
// register-blocked kernel ("native dgemm" stand-in; the paper reports 1.88
// at the best tile for n = 1024).

#include <map>

#include "bench_common.hpp"

namespace {

using namespace rla;
using namespace rla::bench;

double flat_baseline_seconds(std::uint32_t n) {
  static std::map<std::uint32_t, double> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Problem p(n);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) best = std::min(best, run_flat_dgemm(p));
  cache[n] = best;
  return best;
}

void Fig4_TileSize(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto tile = static_cast<std::uint32_t>(state.range(1));
  const int depth = bits::floor_log2(n / tile);

  Problem p(n);
  GemmConfig cfg;
  cfg.layout = Curve::ZMorton;
  cfg.algorithm = Algorithm::Standard;
  cfg.forced_depth = depth;
  // In-place variant: the Temporaries form allocates per recursion node,
  // which at t = 1 (element-level recursion, the Frens–Wise configuration
  // this figure argues against) would measure the allocator instead of the
  // layout.
  cfg.standard_variant = StandardVariant::InPlace;
  double best = 1e300;
  for (auto _ : state) {
    best = std::min(best, run_gemm(p, cfg));
  }
  set_flops_counters(state, n);
  state.counters["tile"] = tile;
  state.counters["depth"] = depth;
  state.counters["slowdown_vs_dgemm"] = best / flat_baseline_seconds(n);
}

void register_benchmarks() {
  const auto n1 = static_cast<std::uint32_t>(pick_size(1024, 512));
  for (std::uint32_t t = 1; t <= n1 / 2; t *= 2) {
    benchmark::RegisterBenchmark("Fig4_TileSize", Fig4_TileSize)
        ->Args({n1, t})
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
  const auto n2 = static_cast<std::uint32_t>(pick_size(1536, 768));
  for (std::uint32_t t = 3; t <= n2 / 2; t *= 2) {
    benchmark::RegisterBenchmark("Fig4_TileSize", Fig4_TileSize)
        ->Args({n2, t})
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

const int dummy = (register_benchmarks(), 0);

}  // namespace
