// Shared main for every bench binary: google-benchmark's CLI plus a
// `--json=<path>` flag that writes a machine-readable report of all runs
// (name, label, iterations, times, every user counter) and a per-benchmark
// summary with median/min GFLOPS. The schema is checked by CI and consumed
// by scripts; google-benchmark's own --benchmark_out remains available and
// untouched.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace {

using rla::obs::json::Value;

double to_ns(double t, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return t;
    case benchmark::kMicrosecond:
      return t * 1e3;
    case benchmark::kMillisecond:
      return t * 1e6;
    case benchmark::kSecond:
      return t * 1e9;
  }
  return t;
}

/// Console reporter that also records every finished run for the JSON
/// export. (A separate "file" reporter would require --benchmark_out, so we
/// tee off the display reporter instead.)
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) runs_.push_back(run);
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

Value run_to_json(const benchmark::BenchmarkReporter::Run& run) {
  Value o = Value::object();
  o.set("name", Value::string(run.benchmark_name()));
  if (!run.aggregate_name.empty()) {
    o.set("aggregate", Value::string(run.aggregate_name));
  }
  if (!run.report_label.empty()) {
    o.set("label", Value::string(run.report_label));
  }
  o.set("iterations", Value::number(static_cast<std::int64_t>(run.iterations)));
  o.set("real_time", Value::number(run.GetAdjustedRealTime()));
  o.set("cpu_time", Value::number(run.GetAdjustedCPUTime()));
  o.set("time_unit", Value::string(benchmark::GetTimeUnitString(run.time_unit)));
  Value counters = Value::object();
  for (const auto& [name, counter] : run.counters) {
    // A zero-iteration or failed run can yield NaN/inf rates; JSON has no
    // spelling for those, so drop the counter rather than emit garbage.
    const double value = static_cast<double>(counter);
    if (std::isfinite(value)) counters.set(name, Value::number(value));
  }
  o.set("counters", std::move(counters));
  return o;
}

bool write_json_report(const std::string& path, const char* program,
                       const CollectingReporter& collector) {
  Value root = Value::object();
  Value context = Value::object();
  context.set("executable", Value::string(program));
  context.set("paper_scale", Value::boolean(rla::paper_scale()));
  context.set("bench_threads",
              Value::number(rla::env_int("RLA_BENCH_THREADS", 1)));
  root.set("context", std::move(context));

  Value runs = Value::array();
  // Median/min GFLOPS per benchmark family, over non-aggregate runs that
  // report a gflops counter (aggregates from --benchmark_repetitions are
  // exported as runs but excluded here to avoid double counting).
  std::map<std::string, std::vector<double>> gflops;
  // Per-family real-time percentiles via the same log2-bucket histogram +
  // interpolated quantile the service SLO gauges use — one estimator, one
  // set of semantics across bench and service reporting.
  std::map<std::string, rla::obs::Histogram> times;
  for (const auto& run : collector.runs()) {
    runs.push_back(run_to_json(run));
    if (run.run_type == benchmark::BenchmarkReporter::Run::RT_Iteration) {
      const auto it = run.counters.find("gflops");
      if (it != run.counters.end() &&
          std::isfinite(static_cast<double>(it->second))) {
        // set_flops_counters publishes the counter in GFLOP/s already.
        gflops[run.benchmark_name()].push_back(static_cast<double>(it->second));
      }
      const double t_ns = to_ns(run.GetAdjustedRealTime(), run.time_unit);
      if (std::isfinite(t_ns) && t_ns >= 0.0) {
        times[run.benchmark_name()].record(static_cast<std::int64_t>(t_ns));
      }
    }
  }
  root.set("benchmarks", std::move(runs));

  Value summary = Value::array();
  for (const auto& [name, values] : gflops) {
    Value entry = Value::object();
    entry.set("name", Value::string(name));
    entry.set("median_gflops", Value::number(median_of(values)));
    entry.set("min_gflops",
              Value::number(*std::min_element(values.begin(), values.end())));
    if (const auto it = times.find(name); it != times.end()) {
      entry.set("p50_ns", Value::number(it->second.quantile_interpolated(0.50)));
      entry.set("p95_ns", Value::number(it->second.quantile_interpolated(0.95)));
      entry.set("p99_ns", Value::number(it->second.quantile_interpolated(0.99)));
    }
    summary.push_back(std::move(entry));
  }
  root.set("summary", std::move(summary));

  std::ofstream out(path);
  if (!out) return false;
  out << root.dump() << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
      continue;
    }
    args.push_back(argv[i]);
  }
  args.push_back(nullptr);  // benchmark::Initialize expects argv[argc] == 0
  int kept = static_cast<int>(args.size()) - 1;

  benchmark::Initialize(&kept, args.data());
  if (benchmark::ReportUnrecognizedArguments(kept, args.data())) return 1;

  CollectingReporter collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    if (!write_json_report(json_path, argv[0], collector)) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
