#pragma once

// Shared helpers for the benchmark harnesses.
//
// Problem sizes default to roughly 2.5x-linear scaled-down versions of the
// paper's (which targeted a 1997-era 4-CPU SMP); set RLA_PAPER_SCALE=1 in
// the environment to run the original sizes. Thread counts default to {1};
// set RLA_BENCH_THREADS=4 to sweep {1,2,4} as in the paper (only meaningful
// on a multi-core host).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "core/rla.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace rla::bench {

/// Strip punctuation for benchmark-name fragments.
inline std::string sanitize(std::string_view text) {
  std::string out;
  for (char ch : text) {
    if (ch != '-' && ch != ' ') out.push_back(ch);
  }
  return out;
}

/// Threads to sweep: {1} by default, {1, 2, 4} when RLA_BENCH_THREADS is
/// set (value = max threads).
inline std::vector<unsigned> thread_sweep() {
  const auto max_threads =
      static_cast<unsigned>(env_int("RLA_BENCH_THREADS", 1));
  std::vector<unsigned> sweep{1};
  for (unsigned p = 2; p <= max_threads; p *= 2) sweep.push_back(p);
  return sweep;
}

/// Problem inputs reused across iterations of one benchmark.
struct Problem {
  Matrix a, b, c;
  explicit Problem(std::uint32_t n) : a(n, n), b(n, n), c(n, n) {
    a.fill_random(0xA);
    b.fill_random(0xB);
    c.zero();
  }
};

/// One C = A·B under cfg; returns wall seconds.
inline double run_gemm(Problem& p, const GemmConfig& cfg,
                       GemmProfile* profile = nullptr) {
  Timer timer;
  gemm(p.c.rows(), p.c.cols(), p.a.cols(), 1.0, p.a.data(), p.a.ld(), Op::None,
       p.b.data(), p.b.ld(), Op::None, 0.0, p.c.data(), p.c.ld(), cfg, profile);
  return timer.seconds();
}

/// Flat (single-call) multiply with the register-blocked kernel: the
/// stand-in for the vendor dgemm baseline of the paper's §5.
inline double run_flat_dgemm(Problem& p, KernelKind kernel = KernelKind::Blocked4x4) {
  Timer timer;
  p.c.zero();
  leaf_mm(kernel, p.c.rows(), p.c.cols(), p.a.cols(), 1.0, p.a.data(), p.a.ld(),
          p.b.data(), p.b.ld(), p.c.data(), p.c.ld());
  return timer.seconds();
}

inline void set_flops_counters(benchmark::State& state, std::uint32_t n) {
  // 2n^3 FLOPs per iteration, published in units of 1e9 so the counter
  // reads as GFLOP/s (kIs1000 would have google-benchmark rescale the
  // number to "G" itself and the exported value would be raw FLOP/s).
  const double gflops = 2.0 * n * n * n / 1e9;
  state.counters["gflops"] = benchmark::Counter(
      gflops, benchmark::Counter::kIsIterationInvariantRate);
}

/// Publish hardware-counter results (one cfg.hw_counters run done outside
/// the timed loop) as misses-per-FLOP counters. No-ops when the PMU was
/// unavailable, so --json output is stable across hosts: absent key means
/// "not counted", never zero-means-unknown.
inline void set_hw_counters(benchmark::State& state,
                            const GemmProfile& profile, std::uint32_t n) {
  if (!profile.hw_measured) return;
  const double flops = 2.0 * n * n * static_cast<double>(n);
  const auto have = [&](const char* name) {
    for (const auto& e : profile.hw_events) {
      if (e == name) return true;
    }
    return false;
  };
  if (have("l1d_read_misses")) {
    state.counters["l1d_miss_per_flop"] = benchmark::Counter(
        static_cast<double>(profile.hw_total.l1d_read_misses) / flops);
  }
  if (have("llc_misses")) {
    state.counters["llc_miss_per_flop"] = benchmark::Counter(
        static_cast<double>(profile.hw_total.llc_misses) / flops);
  }
  if (have("dtlb_misses")) {
    state.counters["dtlb_miss_per_flop"] = benchmark::Counter(
        static_cast<double>(profile.hw_total.dtlb_misses) / flops);
  }
  if (have("instructions") && have("cycles") &&
      profile.hw_total.cycles > 0) {
    state.counters["ipc"] = benchmark::Counter(
        static_cast<double>(profile.hw_total.instructions) /
        static_cast<double>(profile.hw_total.cycles));
  }
}

/// Publish one measured run's work/span results as plain counters, for the
/// --json export (ISSUE: measured span + parallelism per benchmark). Call
/// with the profile of a single cfg.measure = true run done outside the
/// timed loop; the values are iteration-invariant.
inline void set_profile_counters(benchmark::State& state,
                                 const GemmProfile& profile) {
  if (!profile.measured) return;
  state.counters["measured_parallelism"] =
      benchmark::Counter(profile.achieved_parallelism);
  state.counters["measured_span_ms"] =
      benchmark::Counter(profile.measured_span * 1e3);
  state.counters["measured_work_ms"] =
      benchmark::Counter(profile.measured_work * 1e3);
  state.counters["tasks"] =
      benchmark::Counter(static_cast<double>(profile.tasks_traced));
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(profile.sched.steals));
}

/// Publish recursion-resolved (treeprof) per-depth results from one
/// cfg.tree_profile run done outside the timed loop: exclusive time share
/// per depth plus, where the PMU counted, misses-per-FLOP and IPC per
/// depth. Keys look like "tree_d2_time_share". No-op when the tree was not
/// measured (disarmed, or the session slot was busy), so absent keys mean
/// "not profiled", never zero-means-unknown — same contract as
/// set_hw_counters above.
inline void set_tree_counters(benchmark::State& state,
                              const GemmProfile& profile) {
  if (!profile.tree_measured || profile.tree_profile.empty()) return;
  // Only publish hw-derived columns for events the perf session actually
  // counted (a host where just the software task clock works would
  // otherwise export zero-means-unknown miss rates).
  const auto counted = [&](const char* name) {
    if (!profile.hw_measured) return false;
    for (const auto& e : profile.hw_events) {
      if (e == name) return true;
    }
    return false;
  };
  const bool have_l1 = counted("l1d_read_misses");
  const bool have_ipc = counted("instructions") && counted("cycles");
  struct DepthRow {
    double time_ns = 0, flops = 0, l1 = 0, instructions = 0, cycles = 0;
  };
  std::map<int, DepthRow> depths;
  double total_ns = 0;
  for (const auto& node : profile.tree_profile) {
    DepthRow& row = depths[std::atoi(node.key.c_str() + 1)];
    row.time_ns += static_cast<double>(node.time_ns);
    row.flops += static_cast<double>(node.flops);
    total_ns += static_cast<double>(node.time_ns);
    if (node.hw_valid) {
      row.l1 += static_cast<double>(node.hw.l1d_read_misses);
      row.instructions += static_cast<double>(node.hw.instructions);
      row.cycles += static_cast<double>(node.hw.cycles);
    }
  }
  for (const auto& [depth, row] : depths) {
    const std::string prefix = "tree_d" + std::to_string(depth) + "_";
    if (total_ns > 0) {
      state.counters[prefix + "time_share"] =
          benchmark::Counter(row.time_ns / total_ns);
    }
    if (have_l1 && row.flops > 0) {
      state.counters[prefix + "l1d_miss_per_flop"] =
          benchmark::Counter(row.l1 / row.flops);
    }
    if (have_ipc && row.cycles > 0) {
      state.counters[prefix + "ipc"] =
          benchmark::Counter(row.instructions / row.cycles);
    }
  }
}

/// Benchmark label "layout=... algorithm=... threads=N" so the --json
/// report carries the configuration alongside the name and shape.
inline void set_config_label(benchmark::State& state, const GemmConfig& cfg) {
  state.SetLabel("layout=" + std::string(curve_name(cfg.layout)) +
                 " algorithm=" + std::string(algorithm_name(cfg.algorithm)) +
                 " threads=" + std::to_string(cfg.threads));
}

}  // namespace rla::bench
